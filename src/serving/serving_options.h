// ServingOptions: knobs for the concurrent query-serving layer (VerServer).
//
// The paper's system is single-query; serving has no paper counterpart, so
// none of these knobs map to a paper parameter. They control how one
// immutable Ver instance is shared by many concurrent callers, and how the
// server defends its tail latency under overload (admission control, queue
// ordering, single-flight coalescing — see docs/ARCHITECTURE.md "Serving
// layer").

#ifndef VER_SERVING_SERVING_OPTIONS_H_
#define VER_SERVING_SERVING_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ver {

struct DiscoveryRequest;

/// Deterministic test instrumentation for VerServer's worker loop. All
/// hooks default to null (zero overhead beyond a branch) and exist so
/// concurrency tests can hold workers at exact points instead of sleeping
/// (tests/server_test_fixture.h). Hooks run on worker threads with no
/// server lock held; a hook may block.
struct ServingHooks {
  /// Runs right after a worker dequeues a ticket, before the queued-expiry
  /// check, cache lookup, or coalescing decision. Blocking here holds the
  /// worker with the request already off the queue.
  std::function<void()> after_dequeue;
  /// Runs immediately before each actual pipeline execution (never for
  /// cache hits or coalesced followers), with the request about to run —
  /// the execution-counter hook.
  std::function<void(const DiscoveryRequest&)> before_execute;
  /// Runs after a request attaches to an in-flight leader as a
  /// single-flight follower, with the group's follower count so far.
  std::function<void(int)> on_follower_attached;
};

struct ServingOptions {
  /// Worker threads draining the submission queue. Units: threads.
  /// Default 4; 0 = all hardware threads (same convention as
  /// DiscoveryOptions::parallelism). Each worker runs one query at a time
  /// end to end, so this bounds in-flight pipeline executions.
  int num_workers = 4;

  /// Bound on queries admitted but not yet started. Units: queries.
  /// Default 256; <= 0 means unbounded. Submit() fails with Unavailable
  /// once the backlog is this deep — backpressure instead of unbounded
  /// memory growth (and unbounded queue-wait tail latency).
  int max_queue_depth = 256;

  /// Dispatch queued requests earliest-effective-deadline first (FIFO among
  /// equal deadlines and among requests without one) instead of strictly
  /// FIFO. Default true: under load, requests that can still meet their
  /// deadline run before ones with slack, which cuts deadline-miss rate
  /// without starving anyone (a deadline-free request's queue position
  /// only ever improves as deadlined traffic drains ahead of it).
  bool deadline_ordered_queue = true;

  /// Predictive load shedding: reject a submission with Unavailable at
  /// admission when its effective deadline cannot be met even optimistically
  /// — estimated start delay (queued requests ahead of it, divided across
  /// the workers, times the EWMA pipeline time) already exceeds the time
  /// remaining. Default false; only requests carrying a deadline are ever
  /// shed this way, and never before the server has seen one pipeline run.
  bool predictive_deadline_shedding = false;

  /// Single-flight coalescing of identical in-flight queries. The result
  /// cache only catches *completed* duplicates; under skewed traffic the
  /// same hot query otherwise runs concurrently many times. When true
  /// (default), a dequeued request whose canonical key (same epoch, same
  /// query, same knobs — the cache key) matches a currently-executing
  /// request attaches to that leader instead of running: the leader's
  /// result is shared with every follower and the streamed views are
  /// re-delivered to each follower's observer. Works with the cache off.
  bool single_flight = true;

  /// LRU result-cache capacity. Units: entries (one full QueryResult each).
  /// Default 128; 0 disables caching. Keys are canonicalized queries (see
  /// serving/query_cache.h), so re-ordered example values still hit.
  size_t cache_capacity = 128;

  /// Deadline applied to queries submitted without an explicit one.
  /// Units: seconds of wall-clock time from submission. Default 0 = no
  /// deadline. Checked between pipeline stages and at dequeue, so a query
  /// over deadline fails cleanly with DeadlineExceeded at the next
  /// boundary, never mid-stage.
  double default_deadline_s = 0;

  /// Memory budget for paged (larger-than-RAM) serving. Units: bytes.
  /// Default 0 = resident serving. When set, embedders translate it into
  /// PagingOptions{enabled, memory_budget_bytes} for
  /// DiscoveryEngine::LoadRepository/Load, and share one BufferPool across
  /// a hot swap's snapshot pair (PagingOptions::pool) so the budget holds
  /// while both snapshots are alive. The server itself never loads
  /// snapshots; it reports the served snapshot's pool counters in stats().
  uint64_t memory_budget_bytes = 0;

  /// Test-only worker instrumentation; leave default in production.
  ServingHooks hooks;
};

}  // namespace ver

#endif  // VER_SERVING_SERVING_OPTIONS_H_
