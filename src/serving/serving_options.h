// ServingOptions: knobs for the concurrent query-serving layer (VerServer).
//
// The paper's system is single-query; serving has no paper counterpart, so
// none of these knobs map to a paper parameter. They control how one
// immutable Ver instance is shared by many concurrent callers.

#ifndef VER_SERVING_SERVING_OPTIONS_H_
#define VER_SERVING_SERVING_OPTIONS_H_

#include <cstddef>

namespace ver {

struct ServingOptions {
  /// Worker threads draining the submission queue. Units: threads.
  /// Default 4; 0 = all hardware threads (same convention as
  /// DiscoveryOptions::parallelism). Each worker runs one query at a time
  /// end to end, so this bounds in-flight pipeline executions.
  int num_workers = 4;

  /// Bound on queries admitted but not yet started. Units: queries.
  /// Default 256; <= 0 means unbounded. Submit() fails with Unavailable
  /// once the backlog is this deep — backpressure instead of unbounded
  /// memory growth.
  int max_queue_depth = 256;

  /// LRU result-cache capacity. Units: entries (one full QueryResult each).
  /// Default 128; 0 disables caching. Keys are canonicalized queries (see
  /// serving/query_cache.h), so re-ordered example values still hit.
  size_t cache_capacity = 128;

  /// Deadline applied to queries submitted without an explicit one.
  /// Units: seconds of wall-clock time from submission. Default 0 = no
  /// deadline. Checked between pipeline stages and at dequeue, so a query
  /// over deadline fails cleanly with DeadlineExceeded at the next
  /// boundary, never mid-stage.
  double default_deadline_s = 0;
};

}  // namespace ver

#endif  // VER_SERVING_SERVING_OPTIONS_H_
