#include "serving/query_cache.h"

#include <algorithm>
#include <vector>

namespace ver {

namespace {

// Length-prefixed append keeps keys unambiguous regardless of the bytes in
// the value (a value may contain any delimiter).
void AppendString(const std::string& s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

}  // namespace

std::string CanonicalQueryKey(const ExampleQuery& query) {
  std::string key;
  for (size_t a = 0; a < query.columns.size(); ++a) {
    key.push_back('A');
    AppendString(a < query.attribute_hints.size() ? query.attribute_hints[a]
                                                  : std::string(),
                 &key);
    std::vector<std::string> values = query.columns[a];
    std::sort(values.begin(), values.end());
    for (const std::string& v : values) {
      key.push_back('v');
      AppendString(v, &key);
    }
  }
  return key;
}

std::shared_ptr<const QueryResult> QueryCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  return it->second->second;
}

void QueryCache::Insert(const std::string& key,
                        std::shared_ptr<const QueryResult> result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.emplace_front(key, std::move(result));
  index_.emplace(key, lru_.begin());
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

QueryCache::Counters QueryCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace ver
