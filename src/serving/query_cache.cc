#include "serving/query_cache.h"

#include <utility>

namespace ver {

std::shared_ptr<const QueryResult> QueryCache::Lookup(
    const std::string& key, bool* early_terminated) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  if (early_terminated != nullptr) {
    *early_terminated = it->second->early_terminated;
  }
  return it->second->result;
}

void QueryCache::Insert(const std::string& key,
                        std::shared_ptr<const QueryResult> result,
                        bool early_terminated) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    it->second->early_terminated = early_terminated;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{key, std::move(result), early_terminated});
  index_.emplace(key, lru_.begin());
}

void QueryCache::Clear() {
  MutexLock lock(&mu_);
  index_.clear();
  lru_.clear();
}

QueryCache::Counters QueryCache::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

size_t QueryCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

}  // namespace ver
