// VerServer: the concurrent query-serving layer.
//
// Serves many concurrent discovery requests over one immutable Ver snapshot
// (discovery engine + online pipeline): a fixed worker pool
// (util/thread_pool) drains a bounded submission queue, an LRU cache
// short-circuits repeated requests, and every request carries its own
// pipeline knobs, deadline and cancellation (see api/discovery_request.h).
// Workers run Ver::Execute, so per-request overrides, StopAfter early
// termination and streaming view delivery all work under the server: pass a
// QueryObserver to Submit and its events fire on the worker thread as the
// pipeline progresses. Each snapshot is never mutated while serving
// (IndexNewTable is deliberately not exposed here), which is what makes the
// lock-free shared read path safe — see the thread-safety contract in
// discovery/engine.h.
//
// The server is tail-latency-aware (see docs/ARCHITECTURE.md "Serving
// layer" for the full policy):
//   - Per-stage latencies (queue wait, pipeline run, total) feed lock-free
//     log-bucketed histograms (util/latency_recorder.h); stats() reports
//     p50/p99/p999 per stage.
//   - Admission control: Submit sheds with Unavailable when the queue is at
//     max_queue_depth, or (predictive_deadline_shedding) when the request's
//     deadline cannot be met even under an optimistic queue-drain estimate
//     — backpressure instead of queueing to death.
//   - The queue dispatches earliest-effective-deadline first (FIFO among
//     equal deadlines), so feasible deadlines are spent on requests that
//     can still make them.
//   - Single-flight coalescing: a dequeued request identical to one already
//     executing (same epoch | canonical key) attaches to that leader
//     instead of running the pipeline again; the leader's result is shared
//     and its streamed views re-delivered per follower. If the leader dies
//     of its own deadline/cancellation, a follower is promoted and the
//     query still runs — a leader's fate never poisons its followers.
//
// The result cache is keyed by the *canonicalized request* — query plus the
// set overrides plus StopAfter — prefixed with the snapshot epoch, so two
// requests differing in any knob (a different k, theta, rho, ...) can never
// alias, and a result computed on an old snapshot can never answer a query
// admitted after a hot swap.
//
// Snapshots are hot-swappable: SwapSnapshot atomically replaces the served
// Ver (e.g. with one loaded from a newer DiscoveryEngine::Save file), so a
// re-indexed repository rolls out under traffic with zero downtime.
// Queries hold a shared_ptr to the snapshot they started on — in-flight
// queries finish on the old snapshot, submissions dequeued after the swap
// run on the new one, and the old snapshot is destroyed when its last
// in-flight query (or external reference) drops it.

#ifndef VER_SERVING_VER_SERVER_H_
#define VER_SERVING_VER_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/discovery_request.h"
#include "api/discovery_response.h"
#include "api/query_observer.h"
#include "core/ver.h"
#include "serving/query_cache.h"
#include "serving/serving_options.h"
#include "storage/repository.h"
#include "util/latency_recorder.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ver {

/// What the server hands back for one request.
struct ServedResult {
  /// OK, or InvalidArgument (request rejected by validation) /
  /// DeadlineExceeded / Cancelled / Unavailable (queue full, shed, or
  /// server shut down). Non-OK results carry no partial data.
  Status status;
  /// The request's result; shared with the cache, so treat as immutable.
  /// Null when status is not OK.
  std::shared_ptr<const QueryResult> result;
  /// True when `result` came from the cache instead of a pipeline run.
  bool cache_hit = false;
  /// True when this request rode an identical in-flight leader's execution
  /// (single-flight coalescing) instead of running the pipeline itself.
  bool coalesced = false;
  /// True when StopAfter(k) stopped the pipeline early (preserved across
  /// cache hits and coalesced serves: followers report the leader's flag).
  bool early_terminated = false;
  /// OnViewDelivered events fired for this serve. A cache hit or coalesced
  /// serve re-delivers the *surviving* views (in their final order, no
  /// stage events), so this can differ from the original miss when a
  /// streamed view was later pruned by distillation.
  int views_delivered = 0;
  /// Seconds spent queued before a worker picked the request up.
  double queue_wait_s = 0;
  /// Seconds the pipeline (or cache lookup) ran on the worker. 0 for a
  /// coalesced follower — the leader's run is reported on the leader.
  double run_s = 0;
};

/// Handle for one submitted request. Obtained from VerServer::Submit; safe
/// to share across threads.
class QueryTicket {
 public:
  /// Requests cooperative cancellation: the query fails with Cancelled at
  /// the next pipeline-stage (or candidate) boundary, or immediately if
  /// still queued. No-op once the query finished.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// Blocks until the query finishes and returns its outcome.
  const ServedResult& Wait() const { return future_.get(); }

  /// Non-blocking: true when the result is ready (Wait will not block).
  bool Poll() const {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  /// Views streamed so far — grows while the query runs (each increment
  /// follows an OnViewDelivered event on the submitting observer, if any).
  int views_delivered() const {
    return views_delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class VerServer;
  QueryTicket() : future_(promise_.get_future().share()) {}

  DiscoveryRequest request_;
  /// Caller-owned; events fire on the worker thread running the request.
  QueryObserver* observer_ = nullptr;
  std::chrono::steady_clock::time_point submitted_at_;
  std::atomic<bool> cancel_{false};
  std::atomic<int> views_delivered_{0};
  std::promise<ServedResult> promise_;
  std::shared_future<ServedResult> future_;
};

/// Monotonic counters describing server activity so far (plus two queue
/// gauges and three latency summaries). `override_uses[k]` counts submitted
/// requests that set override knob k — see RequestOverrides::KnobName for
/// the knob order.
struct ServerStats {
  int64_t submitted = 0;          // Submit() calls
  int64_t served_ok = 0;          // finished with OK
  int64_t rejected = 0;           // refused at Submit (queue full/shed/down)
  int64_t shed_deadline = 0;      // subset of rejected: predictive shedding
  int64_t invalid = 0;            // refused at Submit (validation failed)
  int64_t cancelled = 0;          // finished Cancelled
  int64_t deadline_exceeded = 0;  // finished DeadlineExceeded
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t pipeline_executions = 0;  // actual Ver::Execute runs on workers
  int64_t coalesced = 0;       // requests attached to an in-flight leader
  int64_t snapshot_swaps = 0;  // successful SwapSnapshot calls
  // --- request-shape counters (admitted requests only) ---
  int64_t requests_with_overrides = 0;  // >= 1 override knob set
  int64_t requests_streaming = 0;       // StopAfter(k) requests
  std::array<int64_t, RequestOverrides::kNumKnobs> override_uses{};
  // --- queue gauges ---
  int64_t current_queue_depth = 0;  // admitted, not yet dequeued, right now
  int64_t peak_queue_depth = 0;     // high-water mark since construction
  // --- buffer pool (paged serving; all-zero when the served snapshot is
  //     resident). Snapshot of the pool the *current* snapshot charges;
  //     shared across a hot swap when the loader shared the pool. ---
  bool paged = false;                    // current snapshot borrows an mmap
  uint64_t pool_budget_bytes = 0;        // configured residency ceiling
  int64_t pool_resident_bytes = 0;       // charged bytes right now
  int64_t pool_peak_resident_bytes = 0;  // high-water mark
  int64_t pool_hits = 0;                 // frame touches already resident
  int64_t pool_misses = 0;               // frame loads (faulted extents)
  int64_t pool_evictions = 0;            // frames madvised away
  // --- per-stage latency (util/latency_recorder.h log-bucketed
  //     histograms; quantiles carry <= ~3% bucket quantization) ---
  LatencyStats queue_wait;  // dequeue time - submit time, every dequeue
  LatencyStats pipeline;    // Ver::Execute wall clock, actual runs only
  LatencyStats total;       // submit -> completion, every worker-completed
                            // request (Submit-time rejects excluded)
  // --- per-shard scatter activity (sharded discovery engines; a single
  //     entry for the default 1-shard engine) ---
  struct ShardStats {
    uint64_t scatter_queries = 0;  // discovery queries scattered into it
    uint64_t candidates = 0;       // hits + neighbors it contributed
    /// Swaps that replaced this shard's index since the server started:
    /// full SwapSnapshot bumps every shard's epoch, the per-shard overload
    /// bumps only the swapped shard's.
    uint64_t swap_epoch = 0;
  };
  /// One entry per shard of the *current* snapshot's engine. Counters are
  /// cumulative over every snapshot this server served (the engine's own
  /// counters reset per snapshot; epochs tell the two apart).
  std::vector<ShardStats> shards;
};

/// Concurrent discovery serving over one repository.
///
/// Thread-safety: Submit, Serve, Shutdown, SwapSnapshot, snapshot and
/// stats may be called from any thread. Results are identical to serial
/// Ver::Execute execution (tests/serving_test.cc, tests/api_test.cc and
/// tests/single_flight_test.cc guard bit-identity under 8 concurrent
/// threads, including under concurrent swaps, streaming observers and
/// coalesced serves).
class VerServer {
 public:
  /// Builds the discovery index (offline, possibly parallel per
  /// `config.discovery.parallelism`) and starts the serving workers.
  /// `repo` must outlive the server and must not be mutated while serving.
  /// Spilling (`config.spill_dir`) is safe under concurrency: every query
  /// spills into its own subdirectory (see core/ver.h).
  VerServer(const TableRepository* repo, VerConfig config,
            ServingOptions options);

  /// Starts serving an already-built system — typically one constructed
  /// from a snapshot via DiscoveryEngine::Load + the Ver engine-adopting
  /// constructor — so a server process can come up without rebuilding any
  /// index. The Ver's repository must outlive the server.
  VerServer(std::shared_ptr<const Ver> ver, ServingOptions options);

  /// Drains outstanding queries and joins the workers.
  ~VerServer();

  VerServer(const VerServer&) = delete;
  VerServer& operator=(const VerServer&) = delete;

  /// Enqueues one request. Always returns a ticket; a rejected request
  /// (validation failure, queue full, shed, server shut down) carries an
  /// InvalidArgument / Unavailable status. When `request.deadline_s <= 0`,
  /// ServingOptions::default_deadline_s applies. `observer` (optional,
  /// caller-owned, must outlive the ticket's completion) receives the
  /// pipeline's streamed events on the worker thread — or, for a request
  /// rejected at Submit, a single OnFinished on the submitting thread. On
  /// a cache hit or coalesced serve the surviving views are re-delivered
  /// in final order followed by OnFinished (no stage events — the pipeline
  /// did not run for this ticket). The request's `cancel` pointer is
  /// replaced by the ticket's own flag — use QueryTicket::Cancel().
  std::shared_ptr<QueryTicket> Submit(DiscoveryRequest request,
                                      QueryObserver* observer = nullptr);

  /// Legacy shims: a bare QBE query under the default (or given) deadline.
  std::shared_ptr<QueryTicket> Submit(ExampleQuery query) {
    return Submit(DiscoveryRequest::ForQuery(std::move(query)));
  }
  std::shared_ptr<QueryTicket> Submit(ExampleQuery query, double deadline_s) {
    // Legacy contract: an explicit deadline_s <= 0 means *no* deadline,
    // overriding the server default — map it to the request's "explicitly
    // none" encoding (negative).
    return Submit(DiscoveryRequest::ForQuery(std::move(query))
                      .WithDeadline(deadline_s > 0 ? deadline_s : -1));
  }

  /// Submit + Wait, for callers without their own concurrency.
  ServedResult Serve(DiscoveryRequest request);
  ServedResult Serve(ExampleQuery query) {
    return Serve(DiscoveryRequest::ForQuery(std::move(query)));
  }

  /// Stops accepting new queries, serves everything already queued, joins
  /// the workers. Idempotent; also run by the destructor.
  void Shutdown();

  ServerStats stats() const;

  /// Atomically replaces the served snapshot. In-flight queries finish on
  /// the snapshot they dequeued with; queries dequeued afterwards run on
  /// `ver`. Cached results from earlier snapshots become unreachable (the
  /// cache key is epoch-prefixed) and are dropped eagerly. A null `ver` is
  /// rejected (returns false); swapping after Shutdown is a no-op.
  bool SwapSnapshot(std::shared_ptr<const Ver> ver);

  /// SwapSnapshot for a per-shard rollout (an engine built with
  /// DiscoveryEngine::WithRebuiltShard): identical swap semantics — the
  /// whole Ver is still replaced atomically and the cache epoch advances —
  /// but stats() records only `swapped_shard`'s swap epoch as bumped, so
  /// operators can see which shard rolled. Rejects (returns false) a null
  /// `ver` or a shard index outside `ver`'s engine.
  bool SwapSnapshot(std::shared_ptr<const Ver> ver, int swapped_shard);

  /// The currently served snapshot (for engine statistics, presentation
  /// sessions). Holding the returned pointer keeps that snapshot alive
  /// across later swaps — exactly the guarantee in-flight queries rely on.
  std::shared_ptr<const Ver> snapshot() const;

  const ServingOptions& options() const { return options_; }

 private:
  /// One queued admission. The dispatch order key (effective deadline,
  /// admission sequence) is frozen at Submit so the comparator never
  /// touches mutable ticket state. FIFO mode admits everything with the
  /// deadline field forced to max(), collapsing the order to sequence.
  struct QueuedTicket {
    std::chrono::steady_clock::time_point deadline;
    uint64_t seq = 0;
    std::shared_ptr<QueryTicket> ticket;

    bool operator<(const QueuedTicket& other) const {
      if (deadline != other.deadline) return deadline < other.deadline;
      return seq < other.seq;
    }
  };

  /// A single-flight follower parked on an in-flight leader, plus the
  /// queue wait it had already accrued when it attached.
  struct FlightFollower {
    std::shared_ptr<QueryTicket> ticket;
    double queue_wait_s = 0;
  };
  struct FlightGroup {
    std::vector<FlightFollower> followers;
  };

  void ServeOne();
  /// Leader-side pipeline execution with the single-flight promotion loop;
  /// completes the leader and every attached follower.
  void RunAsLeader(std::shared_ptr<QueryTicket> leader, double queue_wait_s,
                   const std::shared_ptr<const Ver>& snapshot,
                   const std::string& key, bool coalescible, bool cacheable);
  /// Replays `result`'s surviving views to `ticket`'s observer and
  /// completes it as a coalesced serve.
  void FinishFollower(const FlightFollower& follower,
                      const std::shared_ptr<const QueryResult>& result,
                      bool early_terminated);
  void Finish(const std::shared_ptr<QueryTicket>& ticket, ServedResult out);
  /// Extracts and clears the follower group registered under `key`.
  std::vector<FlightFollower> TakeFollowers(const std::string& key);
  /// Shared body of both SwapSnapshot overloads; `swapped_shard` < 0 means
  /// a full swap (every shard's epoch bumps).
  bool SwapSnapshotInternal(std::shared_ptr<const Ver> ver, int swapped_shard);

  ServingOptions options_;
  /// ResolveParallelism(options_.num_workers), fixed at construction; the
  /// denominator of the predictive-shedding drain estimate.
  int resolved_workers_ = 1;
  QueryCache cache_;

  // Guards the served snapshot, the submission queue, the accepting flag,
  // the queue-depth peak, the in-flight single-flight groups, and pool
  // submission (so Shutdown cannot destroy the pool under a concurrent
  // Submit).
  mutable Mutex mu_;
  std::shared_ptr<const Ver> ver_ VER_GUARDED_BY(mu_);
  // Bumped per swap; prefixes cache keys so a result computed on an old
  // snapshot can never answer a query admitted after the swap. Strictly
  // monotonic (VER_CHECKed in SwapSnapshot) — a reused epoch would let an
  // old snapshot's cached result answer a post-swap query.
  uint64_t snapshot_epoch_ VER_GUARDED_BY(mu_) = 0;
  /// Per-shard swap epochs of the served engine (stats-only; sized to the
  /// current snapshot's shard count on construction and every swap).
  std::vector<uint64_t> shard_swap_epochs_ VER_GUARDED_BY(mu_);
  /// Scatter counters accumulated from snapshots already swapped out, so
  /// stats().shards stays cumulative across hot swaps (the engine's own
  /// counters start at zero per snapshot).
  std::vector<ServerStats::ShardStats> retired_shard_counters_
      VER_GUARDED_BY(mu_);
  std::set<QueuedTicket> queue_ VER_GUARDED_BY(mu_);
  uint64_t next_seq_ VER_GUARDED_BY(mu_) = 0;
  int64_t peak_queue_depth_ VER_GUARDED_BY(mu_) = 0;
  bool accepting_ VER_GUARDED_BY(mu_) = true;
  std::unique_ptr<ThreadPool> pool_ VER_GUARDED_BY(mu_);
  /// Canonical key (epoch-prefixed) -> followers of the executing leader.
  std::unordered_map<std::string, std::shared_ptr<FlightGroup>> inflight_
      VER_GUARDED_BY(mu_);

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> shed_deadline_{0};
  std::atomic<int64_t> invalid_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> pipeline_executions_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> snapshot_swaps_{0};
  std::atomic<int64_t> requests_with_overrides_{0};
  std::atomic<int64_t> requests_streaming_{0};
  std::array<std::atomic<int64_t>, RequestOverrides::kNumKnobs>
      override_uses_{};

  /// EWMA of pipeline run seconds (predictive-shedding drain estimate).
  /// Plain load/store: a torn estimate only mis-sheds one request, and
  /// doubles are lock-free here.
  std::atomic<double> ewma_run_s_{0};
  /// Lock-free per-stage histograms behind ServerStats' latency summaries.
  LatencyRecorder queue_wait_recorder_;
  LatencyRecorder pipeline_recorder_;
  LatencyRecorder total_recorder_;
};

}  // namespace ver

#endif  // VER_SERVING_VER_SERVER_H_
