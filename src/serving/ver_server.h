// VerServer: the concurrent query-serving layer.
//
// Serves many concurrent QBE queries over one immutable Ver snapshot
// (discovery engine + online pipeline): a fixed worker pool
// (util/thread_pool) drains a bounded submission queue, an LRU cache
// short-circuits repeated queries, and every query carries a QueryControl
// so deadlines and cancellation take effect at pipeline-stage boundaries.
// Each snapshot is never mutated while serving (IndexNewTable is
// deliberately not exposed here), which is what makes the lock-free shared
// read path safe — see the thread-safety contract in discovery/engine.h.
//
// Snapshots are hot-swappable: SwapSnapshot atomically replaces the served
// Ver (e.g. with one loaded from a newer DiscoveryEngine::Save file), so a
// re-indexed repository rolls out under traffic with zero downtime.
// Queries hold a shared_ptr to the snapshot they started on — in-flight
// queries finish on the old snapshot, submissions dequeued after the swap
// run on the new one, and the old snapshot is destroyed when its last
// in-flight query (or external reference) drops it.

#ifndef VER_SERVING_VER_SERVER_H_
#define VER_SERVING_VER_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>

#include "core/ver.h"
#include "serving/query_cache.h"
#include "serving/serving_options.h"
#include "storage/repository.h"
#include "util/thread_pool.h"

namespace ver {

/// What the server hands back for one query.
struct ServedResult {
  /// OK, or DeadlineExceeded / Cancelled / Unavailable (queue full or
  /// server shut down). Non-OK results carry no partial data.
  Status status;
  /// The query's result; shared with the cache, so treat as immutable.
  /// Null when status is not OK.
  std::shared_ptr<const QueryResult> result;
  /// True when `result` came from the cache instead of a pipeline run.
  bool cache_hit = false;
  /// Seconds spent queued before a worker picked the query up.
  double queue_wait_s = 0;
  /// Seconds the pipeline (or cache lookup) ran on the worker.
  double run_s = 0;
};

/// Handle for one submitted query. Obtained from VerServer::Submit; safe to
/// share across threads.
class QueryTicket {
 public:
  /// Requests cooperative cancellation: the query fails with Cancelled at
  /// the next pipeline-stage boundary (or immediately, if still queued).
  /// No-op once the query finished.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// Blocks until the query finishes and returns its outcome.
  const ServedResult& Wait() const { return future_.get(); }

 private:
  friend class VerServer;
  QueryTicket() : future_(promise_.get_future().share()) {}

  ExampleQuery query_;
  std::chrono::steady_clock::time_point submitted_at_;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> cancel_{false};
  std::promise<ServedResult> promise_;
  std::shared_future<ServedResult> future_;
};

/// Monotonic counters describing server activity so far.
struct ServerStats {
  int64_t submitted = 0;          // Submit() calls
  int64_t served_ok = 0;          // finished with OK
  int64_t rejected = 0;           // refused at Submit (queue full/shutdown)
  int64_t cancelled = 0;          // finished Cancelled
  int64_t deadline_exceeded = 0;  // finished DeadlineExceeded
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t snapshot_swaps = 0;  // successful SwapSnapshot calls
};

/// Concurrent QBE serving over one repository.
///
/// Thread-safety: Submit, Serve, Shutdown, SwapSnapshot, snapshot and
/// stats may be called from any thread. Results are identical to serial
/// Ver::RunQuery execution (tests/serving_test.cc guards bit-identity
/// under 8 concurrent threads, including under concurrent swaps).
class VerServer {
 public:
  /// Builds the discovery index (offline, possibly parallel per
  /// `config.discovery.parallelism`) and starts the serving workers.
  /// `repo` must outlive the server and must not be mutated while serving.
  /// Spilling (`config.spill_dir`) is safe under concurrency: every query
  /// spills into its own subdirectory (see core/ver.h).
  VerServer(const TableRepository* repo, VerConfig config,
            ServingOptions options);

  /// Starts serving an already-built system — typically one constructed
  /// from a snapshot via DiscoveryEngine::Load + the Ver engine-adopting
  /// constructor — so a server process can come up without rebuilding any
  /// index. The Ver's repository must outlive the server.
  VerServer(std::shared_ptr<const Ver> ver, ServingOptions options);

  /// Drains outstanding queries and joins the workers.
  ~VerServer();

  VerServer(const VerServer&) = delete;
  VerServer& operator=(const VerServer&) = delete;

  /// Enqueues a query under the default deadline. Always returns a ticket;
  /// a rejected query (queue full, server shut down) carries an
  /// Unavailable status. `deadline_s` (seconds from now, <= 0 = none)
  /// overrides ServingOptions::default_deadline_s.
  std::shared_ptr<QueryTicket> Submit(ExampleQuery query);
  std::shared_ptr<QueryTicket> Submit(ExampleQuery query, double deadline_s);

  /// Submit + Wait, for callers without their own concurrency.
  ServedResult Serve(ExampleQuery query);

  /// Stops accepting new queries, serves everything already queued, joins
  /// the workers. Idempotent; also run by the destructor.
  void Shutdown();

  ServerStats stats() const;

  /// Atomically replaces the served snapshot. In-flight queries finish on
  /// the snapshot they dequeued with; queries dequeued afterwards run on
  /// `ver`. Cached results from earlier snapshots become unreachable (the
  /// cache key is epoch-prefixed) and are dropped eagerly. A null `ver` is
  /// rejected (returns false); swapping after Shutdown is a no-op.
  bool SwapSnapshot(std::shared_ptr<const Ver> ver);

  /// The currently served snapshot (for engine statistics, presentation
  /// sessions). Holding the returned pointer keeps that snapshot alive
  /// across later swaps — exactly the guarantee in-flight queries rely on.
  std::shared_ptr<const Ver> snapshot() const;

  const ServingOptions& options() const { return options_; }

 private:
  void ServeOne();
  void Finish(const std::shared_ptr<QueryTicket>& ticket, ServedResult out);

  ServingOptions options_;
  QueryCache cache_;

  // Guards the served snapshot, the submission queue, the accepting flag,
  // and pool submission (so Shutdown cannot destroy the pool under a
  // concurrent Submit).
  mutable std::mutex mu_;
  std::shared_ptr<const Ver> ver_;
  // Bumped per swap; prefixes cache keys so a result computed on an old
  // snapshot can never answer a query admitted after the swap.
  uint64_t snapshot_epoch_ = 0;
  std::deque<std::shared_ptr<QueryTicket>> queue_;
  bool accepting_ = true;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_ok_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> snapshot_swaps_{0};
};

}  // namespace ver

#endif  // VER_SERVING_VER_SERVER_H_
