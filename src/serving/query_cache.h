// LRU result cache for the serving layer, keyed by canonicalized requests.
//
// Keys are built by VerServer from the snapshot epoch plus
// DiscoveryRequest::CanonicalKey (api/discovery_request.h), which
// canonicalizes the query (sorted example values within each attribute,
// attribute order / duplicates / hints preserved) and appends every set
// override knob and the StopAfter bound — so two requests differing in any
// knob never alias. tests/serving_test.cc and tests/api_test.cc guard the
// invariance.

#ifndef VER_SERVING_QUERY_CACHE_H_
#define VER_SERVING_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "api/discovery_request.h"
#include "core/query.h"
#include "core/ver.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ver {

/// Thread-safe LRU map from canonical request key to a shared immutable
/// QueryResult (plus the response's early-termination flag, so a cached
/// StopAfter result reports the same truncation its original run did). A
/// hit returns the exact object a previous miss stored, so cached results
/// are trivially identical to the originals.
class QueryCache {
 public:
  /// `capacity` in entries; 0 disables the cache (every lookup misses,
  /// inserts are dropped).
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  /// The cached result for `key`, or null on miss. On a hit,
  /// `*early_terminated` (when non-null) receives the stored flag. Bumps
  /// the entry to most-recently-used and counts a hit/miss.
  std::shared_ptr<const QueryResult> Lookup(const std::string& key,
                                            bool* early_terminated = nullptr);

  /// Stores `result` under `key`, evicting the least-recently-used entry
  /// when full. Overwrites an existing entry for the same key.
  void Insert(const std::string& key,
              std::shared_ptr<const QueryResult> result,
              bool early_terminated = false);

  /// Drops every entry (snapshot hot-swap invalidation). Counters keep
  /// their cumulative values; dropped entries do not count as evictions.
  void Clear();

  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };
  Counters counters() const;

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryResult> result;
    bool early_terminated = false;
  };

  mutable Mutex mu_;
  const size_t capacity_;  // immutable after construction, needs no guard
  std::list<Entry> lru_ VER_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      VER_GUARDED_BY(mu_);
  Counters counters_ VER_GUARDED_BY(mu_);
};

}  // namespace ver

#endif  // VER_SERVING_QUERY_CACHE_H_
