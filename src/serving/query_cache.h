// LRU result cache for the serving layer, keyed by canonicalized queries.
//
// Canonicalization sorts the example values within each attribute but keeps
// attribute order, duplicates and hints. That is exactly the set of
// transformations the pipeline is invariant under: per-attribute hit counts
// (Algorithm 4) and overlap ranking both aggregate over examples
// order-independently, while duplicate examples and attribute order do
// change results. tests/serving_test.cc guards the invariance.

#ifndef VER_SERVING_QUERY_CACHE_H_
#define VER_SERVING_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/query.h"
#include "core/ver.h"

namespace ver {

/// Unambiguous cache key: attribute order and hints preserved, example
/// values sorted within each attribute, every string length-prefixed.
std::string CanonicalQueryKey(const ExampleQuery& query);

/// Thread-safe LRU map from canonical query key to a shared immutable
/// QueryResult. A hit returns the exact object a previous miss stored, so
/// cached results are trivially identical to the originals.
class QueryCache {
 public:
  /// `capacity` in entries; 0 disables the cache (every lookup misses,
  /// inserts are dropped).
  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  /// The cached result for `key`, or null on miss. Bumps the entry to
  /// most-recently-used and counts a hit/miss.
  std::shared_ptr<const QueryResult> Lookup(const std::string& key);

  /// Stores `result` under `key`, evicting the least-recently-used entry
  /// when full. Overwrites an existing entry for the same key.
  void Insert(const std::string& key,
              std::shared_ptr<const QueryResult> result);

  /// Drops every entry (snapshot hot-swap invalidation). Counters keep
  /// their cumulative values; dropped entries do not count as evictions.
  void Clear();

  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };
  Counters counters() const;

  size_t size() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const QueryResult>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Counters counters_;
};

}  // namespace ver

#endif  // VER_SERVING_QUERY_CACHE_H_
