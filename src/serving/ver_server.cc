#include "serving/ver_server.h"

#include <utility>

namespace ver {

namespace {

std::chrono::steady_clock::time_point DeadlineFromSeconds(double seconds) {
  if (seconds <= 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

VerServer::VerServer(const TableRepository* repo, VerConfig config,
                     ServingOptions options)
    : VerServer(
          [&] {
            // A server runs indefinitely; per-query spill directories must
            // not accumulate.
            config.cleanup_spilled_views = true;
            return std::make_shared<const Ver>(repo, std::move(config));
          }(),
          options) {}

VerServer::VerServer(std::shared_ptr<const Ver> ver, ServingOptions options)
    : options_(options), cache_(options.cache_capacity), ver_(std::move(ver)) {
  pool_ = std::make_unique<ThreadPool>(ResolveParallelism(options_.num_workers));
}

bool VerServer::SwapSnapshot(std::shared_ptr<const Ver> ver) {
  if (ver == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) return false;
    ver_ = std::move(ver);
    ++snapshot_epoch_;
  }
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Results computed on earlier snapshots are keyed under earlier epochs
  // and can never hit again; drop them now instead of waiting for LRU
  // eviction. A racing worker that finishes an old-snapshot query after
  // this point re-inserts under its old epoch key, which is merely dead
  // weight, never a stale answer.
  cache_.Clear();
  return true;
}

std::shared_ptr<const Ver> VerServer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ver_;
}

VerServer::~VerServer() { Shutdown(); }

std::shared_ptr<QueryTicket> VerServer::Submit(ExampleQuery query) {
  return Submit(std::move(query), options_.default_deadline_s);
}

std::shared_ptr<QueryTicket> VerServer::Submit(ExampleQuery query,
                                               double deadline_s) {
  std::shared_ptr<QueryTicket> ticket(new QueryTicket());
  ticket->query_ = std::move(query);
  ticket->submitted_at_ = std::chrono::steady_clock::now();
  ticket->deadline_ = DeadlineFromSeconds(deadline_s);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (!accepting_ || pool_ == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ServedResult out;
    out.status = Status::Unavailable("server is shut down");
    ticket->promise_.set_value(std::move(out));
    return ticket;
  }
  if (options_.max_queue_depth > 0 &&
      static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ServedResult out;
    out.status = Status::Unavailable("submission queue is full");
    ticket->promise_.set_value(std::move(out));
    return ticket;
  }
  queue_.push_back(ticket);
  pool_->Submit([this] { ServeOne(); });
  return ticket;
}

ServedResult VerServer::Serve(ExampleQuery query) {
  return Submit(std::move(query))->Wait();
}

void VerServer::Shutdown() {
  std::unique_ptr<ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    pool = std::move(pool_);
  }
  // The pool destructor runs every already-submitted ServeOne task, so all
  // queued tickets complete before Shutdown returns.
  pool.reset();
}

void VerServer::ServeOne() {
  std::shared_ptr<QueryTicket> ticket;
  std::shared_ptr<const Ver> snapshot;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;  // ticket served by an earlier task
    ticket = std::move(queue_.front());
    queue_.pop_front();
    // The snapshot is pinned at dequeue: this query runs to completion on
    // it even if SwapSnapshot replaces the served snapshot mid-run.
    snapshot = ver_;
    epoch = snapshot_epoch_;
  }

  auto started = std::chrono::steady_clock::now();
  ServedResult out;
  out.queue_wait_s =
      std::chrono::duration<double>(started - ticket->submitted_at_).count();
  auto finish = [&](ServedResult&& done) {
    done.run_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - started)
                     .count();
    Finish(ticket, std::move(done));
  };

  QueryControl control;
  control.deadline = ticket->deadline_;
  control.cancel = &ticket->cancel_;

  // Queries can expire or be cancelled while queued; fail them without
  // touching the cache counters.
  out.status = control.Check("serving");
  if (!out.status.ok()) {
    finish(std::move(out));
    return;
  }

  std::string key;
  if (options_.cache_capacity > 0) {
    // Epoch-prefixed key: entries computed on an older snapshot can never
    // answer a query dequeued after a swap.
    key = std::to_string(epoch) + "|" + CanonicalQueryKey(ticket->query_);
    if (std::shared_ptr<const QueryResult> cached = cache_.Lookup(key)) {
      out.result = std::move(cached);
      out.cache_hit = true;
      finish(std::move(out));
      return;
    }
  }

  Result<QueryResult> run = snapshot->RunQuery(ticket->query_, control);
  if (!run.ok()) {
    out.status = run.status();
    finish(std::move(out));
    return;
  }
  auto result =
      std::make_shared<const QueryResult>(std::move(run).value());
  if (options_.cache_capacity > 0) cache_.Insert(key, result);
  out.result = std::move(result);
  finish(std::move(out));
}

void VerServer::Finish(const std::shared_ptr<QueryTicket>& ticket,
                       ServedResult out) {
  if (out.status.ok()) {
    served_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  ticket->promise_.set_value(std::move(out));
}

ServerStats VerServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  QueryCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  return s;
}

}  // namespace ver
