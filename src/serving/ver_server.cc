#include "serving/ver_server.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace ver {

namespace {

std::chrono::steady_clock::time_point DeadlineFromSeconds(double seconds) {
  if (seconds <= 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

// Worker-side observer: counts delivered views into the ticket (so
// QueryTicket::views_delivered and Poll-based progress work) and forwards
// every event to the caller's observer, if any.
class TicketObserver : public QueryObserver {
 public:
  TicketObserver(std::atomic<int>* delivered, QueryObserver* user)
      : delivered_(delivered), user_(user) {}

  void OnStageStarted(PipelineStage stage) override {
    if (user_ != nullptr) user_->OnStageStarted(stage);
  }
  void OnStageFinished(PipelineStage stage, double elapsed_s) override {
    if (user_ != nullptr) user_->OnStageFinished(stage, elapsed_s);
  }
  void OnViewDelivered(const View& view, int delivery_index,
                       double elapsed_s) override {
    delivered_->fetch_add(1, std::memory_order_relaxed);
    if (user_ != nullptr) user_->OnViewDelivered(view, delivery_index, elapsed_s);
  }
  void OnFinished(const Status& status) override {
    if (user_ != nullptr) user_->OnFinished(status);
  }

 private:
  std::atomic<int>* delivered_;
  QueryObserver* user_;
};

}  // namespace

VerServer::VerServer(const TableRepository* repo, VerConfig config,
                     ServingOptions options)
    : VerServer(
          [&] {
            // A server runs indefinitely; per-query spill directories must
            // not accumulate.
            config.cleanup_spilled_views = true;
            return std::make_shared<const Ver>(repo, std::move(config));
          }(),
          options) {}

VerServer::VerServer(std::shared_ptr<const Ver> ver, ServingOptions options)
    : options_(options), cache_(options.cache_capacity), ver_(std::move(ver)) {
  pool_ = std::make_unique<ThreadPool>(ResolveParallelism(options_.num_workers));
}

bool VerServer::SwapSnapshot(std::shared_ptr<const Ver> ver) {
  if (ver == nullptr) return false;
  {
    MutexLock lock(&mu_);
    if (!accepting_) return false;
    ver_ = std::move(ver);
    const uint64_t prev_epoch = snapshot_epoch_;
    ++snapshot_epoch_;
    // The cache-correctness argument below hinges on epochs never reusing
    // a value; a wrapped counter would let an old snapshot's entry answer
    // a post-swap query.
    VER_CHECK(snapshot_epoch_ > prev_epoch) << "snapshot epoch overflowed";
  }
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Results computed on earlier snapshots are keyed under earlier epochs
  // and can never hit again; drop them now instead of waiting for LRU
  // eviction. A racing worker that finishes an old-snapshot query after
  // this point re-inserts under its old epoch key, which is merely dead
  // weight, never a stale answer.
  cache_.Clear();
  return true;
}

std::shared_ptr<const Ver> VerServer::snapshot() const {
  MutexLock lock(&mu_);
  return ver_;
}

VerServer::~VerServer() { Shutdown(); }

std::shared_ptr<QueryTicket> VerServer::Submit(DiscoveryRequest request,
                                               QueryObserver* observer) {
  std::shared_ptr<QueryTicket> ticket(new QueryTicket());
  ticket->request_ = std::move(request);
  ticket->observer_ = observer;
  ticket->submitted_at_ = std::chrono::steady_clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  auto reject = [&](Status status) {
    // OnFinished is the terminal event even for requests that never reach
    // a worker; it fires on the submitting thread here.
    if (observer != nullptr) observer->OnFinished(status);
    ServedResult out;
    out.status = std::move(status);
    ticket->promise_.set_value(std::move(out));
    return ticket;
  };

  // Validation happens at admission, before any queue slot is consumed —
  // the worker-side Execute would reject the same request, but failing
  // here keeps garbage out of the queue and the stats clean.
  Status valid = ticket->request_.Validate();
  if (!valid.ok()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return reject(std::move(valid));
  }

  // Resolve the effective deadline once, at submission: a positive
  // deadline_s wins, 0 (unset) falls back to the server default, negative
  // means explicitly none (suppresses the default); the earliest absolute
  // deadline wins overall. The ticket's cancel flag replaces any
  // caller-supplied pointer so QueryTicket::Cancel is the one knob.
  DiscoveryRequest& req = ticket->request_;
  double relative_s = req.deadline_s != 0 ? req.deadline_s
                                          : options_.default_deadline_s;
  auto relative = DeadlineFromSeconds(relative_s);
  if (relative < req.deadline) req.deadline = relative;
  req.deadline_s = 0;  // consumed; Execute sees the absolute deadline only
  req.cancel = &ticket->cancel_;

  // Admission decision under the lock; the reject path (which may call the
  // caller's observer) runs outside it.
  Status admit;
  {
    MutexLock lock(&mu_);
    if (!accepting_ || pool_ == nullptr) {
      admit = Status::Unavailable("server is shut down");
    } else if (options_.max_queue_depth > 0 &&
               static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      admit = Status::Unavailable("submission queue is full");
    } else {
      queue_.push_back(ticket);
      // Admission happens strictly under mu_, so an admitted request can
      // never push the queue past the configured bound.
      VER_DCHECK(options_.max_queue_depth <= 0 ||
                 static_cast<int>(queue_.size()) <= options_.max_queue_depth)
          << "queue depth " << queue_.size() << " exceeds bound "
          << options_.max_queue_depth;
      if (static_cast<int64_t>(queue_.size()) > peak_queue_depth_) {
        peak_queue_depth_ = static_cast<int64_t>(queue_.size());
      }
      pool_->Submit([this] { ServeOne(); });
    }
  }
  if (!admit.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return reject(std::move(admit));
  }

  // Request-shape counters cover admitted requests only.
  if (req.overrides.any()) {
    requests_with_overrides_.fetch_add(1, std::memory_order_relaxed);
    for (int k = 0; k < RequestOverrides::kNumKnobs; ++k) {
      if (req.overrides.knob_set(k)) {
        override_uses_[static_cast<size_t>(k)].fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }
  if (req.stop_after > 0) {
    requests_streaming_.fetch_add(1, std::memory_order_relaxed);
  }
  return ticket;
}

ServedResult VerServer::Serve(DiscoveryRequest request) {
  return Submit(std::move(request))->Wait();
}

void VerServer::Shutdown() {
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(&mu_);
    accepting_ = false;
    pool = std::move(pool_);
  }
  // The pool destructor runs every already-submitted ServeOne task, so all
  // queued tickets complete before Shutdown returns.
  pool.reset();
}

void VerServer::ServeOne() {
  std::shared_ptr<QueryTicket> ticket;
  std::shared_ptr<const Ver> snapshot;
  uint64_t epoch;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return;  // ticket served by an earlier task
    ticket = std::move(queue_.front());
    queue_.pop_front();
    // The snapshot is pinned at dequeue: this query runs to completion on
    // it even if SwapSnapshot replaces the served snapshot mid-run.
    snapshot = ver_;
    epoch = snapshot_epoch_;
  }
  VER_DCHECK(ticket != nullptr) << "null ticket admitted to queue";
  VER_DCHECK(snapshot != nullptr) << "serving with no snapshot installed";

  auto started = std::chrono::steady_clock::now();
  ServedResult out;
  out.queue_wait_s =
      std::chrono::duration<double>(started - ticket->submitted_at_).count();
  auto finish = [&](ServedResult&& done) {
    done.views_delivered =
        ticket->views_delivered_.load(std::memory_order_relaxed);
    done.run_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - started)
                     .count();
    Finish(ticket, std::move(done));
  };

  const DiscoveryRequest& request = ticket->request_;
  TicketObserver observer(&ticket->views_delivered_, ticket->observer_);

  // Requests can expire or be cancelled while queued; fail them without
  // touching the cache counters.
  {
    QueryControl control;
    control.deadline = request.deadline;
    control.cancel = request.cancel;
    out.status = control.Check("serving");
    if (!out.status.ok()) {
      observer.OnFinished(out.status);
      finish(std::move(out));
      return;
    }
  }

  // Candidate-based requests are never cached: their candidate columns are
  // not part of the canonical key.
  const bool cacheable = options_.cache_capacity > 0 && !request.from_candidates;
  std::string key;
  if (cacheable) {
    // Epoch-prefixed key: entries computed on an older snapshot can never
    // answer a query dequeued after a swap.
    key = std::to_string(epoch) + "|" + request.CanonicalKey();
    bool cached_early_terminated = false;
    if (std::shared_ptr<const QueryResult> cached =
            cache_.Lookup(key, &cached_early_terminated)) {
      // Re-deliver the cached surviving views (final order, no stage
      // events) so a streaming client still receives every view the
      // result contains before OnFinished.
      for (int idx : cached->distillation.surviving) {
        observer.OnViewDelivered(
            cached->views[static_cast<size_t>(idx)],
            ticket->views_delivered_.load(std::memory_order_relaxed),
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count());
      }
      observer.OnFinished(Status::OK());
      out.result = std::move(cached);
      out.cache_hit = true;
      // A cached StopAfter result reports the truncation its original run
      // observed — a hit must be indistinguishable from a re-run.
      out.early_terminated = cached_early_terminated;
      finish(std::move(out));
      return;
    }
  }

  DiscoveryResponse response = snapshot->Execute(request, &observer);
  if (!response.status.ok()) {
    out.status = std::move(response.status);
    finish(std::move(out));
    return;
  }
  out.early_terminated = response.early_terminated;
  auto result =
      std::make_shared<const QueryResult>(std::move(response.result));
  if (cacheable) cache_.Insert(key, result, response.early_terminated);
  out.result = std::move(result);
  finish(std::move(out));
}

void VerServer::Finish(const std::shared_ptr<QueryTicket>& ticket,
                       ServedResult out) {
  if (out.status.ok()) {
    served_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  ticket->promise_.set_value(std::move(out));
}

ServerStats VerServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  s.requests_with_overrides =
      requests_with_overrides_.load(std::memory_order_relaxed);
  s.requests_streaming = requests_streaming_.load(std::memory_order_relaxed);
  for (int k = 0; k < RequestOverrides::kNumKnobs; ++k) {
    s.override_uses[static_cast<size_t>(k)] =
        override_uses_[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  }
  QueryCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  {
    MutexLock lock(&mu_);
    s.current_queue_depth = static_cast<int64_t>(queue_.size());
    s.peak_queue_depth = peak_queue_depth_;
  }
  return s;
}

}  // namespace ver
