#include "serving/ver_server.h"

#include <iterator>
#include <utility>

#include "util/check.h"

namespace ver {

namespace {

std::chrono::steady_clock::time_point DeadlineFromSeconds(double seconds) {
  if (seconds <= 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Worker-side observer: counts delivered views into the ticket (so
// QueryTicket::views_delivered and Poll-based progress work) and forwards
// every event to the caller's observer, if any.
class TicketObserver : public QueryObserver {
 public:
  TicketObserver(std::atomic<int>* delivered, QueryObserver* user)
      : delivered_(delivered), user_(user) {}

  void OnStageStarted(PipelineStage stage) override {
    if (user_ != nullptr) user_->OnStageStarted(stage);
  }
  void OnStageFinished(PipelineStage stage, double elapsed_s) override {
    if (user_ != nullptr) user_->OnStageFinished(stage, elapsed_s);
  }
  void OnViewDelivered(const View& view, int delivery_index,
                       double elapsed_s) override {
    delivered_->fetch_add(1, std::memory_order_relaxed);
    if (user_ != nullptr) user_->OnViewDelivered(view, delivery_index, elapsed_s);
  }
  void OnFinished(const Status& status) override {
    if (user_ != nullptr) user_->OnFinished(status);
  }

 private:
  std::atomic<int>* delivered_;
  QueryObserver* user_;
};

}  // namespace

VerServer::VerServer(const TableRepository* repo, VerConfig config,
                     ServingOptions options)
    : VerServer(
          [&] {
            // A server runs indefinitely; per-query spill directories must
            // not accumulate.
            config.cleanup_spilled_views = true;
            return std::make_shared<const Ver>(repo, std::move(config));
          }(),
          options) {}

VerServer::VerServer(std::shared_ptr<const Ver> ver, ServingOptions options)
    : options_(std::move(options)),
      resolved_workers_(ResolveParallelism(options_.num_workers)),
      cache_(options_.cache_capacity),
      ver_(std::move(ver)) {
  MutexLock lock(&mu_);
  pool_ = std::make_unique<ThreadPool>(resolved_workers_);
  if (ver_ != nullptr) {
    shard_swap_epochs_.assign(
        static_cast<size_t>(ver_->engine().num_shards()), 0);
    retired_shard_counters_.resize(shard_swap_epochs_.size());
  }
}

bool VerServer::SwapSnapshot(std::shared_ptr<const Ver> ver) {
  return SwapSnapshotInternal(std::move(ver), /*swapped_shard=*/-1);
}

bool VerServer::SwapSnapshot(std::shared_ptr<const Ver> ver,
                             int swapped_shard) {
  if (ver == nullptr || swapped_shard < 0 ||
      swapped_shard >= ver->engine().num_shards()) {
    return false;
  }
  return SwapSnapshotInternal(std::move(ver), swapped_shard);
}

bool VerServer::SwapSnapshotInternal(std::shared_ptr<const Ver> ver,
                                     int swapped_shard) {
  if (ver == nullptr) return false;
  {
    MutexLock lock(&mu_);
    if (!accepting_) return false;
    // Bank the outgoing snapshot's scatter counters so stats().shards
    // stays cumulative across swaps (the incoming engine's counters start
    // at zero).
    if (ver_ != nullptr) {
      std::vector<DiscoveryEngine::ShardCounterSnapshot> outgoing =
          ver_->engine().shard_counters();
      if (retired_shard_counters_.size() < outgoing.size()) {
        retired_shard_counters_.resize(outgoing.size());
      }
      for (size_t s = 0; s < outgoing.size(); ++s) {
        retired_shard_counters_[s].scatter_queries +=
            outgoing[s].scatter_queries;
        retired_shard_counters_[s].candidates += outgoing[s].candidates;
      }
    }
    ver_ = std::move(ver);
    const size_t num_shards =
        static_cast<size_t>(ver_->engine().num_shards());
    shard_swap_epochs_.resize(num_shards, 0);
    if (retired_shard_counters_.size() < num_shards) {
      retired_shard_counters_.resize(num_shards);
    }
    if (swapped_shard >= 0) {
      ++shard_swap_epochs_[static_cast<size_t>(swapped_shard)];
    } else {
      for (uint64_t& e : shard_swap_epochs_) ++e;
    }
    const uint64_t prev_epoch = snapshot_epoch_;
    ++snapshot_epoch_;
    // The cache-correctness argument below hinges on epochs never reusing
    // a value; a wrapped counter would let an old snapshot's entry answer
    // a post-swap query.
    VER_CHECK(snapshot_epoch_ > prev_epoch) << "snapshot epoch overflowed";
  }
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Results computed on earlier snapshots are keyed under earlier epochs
  // and can never hit again; drop them now instead of waiting for LRU
  // eviction. A racing worker that finishes an old-snapshot query after
  // this point re-inserts under its old epoch key, which is merely dead
  // weight, never a stale answer. (Single-flight groups need no such
  // sweep: their leader always extracts them, whatever the epoch.)
  cache_.Clear();
  return true;
}

std::shared_ptr<const Ver> VerServer::snapshot() const {
  MutexLock lock(&mu_);
  return ver_;
}

VerServer::~VerServer() { Shutdown(); }

std::shared_ptr<QueryTicket> VerServer::Submit(DiscoveryRequest request,
                                               QueryObserver* observer) {
  std::shared_ptr<QueryTicket> ticket(new QueryTicket());
  ticket->request_ = std::move(request);
  ticket->observer_ = observer;
  ticket->submitted_at_ = std::chrono::steady_clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  auto reject = [&](Status status) {
    // OnFinished is the terminal event even for requests that never reach
    // a worker; it fires on the submitting thread here.
    if (observer != nullptr) observer->OnFinished(status);
    ServedResult out;
    out.status = std::move(status);
    ticket->promise_.set_value(std::move(out));
    return ticket;
  };

  // Validation happens at admission, before any queue slot is consumed —
  // the worker-side Execute would reject the same request, but failing
  // here keeps garbage out of the queue and the stats clean.
  Status valid = ticket->request_.Validate();
  if (!valid.ok()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return reject(std::move(valid));
  }

  // Resolve the effective deadline once, at submission: a positive
  // deadline_s wins, 0 (unset) falls back to the server default, negative
  // means explicitly none (suppresses the default); the earliest absolute
  // deadline wins overall. The ticket's cancel flag replaces any
  // caller-supplied pointer so QueryTicket::Cancel is the one knob.
  DiscoveryRequest& req = ticket->request_;
  double relative_s = req.deadline_s != 0 ? req.deadline_s
                                          : options_.default_deadline_s;
  auto relative = DeadlineFromSeconds(relative_s);
  if (relative < req.deadline) req.deadline = relative;
  req.deadline_s = 0;  // consumed; Execute sees the absolute deadline only
  req.cancel = &ticket->cancel_;

  // Admission decision under the lock; the reject path (which may call the
  // caller's observer) runs outside it.
  Status admit;
  bool shed_on_deadline = false;
  {
    MutexLock lock(&mu_);
    if (!accepting_ || pool_ == nullptr) {
      admit = Status::Unavailable("server is shut down");
    } else if (options_.max_queue_depth > 0 &&
               static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      admit = Status::Unavailable("submission queue is full");
    } else {
      // Predictive shedding: even if every queued request ahead finishes in
      // one EWMA pipeline time spread across all workers (optimistic — it
      // ignores requests already running), this request would start too
      // late to finish by its deadline. Rejecting now costs the client one
      // round trip; admitting it costs a queue slot *and* a guaranteed
      // DeadlineExceeded later.
      const double ewma = ewma_run_s_.load(std::memory_order_relaxed);
      if (options_.predictive_deadline_shedding && ewma > 0 &&
          req.deadline != std::chrono::steady_clock::time_point::max()) {
        const double estimated_done_s =
            ewma * (static_cast<double>(queue_.size()) / resolved_workers_ +
                    1.0);
        if (std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(estimated_done_s)) >
            req.deadline) {
          admit = Status::Unavailable(
              "shed: deadline unreachable at current queue depth");
          shed_on_deadline = true;
        }
      }
      if (admit.ok()) {
        QueuedTicket entry;
        // FIFO mode ignores deadlines for ordering by keying everything
        // max(); dispatch then degrades to pure admission sequence.
        entry.deadline =
            options_.deadline_ordered_queue
                ? req.deadline
                : std::chrono::steady_clock::time_point::max();
        entry.seq = next_seq_++;
        entry.ticket = ticket;
        queue_.insert(std::move(entry));
        // Admission happens strictly under mu_, so an admitted request can
        // never push the queue past the configured bound.
        VER_DCHECK(options_.max_queue_depth <= 0 ||
                   static_cast<int>(queue_.size()) <=
                       options_.max_queue_depth)
            << "queue depth " << queue_.size() << " exceeds bound "
            << options_.max_queue_depth;
        if (static_cast<int64_t>(queue_.size()) > peak_queue_depth_) {
          peak_queue_depth_ = static_cast<int64_t>(queue_.size());
        }
        pool_->Submit([this] { ServeOne(); });
      }
    }
  }
  if (!admit.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (shed_on_deadline) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    }
    return reject(std::move(admit));
  }

  // Request-shape counters cover admitted requests only.
  if (req.overrides.any()) {
    requests_with_overrides_.fetch_add(1, std::memory_order_relaxed);
    for (int k = 0; k < RequestOverrides::kNumKnobs; ++k) {
      if (req.overrides.knob_set(k)) {
        override_uses_[static_cast<size_t>(k)].fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }
  if (req.stop_after > 0) {
    requests_streaming_.fetch_add(1, std::memory_order_relaxed);
  }
  return ticket;
}

ServedResult VerServer::Serve(DiscoveryRequest request) {
  return Submit(std::move(request))->Wait();
}

void VerServer::Shutdown() {
  std::unique_ptr<ThreadPool> pool;
  {
    MutexLock lock(&mu_);
    accepting_ = false;
    pool = std::move(pool_);
  }
  // The pool destructor runs every already-submitted ServeOne task, so all
  // queued tickets (and the followers attached to in-flight leaders)
  // complete before Shutdown returns.
  pool.reset();
}

std::vector<VerServer::FlightFollower> VerServer::TakeFollowers(
    const std::string& key) {
  MutexLock lock(&mu_);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return {};
  std::vector<FlightFollower> followers = std::move(it->second->followers);
  inflight_.erase(it);
  return followers;
}

void VerServer::ServeOne() {
  std::shared_ptr<QueryTicket> ticket;
  std::shared_ptr<const Ver> snapshot;
  uint64_t epoch;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return;  // ticket served by an earlier task
    // begin() is the earliest effective deadline (admission order among
    // ties) — the deadline-aware dispatch policy.
    auto it = queue_.begin();
    ticket = it->ticket;
    queue_.erase(it);
    // The snapshot is pinned at dequeue: this query runs to completion on
    // it even if SwapSnapshot replaces the served snapshot mid-run.
    snapshot = ver_;
    epoch = snapshot_epoch_;
  }
  VER_DCHECK(ticket != nullptr) << "null ticket admitted to queue";
  VER_DCHECK(snapshot != nullptr) << "serving with no snapshot installed";
  if (options_.hooks.after_dequeue) options_.hooks.after_dequeue();

  const auto started = std::chrono::steady_clock::now();
  const double queue_wait_s =
      std::chrono::duration<double>(started - ticket->submitted_at_).count();
  queue_wait_recorder_.Record(queue_wait_s);

  const DiscoveryRequest& request = ticket->request_;

  // Requests can expire or be cancelled while queued; fail them without
  // touching the cache counters.
  {
    QueryControl control;
    control.deadline = request.deadline;
    control.cancel = request.cancel;
    Status status = control.Check("serving");
    if (!status.ok()) {
      TicketObserver observer(&ticket->views_delivered_, ticket->observer_);
      observer.OnFinished(status);
      ServedResult out;
      out.status = std::move(status);
      out.queue_wait_s = queue_wait_s;
      out.run_s = SecondsSince(started);
      Finish(ticket, std::move(out));
      return;
    }
  }

  // Candidate-based requests are never cached or coalesced: their
  // candidate columns are not part of the canonical key.
  const bool cacheable =
      options_.cache_capacity > 0 && !request.from_candidates;
  const bool coalescible = options_.single_flight && !request.from_candidates;
  std::string key;
  if (cacheable || coalescible) {
    // Epoch-prefixed key: entries computed on an older snapshot can never
    // answer (or absorb) a query dequeued after a swap.
    key = std::to_string(epoch) + "|" + request.CanonicalKey();
  }

  if (cacheable) {
    bool cached_early_terminated = false;
    if (std::shared_ptr<const QueryResult> cached =
            cache_.Lookup(key, &cached_early_terminated)) {
      // Re-deliver the cached surviving views (final order, no stage
      // events) so a streaming client still receives every view the
      // result contains before OnFinished.
      TicketObserver observer(&ticket->views_delivered_, ticket->observer_);
      for (int idx : cached->distillation.surviving) {
        observer.OnViewDelivered(
            cached->views[static_cast<size_t>(idx)],
            ticket->views_delivered_.load(std::memory_order_relaxed),
            SecondsSince(started));
      }
      observer.OnFinished(Status::OK());
      ServedResult out;
      out.result = std::move(cached);
      out.cache_hit = true;
      // A cached StopAfter result reports the truncation its original run
      // observed — a hit must be indistinguishable from a re-run.
      out.early_terminated = cached_early_terminated;
      out.queue_wait_s = queue_wait_s;
      out.run_s = SecondsSince(started);
      out.views_delivered =
          ticket->views_delivered_.load(std::memory_order_relaxed);
      Finish(ticket, std::move(out));
      return;
    }
  }

  if (coalescible) {
    // Single flight: if an identical request is already executing, park
    // this one on its group and free the worker; otherwise register as the
    // leader. Registration and attachment are both under mu_, so a ticket
    // either attaches before the leader extracts the group (and is
    // completed by the leader) or finds no group and leads itself.
    int followers_now = 0;
    {
      MutexLock lock(&mu_);
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        it->second->followers.push_back(FlightFollower{ticket, queue_wait_s});
        followers_now = static_cast<int>(it->second->followers.size());
      } else {
        inflight_.emplace(key, std::make_shared<FlightGroup>());
      }
    }
    if (followers_now > 0) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (options_.hooks.on_follower_attached) {
        options_.hooks.on_follower_attached(followers_now);
      }
      return;
    }
  }

  RunAsLeader(std::move(ticket), queue_wait_s, snapshot, key, coalescible,
              cacheable);
}

void VerServer::RunAsLeader(std::shared_ptr<QueryTicket> leader,
                            double queue_wait_s,
                            const std::shared_ptr<const Ver>& snapshot,
                            const std::string& key, bool coalescible,
                            bool cacheable) {
  // Followers extracted so far and still awaiting an outcome. Extraction
  // happens after every execution attempt, so followers that attach while
  // a promoted leader runs are still picked up.
  std::vector<FlightFollower> pending;
  for (;;) {
    TicketObserver observer(&leader->views_delivered_, leader->observer_);
    const DiscoveryRequest& request = leader->request_;
    if (options_.hooks.before_execute) options_.hooks.before_execute(request);
    pipeline_executions_.fetch_add(1, std::memory_order_relaxed);
    const auto run_started = std::chrono::steady_clock::now();
    DiscoveryResponse response = snapshot->Execute(request, &observer);
    const double run_s = SecondsSince(run_started);
    pipeline_recorder_.Record(run_s);
    // EWMA of pipeline time feeding the predictive-shedding estimate.
    // alpha=0.2: smooth enough to ride per-query noise, fresh enough to
    // track load shifts. Plain load/store — a lost update skews one
    // estimate, nothing more.
    const double prev = ewma_run_s_.load(std::memory_order_relaxed);
    ewma_run_s_.store(prev <= 0 ? run_s : 0.8 * prev + 0.2 * run_s,
                      std::memory_order_relaxed);

    if (coalescible) {
      std::vector<FlightFollower> attached = TakeFollowers(key);
      pending.insert(pending.end(),
                     std::make_move_iterator(attached.begin()),
                     std::make_move_iterator(attached.end()));
    }

    if (response.status.ok()) {
      auto result =
          std::make_shared<const QueryResult>(std::move(response.result));
      if (cacheable) cache_.Insert(key, result, response.early_terminated);
      ServedResult out;
      out.result = result;
      out.early_terminated = response.early_terminated;
      out.queue_wait_s = queue_wait_s;
      out.run_s = run_s;
      out.views_delivered =
          leader->views_delivered_.load(std::memory_order_relaxed);
      Finish(leader, std::move(out));
      for (const FlightFollower& follower : pending) {
        FinishFollower(follower, result, response.early_terminated);
      }
      return;
    }

    // The leader failed. Deadline/cancellation are *this ticket's* fate,
    // not the query's — promote a follower below. Any other status is a
    // deterministic property of the request and is shared by every
    // identical follower.
    const bool leader_specific = response.status.IsCancelled() ||
                                 response.status.IsDeadlineExceeded();
    ServedResult out;
    out.status = response.status;
    out.queue_wait_s = queue_wait_s;
    out.run_s = run_s;
    out.views_delivered =
        leader->views_delivered_.load(std::memory_order_relaxed);
    Finish(leader, std::move(out));

    if (!leader_specific) {
      for (const FlightFollower& follower : pending) {
        TicketObserver follower_observer(&follower.ticket->views_delivered_,
                                         follower.ticket->observer_);
        follower_observer.OnFinished(response.status);
        ServedResult follower_out;
        follower_out.status = response.status;
        follower_out.coalesced = true;
        follower_out.queue_wait_s = follower.queue_wait_s;
        Finish(follower.ticket, std::move(follower_out));
      }
      return;
    }

    // Promotion: the first follower whose own deadline/cancellation has
    // not fired re-runs the query (on this worker, same pinned snapshot)
    // and inherits the remaining followers — a dead leader never poisons
    // the group. Followers already past their own control fail with their
    // own status.
    std::shared_ptr<QueryTicket> promoted;
    double promoted_wait_s = 0;
    while (!pending.empty() && promoted == nullptr) {
      FlightFollower follower = std::move(pending.front());
      pending.erase(pending.begin());
      QueryControl control;
      control.deadline = follower.ticket->request_.deadline;
      control.cancel = follower.ticket->request_.cancel;
      Status follower_status = control.Check("serving");
      if (follower_status.ok()) {
        promoted = follower.ticket;
        promoted_wait_s = follower.queue_wait_s;
      } else {
        TicketObserver follower_observer(&follower.ticket->views_delivered_,
                                         follower.ticket->observer_);
        follower_observer.OnFinished(follower_status);
        ServedResult follower_out;
        follower_out.status = std::move(follower_status);
        follower_out.coalesced = true;
        follower_out.queue_wait_s = follower.queue_wait_s;
        Finish(follower.ticket, std::move(follower_out));
      }
    }
    if (promoted == nullptr) return;
    leader = std::move(promoted);
    queue_wait_s = promoted_wait_s;
  }
}

void VerServer::FinishFollower(
    const FlightFollower& follower,
    const std::shared_ptr<const QueryResult>& result, bool early_terminated) {
  // Same contract as a cache hit: the surviving views in final order (no
  // stage events — this ticket's pipeline never ran), then OnFinished.
  TicketObserver observer(&follower.ticket->views_delivered_,
                          follower.ticket->observer_);
  const auto delivery_started = std::chrono::steady_clock::now();
  for (int idx : result->distillation.surviving) {
    observer.OnViewDelivered(
        result->views[static_cast<size_t>(idx)],
        follower.ticket->views_delivered_.load(std::memory_order_relaxed),
        SecondsSince(delivery_started));
  }
  observer.OnFinished(Status::OK());
  ServedResult out;
  out.result = result;
  out.coalesced = true;
  out.early_terminated = early_terminated;
  out.queue_wait_s = follower.queue_wait_s;
  out.views_delivered =
      follower.ticket->views_delivered_.load(std::memory_order_relaxed);
  Finish(follower.ticket, std::move(out));
}

void VerServer::Finish(const std::shared_ptr<QueryTicket>& ticket,
                       ServedResult out) {
  if (out.status.ok()) {
    served_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (out.status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  // End-to-end latency covers every worker-completed request; Submit-time
  // rejects never reach here (shedding is the point of the tail policy,
  // so shed requests must not dilute the served distribution).
  total_recorder_.Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ticket->submitted_at_)
          .count());
  ticket->promise_.set_value(std::move(out));
}

ServerStats VerServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served_ok = served_ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.pipeline_executions =
      pipeline_executions_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  s.requests_with_overrides =
      requests_with_overrides_.load(std::memory_order_relaxed);
  s.requests_streaming = requests_streaming_.load(std::memory_order_relaxed);
  for (int k = 0; k < RequestOverrides::kNumKnobs; ++k) {
    s.override_uses[static_cast<size_t>(k)] =
        override_uses_[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  }
  QueryCache::Counters c = cache_.counters();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  s.queue_wait = queue_wait_recorder_.Snapshot();
  s.pipeline = pipeline_recorder_.Snapshot();
  s.total = total_recorder_.Snapshot();
  std::shared_ptr<const Ver> snap;
  std::vector<uint64_t> shard_epochs;
  std::vector<ServerStats::ShardStats> retired;
  {
    MutexLock lock(&mu_);
    s.current_queue_depth = static_cast<int64_t>(queue_.size());
    s.peak_queue_depth = peak_queue_depth_;
    snap = ver_;
    shard_epochs = shard_swap_epochs_;
    retired = retired_shard_counters_;
  }
  if (snap != nullptr) {
    std::vector<DiscoveryEngine::ShardCounterSnapshot> live =
        snap->engine().shard_counters();
    s.shards.resize(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      s.shards[i].scatter_queries = live[i].scatter_queries;
      s.shards[i].candidates = live[i].candidates;
      if (i < retired.size()) {
        s.shards[i].scatter_queries += retired[i].scatter_queries;
        s.shards[i].candidates += retired[i].candidates;
      }
      if (i < shard_epochs.size()) s.shards[i].swap_epoch = shard_epochs[i];
    }
  }
  if (snap != nullptr && snap->engine().pager() != nullptr) {
    const PagerRuntime& pager = *snap->engine().pager();
    BufferPoolStats ps = pager.pool_stats();
    s.paged = true;
    s.pool_budget_bytes = pager.pool()->memory_budget_bytes();
    s.pool_resident_bytes = ps.resident_bytes;
    s.pool_peak_resident_bytes = ps.peak_resident_bytes;
    s.pool_hits = ps.hits;
    s.pool_misses = ps.misses;
    s.pool_evictions = ps.evictions;
  }
  return s;
}

}  // namespace ver
