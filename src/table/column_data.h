// ColumnData: the typed columnar cell store behind Table.
//
// The seed data model kept every cell as a fat Value variant (tag + int64 +
// double + std::string, ~48 bytes before heap), so tables were
// vector<vector<Value>> and every hot loop — MinHash profiling, join
// hashing, row hashing, snapshot serde — chased pointers and re-hashed
// strings. ColumnData stores one column in one of four typed encodings:
//
//   kInt64    null bitmap + vector<int64_t>            (all non-null ints)
//   kDouble   null bitmap + vector<double>             (all non-null doubles)
//   kNumeric  null bitmap + payload words + int-tag    (ints mixed with
//             bitmap (bit set = cell is an int)         doubles, bit-exact)
//   kDict     null bitmap + uint32 codes over a         (any column holding
//             per-column dictionary of distinct cells    strings; noisy
//             backed by a string arena                   mixed cells too)
//
// A column starts as kInt64 and promotes itself as appended cells demand
// (int -> double -> numeric -> dict); promotion re-encodes the existing
// rows once, so ingest stays append-only. Dictionary entries carry a
// cached Value-compatible hash, which is what makes profiling and join
// hashing run on codes instead of re-hashing strings.
//
// CellView is the zero-copy read path: a 16-byte (type tag + payload)
// view whose Hash(), Compare() and ToText() are bit-identical to Value's,
// with string payloads viewing the column arena. Views are invalidated by
// any subsequent mutation of the column, like vector iterators.

#ifndef VER_TABLE_COLUMN_DATA_H_
#define VER_TABLE_COLUMN_DATA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pager/paged_view.h"
#include "table/value.h"
#include "util/check.h"
#include "util/serde.h"

namespace ver {

/// Physical layout of one column; see the file comment for the lattice.
enum class ColumnEncoding : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kNumeric = 2,
  kDict = 3,
};

const char* ColumnEncodingToString(ColumnEncoding e);

/// A 16-byte non-owning view of one cell. Total order, hashing and text
/// rendering agree bit-for-bit with Value; string payloads point into the
/// owning column's arena (or a Value's storage) and stay valid until that
/// owner is mutated or destroyed.
class CellView {
 public:
  CellView() : int_(0), len_(0), type_(ValueType::kNull) {}

  static CellView Null() { return CellView(); }
  static CellView Int(int64_t v) {
    CellView out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static CellView Double(double v) {
    CellView out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static CellView String(std::string_view s) {
    CellView out;
    out.type_ = ValueType::kString;
    out.str_ = s.data();
    out.len_ = static_cast<uint32_t>(s.size());
    return out;
  }
  /// Views `v` without copying; for string values the view borrows the
  /// Value's buffer and must not outlive it.
  static CellView Of(const Value& v);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble;
  }

  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == ValueType::kInt ? static_cast<double>(int_) : double_;
  }
  std::string_view AsStringView() const { return {str_, len_}; }

  /// Materializes an owning Value (the legacy boundary type).
  Value ToValue() const;

  /// Canonical textual form; identical to Value::ToText().
  std::string ToText() const;

  /// Appends ToText() to *out without building a temporary string (ints
  /// render via to_chars) — the scratch-buffer form for scan loops.
  void AppendTextTo(std::string* out) const;

  /// Stable 64-bit hash; identical to Value::Hash() for the same cell.
  uint64_t Hash() const;

  /// Total order: null < numerics (by numeric value) < strings; identical
  /// to Value::Compare() for the same cells.
  int Compare(const CellView& other) const;

  bool operator==(const CellView& other) const { return Compare(other) == 0; }
  bool operator!=(const CellView& other) const { return Compare(other) != 0; }
  bool operator<(const CellView& other) const { return Compare(other) < 0; }

 private:
  union {
    int64_t int_;
    double double_;
    const char* str_;
  };
  uint32_t len_;
  ValueType type_;
};

static_assert(sizeof(CellView) == 16, "CellView must stay 16 bytes");

/// Hash-bucketed row dedup with exact cell confirmation on collisions —
/// the one distinct-row algorithm shared by Table::Project and the
/// materializer's projection, so the two "bit-identical" paths cannot
/// diverge. Rows are identified by an opaque token; `cell_at(token, c)`
/// returns the c-th projected cell of that row.
class RowDeduper {
 public:
  /// Returns true (and records the token) when the row is new; false when
  /// an equal row was inserted before. `row_hash` must be the combined
  /// hash of exactly the cells `cell_at` exposes.
  template <typename CellAt>
  bool Insert(uint64_t row_hash, int64_t token, int num_cells,
              const CellAt& cell_at) {
    std::vector<int64_t>& kept = seen_[row_hash];
    for (int64_t prev : kept) {
      bool equal = true;
      for (int c = 0; c < num_cells; ++c) {
        if (cell_at(prev, c).Compare(cell_at(token, c)) != 0) {
          equal = false;
          break;
        }
      }
      if (equal) return false;
    }
    kept.push_back(token);
    return true;
  }

 private:
  std::unordered_map<uint64_t, std::vector<int64_t>> seen_;
};

/// One typed column. Append-only during ingest (Append / Reserve), then
/// read through cell()/CellHash(). Seal() sorts the dictionary and drops
/// the intern map once loading is done; appending to a sealed column
/// transparently unseals it.
class ColumnData {
 public:
  int64_t size() const { return num_rows_; }
  ColumnEncoding encoding() const { return enc_; }
  bool is_dict() const { return enc_ == ColumnEncoding::kDict; }
  bool sealed() const { return sealed_; }

  /// Pre-allocates for `rows` total rows so appends never reallocate.
  void Reserve(int64_t rows);

  void Append(const Value& v) { Append(CellView::Of(v)); }
  void Append(const CellView& v);

  /// Zero-copy read of one cell.
  CellView cell(int64_t row) const;
  /// Materialized legacy read.
  Value value(int64_t row) const { return cell(row).ToValue(); }
  /// Value-compatible hash of one cell; dictionary columns return the
  /// cached entry hash without touching string bytes.
  uint64_t CellHash(int64_t row) const;
  bool is_null(int64_t row) const {
    VER_DCHECK(row >= 0 && row < num_rows_)
        << "row " << row << " outside column of " << num_rows_;
    return (valid_words_[static_cast<size_t>(row) >> 6] &
            (uint64_t{1} << (row & 63))) == 0;
  }

  // Blocked hash kernels (util/simd.h): the scan-shaped bulk forms of
  // CellHash(), bit-identical to the per-row calls at every dispatch level.

  /// Row-hash accumulation: acc[i] = HashCombine(acc[i], CellHash(i)) for
  /// i < n (n <= size()). The column-major building block behind
  /// Table::AllRowHashes — cell hashes are staged through a stack block
  /// straight off the typed payload arrays, no CellView materialized.
  void CombineCellHashesInto(uint64_t* acc, int64_t n) const;

  /// Gathered variant over explicit row numbers:
  /// acc[i] = HashCombine(acc[i], CellHash(rows[i])) for i < n. Serves
  /// projection-shaped scans (a subset of rows in arbitrary order).
  void CombineCellHashesInto(uint64_t* acc, const int64_t* rows,
                             int64_t n) const;

  /// Bulk per-cell hashing: out[i] = CellHash(i) for i < n (n <= size()).
  /// Null rows hash to kNullValueHash, exactly like CellHash().
  void CellHashesInto(uint64_t* out, int64_t n) const;

  /// The validity bitmap words (bit (row & 63) of word (row >> 6) set =
  /// non-null); (size() + 63) / 64 words. Lets bulk consumers (hash-join
  /// build, kernels) test nulls without per-row calls.
  const uint64_t* validity_words() const { return valid_words_.data(); }

  // Type tallies over appended cells (non-null cells tally under their
  // type). O(1): maintained during Append.
  int64_t null_count() const { return num_nulls_; }
  int64_t int_count() const { return num_ints_; }
  int64_t double_count() const { return num_doubles_; }
  int64_t string_count() const { return num_strings_; }

  /// Deduplicated hashes of the distinct non-null cells, sorted ascending
  /// (sort+unique over a contiguous hash array — cheaper than the old
  /// unordered_set build and deterministic across layouts for free).
  /// Dictionary columns answer from cached entry hashes without scanning
  /// rows.
  std::vector<uint64_t> DistinctHashes() const;

  /// Number of distinct cell hashes, optionally counting null as a value
  /// (the Table::DistinctCount semantics). One set pass.
  int64_t DistinctCount(bool count_null) const;

  /// Visits every distinct non-null cell at least once: dictionary columns
  /// visit each entry exactly once with no row scan; other encodings visit
  /// all non-null cells (callers that need exact-once dedup keep their own
  /// set — numeric texts are cheap to re-derive). Keeps the encoding
  /// special-casing inside the storage layer.
  template <typename Fn>
  void ForEachDistinctCell(const Fn& fn) const {
    if (is_dict()) {
      for (uint32_t c = 0; c < entry_types_.size(); ++c) fn(dict_entry(c));
      return;
    }
    for (int64_t r = 0; r < num_rows_; ++r) {
      if (!is_null(r)) fn(cell(r));
    }
  }

  // Dictionary access (valid only when is_dict()).
  size_t dict_size() const { return entry_types_.size(); }
  /// Dictionary code of a non-null row.
  uint32_t code(int64_t row) const {
    VER_DCHECK(is_dict()) << "code() on a " << ColumnEncodingToString(enc_)
                          << " column";
    VER_DCHECK(!is_null(row)) << "code() on null row " << row;
    return codes_[row];
  }
  CellView dict_entry(uint32_t code) const;
  uint64_t dict_entry_hash(uint32_t code) const {
    VER_DCHECK(code < entry_hashes_.size())
        << "code " << code << " outside dictionary of "
        << entry_hashes_.size();
    return entry_hashes_[code];
  }

  /// Sorts the dictionary into cell total order (ties broken by type then
  /// payload bits), remaps codes, frees the intern map and drops capacity
  /// slack. Idempotent; purely an internal re-layout — cell(), CellHash()
  /// and all query results are unaffected. Repository tables get this via
  /// TableRepository::AddTable.
  void Seal();

  /// Frees only the ingest intern map — the cheap compaction for transient
  /// tables (materialized views) that skips Seal()'s dictionary sort and
  /// shrink reallocations. A later Append transparently rebuilds the map.
  void DropInternMap();

  /// Resident bytes of this column's storage (capacities, arena, intern
  /// map estimate).
  size_t ApproxBytes() const;

  /// Columnar snapshot serialization: bitmap words, typed payload and
  /// dictionary (types + payloads + lengths + cached hashes + arena) are
  /// written as bulk arrays, so on little-endian hosts loading is a
  /// handful of memcpys — or, with a pager `binding`, zero copies: every
  /// bulk array is adopted as a borrowed extent of the mmapped snapshot.
  ///
  /// Trust model: the resident path (null binding) validates every count,
  /// code and dictionary offset before the column is usable. The paged
  /// path keeps the O(1) structural checks but skips the O(rows)/O(dict)
  /// content scans — the snapshot's framing was already validated and
  /// scanning would fault in every page of a column the query may never
  /// touch, defeating lazy cold-start.
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const PagerBinding* binding = nullptr);

  /// True when any storage array borrows a mapped snapshot extent.
  bool paged() const {
    return valid_words_.paged() || ints_.paged() || doubles_.paged() ||
           num_bits_.paged() || int_tag_words_.paged() || codes_.paged() ||
           entry_types_.paged() || entry_payload_.paged() ||
           entry_lens_.paged() || entry_hashes_.paged() || arena_.paged();
  }

  /// Adds every paged storage extent of this column to `pin` (no-op for
  /// resident columns) so a query's working set is charged to the pool.
  void PinInto(PagePin* pin) const;

 private:
  /// Fills buf[0..len) with CellHash(base + i), dispatching on the encoding
  /// once per block instead of once per cell.
  void FillCellHashes(int64_t base, size_t len, uint64_t* buf) const;
  void AppendValidityBit(bool non_null);
  void BecomeDouble();
  void PromoteToNumeric();
  void PromoteToDict();
  uint32_t Intern(const CellView& v);
  bool EntryEquals(uint32_t code, const CellView& v) const;
  void EnsureLookup();
  /// Materializes every paged view into owned storage — the write barrier
  /// every mutating entry point runs first, so appending to a paged-loaded
  /// column transparently copies it out of the snapshot map.
  void EnsureOwned();

  ColumnEncoding enc_ = ColumnEncoding::kInt64;
  bool sealed_ = false;
  int64_t num_rows_ = 0;
  int64_t reserved_rows_ = 0;  // Reserve() target, honored across promotions
  int64_t num_nulls_ = 0;
  int64_t num_ints_ = 0;
  int64_t num_doubles_ = 0;
  int64_t num_strings_ = 0;

  // Storage arrays are PagedView/PagedBytes: owned vectors during ingest
  // and resident loads, borrowed mmap extents under a paged load. Read
  // paths are mode-blind; mutation goes through .mut() behind
  // EnsureOwned().

  /// Validity bitmap: bit (row & 63) of word (row >> 6) set = non-null.
  PagedView<uint64_t> valid_words_;

  PagedView<int64_t> ints_;      // kInt64 payload (0 on null rows)
  PagedView<double> doubles_;    // kDouble payload (0 on null rows)
  PagedView<uint64_t> num_bits_; // kNumeric payload: int64 or double bits
  PagedView<uint64_t> int_tag_words_;  // kNumeric: bit set = cell is kInt

  // kDict state. Entry i: entry_types_[i] in {kInt,kDouble,kString};
  // numeric entries keep their value/IEEE bits in entry_payload_[i];
  // string entries keep {arena offset, length} in
  // {entry_payload_[i], entry_lens_[i]}.
  PagedView<uint32_t> codes_;  // per-row code (0 on null rows)
  PagedView<uint8_t> entry_types_;
  PagedView<uint64_t> entry_payload_;
  PagedView<uint32_t> entry_lens_;
  PagedView<uint64_t> entry_hashes_;  // cached Value-compatible hashes
  PagedBytes arena_;                  // string bytes, back to back
  // Intern map: cell hash -> codes with that hash (collisions resolved by
  // exact payload identity). Dropped by Seal(), rebuilt on demand.
  std::unordered_map<uint64_t, std::vector<uint32_t>> lookup_;
};

}  // namespace ver

#endif  // VER_TABLE_COLUMN_DATA_H_
