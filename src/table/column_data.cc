#include "table/column_data.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <numeric>

#include "util/simd.h"
#include "util/string_util.h"

namespace ver {

namespace {

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// One bulk array off the snapshot payload: zero-copy extent read, then
// either a paged adoption (binding with a pool) or an owned copy.
template <typename T>
Status LoadArray(SerdeReader* r, const PagerBinding* binding,
                 const char* what, PagedView<T>* out) {
  const char* raw = nullptr;
  uint64_t n = 0;
  VER_RETURN_IF_ERROR(r->ReadArrayExtent(sizeof(T), what, &raw, &n));
  out->Adopt(binding, raw, n);
  return Status::OK();
}

}  // namespace

const char* ColumnEncodingToString(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kInt64:
      return "int64";
    case ColumnEncoding::kDouble:
      return "double";
    case ColumnEncoding::kNumeric:
      return "numeric";
    case ColumnEncoding::kDict:
      return "dict";
  }
  return "unknown";
}

// --------------------------------- CellView --------------------------------

CellView CellView::Of(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return Null();
    case ValueType::kInt:
      return Int(v.AsInt());
    case ValueType::kDouble:
      return Double(v.AsDouble());
    case ValueType::kString:
      return String(v.AsString());
  }
  return Null();
}

Value CellView::ToValue() const {
  switch (type_) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value::Int(int_);
    case ValueType::kDouble:
      return Value::Double(double_);
    case ValueType::kString:
      return Value::String(std::string(AsStringView()));
  }
  return Value::Null();
}

std::string CellView::ToText() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble:
      return FormatDouble(double_, 9);
    case ValueType::kString:
      return std::string(AsStringView());
  }
  return "";
}

void CellView::AppendTextTo(std::string* out) const {
  switch (type_) {
    case ValueType::kNull:
      return;
    case ValueType::kInt: {
      char buf[24];  // -2^63 is 20 chars
      auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out->append(buf, static_cast<size_t>(res.ptr - buf));
      return;
    }
    case ValueType::kDouble:
      out->append(FormatDouble(double_, 9));
      return;
    case ValueType::kString:
      out->append(AsStringView());
      return;
  }
}

uint64_t CellView::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return kNullValueHash;
    case ValueType::kInt:
      return HashIntValue(int_);
    case ValueType::kDouble:
      return HashDoubleValue(double_);
    case ValueType::kString:
      return HashStringValue(AsStringView());
  }
  return 0;
}

int CellView::Compare(const CellView& other) const {
  // Rank: null(0) < numeric(1) < string(2) — mirrors Value::Compare.
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type_), rb = rank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
        if (int_ == other.int_) return 0;
        return int_ < other.int_ ? -1 : 1;
      }
      double a = AsDouble(), b = other.AsDouble();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    default: {
      std::string_view a = AsStringView(), b = other.AsStringView();
      int c = a.compare(b);
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
  }
}

// -------------------------------- ColumnData -------------------------------

void ColumnData::EnsureOwned() {
  if (!paged()) return;
  valid_words_.MaterializeOwned();
  ints_.MaterializeOwned();
  doubles_.MaterializeOwned();
  num_bits_.MaterializeOwned();
  int_tag_words_.MaterializeOwned();
  codes_.MaterializeOwned();
  entry_types_.MaterializeOwned();
  entry_payload_.MaterializeOwned();
  entry_lens_.MaterializeOwned();
  entry_hashes_.MaterializeOwned();
  arena_.MaterializeOwned();
}

void ColumnData::AppendValidityBit(bool non_null) {
  size_t word = static_cast<size_t>(num_rows_) >> 6;
  if (valid_words_.size() <= word) valid_words_.mut().push_back(0);
  if (non_null) valid_words_.mut()[word] |= uint64_t{1} << (num_rows_ & 63);
}

void ColumnData::Reserve(int64_t rows) {
  VER_DCHECK(rows >= 0) << "negative reservation " << rows;
  EnsureOwned();
  if (rows > reserved_rows_) reserved_rows_ = rows;
  valid_words_.mut().reserve(static_cast<size_t>(rows + 63) / 64);
  switch (enc_) {
    case ColumnEncoding::kInt64:
      ints_.mut().reserve(static_cast<size_t>(rows));
      break;
    case ColumnEncoding::kDouble:
      doubles_.mut().reserve(static_cast<size_t>(rows));
      break;
    case ColumnEncoding::kNumeric:
      num_bits_.mut().reserve(static_cast<size_t>(rows));
      int_tag_words_.mut().reserve(static_cast<size_t>(rows + 63) / 64);
      break;
    case ColumnEncoding::kDict:
      codes_.mut().reserve(static_cast<size_t>(rows));
      break;
  }
}

void ColumnData::Append(const CellView& v) {
  EnsureOwned();
  switch (v.type()) {
    case ValueType::kNull:
      // Placeholder payload keeps per-row arrays aligned with the bitmap.
      switch (enc_) {
        case ColumnEncoding::kInt64:
          ints_.mut().push_back(0);
          break;
        case ColumnEncoding::kDouble:
          doubles_.mut().push_back(0);
          break;
        case ColumnEncoding::kNumeric: {
          size_t word = static_cast<size_t>(num_rows_) >> 6;
          if (int_tag_words_.size() <= word) int_tag_words_.mut().push_back(0);
          num_bits_.mut().push_back(0);
          break;
        }
        case ColumnEncoding::kDict:
          codes_.mut().push_back(0);
          break;
      }
      AppendValidityBit(false);
      ++num_nulls_;
      ++num_rows_;
      return;
    case ValueType::kInt:
      if (enc_ == ColumnEncoding::kDouble) PromoteToNumeric();
      switch (enc_) {
        case ColumnEncoding::kInt64:
          ints_.mut().push_back(v.AsInt());
          break;
        case ColumnEncoding::kNumeric: {
          size_t word = static_cast<size_t>(num_rows_) >> 6;
          if (int_tag_words_.size() <= word) int_tag_words_.mut().push_back(0);
          int_tag_words_.mut()[word] |= uint64_t{1} << (num_rows_ & 63);
          num_bits_.mut().push_back(static_cast<uint64_t>(v.AsInt()));
          break;
        }
        case ColumnEncoding::kDict:
          codes_.mut().push_back(Intern(v));
          break;
        case ColumnEncoding::kDouble:
          break;  // unreachable: promoted above
      }
      ++num_ints_;
      break;
    case ValueType::kDouble:
      if (enc_ == ColumnEncoding::kInt64) {
        // A column that only held nulls so far can simply become a double
        // column; one that already holds ints needs the exact mixed layout.
        if (num_ints_ == 0) {
          BecomeDouble();
        } else {
          PromoteToNumeric();
        }
      }
      switch (enc_) {
        case ColumnEncoding::kDouble:
          doubles_.mut().push_back(v.AsDouble());
          break;
        case ColumnEncoding::kNumeric: {
          size_t word = static_cast<size_t>(num_rows_) >> 6;
          if (int_tag_words_.size() <= word) int_tag_words_.mut().push_back(0);
          num_bits_.mut().push_back(DoubleBits(v.AsDouble()));
          break;
        }
        case ColumnEncoding::kDict:
          codes_.mut().push_back(Intern(v));
          break;
        case ColumnEncoding::kInt64:
          break;  // unreachable: converted above
      }
      ++num_doubles_;
      break;
    case ValueType::kString:
      if (enc_ != ColumnEncoding::kDict) PromoteToDict();
      codes_.mut().push_back(Intern(v));
      ++num_strings_;
      break;
  }
  AppendValidityBit(true);
  ++num_rows_;
}

void ColumnData::BecomeDouble() {
  doubles_.mut().reserve(
      static_cast<size_t>(std::max(reserved_rows_, num_rows_)));
  doubles_.mut().assign(static_cast<size_t>(ints_.size()), 0.0);
  ints_ = std::vector<int64_t>();
  enc_ = ColumnEncoding::kDouble;
}

void ColumnData::PromoteToNumeric() {
  num_bits_.mut().reserve(
      static_cast<size_t>(std::max(reserved_rows_, num_rows_)));
  if (enc_ == ColumnEncoding::kInt64) {
    for (int64_t v : ints_) num_bits_.mut().push_back(static_cast<uint64_t>(v));
    // Every non-null cell so far is an int: the validity bitmap doubles as
    // the initial int-tag bitmap.
    int_tag_words_ = valid_words_;
    ints_ = std::vector<int64_t>();
  } else {
    for (double v : doubles_) num_bits_.mut().push_back(DoubleBits(v));
    int_tag_words_.mut().assign(static_cast<size_t>(valid_words_.size()), 0);
    doubles_ = std::vector<double>();
  }
  enc_ = ColumnEncoding::kNumeric;
}

void ColumnData::PromoteToDict() {
  std::vector<uint32_t> codes;
  codes.reserve(static_cast<size_t>(std::max(reserved_rows_, num_rows_)));
  codes.resize(static_cast<size_t>(num_rows_), 0);
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (!is_null(r)) codes[r] = Intern(cell(r));
  }
  codes_ = std::move(codes);
  ints_ = std::vector<int64_t>();
  doubles_ = std::vector<double>();
  num_bits_ = std::vector<uint64_t>();
  int_tag_words_ = std::vector<uint64_t>();
  enc_ = ColumnEncoding::kDict;
}

bool ColumnData::EntryEquals(uint32_t code, const CellView& v) const {
  if (static_cast<ValueType>(entry_types_[code]) != v.type()) return false;
  switch (v.type()) {
    case ValueType::kInt:
      return static_cast<int64_t>(entry_payload_[code]) == v.AsInt();
    case ValueType::kDouble:
      // Bit identity (not numeric equality) so cells render back exactly.
      return entry_payload_[code] == DoubleBits(v.AsDouble());
    case ValueType::kString: {
      std::string_view s = v.AsStringView();
      return entry_lens_[code] == s.size() &&
             std::memcmp(arena_.data() + entry_payload_[code], s.data(),
                         s.size()) == 0;
    }
    case ValueType::kNull:
      return false;  // nulls live in the bitmap, never in the dictionary
  }
  return false;
}

uint32_t ColumnData::Intern(const CellView& v) {
  // The intern map is absent after Seal() or DropInternMap(); rebuild it
  // before deduping so existing entries are never duplicated.
  if (sealed_ || (lookup_.empty() && !entry_types_.empty())) EnsureLookup();
  uint64_t h = v.Hash();
  std::vector<uint32_t>& bucket = lookup_[h];
  for (uint32_t c : bucket) {
    if (EntryEquals(c, v)) return c;
  }
  // Codes are uint32; a column with 2^32 distinct cells would silently wrap
  // new codes onto existing entries. Checked per new *entry*, not per row,
  // so the cost is invisible.
  VER_CHECK(entry_types_.size() < UINT32_MAX)
      << "dictionary overflow: 2^32 distinct cells in one column";
  uint32_t code = static_cast<uint32_t>(entry_types_.size());
  entry_types_.mut().push_back(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      entry_payload_.mut().push_back(static_cast<uint64_t>(v.AsInt()));
      entry_lens_.mut().push_back(0);
      break;
    case ValueType::kDouble:
      entry_payload_.mut().push_back(DoubleBits(v.AsDouble()));
      entry_lens_.mut().push_back(0);
      break;
    case ValueType::kString: {
      std::string_view s = v.AsStringView();
      entry_payload_.mut().push_back(arena_.size());
      entry_lens_.mut().push_back(static_cast<uint32_t>(s.size()));
      arena_.mut().append(s.data(), s.size());
      break;
    }
    case ValueType::kNull:
      break;  // unreachable: callers never intern nulls
  }
  entry_hashes_.mut().push_back(h);
  bucket.push_back(code);
  return code;
}

void ColumnData::EnsureLookup() {
  lookup_.clear();
  lookup_.reserve(entry_hashes_.size());
  for (uint32_t c = 0; c < entry_hashes_.size(); ++c) {
    lookup_[entry_hashes_[c]].push_back(c);
  }
  sealed_ = false;
}

CellView ColumnData::dict_entry(uint32_t code) const {
  VER_DCHECK(code < entry_types_.size())
      << "code " << code << " outside dictionary of " << entry_types_.size();
  switch (static_cast<ValueType>(entry_types_[code])) {
    case ValueType::kInt:
      return CellView::Int(static_cast<int64_t>(entry_payload_[code]));
    case ValueType::kDouble:
      return CellView::Double(BitsToDouble(entry_payload_[code]));
    case ValueType::kString:
      return CellView::String(std::string_view(
          arena_.data() + entry_payload_[code], entry_lens_[code]));
    case ValueType::kNull:
      break;
  }
  return CellView::Null();
}

CellView ColumnData::cell(int64_t row) const {
  if (is_null(row)) return CellView::Null();
  switch (enc_) {
    case ColumnEncoding::kInt64:
      return CellView::Int(ints_[row]);
    case ColumnEncoding::kDouble:
      return CellView::Double(doubles_[row]);
    case ColumnEncoding::kNumeric: {
      bool is_int = (int_tag_words_[static_cast<size_t>(row) >> 6] &
                     (uint64_t{1} << (row & 63))) != 0;
      return is_int ? CellView::Int(static_cast<int64_t>(num_bits_[row]))
                    : CellView::Double(BitsToDouble(num_bits_[row]));
    }
    case ColumnEncoding::kDict:
      return dict_entry(codes_[row]);
  }
  return CellView::Null();
}

uint64_t ColumnData::CellHash(int64_t row) const {
  if (is_null(row)) return kNullValueHash;
  switch (enc_) {
    case ColumnEncoding::kInt64:
      return HashIntValue(ints_[row]);
    case ColumnEncoding::kDouble:
      return HashDoubleValue(doubles_[row]);
    case ColumnEncoding::kNumeric: {
      bool is_int = (int_tag_words_[static_cast<size_t>(row) >> 6] &
                     (uint64_t{1} << (row & 63))) != 0;
      return is_int ? HashIntValue(static_cast<int64_t>(num_bits_[row]))
                    : HashDoubleValue(BitsToDouble(num_bits_[row]));
    }
    case ColumnEncoding::kDict:
      return entry_hashes_[codes_[row]];
  }
  return kNullValueHash;
}

void ColumnData::FillCellHashes(int64_t base, size_t len,
                                uint64_t* buf) const {
  VER_DCHECK(base >= 0 && base + static_cast<int64_t>(len) <= num_rows_)
      << "block [" << base << ", " << base + static_cast<int64_t>(len)
      << ") outside column of " << num_rows_;
  const bool no_nulls = num_nulls_ == 0;
  switch (enc_) {
    case ColumnEncoding::kInt64:
      if (no_nulls) {
        simd::HashInt64Cells(ints_.data() + base, len, buf);
        return;
      }
      for (size_t i = 0; i < len; ++i) {
        buf[i] = is_null(base + static_cast<int64_t>(i))
                     ? kNullValueHash
                     : HashIntValue(ints_[base + static_cast<int64_t>(i)]);
      }
      return;
    case ColumnEncoding::kDouble:
      // HashDoubleValue's integral-twin branch keeps this scalar; the
      // unrolled combine downstream still amortizes it.
      for (size_t i = 0; i < len; ++i) {
        int64_t r = base + static_cast<int64_t>(i);
        buf[i] = (!no_nulls && is_null(r)) ? kNullValueHash
                                           : HashDoubleValue(doubles_[r]);
      }
      return;
    case ColumnEncoding::kNumeric:
      for (size_t i = 0; i < len; ++i) {
        int64_t r = base + static_cast<int64_t>(i);
        if (!no_nulls && is_null(r)) {
          buf[i] = kNullValueHash;
          continue;
        }
        bool is_int = (int_tag_words_[static_cast<size_t>(r) >> 6] &
                       (uint64_t{1} << (r & 63))) != 0;
        buf[i] = is_int ? HashIntValue(static_cast<int64_t>(num_bits_[r]))
                        : HashDoubleValue(BitsToDouble(num_bits_[r]));
      }
      return;
    case ColumnEncoding::kDict:
      if (no_nulls) {
        for (size_t i = 0; i < len; ++i) {
          buf[i] = entry_hashes_[codes_[base + static_cast<int64_t>(i)]];
        }
        return;
      }
      for (size_t i = 0; i < len; ++i) {
        int64_t r = base + static_cast<int64_t>(i);
        buf[i] = is_null(r) ? kNullValueHash : entry_hashes_[codes_[r]];
      }
      return;
  }
}

void ColumnData::CombineCellHashesInto(uint64_t* acc, int64_t n) const {
  // All-valid int64, double, dictionary and tag-mixed numeric columns take
  // the fused one-pass kernels (hash or gather straight into the combine,
  // no staging buffer); other encodings and null-bearing columns stage
  // per-cell hashes block-wise.
  if (num_nulls_ == 0 && n > 0) {
    if (enc_ == ColumnEncoding::kInt64) {
      simd::CombineInt64Cells(acc, ints_.data(), static_cast<size_t>(n));
      return;
    }
    if (enc_ == ColumnEncoding::kDouble) {
      simd::CombineDoubleCells(acc, doubles_.data(), static_cast<size_t>(n));
      return;
    }
    if (enc_ == ColumnEncoding::kDict) {
      simd::CombineDictCells(acc, codes_.data(), entry_hashes_.data(),
                             static_cast<size_t>(n));
      return;
    }
    if (enc_ == ColumnEncoding::kNumeric) {
      simd::CombineNumericCells(acc, num_bits_.data(), int_tag_words_.data(),
                                static_cast<size_t>(n));
      return;
    }
  }
  uint64_t buf[simd::kBlockCells];
  for (int64_t base = 0; base < n;
       base += static_cast<int64_t>(simd::kBlockCells)) {
    size_t len = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(simd::kBlockCells), n - base));
    FillCellHashes(base, len, buf);
    simd::CombineHashes(acc + base, buf, len);
  }
}

void ColumnData::CombineCellHashesInto(uint64_t* acc, const int64_t* rows,
                                       int64_t n) const {
  uint64_t buf[simd::kBlockCells];
  for (int64_t base = 0; base < n;
       base += static_cast<int64_t>(simd::kBlockCells)) {
    size_t len = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(simd::kBlockCells), n - base));
    for (size_t i = 0; i < len; ++i) buf[i] = CellHash(rows[base + i]);
    simd::CombineHashes(acc + base, buf, len);
  }
}

void ColumnData::CellHashesInto(uint64_t* out, int64_t n) const {
  if (n > 0) FillCellHashes(0, static_cast<size_t>(n), out);
}

std::vector<uint64_t> ColumnData::DistinctHashes() const {
  // Dictionary columns answer from cached entry hashes (every entry is
  // referenced by at least one row; sort+unique merges int/double twins,
  // which hash equal by design, exactly like seed per-cell hashing did).
  std::vector<uint64_t> hashes;
  if (is_dict()) {
    hashes.assign(entry_hashes_.begin(), entry_hashes_.end());
  } else if (num_nulls_ == 0) {
    hashes.resize(static_cast<size_t>(num_rows_));
    FillCellHashes(0, hashes.size(), hashes.data());
  } else {
    hashes.reserve(static_cast<size_t>(num_rows_ - num_nulls_));
    for (int64_t r = 0; r < num_rows_; ++r) {
      if (!is_null(r)) hashes.push_back(CellHash(r));
    }
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

int64_t ColumnData::DistinctCount(bool count_null) const {
  std::vector<uint64_t> distinct = DistinctHashes();
  int64_t count = static_cast<int64_t>(distinct.size());
  // Counting null adds one value unless some non-null cell already hashes
  // to the null sentinel (the old set-insert semantics, preserved).
  if (count_null && num_nulls_ > 0 &&
      !std::binary_search(distinct.begin(), distinct.end(), kNullValueHash)) {
    ++count;
  }
  return count;
}

void ColumnData::Seal() {
  if (sealed_) return;
  EnsureOwned();
  if (enc_ == ColumnEncoding::kDict && !entry_types_.empty()) {
    uint32_t n = static_cast<uint32_t>(entry_types_.size());
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      int c = dict_entry(a).Compare(dict_entry(b));
      if (c != 0) return c < 0;
      // Equal-comparing but distinct entries (2 vs 2.0, 0.0 vs -0.0):
      // deterministic tie-break on type tag then payload bits.
      if (entry_types_[a] != entry_types_[b]) {
        return entry_types_[a] < entry_types_[b];
      }
      return entry_payload_[a] < entry_payload_[b];
    });
    std::vector<uint32_t> rank(n);
    for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;

    std::vector<uint8_t> types(n);
    std::vector<uint64_t> payload(n);
    std::vector<uint32_t> lens(n);
    std::vector<uint64_t> hashes(n);
    std::string arena;
    arena.reserve(arena_.size());
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t old = order[i];
      types[i] = entry_types_[old];
      hashes[i] = entry_hashes_[old];
      if (static_cast<ValueType>(entry_types_[old]) == ValueType::kString) {
        payload[i] = arena.size();
        lens[i] = entry_lens_[old];
        arena.append(arena_.data() + entry_payload_[old], entry_lens_[old]);
      } else {
        payload[i] = entry_payload_[old];
        lens[i] = 0;
      }
    }
    entry_types_ = std::move(types);
    entry_payload_ = std::move(payload);
    entry_lens_ = std::move(lens);
    entry_hashes_ = std::move(hashes);
    arena_ = std::move(arena);
    std::vector<uint32_t>& code_vec = codes_.mut();
    for (int64_t r = 0; r < num_rows_; ++r) {
      if (!is_null(r)) code_vec[r] = rank[code_vec[r]];
    }
  }
  std::unordered_map<uint64_t, std::vector<uint32_t>>().swap(lookup_);
  // Serving layout: drop ingest slack (growth-doubling capacity and
  // over-reserve) — sealed columns are read-only until the next append.
  valid_words_.mut().shrink_to_fit();
  ints_.mut().shrink_to_fit();
  doubles_.mut().shrink_to_fit();
  num_bits_.mut().shrink_to_fit();
  int_tag_words_.mut().shrink_to_fit();
  codes_.mut().shrink_to_fit();
  entry_types_.mut().shrink_to_fit();
  entry_payload_.mut().shrink_to_fit();
  entry_lens_.mut().shrink_to_fit();
  entry_hashes_.mut().shrink_to_fit();
  arena_.mut().shrink_to_fit();
  sealed_ = true;
}

void ColumnData::DropInternMap() {
  std::unordered_map<uint64_t, std::vector<uint32_t>>().swap(lookup_);
}

size_t ColumnData::ApproxBytes() const {
  // Paged views report 0 here: their bytes live in the snapshot map and
  // are accounted by the BufferPool's resident counter, not the heap.
  size_t bytes = sizeof(*this);
  bytes += valid_words_.capacity_bytes();
  bytes += ints_.capacity_bytes();
  bytes += doubles_.capacity_bytes();
  bytes += num_bits_.capacity_bytes();
  bytes += int_tag_words_.capacity_bytes();
  bytes += codes_.capacity_bytes();
  bytes += entry_types_.capacity_bytes();
  bytes += entry_payload_.capacity_bytes();
  bytes += entry_lens_.capacity_bytes();
  bytes += entry_hashes_.capacity_bytes();
  bytes += arena_.capacity_bytes();
  // Intern map estimate: node + bucket overhead per distinct hash plus the
  // small code vectors. Zero once the column is sealed.
  bytes += lookup_.size() * 64;
  return bytes;
}

void ColumnData::PinInto(PagePin* pin) const {
  valid_words_.PinInto(pin);
  ints_.PinInto(pin);
  doubles_.PinInto(pin);
  num_bits_.PinInto(pin);
  int_tag_words_.PinInto(pin);
  codes_.PinInto(pin);
  entry_types_.PinInto(pin);
  entry_payload_.PinInto(pin);
  entry_lens_.PinInto(pin);
  entry_hashes_.PinInto(pin);
  arena_.PinInto(pin);
}

void ColumnData::SaveTo(SerdeWriter* w) const {
  w->WriteU8(static_cast<uint8_t>(enc_));
  w->WriteBool(sealed_);
  w->WriteI64(num_rows_);
  w->WriteI64(num_nulls_);
  w->WriteI64(num_ints_);
  w->WriteI64(num_doubles_);
  w->WriteI64(num_strings_);
  w->WriteU64Array(valid_words_.data(), valid_words_.size());
  switch (enc_) {
    case ColumnEncoding::kInt64:
      w->WriteI64Array(ints_.data(), ints_.size());
      break;
    case ColumnEncoding::kDouble:
      w->WriteDoubleArray(doubles_.data(), doubles_.size());
      break;
    case ColumnEncoding::kNumeric:
      w->WriteU64Array(num_bits_.data(), num_bits_.size());
      w->WriteU64Array(int_tag_words_.data(), int_tag_words_.size());
      break;
    case ColumnEncoding::kDict:
      w->WriteU32Array(codes_.data(), codes_.size());
      w->WriteU8Array(entry_types_.data(), entry_types_.size());
      w->WriteU64Array(entry_payload_.data(), entry_payload_.size());
      w->WriteU32Array(entry_lens_.data(), entry_lens_.size());
      w->WriteU64Array(entry_hashes_.data(), entry_hashes_.size());
      w->WriteString(arena_.view());
      break;
  }
}

Status ColumnData::LoadFrom(SerdeReader* r, const PagerBinding* binding) {
  // Resident loads (no binding) run the full O(rows)/O(dict) content
  // validation below; paged loads keep only the O(1) structural checks —
  // see the header comment for the trust model.
  const bool deep_validate = binding == nullptr || binding->pool == nullptr;
  uint8_t enc;
  VER_RETURN_IF_ERROR(r->ReadU8(&enc));
  if (enc > static_cast<uint8_t>(ColumnEncoding::kDict)) {
    return Status::IOError("corrupt column: unknown encoding " +
                           std::to_string(enc));
  }
  enc_ = static_cast<ColumnEncoding>(enc);
  VER_RETURN_IF_ERROR(r->ReadBool(&sealed_));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_rows_));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_nulls_));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_ints_));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_doubles_));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_strings_));
  // Bound every tally by the row count before doing arithmetic on them, so
  // crafted values can neither overflow the sum below (UB) nor the +63 in
  // the bitmap sizing.
  constexpr int64_t kMaxRows = int64_t{1} << 56;
  if (num_rows_ < 0 || num_rows_ > kMaxRows) {
    return Status::IOError("corrupt column: implausible row count " +
                           std::to_string(num_rows_));
  }
  for (int64_t tally : {num_nulls_, num_ints_, num_doubles_, num_strings_}) {
    if (tally < 0 || tally > num_rows_) {
      return Status::IOError("corrupt column: inconsistent cell tallies");
    }
  }
  if (static_cast<uint64_t>(num_nulls_) + static_cast<uint64_t>(num_ints_) +
          static_cast<uint64_t>(num_doubles_) +
          static_cast<uint64_t>(num_strings_) !=
      static_cast<uint64_t>(num_rows_)) {
    return Status::IOError("corrupt column: inconsistent cell tallies");
  }
  VER_RETURN_IF_ERROR(
      LoadArray(r, binding, "validity bitmap", &valid_words_));
  size_t want_words = static_cast<size_t>(num_rows_ + 63) / 64;
  if (valid_words_.size() != want_words) {
    return Status::IOError("corrupt column: validity bitmap has " +
                           std::to_string(valid_words_.size()) +
                           " words, expected " + std::to_string(want_words));
  }
  lookup_.clear();
  auto check_rows = [this](size_t got, const char* what) {
    if (got != static_cast<size_t>(num_rows_)) {
      return Status::IOError("corrupt column: " + std::string(what) +
                             " holds " + std::to_string(got) +
                             " cells, expected " + std::to_string(num_rows_));
    }
    return Status::OK();
  };
  switch (enc_) {
    case ColumnEncoding::kInt64:
      VER_RETURN_IF_ERROR(LoadArray(r, binding, "int payload", &ints_));
      VER_RETURN_IF_ERROR(check_rows(ints_.size(), "int payload"));
      break;
    case ColumnEncoding::kDouble:
      VER_RETURN_IF_ERROR(LoadArray(r, binding, "double payload", &doubles_));
      VER_RETURN_IF_ERROR(check_rows(doubles_.size(), "double payload"));
      break;
    case ColumnEncoding::kNumeric:
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "numeric payload", &num_bits_));
      VER_RETURN_IF_ERROR(check_rows(num_bits_.size(), "numeric payload"));
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "int-tag bitmap", &int_tag_words_));
      if (int_tag_words_.size() != want_words) {
        return Status::IOError("corrupt column: int-tag bitmap size mismatch");
      }
      break;
    case ColumnEncoding::kDict: {
      VER_RETURN_IF_ERROR(LoadArray(r, binding, "code array", &codes_));
      VER_RETURN_IF_ERROR(check_rows(codes_.size(), "code array"));
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "dictionary types", &entry_types_));
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "dictionary payloads", &entry_payload_));
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "dictionary lengths", &entry_lens_));
      VER_RETURN_IF_ERROR(
          LoadArray(r, binding, "dictionary hashes", &entry_hashes_));
      {
        const char* raw = nullptr;
        uint64_t len = 0;
        VER_RETURN_IF_ERROR(r->ReadStringExtent(&raw, &len));
        arena_.Adopt(binding, raw, len);
      }
      size_t n = entry_types_.size();
      if (entry_payload_.size() != n || entry_lens_.size() != n ||
          entry_hashes_.size() != n) {
        return Status::IOError("corrupt column: dictionary arrays disagree");
      }
      if (deep_validate) {
        for (size_t i = 0; i < n; ++i) {
          ValueType t = static_cast<ValueType>(entry_types_[i]);
          if (t != ValueType::kInt && t != ValueType::kDouble &&
              t != ValueType::kString) {
            return Status::IOError("corrupt column: dictionary entry " +
                                   std::to_string(i) + " has invalid type");
          }
          if (t == ValueType::kString &&
              (entry_lens_[i] > arena_.size() ||
               entry_payload_[i] > arena_.size() - entry_lens_[i])) {
            return Status::IOError("corrupt column: dictionary entry " +
                                   std::to_string(i) + " exceeds arena");
          }
        }
        for (int64_t row = 0; row < num_rows_; ++row) {
          if (!is_null(row) && codes_[row] >= n) {
            return Status::IOError("corrupt column: row " +
                                   std::to_string(row) +
                                   " code out of dictionary range");
          }
        }
      }
      break;
    }
  }
  if (deep_validate) {
    // The bitmap is the source of truth for nulls; the stored tally must
    // agree with it.
    int64_t set_bits = 0;
    for (uint64_t wv : valid_words_) set_bits += __builtin_popcountll(wv);
    if (set_bits != num_rows_ - num_nulls_) {
      return Status::IOError("corrupt column: validity bitmap popcount " +
                             std::to_string(set_bits) + " disagrees with " +
                             std::to_string(num_rows_ - num_nulls_) +
                             " non-null cells");
    }
  }
  return Status::OK();
}

}  // namespace ver
