// Per-column statistics: uniqueness (key-ness), null fraction, distinct sets.

#ifndef VER_TABLE_COLUMN_STATS_H_
#define VER_TABLE_COLUMN_STATS_H_

#include <cstdint>
#include <vector>

#include "table/table.h"
#include "util/serde.h"

namespace ver {

struct ColumnStats {
  int64_t num_rows = 0;
  int64_t num_nulls = 0;
  int64_t num_distinct = 0;
  ValueType dominant_type = ValueType::kNull;

  /// distinct / non-null rows: 1.0 for a perfect key column.
  double uniqueness() const {
    int64_t non_null = num_rows - num_nulls;
    if (non_null <= 0) return 0.0;
    return static_cast<double>(num_distinct) / static_cast<double>(non_null);
  }
  double null_fraction() const {
    return num_rows == 0
               ? 0.0
               : static_cast<double>(num_nulls) / static_cast<double>(num_rows);
  }

  /// Snapshot serialization (stats ride inside persisted column profiles).
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r);
};

/// Computes stats for one column.
ColumnStats ComputeColumnStats(const Table& table, int col);

/// Hashes of the distinct non-null values of a column (sketch input).
std::vector<uint64_t> DistinctValueHashes(const Table& table, int col);

/// Indices of columns whose uniqueness >= `min_uniqueness` — the paper's
/// "approximate key columns" used by 4C's contradiction detection.
std::vector<int> ApproximateKeyColumns(const Table& table,
                                       double min_uniqueness);

}  // namespace ver

#endif  // VER_TABLE_COLUMN_STATS_H_
