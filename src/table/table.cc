#include "table/table.h"

#include <unordered_set>

#include "util/hash.h"

namespace ver {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Table::AppendRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) > num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells but table '" +
        name_ + "' has " + std::to_string(num_columns()) + " columns");
  }
  for (int c = 0; c < num_columns(); ++c) {
    if (c < static_cast<int>(row.size())) {
      columns_[c].push_back(std::move(row[c]));
    } else {
      columns_[c].push_back(Value::Null());
    }
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Table::Row(int64_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (int c = 0; c < num_columns(); ++c) out.push_back(columns_[c][row]);
  return out;
}

uint64_t Table::RowHash(int64_t row) const {
  uint64_t h = 0x726f7768617368ULL;  // arbitrary row-hash seed
  for (int c = 0; c < num_columns(); ++c) {
    h = HashCombine(h, columns_[c][row].Hash());
  }
  return h;
}

std::vector<uint64_t> Table::AllRowHashes() const {
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) out.push_back(RowHash(r));
  return out;
}

int64_t Table::DistinctCount(int col) const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_rows_));
  for (const Value& v : columns_[col]) seen.insert(v.Hash());
  return static_cast<int64_t>(seen.size());
}

Table Table::Project(const std::vector<int>& col_indices, bool distinct,
                     std::string new_name) const {
  Schema schema;
  for (int c : col_indices) schema.AddAttribute(schema_.attribute(c));
  Table out(std::move(new_name), std::move(schema));
  std::unordered_set<uint64_t> seen;
  for (int64_t r = 0; r < num_rows_; ++r) {
    std::vector<Value> row;
    row.reserve(col_indices.size());
    for (int c : col_indices) row.push_back(columns_[c][r]);
    if (distinct) {
      uint64_t h = 0x726f7768617368ULL;
      for (const Value& v : row) h = HashCombine(h, v.Hash());
      if (!seen.insert(h).second) continue;
    }
    out.AppendRow(std::move(row));
  }
  return out;
}

void Table::InferColumnTypes() {
  for (int c = 0; c < num_columns(); ++c) {
    int64_t ints = 0, doubles = 0, strings = 0;
    for (const Value& v : columns_[c]) {
      switch (v.type()) {
        case ValueType::kInt:
          ++ints;
          break;
        case ValueType::kDouble:
          ++doubles;
          break;
        case ValueType::kString:
          ++strings;
          break;
        case ValueType::kNull:
          break;
      }
    }
    ValueType t = ValueType::kString;
    if (strings == 0 && doubles == 0 && ints > 0) {
      t = ValueType::kInt;
    } else if (strings == 0 && (doubles > 0 || ints > 0)) {
      t = ValueType::kDouble;
    } else if (strings == 0 && ints == 0 && doubles == 0) {
      t = ValueType::kNull;
    }
    schema_.attribute(c).type = t;
  }
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = name_ + " (" + std::to_string(num_rows_) + " rows)\n";
  out += schema_.ToString() + "\n";
  int64_t limit = std::min<int64_t>(max_rows, num_rows_);
  for (int64_t r = 0; r < limit; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c][r].ToText();
    }
    out += "\n";
  }
  if (limit < num_rows_) out += "...\n";
  return out;
}

}  // namespace ver
