#include "table/table.h"

#include <algorithm>

#include "util/hash.h"

namespace ver {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

void Table::Reserve(int64_t rows) {
  for (ColumnData& c : columns_) c.Reserve(rows);
}

Status Table::AppendRow(std::vector<Value> row) {
  if (static_cast<int>(row.size()) > num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells but table '" +
        name_ + "' has " + std::to_string(num_columns()) + " columns");
  }
  for (int c = 0; c < num_columns(); ++c) {
    if (c < static_cast<int>(row.size())) {
      columns_[c].Append(row[c]);
    } else {
      columns_[c].Append(CellView::Null());
    }
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendCells(const std::vector<CellView>& row) {
  if (static_cast<int>(row.size()) > num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells but table '" +
        name_ + "' has " + std::to_string(num_columns()) + " columns");
  }
  for (int c = 0; c < num_columns(); ++c) {
    columns_[c].Append(c < static_cast<int>(row.size()) ? row[c]
                                                        : CellView::Null());
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Table::Row(int64_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (int c = 0; c < num_columns(); ++c) out.push_back(columns_[c].value(row));
  return out;
}

uint64_t Table::RowHash(int64_t row) const {
  uint64_t h = 0x726f7768617368ULL;  // arbitrary row-hash seed
  for (int c = 0; c < num_columns(); ++c) {
    h = HashCombine(h, columns_[c].CellHash(row));
  }
  return h;
}

std::vector<uint64_t> Table::AllRowHashes() const {
  // Column-major: seed every accumulator, then stream each column's cell
  // hashes through the blocked combine kernel. Same per-row HashCombine
  // chain as RowHash() — columns visit in the same order — so the stream
  // is bit-identical to the row-major loop it replaces.
  std::vector<uint64_t> out(static_cast<size_t>(num_rows_),
                            0x726f7768617368ULL);
  for (const ColumnData& c : columns_) {
    c.CombineCellHashesInto(out.data(), num_rows_);
  }
  return out;
}

int64_t Table::DistinctCount(int col) const {
  return columns_[col].DistinctCount(/*count_null=*/true);
}

Table Table::Project(const std::vector<int>& col_indices, bool distinct,
                     std::string new_name) const {
  Schema schema;
  for (int c : col_indices) schema.AddAttribute(schema_.attribute(c));
  Table out(std::move(new_name), std::move(schema));
  // Distinct dedups on the row hash and confirms collisions by comparing
  // the source cells of the previously kept rows — no materialized row
  // copies, and hash collisions cannot silently drop distinct rows.
  RowDeduper deduper;
  auto cell_at = [&](int64_t row, int c) { return cell(row, col_indices[c]); };
  // Projected-row hashes are precomputed column-major through the blocked
  // kernel (same HashCombine chain as the old per-row loop, bit-identical).
  std::vector<uint64_t> hashes;
  if (distinct) {
    hashes.assign(static_cast<size_t>(num_rows_), 0x726f7768617368ULL);
    for (int c : col_indices) {
      columns_[c].CombineCellHashesInto(hashes.data(), num_rows_);
    }
  }
  std::vector<CellView> row;
  row.reserve(col_indices.size());
  for (int64_t r = 0; r < num_rows_; ++r) {
    if (distinct) {
      if (!deduper.Insert(hashes[r], r, static_cast<int>(col_indices.size()),
                          cell_at)) {
        continue;
      }
    }
    row.clear();
    for (int c : col_indices) row.push_back(cell(r, c));
    (void)out.AppendCells(row);  // arity always matches by construction
  }
  out.DropInternMaps();
  return out;
}

void Table::InferColumnTypes() {
  for (int c = 0; c < num_columns(); ++c) {
    const ColumnData& data = columns_[c];
    int64_t ints = data.int_count();
    int64_t doubles = data.double_count();
    int64_t strings = data.string_count();
    ValueType t = ValueType::kString;
    if (strings == 0 && doubles == 0 && ints > 0) {
      t = ValueType::kInt;
    } else if (strings == 0 && (doubles > 0 || ints > 0)) {
      t = ValueType::kDouble;
    } else if (strings == 0 && ints == 0 && doubles == 0) {
      t = ValueType::kNull;
    }
    schema_.attribute(c).type = t;
  }
}

void Table::Seal() {
  for (ColumnData& c : columns_) c.Seal();
}

void Table::DropInternMaps() {
  for (ColumnData& c : columns_) c.DropInternMap();
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const ColumnData& c : columns_) bytes += c.ApproxBytes();
  return bytes;
}

void Table::SaveTo(SerdeWriter* w) const {
  w->WriteString(name_);
  schema_.SaveTo(w);
  w->WriteI64(num_rows_);
  for (const ColumnData& c : columns_) c.SaveTo(w);
}

Status Table::LoadFrom(SerdeReader* r, const PagerBinding* binding) {
  VER_RETURN_IF_ERROR(r->ReadString(&name_));
  VER_RETURN_IF_ERROR(schema_.LoadFrom(r));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_rows_));
  if (num_rows_ < 0) {
    return Status::IOError("corrupt table '" + name_ +
                           "': negative row count");
  }
  columns_.assign(static_cast<size_t>(schema_.num_attributes()),
                  ColumnData());
  for (ColumnData& c : columns_) {
    VER_RETURN_IF_ERROR(c.LoadFrom(r, binding));
    if (c.size() != num_rows_) {
      return Status::IOError(
          "corrupt table '" + name_ + "': column holds " +
          std::to_string(c.size()) + " rows, table declares " +
          std::to_string(num_rows_));
    }
  }
  return Status::OK();
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = name_ + " (" + std::to_string(num_rows_) + " rows)\n";
  out += schema_.ToString() + "\n";
  int64_t limit = std::min<int64_t>(max_rows, num_rows_);
  for (int64_t r = 0; r < limit; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].cell(r).ToText();
    }
    out += "\n";
  }
  if (limit < num_rows_) out += "...\n";
  return out;
}

}  // namespace ver
