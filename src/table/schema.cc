#include "table/schema.h"

#include <algorithm>

#include "util/string_util.h"

namespace ver {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Schema::CanonicalSignature() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) names.push_back(ToLower(a.name));
  std::sort(names.begin(), names.end());
  return Join(names, "\x1f");
}

void Schema::SaveTo(SerdeWriter* w) const {
  w->WriteU64(attributes_.size());
  for (const Attribute& a : attributes_) {
    w->WriteString(a.name);
    w->WriteU8(static_cast<uint8_t>(a.type));
  }
}

Status Schema::LoadFrom(SerdeReader* r) {
  uint64_t count;
  VER_RETURN_IF_ERROR(r->ReadU64(&count));
  std::vector<Attribute> attrs;
  attrs.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Attribute a;
    VER_RETURN_IF_ERROR(r->ReadString(&a.name));
    uint8_t type;
    VER_RETURN_IF_ERROR(r->ReadU8(&type));
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IOError("corrupt schema: unknown value type " +
                             std::to_string(type));
    }
    a.type = static_cast<ValueType>(type);
    attrs.push_back(std::move(a));
  }
  attributes_ = std::move(attrs);
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) {
    names.push_back(a.has_name() ? a.name : "<unnamed>");
  }
  return Join(names, ", ");
}

}  // namespace ver
