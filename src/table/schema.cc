#include "table/schema.h"

#include <algorithm>

#include "util/string_util.h"

namespace ver {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Schema::CanonicalSignature() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) names.push_back(ToLower(a.name));
  std::sort(names.begin(), names.end());
  return Join(names, "\x1f");
}

std::string Schema::ToString() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) {
    names.push_back(a.has_name() ? a.name : "<unnamed>");
  }
  return Join(names, ", ");
}

}  // namespace ver
