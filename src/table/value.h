// Value: the dynamically-typed cell of a noisy table.
//
// Pathless collections mix clean and dirty data; a cell is one of
// {null, int64, double, string}. Values order and hash across types so that
// row hashing, join keys and inverted indexes treat cells uniformly.

#ifndef VER_TABLE_VALUE_H_
#define VER_TABLE_VALUE_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/hash.h"

namespace ver {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeToString(ValueType t);

// Cell hash primitives, shared by Value::Hash and the columnar CellView /
// ColumnData fast paths so every representation of the same logical cell
// hashes to the same 64 bits.

inline constexpr uint64_t kNullValueHash = 0x6e756c6c6e756c6cULL;

inline uint64_t HashIntValue(int64_t v) {
  return Mix64(static_cast<uint64_t>(v) ^ 0x1234abcdULL);
}

/// Integral doubles hash as their integer twin so 2 == 2.0 holds in hashed
/// containers, matching the cell total order.
inline uint64_t HashDoubleValue(double v) {
  double rounded = std::nearbyint(v);
  if (rounded == v && std::abs(v) < 9.2e18) {
    return HashIntValue(static_cast<int64_t>(v));
  }
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits ^ 0x9876fedcULL);
}

inline uint64_t HashStringValue(std::string_view s) { return HashString(s); }

/// A single table cell. Small, copyable, totally ordered.
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull), int_(0), double_(0) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }

  /// Parses with type inference: "" -> null, "42" -> int, "4.2" -> double,
  /// anything else -> string (trimmed).
  static Value Parse(std::string_view text);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble;
  }

  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == ValueType::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  /// Canonical textual form; Parse(ToText()) round-trips the value.
  std::string ToText() const;

  /// Stable 64-bit hash; equal values hash equally, including int/double
  /// values that compare equal (e.g. 2 == 2.0).
  uint64_t Hash() const;

  /// Total order: null < numerics (by numeric value) < strings (lexicographic).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  ValueType type_;
  int64_t int_;
  double double_;
  std::string string_;
};

}  // namespace ver

#endif  // VER_TABLE_VALUE_H_
