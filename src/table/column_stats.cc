#include "table/column_stats.h"

#include <unordered_set>

namespace ver {

ColumnStats ComputeColumnStats(const Table& table, int col) {
  const ColumnData& data = table.column_data(col);
  ColumnStats stats;
  stats.num_rows = table.num_rows();
  stats.num_nulls = data.null_count();
  // Distinct non-null hashes: dictionary columns answer from cached entry
  // hashes; typed numeric columns scan without materializing Values.
  stats.num_distinct = data.DistinctCount(/*count_null=*/false);
  int64_t ints = data.int_count();
  int64_t doubles = data.double_count();
  int64_t strings = data.string_count();
  if (strings >= ints && strings >= doubles && strings > 0) {
    stats.dominant_type = ValueType::kString;
  } else if (doubles >= ints && doubles > 0) {
    stats.dominant_type = ValueType::kDouble;
  } else if (ints > 0) {
    stats.dominant_type = ValueType::kInt;
  }
  return stats;
}

void ColumnStats::SaveTo(SerdeWriter* w) const {
  w->WriteI64(num_rows);
  w->WriteI64(num_nulls);
  w->WriteI64(num_distinct);
  w->WriteU8(static_cast<uint8_t>(dominant_type));
}

Status ColumnStats::LoadFrom(SerdeReader* r) {
  VER_RETURN_IF_ERROR(r->ReadI64(&num_rows));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_nulls));
  VER_RETURN_IF_ERROR(r->ReadI64(&num_distinct));
  uint8_t type;
  VER_RETURN_IF_ERROR(r->ReadU8(&type));
  if (type > static_cast<uint8_t>(ValueType::kString)) {
    return Status::IOError("corrupt column stats: unknown value type " +
                           std::to_string(type));
  }
  dominant_type = static_cast<ValueType>(type);
  return Status::OK();
}

std::vector<uint64_t> DistinctValueHashes(const Table& table, int col) {
  return table.column_data(col).DistinctHashes();
}

std::vector<int> ApproximateKeyColumns(const Table& table,
                                       double min_uniqueness) {
  std::vector<int> keys;
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnStats stats = ComputeColumnStats(table, c);
    // A key must actually identify rows: require low nulls and uniqueness.
    if (stats.num_rows > 0 && stats.null_fraction() < 0.05 &&
        stats.uniqueness() >= min_uniqueness) {
      keys.push_back(c);
    }
  }
  return keys;
}

}  // namespace ver
