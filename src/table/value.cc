#include "table/value.h"

#include <cmath>
#include <cstdlib>

#include "util/hash.h"
#include "util/string_util.h"

namespace ver {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

Value Value::Parse(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return Null();
  if (LooksLikeInt(trimmed)) {
    // Very long digit strings overflow int64; keep them as strings (they are
    // usually identifiers, not quantities).
    if (trimmed.size() <= 18 ||
        (trimmed.size() == 19 && (trimmed[0] == '-' || trimmed[0] == '+'))) {
      return Int(std::strtoll(std::string(trimmed).c_str(), nullptr, 10));
    }
    return String(std::string(trimmed));
  }
  if (LooksLikeDouble(trimmed)) {
    return Double(std::strtod(std::string(trimmed).c_str(), nullptr));
  }
  return String(std::string(trimmed));
}

std::string Value::ToText() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble: {
      // Shortest representation that still round-trips through Parse.
      std::string s = FormatDouble(double_, 9);
      return s;
    }
    case ValueType::kString:
      return string_;
  }
  return "";
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return kNullValueHash;
    case ValueType::kInt:
      return HashIntValue(int_);
    case ValueType::kDouble:
      return HashDoubleValue(double_);
    case ValueType::kString:
      return HashStringValue(string_);
  }
  return 0;
}

int Value::Compare(const Value& other) const {
  // Rank: null(0) < numeric(1) < string(2).
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type_), rb = rank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
        if (int_ == other.int_) return 0;
        return int_ < other.int_ ? -1 : 1;
      }
      double a = AsDouble(), b = other.AsDouble();
      if (a == b) return 0;
      return a < b ? -1 : 1;
    }
    default:
      return string_.compare(other.string_) < 0
                 ? -1
                 : (string_ == other.string_ ? 0 : 1);
  }
}

}  // namespace ver
