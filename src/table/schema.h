// Schema of a (possibly noisy) table: attributes may lack header names.

#ifndef VER_TABLE_SCHEMA_H_
#define VER_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "table/value.h"
#include "util/serde.h"

namespace ver {

/// One column header. `name` may be empty — Definition 1 in the paper allows
/// missing header values in noisy structured data.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool has_name() const { return !name.empty(); }
};

/// Ordered list of attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  Attribute& attribute(int i) { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  void AddAttribute(Attribute attr) { attributes_.push_back(std::move(attr)); }

  /// Index of the attribute with the given (case-insensitive) name, or -1.
  int IndexOf(const std::string& name) const;

  /// Order-insensitive signature over lowercased attribute names; two views
  /// fall in the same schema-based block (Alg. 3 line 2) iff signatures match.
  std::string CanonicalSignature() const;

  /// Attribute names joined by ", " for display.
  std::string ToString() const;

  /// Snapshot serialization (discovery snapshots persist table schemas so
  /// a loaded index can be validated against the live repository).
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r);

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace ver

#endif  // VER_TABLE_SCHEMA_H_
