#include "table/csv.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ver {

namespace {

// Splits one logical CSV record honoring quotes; advances *pos past the
// record's trailing newline. Returns false at end of input.
bool NextRecord(const std::string& text, size_t* pos, char delim,
                std::vector<std::string>* fields) {
  if (*pos >= text.size()) return false;
  fields->clear();
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      break;
    } else {
      field.push_back(c);
    }
  }
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

bool NeedsQuoting(const std::string& s, char delim) {
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& s, char delim) {
  if (!NeedsQuoting(s, delim)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text, std::string table_name,
                            const CsvOptions& options) {
  size_t pos = 0;
  std::vector<std::string> fields;
  Schema schema;
  bool have_schema = false;

  if (options.has_header) {
    if (!NextRecord(text, &pos, options.delimiter, &fields)) {
      return Table(std::move(table_name), Schema());
    }
    for (const std::string& name : fields) {
      schema.AddAttribute(Attribute{Trim(name), ValueType::kString});
    }
    have_schema = true;
  }

  Table table;
  bool table_initialized = false;
  while (NextRecord(text, &pos, options.delimiter, &fields)) {
    // Skip fully empty trailing records.
    if (fields.size() == 1 && TrimView(fields[0]).empty() &&
        pos >= text.size()) {
      break;
    }
    if (!have_schema) {
      for (size_t i = 0; i < fields.size(); ++i) {
        schema.AddAttribute(Attribute{"", ValueType::kString});
      }
      have_schema = true;
    }
    if (!table_initialized) {
      table = Table(table_name, schema);
      // Record count upper bound (quoted newlines only overshoot), so
      // AppendRow never reallocates a column mid-load.
      table.Reserve(static_cast<int64_t>(std::count(
                        text.begin() + static_cast<ptrdiff_t>(pos), text.end(),
                        '\n')) +
                    2);
      table_initialized = true;
    }
    if (static_cast<int>(fields.size()) > table.num_columns()) {
      return Status::InvalidArgument(
          "csv record with " + std::to_string(fields.size()) +
          " fields exceeds " + std::to_string(table.num_columns()) +
          " columns in table '" + table_name + "'");
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) row.push_back(Value::Parse(f));
    VER_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  if (!table_initialized) table = Table(std::move(table_name), schema);
  table.InferColumnTypes();
  table.Seal();
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string stem = std::filesystem::path(path).stem().string();
  return ReadCsvString(buffer.str(), std::move(stem), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += QuoteField(table.schema().attribute(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += QuoteField(table.cell(r, c).ToText(), options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, options);
  if (!out.good()) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace ver
