// CSV reader/writer with quoting and type inference.
//
// The materializer can spill candidate views to disk as CSV and the
// distillation stage reads them back (the paper's "Get Views Time"), so the
// reader/writer pair must round-trip values exactly.

#ifndef VER_TABLE_CSV_H_
#define VER_TABLE_CSV_H_

#include <string>

#include "table/table.h"
#include "util/result.h"

namespace ver {

struct CsvOptions {
  char delimiter = ',';
  /// When true the first record provides attribute names; otherwise columns
  /// are unnamed (noisy tables may lack header information).
  bool has_header = true;
};

/// Parses CSV text into a table named `table_name`.
Result<Table> ReadCsvString(const std::string& text, std::string table_name,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV file; the table is named after the file stem.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = CsvOptions());

/// Serializes a table to CSV text (RFC-4180-style quoting).
std::string WriteCsvString(const Table& table,
                           const CsvOptions& options = CsvOptions());

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = CsvOptions());

}  // namespace ver

#endif  // VER_TABLE_CSV_H_
