// Columnar in-memory table: the unit of a pathless table collection.
//
// Cells live in typed ColumnData columns (null bitmaps, typed payload
// vectors, dictionary-encoded strings — see table/column_data.h). The fast
// read path is cell()/cell_hash() over 16-byte CellViews; at() survives as
// the legacy boundary accessor and materializes an owning Value per call.

#ifndef VER_TABLE_TABLE_H_
#define VER_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/column_data.h"
#include "table/schema.h"
#include "table/value.h"
#include "util/result.h"

namespace ver {

/// A named table with a (possibly noisy) schema and typed columnar storage.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int num_columns() const { return schema_.num_attributes(); }
  int64_t num_rows() const { return num_rows_; }

  /// Pre-allocates every column for `rows` total rows, so AppendRow never
  /// reallocates mid-load.
  void Reserve(int64_t rows);

  /// Appends one row; missing trailing cells become null, extra cells are an
  /// error (Definition 1 allows at most m values per tuple).
  Status AppendRow(std::vector<Value> row);

  /// Appends one row of cell views (zero-copy ingest path; string bytes are
  /// copied into the column dictionaries). Same padding/arity rules as
  /// AppendRow.
  Status AppendCells(const std::vector<CellView>& row);

  /// Legacy accessor: materializes an owning Value copy of one cell.
  /// Scan loops must use cell()/cell_hash()/column_data() instead. Allowed
  /// (cold) call sites: the storage-equivalence tests and
  /// bench_storage_scan's seed-layout rebuild (both deliberately exercise
  /// the materializing path as the reference), CSV/debug row rendering,
  /// and one-shot boundary reads in tests.
  Value at(int64_t row, int col) const { return columns_[col].value(row); }

  /// Zero-copy cell read; the view is invalidated by table mutation.
  CellView cell(int64_t row, int col) const { return columns_[col].cell(row); }

  /// Value-compatible hash of one cell without materializing it
  /// (dictionary columns answer from cached entry hashes).
  uint64_t cell_hash(int64_t row, int col) const {
    return columns_[col].CellHash(row);
  }

  /// Typed column storage (profiling / indexing fast paths).
  const ColumnData& column_data(int col) const { return columns_[col]; }

  /// Materialized copy of row `row`.
  std::vector<Value> Row(int64_t row) const;

  /// Stable hash of one row (order-sensitive in schema column order).
  uint64_t RowHash(int64_t row) const;

  /// Hash of every row; the row-wise hash function H of Algorithm 3.
  std::vector<uint64_t> AllRowHashes() const;

  /// Distinct count of a column (null counts as a value).
  int64_t DistinctCount(int col) const;

  /// Projects to `col_indices` (in that order), optionally de-duplicating
  /// rows. PJ-views use distinct=true (set semantics). Dedup is row-hash
  /// based with exact cell comparison on hash collisions, and skips
  /// duplicate rows without materializing them.
  Table Project(const std::vector<int>& col_indices, bool distinct,
                std::string new_name) const;

  /// Re-infers attribute types from the data (majority non-null cell type).
  /// O(columns): the per-type tallies are maintained by the columns.
  void InferColumnTypes();

  /// Sorts every column dictionary, drops ingest-only intern maps and
  /// capacity slack. Purely an internal re-layout — call once ingest is
  /// done (CSV reader and TableRepository::AddTable do). Appending later
  /// transparently unseals the touched columns.
  void Seal();

  /// Frees only the ingest intern maps — the cheap per-query compaction
  /// for transient tables (materialized views, projections) that skips
  /// Seal()'s dictionary sort and shrink reallocations.
  void DropInternMaps();

  /// Resident bytes across all column storage.
  size_t ApproxBytes() const;

  /// Columnar snapshot serialization: name, schema, then each column's
  /// memcpy-loadable sections (see ColumnData::SaveTo). A non-null pager
  /// `binding` makes every column adopt its bulk arrays as borrowed
  /// extents of the mmapped snapshot instead of copying them.
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const PagerBinding* binding = nullptr);

  /// True when any column borrows mapped snapshot storage.
  bool paged() const {
    for (const ColumnData& c : columns_) {
      if (c.paged()) return true;
    }
    return false;
  }

  /// Adds every column's paged extents to `pin` (no-op when resident).
  void PinInto(PagePin* pin) const {
    for (const ColumnData& c : columns_) c.PinInto(pin);
  }

  /// First `max_rows` rows rendered as text, for debugging and examples.
  std::string ToString(int64_t max_rows = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnData> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace ver

#endif  // VER_TABLE_TABLE_H_
