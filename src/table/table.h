// Columnar in-memory table: the unit of a pathless table collection.

#ifndef VER_TABLE_TABLE_H_
#define VER_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/schema.h"
#include "table/value.h"
#include "util/result.h"

namespace ver {

/// A named table with a (possibly noisy) schema and columnar storage.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  int num_columns() const { return schema_.num_attributes(); }
  int64_t num_rows() const { return num_rows_; }

  /// Appends one row; missing trailing cells become null, extra cells are an
  /// error (Definition 1 allows at most m values per tuple).
  Status AppendRow(std::vector<Value> row);

  const Value& at(int64_t row, int col) const { return columns_[col][row]; }
  void set(int64_t row, int col, Value v) {
    columns_[col][row] = std::move(v);
  }

  const std::vector<Value>& column(int col) const { return columns_[col]; }

  /// Materialized copy of row `row`.
  std::vector<Value> Row(int64_t row) const;

  /// Stable hash of one row (order-sensitive in schema column order).
  uint64_t RowHash(int64_t row) const;

  /// Hash of every row; the row-wise hash function H of Algorithm 3.
  std::vector<uint64_t> AllRowHashes() const;

  /// Distinct count of a column (null counts as a value).
  int64_t DistinctCount(int col) const;

  /// Projects to `col_indices` (in that order), optionally de-duplicating
  /// rows. PJ-views use distinct=true (set semantics).
  Table Project(const std::vector<int>& col_indices, bool distinct,
                std::string new_name) const;

  /// Re-infers attribute types from the data (majority non-null cell type).
  void InferColumnTypes();

  /// First `max_rows` rows rendered as text, for debugging and examples.
  std::string ToString(int64_t max_rows = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace ver

#endif  // VER_TABLE_TABLE_H_
