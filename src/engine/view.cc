#include "engine/view.h"

#include <algorithm>

namespace ver {

bool View::HasSameProjection(const std::vector<ColumnRef>& other) const {
  if (projection.size() != other.size()) return false;
  std::vector<uint64_t> a, b;
  a.reserve(projection.size());
  b.reserve(other.size());
  for (const ColumnRef& c : projection) a.push_back(c.Encode());
  for (const ColumnRef& c : other) b.push_back(c.Encode());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace ver
