#include "engine/materializer.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "table/csv.h"
#include "util/check.h"
#include "util/hash.h"

namespace ver {

namespace {

// Intermediate join state: for every table bound so far, the row index each
// output tuple takes from that table.
struct Bindings {
  std::vector<int32_t> tables;                 // bound tables, in bind order
  std::vector<std::vector<int64_t>> tuples;    // tuples[i][t] = row in tables[t]

  int IndexOfTable(int32_t table) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == table) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace

Result<Table> Materializer::Materialize(
    const JoinGraph& graph, const std::vector<ColumnRef>& projection,
    const MaterializeOptions& options, std::string view_name) const {
  if (projection.empty()) {
    return Status::InvalidArgument("projection must not be empty");
  }

  // Single-table graph: plain projection.
  if (graph.edges.empty()) {
    if (graph.tables.size() != 1) {
      return Status::InvalidArgument(
          "edgeless join graph must cover exactly one table");
    }
    int32_t t = graph.tables[0];
    std::vector<int> cols;
    for (const ColumnRef& p : projection) {
      if (p.table_id != t) {
        return Status::InvalidArgument(
            "projection column " + p.ToString() +
            " outside single-table graph over table " + std::to_string(t));
      }
      cols.push_back(p.column_index);
    }
    return repo_->table(t).Project(cols, options.distinct,
                                   std::move(view_name));
  }

  // Seed bindings with the first edge's left table, then BFS join edges
  // whose endpoint tables become reachable.
  Bindings state;
  int32_t seed = graph.edges.front().left.table_id;
  state.tables.push_back(seed);
  const Table& seed_table = repo_->table(seed);
  state.tuples.reserve(static_cast<size_t>(seed_table.num_rows()));
  for (int64_t r = 0; r < seed_table.num_rows(); ++r) {
    state.tuples.push_back({r});
  }

  std::vector<bool> edge_done(graph.edges.size(), false);
  size_t remaining = graph.edges.size();
  while (remaining > 0) {
    // Pick an edge with at least one bound endpoint.
    int chosen = -1;
    for (size_t i = 0; i < graph.edges.size(); ++i) {
      if (edge_done[i]) continue;
      if (state.IndexOfTable(graph.edges[i].left.table_id) >= 0 ||
          state.IndexOfTable(graph.edges[i].right.table_id) >= 0) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    if (chosen < 0) {
      return Status::InvalidArgument(
          "join graph is disconnected; cannot materialize");
    }
    const JoinEdge& edge = graph.edges[chosen];
    edge_done[chosen] = true;
    --remaining;

    int left_idx = state.IndexOfTable(edge.left.table_id);
    int right_idx = state.IndexOfTable(edge.right.table_id);

    if (left_idx >= 0 && right_idx >= 0) {
      // Both sides bound: filter tuples where the key values agree.
      const ColumnData& lc =
          repo_->table(edge.left.table_id).column_data(edge.left.column_index);
      const ColumnData& rc = repo_->table(edge.right.table_id)
                                 .column_data(edge.right.column_index);
      std::vector<std::vector<int64_t>> kept;
      for (auto& tuple : state.tuples) {
        // Every tuple carries one row index per bound table, in bind order;
        // a shorter tuple would read a stale slot below.
        VER_DCHECK(tuple.size() == state.tables.size())
            << "tuple width " << tuple.size() << " != " << state.tables.size()
            << " bound tables";
        CellView lv = lc.cell(tuple[left_idx]);
        CellView rv = rc.cell(tuple[right_idx]);
        if (!lv.is_null() && lv == rv) kept.push_back(std::move(tuple));
      }
      state.tuples = std::move(kept);
      continue;
    }

    // One side bound: hash join to extend bindings with the new table.
    const ColumnRef& bound_col = left_idx >= 0 ? edge.left : edge.right;
    const ColumnRef& new_col = left_idx >= 0 ? edge.right : edge.left;
    int bound_idx = left_idx >= 0 ? left_idx : right_idx;

    const Table& new_table = repo_->table(new_col.table_id);
    const ColumnData& new_data = new_table.column_data(new_col.column_index);
    std::unordered_map<uint64_t, std::vector<int64_t>> build;
    build.reserve(static_cast<size_t>(new_table.num_rows()));
    for (int64_t r = 0; r < new_table.num_rows(); ++r) {
      if (new_data.is_null(r)) continue;  // null keys never join
      // Dictionary columns answer CellHash from cached entry hashes, so
      // the build side never re-hashes string bytes.
      build[new_data.CellHash(r)].push_back(r);
    }

    const ColumnData& bound_data =
        repo_->table(bound_col.table_id).column_data(bound_col.column_index);
    std::vector<std::vector<int64_t>> next;
    for (const auto& tuple : state.tuples) {
      VER_DCHECK(static_cast<size_t>(bound_idx) < tuple.size())
          << "bound slot " << bound_idx << " outside tuple of "
          << tuple.size();
      int64_t bound_row = tuple[bound_idx];
      if (bound_data.is_null(bound_row)) continue;
      auto it = build.find(bound_data.CellHash(bound_row));
      if (it == build.end()) continue;
      CellView v = bound_data.cell(bound_row);
      for (int64_t r : it->second) {
        // Hash equality is not value equality; verify to be exact.
        if (!(new_data.cell(r) == v)) continue;
        std::vector<int64_t> extended = tuple;
        extended.push_back(r);
        next.push_back(std::move(extended));
        if (static_cast<int64_t>(next.size()) >
            options.max_intermediate_rows) {
          return Status::OutOfRange(
              "intermediate join result exceeded max_intermediate_rows (" +
              std::to_string(options.max_intermediate_rows) + ")");
        }
      }
    }
    state.tables.push_back(new_col.table_id);
    state.tuples = std::move(next);
  }

  // Project with optional distinct. Resolve each projected column to its
  // tuple slot and typed storage once, outside the row loop.
  Schema schema;
  for (const ColumnRef& p : projection) {
    schema.AddAttribute(repo_->attribute(p));
  }
  std::vector<int> slots;
  std::vector<const ColumnData*> cols;
  slots.reserve(projection.size());
  cols.reserve(projection.size());
  for (const ColumnRef& p : projection) {
    int idx = state.IndexOfTable(p.table_id);
    if (idx < 0) {
      return Status::InvalidArgument("projection column " + p.ToString() +
                                     " not covered by join graph");
    }
    slots.push_back(idx);
    cols.push_back(&repo_->table(p.table_id).column_data(p.column_index));
  }
  Table out(std::move(view_name), std::move(schema));
  // Distinct hashes the projected cells first (cached dictionary hashes,
  // no Value materialization) and only confirms collisions cell-by-cell
  // through the shared RowDeduper — duplicate tuples are skipped without
  // ever building a row.
  RowDeduper deduper;
  auto tuple_cell = [&](int64_t tuple_index, int p) {
    return cols[p]->cell(state.tuples[tuple_index][slots[p]]);
  };
  std::vector<CellView> row;
  row.reserve(projection.size());
  for (size_t ti = 0; ti < state.tuples.size(); ++ti) {
    const std::vector<int64_t>& tuple = state.tuples[ti];
    VER_DCHECK(tuple.size() == state.tables.size())
        << "tuple width " << tuple.size() << " != " << state.tables.size()
        << " bound tables at projection";
    if (options.distinct) {
      uint64_t h = 0x726f7768617368ULL;
      for (size_t p = 0; p < projection.size(); ++p) {
        h = HashCombine(h, cols[p]->CellHash(tuple[slots[p]]));
      }
      if (!deduper.Insert(h, static_cast<int64_t>(ti),
                          static_cast<int>(projection.size()), tuple_cell)) {
        continue;
      }
    }
    row.clear();
    for (size_t p = 0; p < projection.size(); ++p) {
      row.push_back(cols[p]->cell(tuple[slots[p]]));
    }
    VER_RETURN_IF_ERROR(out.AppendCells(row));
  }
  out.DropInternMaps();
  return out;
}

Result<View> Materializer::MaterializeView(
    const JoinGraph& graph, const std::vector<ColumnRef>& projection,
    const MaterializeOptions& options, int64_t view_id) const {
  std::string name = "view_" + std::to_string(view_id);
  VER_ASSIGN_OR_RETURN(Table table,
                       Materialize(graph, projection, options, name));
  View view;
  view.id = view_id;
  view.table = std::move(table);
  view.graph = graph;
  view.projection = projection;
  view.score = graph.score;
  if (!options.spill_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.spill_dir, ec);
    view.spill_path =
        (fs::path(options.spill_dir) / (name + ".csv")).string();
    VER_RETURN_IF_ERROR(WriteCsvFile(view.table, view.spill_path));
  }
  return view;
}

}  // namespace ver
