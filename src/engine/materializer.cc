#include "engine/materializer.h"

#include <algorithm>
#include <filesystem>

#include "table/csv.h"
#include "util/check.h"
#include "util/flat_multimap.h"
#include "util/hash.h"

namespace ver {

namespace {

// Intermediate join state: for every table bound so far, the row index each
// output tuple takes from that table.
struct Bindings {
  std::vector<int32_t> tables;                 // bound tables, in bind order
  std::vector<std::vector<int64_t>> tuples;    // tuples[i][t] = row in tables[t]

  int IndexOfTable(int32_t table) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == table) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace

Result<Table> Materializer::Materialize(
    const JoinGraph& graph, const std::vector<ColumnRef>& projection,
    const MaterializeOptions& options, std::string view_name) const {
  if (projection.empty()) {
    return Status::InvalidArgument("projection must not be empty");
  }

  // Anti-thrash residency accounting for paged repositories: pin the
  // touched tables' mapped extents for the duration of this
  // materialization so concurrent queries' faults do not evict pages a
  // join is mid-scan over. Correctness never depends on the pin (an
  // evicted frame transparently refaults); released on every return path.
  PagePin pin;
  if (repo_->pager() != nullptr) {
    pin = PagePin(repo_->pager()->pool().get());
    for (int32_t t : graph.tables) repo_->table(t).PinInto(&pin);
    for (const JoinEdge& e : graph.edges) {
      repo_->table(e.left.table_id).PinInto(&pin);
      repo_->table(e.right.table_id).PinInto(&pin);
    }
  }

  // Single-table graph: plain projection.
  if (graph.edges.empty()) {
    if (graph.tables.size() != 1) {
      return Status::InvalidArgument(
          "edgeless join graph must cover exactly one table");
    }
    int32_t t = graph.tables[0];
    std::vector<int> cols;
    for (const ColumnRef& p : projection) {
      if (p.table_id != t) {
        return Status::InvalidArgument(
            "projection column " + p.ToString() +
            " outside single-table graph over table " + std::to_string(t));
      }
      cols.push_back(p.column_index);
    }
    return repo_->table(t).Project(cols, options.distinct,
                                   std::move(view_name));
  }

  // Seed bindings with the first edge's left table, then BFS join edges
  // whose endpoint tables become reachable.
  Bindings state;
  int32_t seed = graph.edges.front().left.table_id;
  state.tables.push_back(seed);
  const Table& seed_table = repo_->table(seed);
  state.tuples.reserve(static_cast<size_t>(seed_table.num_rows()));
  for (int64_t r = 0; r < seed_table.num_rows(); ++r) {
    state.tuples.push_back({r});
  }

  std::vector<bool> edge_done(graph.edges.size(), false);
  size_t remaining = graph.edges.size();
  while (remaining > 0) {
    // Pick an edge with at least one bound endpoint.
    int chosen = -1;
    for (size_t i = 0; i < graph.edges.size(); ++i) {
      if (edge_done[i]) continue;
      if (state.IndexOfTable(graph.edges[i].left.table_id) >= 0 ||
          state.IndexOfTable(graph.edges[i].right.table_id) >= 0) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    if (chosen < 0) {
      return Status::InvalidArgument(
          "join graph is disconnected; cannot materialize");
    }
    const JoinEdge& edge = graph.edges[chosen];
    edge_done[chosen] = true;
    --remaining;

    int left_idx = state.IndexOfTable(edge.left.table_id);
    int right_idx = state.IndexOfTable(edge.right.table_id);

    if (left_idx >= 0 && right_idx >= 0) {
      // Both sides bound: filter tuples where the key values agree.
      const ColumnData& lc =
          repo_->table(edge.left.table_id).column_data(edge.left.column_index);
      const ColumnData& rc = repo_->table(edge.right.table_id)
                                 .column_data(edge.right.column_index);
      std::vector<std::vector<int64_t>> kept;
      for (auto& tuple : state.tuples) {
        // Every tuple carries one row index per bound table, in bind order;
        // a shorter tuple would read a stale slot below.
        VER_DCHECK(tuple.size() == state.tables.size())
            << "tuple width " << tuple.size() << " != " << state.tables.size()
            << " bound tables";
        CellView lv = lc.cell(tuple[left_idx]);
        CellView rv = rc.cell(tuple[right_idx]);
        if (!lv.is_null() && lv == rv) kept.push_back(std::move(tuple));
      }
      state.tuples = std::move(kept);
      continue;
    }

    // One side bound: hash join to extend bindings with the new table.
    const ColumnRef& bound_col = left_idx >= 0 ? edge.left : edge.right;
    const ColumnRef& new_col = left_idx >= 0 ? edge.right : edge.left;
    int bound_idx = left_idx >= 0 ? left_idx : right_idx;

    const Table& new_table = repo_->table(new_col.table_id);
    const ColumnData& new_data = new_table.column_data(new_col.column_index);
    // Build side: bulk-hash the key column through the blocked kernel
    // (dictionary columns answer from cached entry hashes, never touching
    // string bytes), then load a flat open-addressing multimap. Null keys
    // are masked out via the validity bitmap — null keys never join —
    // and each group keeps its rows in ascending row order, preserving
    // the extension order of the unordered_map + vector build it replaces.
    std::vector<uint64_t> build_keys(
        static_cast<size_t>(new_table.num_rows()));
    new_data.CellHashesInto(build_keys.data(), new_table.num_rows());
    FlatU64MultiMap build;
    build.Build(build_keys.data(), new_data.validity_words(),
                new_table.num_rows());

    const ColumnData& bound_data =
        repo_->table(bound_col.table_id).column_data(bound_col.column_index);
    std::vector<std::vector<int64_t>> next;
    // Probe in batches of 8: hash the batch's keys and prefetch their home
    // buckets first, so the dependent slot loads of the probe loop hit
    // cache instead of stalling one miss at a time.
    constexpr size_t kProbeBatch = 8;
    uint64_t probe_keys[kProbeBatch];
    const size_t num_tuples = state.tuples.size();
    for (size_t batch = 0; batch < num_tuples; batch += kProbeBatch) {
      const size_t batch_len = std::min(kProbeBatch, num_tuples - batch);
      for (size_t i = 0; i < batch_len; ++i) {
        const std::vector<int64_t>& tuple = state.tuples[batch + i];
        VER_DCHECK(static_cast<size_t>(bound_idx) < tuple.size())
            << "bound slot " << bound_idx << " outside tuple of "
            << tuple.size();
        int64_t bound_row = tuple[bound_idx];
        if (bound_data.is_null(bound_row)) continue;
        probe_keys[i] = bound_data.CellHash(bound_row);
        build.PrefetchBucket(probe_keys[i]);
      }
      for (size_t i = 0; i < batch_len; ++i) {
        const std::vector<int64_t>& tuple = state.tuples[batch + i];
        int64_t bound_row = tuple[bound_idx];
        if (bound_data.is_null(bound_row)) continue;
        FlatU64MultiMap::Group group = build.Find(probe_keys[i]);
        if (group.size == 0) continue;
        CellView v = bound_data.cell(bound_row);
        for (size_t k = 0; k < group.size; ++k) {
          int64_t r = group.begin[k];
          // Hash equality is not value equality; verify to be exact.
          if (!(new_data.cell(r) == v)) continue;
          std::vector<int64_t> extended = tuple;
          extended.push_back(r);
          next.push_back(std::move(extended));
          if (static_cast<int64_t>(next.size()) >
              options.max_intermediate_rows) {
            return Status::OutOfRange(
                "intermediate join result exceeded max_intermediate_rows (" +
                std::to_string(options.max_intermediate_rows) + ")");
          }
        }
      }
    }
    state.tables.push_back(new_col.table_id);
    state.tuples = std::move(next);
  }

  // Project with optional distinct. Resolve each projected column to its
  // tuple slot and typed storage once, outside the row loop.
  Schema schema;
  for (const ColumnRef& p : projection) {
    schema.AddAttribute(repo_->attribute(p));
  }
  std::vector<int> slots;
  std::vector<const ColumnData*> cols;
  slots.reserve(projection.size());
  cols.reserve(projection.size());
  for (const ColumnRef& p : projection) {
    int idx = state.IndexOfTable(p.table_id);
    if (idx < 0) {
      return Status::InvalidArgument("projection column " + p.ToString() +
                                     " not covered by join graph");
    }
    slots.push_back(idx);
    cols.push_back(&repo_->table(p.table_id).column_data(p.column_index));
  }
  Table out(std::move(view_name), std::move(schema));
  // Distinct hashes the projected cells first (cached dictionary hashes,
  // no Value materialization) and only confirms collisions cell-by-cell
  // through the shared RowDeduper — duplicate tuples are skipped without
  // ever building a row.
  RowDeduper deduper;
  auto tuple_cell = [&](int64_t tuple_index, int p) {
    return cols[p]->cell(state.tuples[tuple_index][slots[p]]);
  };
  // Tuple hashes are precomputed column-major through the gathered combine
  // kernel (same seed and per-tuple HashCombine chain as the old per-cell
  // loop, bit-identical), so distinct never hashes inside the row loop.
  std::vector<uint64_t> tuple_hashes;
  if (options.distinct && !state.tuples.empty()) {
    const int64_t n = static_cast<int64_t>(state.tuples.size());
    tuple_hashes.assign(static_cast<size_t>(n), 0x726f7768617368ULL);
    std::vector<int64_t> gather_rows(static_cast<size_t>(n));
    for (size_t p = 0; p < projection.size(); ++p) {
      for (int64_t ti = 0; ti < n; ++ti) {
        gather_rows[ti] = state.tuples[ti][slots[p]];
      }
      cols[p]->CombineCellHashesInto(tuple_hashes.data(), gather_rows.data(),
                                     n);
    }
  }
  std::vector<CellView> row;
  row.reserve(projection.size());
  for (size_t ti = 0; ti < state.tuples.size(); ++ti) {
    const std::vector<int64_t>& tuple = state.tuples[ti];
    VER_DCHECK(tuple.size() == state.tables.size())
        << "tuple width " << tuple.size() << " != " << state.tables.size()
        << " bound tables at projection";
    if (options.distinct) {
      if (!deduper.Insert(tuple_hashes[ti], static_cast<int64_t>(ti),
                          static_cast<int>(projection.size()), tuple_cell)) {
        continue;
      }
    }
    row.clear();
    for (size_t p = 0; p < projection.size(); ++p) {
      row.push_back(cols[p]->cell(tuple[slots[p]]));
    }
    VER_RETURN_IF_ERROR(out.AppendCells(row));
  }
  out.DropInternMaps();
  return out;
}

Result<View> Materializer::MaterializeView(
    const JoinGraph& graph, const std::vector<ColumnRef>& projection,
    const MaterializeOptions& options, int64_t view_id) const {
  std::string name = "view_" + std::to_string(view_id);
  VER_ASSIGN_OR_RETURN(Table table,
                       Materialize(graph, projection, options, name));
  View view;
  view.id = view_id;
  view.table = std::move(table);
  view.graph = graph;
  view.projection = projection;
  view.score = graph.score;
  if (!options.spill_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.spill_dir, ec);
    view.spill_path =
        (fs::path(options.spill_dir) / (name + ".csv")).string();
    VER_RETURN_IF_ERROR(WriteCsvFile(view.table, view.spill_path));
  }
  return view;
}

}  // namespace ver
