// Materializer: executes project-join plans over the repository.
//
// The paper implements this component on pandas; here it is a small columnar
// executor: BFS over the join graph, hash join per edge, then projection with
// set semantics. Views can optionally be spilled to CSV so that downstream
// stages measure the "read views from disk" cost the paper reports (Fig. 3/4).

#ifndef VER_ENGINE_MATERIALIZER_H_
#define VER_ENGINE_MATERIALIZER_H_

#include <string>
#include <vector>

#include "discovery/join_graph.h"
#include "engine/view.h"
#include "storage/repository.h"
#include "util/result.h"

namespace ver {

struct MaterializeOptions {
  /// Set semantics for PJ-views (Algorithm 3 operates on row sets).
  bool distinct = true;
  /// Abort materialization when an intermediate exceeds this row count —
  /// a runaway join over a wrong path is a noisy-join-path artifact, not a
  /// useful view.
  int64_t max_intermediate_rows = 2'000'000;
  /// When non-empty, materialized views are also written as CSV here.
  std::string spill_dir;
};

/// Stateless executor bound to one repository.
class Materializer {
 public:
  explicit Materializer(const TableRepository* repo) : repo_(repo) {}

  /// Materializes `graph` and projects `projection` (one output attribute
  /// per entry). Output attribute names come from the source columns.
  Result<Table> Materialize(const JoinGraph& graph,
                            const std::vector<ColumnRef>& projection,
                            const MaterializeOptions& options,
                            std::string view_name) const;

  /// Materializes and wraps into a View (id assigned by the caller).
  Result<View> MaterializeView(const JoinGraph& graph,
                               const std::vector<ColumnRef>& projection,
                               const MaterializeOptions& options,
                               int64_t view_id) const;

 private:
  const TableRepository* repo_;
};

}  // namespace ver

#endif  // VER_ENGINE_MATERIALIZER_H_
