// View: a materialized candidate PJ-view plus its provenance.

#ifndef VER_ENGINE_VIEW_H_
#define VER_ENGINE_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "discovery/join_graph.h"
#include "table/table.h"

namespace ver {

/// A candidate PJ-view: the data, the join graph that produced it, and the
/// source columns each output attribute was projected from.
struct View {
  int64_t id = -1;
  Table table;
  JoinGraph graph;
  /// projection[i] is the source column backing output attribute i.
  std::vector<ColumnRef> projection;
  /// Ranking score inherited from the join graph (discovery-engine score).
  double score = 0.0;
  /// When spilled, path of the CSV holding the data.
  std::string spill_path;

  int64_t num_rows() const { return table.num_rows(); }

  /// True when this view was projected from exactly the given source
  /// columns (order-insensitive) — the ground-truth hit test.
  bool HasSameProjection(const std::vector<ColumnRef>& other) const;
};

}  // namespace ver

#endif  // VER_ENGINE_VIEW_H_
