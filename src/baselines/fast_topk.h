// FastTopK (S4 [35]) baseline: overlap-score ranking of candidate views.
//
// This is the comparison system of the paper's user study (Section VI-A) and
// the source of the SELECT-ALL column-selection strategy (Table V). It ranks
// views by how many of the query's example values they contain; the user
// then explores the ranking manually — there is no distillation and no
// question-driven navigation.

#ifndef VER_BASELINES_FAST_TOPK_H_
#define VER_BASELINES_FAST_TOPK_H_

#include <vector>

#include "core/query.h"
#include "engine/view.h"

namespace ver {

struct OverlapRankedView {
  int view_index = -1;
  /// Number of (attribute, example) pairs found in the view.
  int overlap = 0;
  /// Overlap normalized by total examples, in [0, 1].
  double score = 0.0;
};

/// Ranks `views` by example overlap, best first. Ties break toward smaller
/// views (more specific results), then lower index.
std::vector<OverlapRankedView> RankViewsByOverlap(
    const std::vector<View>& views, const ExampleQuery& query);

/// Overlap of a single view with the query examples.
int ViewOverlap(const View& view, const ExampleQuery& query);

}  // namespace ver

#endif  // VER_BASELINES_FAST_TOPK_H_
