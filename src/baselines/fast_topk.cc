#include "baselines/fast_topk.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_util.h"

namespace ver {

int ViewOverlap(const View& view, const ExampleQuery& query) {
  // Collect the view's cell texts once. Dictionary columns contribute each
  // distinct cell exactly once without a row scan; other encodings walk
  // rows through zero-copy views (the set dedups).
  std::unordered_set<std::string> cell_texts;
  const Table& t = view.table;
  for (int c = 0; c < t.num_columns(); ++c) {
    t.column_data(c).ForEachDistinctCell(
        [&](CellView v) { cell_texts.insert(ToLower(v.ToText())); });
  }
  int overlap = 0;
  for (const auto& column : query.columns) {
    for (const std::string& example : column) {
      if (cell_texts.count(ToLower(Trim(example)))) ++overlap;
    }
  }
  return overlap;
}

std::vector<OverlapRankedView> RankViewsByOverlap(
    const std::vector<View>& views, const ExampleQuery& query) {
  int total_examples = 0;
  for (const auto& column : query.columns) {
    total_examples += static_cast<int>(column.size());
  }
  std::vector<OverlapRankedView> ranked;
  ranked.reserve(views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    OverlapRankedView r;
    r.view_index = static_cast<int>(i);
    r.overlap = ViewOverlap(views[i], query);
    r.score = total_examples == 0
                  ? 0.0
                  : static_cast<double>(r.overlap) /
                        static_cast<double>(total_examples);
    ranked.push_back(r);
  }
  std::sort(ranked.begin(), ranked.end(),
            [&views](const OverlapRankedView& a, const OverlapRankedView& b) {
              if (a.overlap != b.overlap) return a.overlap > b.overlap;
              int64_t ra = views[a.view_index].table.num_rows();
              int64_t rb = views[b.view_index].table.num_rows();
              if (ra != rb) return ra < rb;
              return a.view_index < b.view_index;
            });
  return ranked;
}

}  // namespace ver
