// Annotated locking primitives: std::mutex / std::condition_variable with
// Clang thread-safety capabilities attached.
//
// libstdc++'s std::lock_guard and std::unique_lock carry no thread-safety
// attributes, so Clang's -Wthread-safety analysis cannot see that they
// acquire anything — a VER_GUARDED_BY member would warn on every access
// even inside a perfectly-locked critical section. These zero-overhead
// wrappers (every method is a single inlined forward) close that gap:
//
//   Mutex      a std::mutex that is a Clang "capability"
//   MutexLock  std::lock_guard equivalent the analysis understands
//   CondVar    std::condition_variable bound to Mutex; Wait() REQUIRES the
//              mutex, so predicate loops type-check under the analysis
//
// CondVar deliberately has no predicate-lambda Wait overload: the analysis
// cannot see into a lambda that a predicate would capture guarded state in.
// Write the standard explicit loop instead — it reads the same and every
// guarded access stays visible to the compiler:
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(mu_);     // ready_ is VER_GUARDED_BY(mu_)

#ifndef VER_UTIL_MUTEX_H_
#define VER_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace ver {

/// A std::mutex registered with Clang's capability analysis. Lock/Unlock
/// are for the RAII wrapper and CondVar; application code should use
/// MutexLock scopes.
class VER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VER_ACQUIRE() { mu_.lock(); }
  void Unlock() VER_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a Mutex (lock_guard equivalent). Takes a
/// pointer so call sites read `MutexLock lock(&mu_);` — acquiring a lock is
/// a side effect worth an explicit `&`.
class VER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) VER_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() VER_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to a Mutex. Wait() must be called with the
/// mutex held (enforced by the analysis) and returns with it held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; callers loop on their predicate.
  void Wait(Mutex& mu) VER_REQUIRES(mu) {
    // The caller's MutexLock owns the mutex; adopt it for the duration of
    // the wait and release() afterwards so ownership stays with the caller.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ver

#endif  // VER_UTIL_MUTEX_H_
