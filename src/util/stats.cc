#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ver {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<size_t>(std::floor(rank));
  auto hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50); }

FiveNumberSummary Summarize(const std::vector<double>& xs) {
  FiveNumberSummary s;
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = Percentile(sorted, 25);
  s.median = Percentile(sorted, 50);
  s.p75 = Percentile(sorted, 75);
  return s;
}

std::string FiveNumberSummary::ToString(int decimals) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.*f p25=%.*f med=%.*f p75=%.*f max=%.*f", decimals, min,
                decimals, p25, decimals, median, decimals, p75, decimals, max);
  return buf;
}

}  // namespace ver
