// Vectorized kernel layer: blocked, dispatch-selected inner loops for the
// storage engine's hot scans (row hashing, MinHash sketching, hash-join
// probing).
//
// Contract — bit identity. Every kernel computes exactly the function its
// scalar reference loop computes, at every dispatch level: the wide paths
// restructure the arithmetic (4x64-bit lanes, unrolled independent chains)
// but never change the hash family or the per-element math. The
// storage-equivalence and query-fingerprint suites, plus
// tests/simd_kernels_test.cc, hold this line; a kernel that is fast but
// off by one bit is a bug.
//
// Dispatch. ActiveLevel() is detected once per process (AVX-512F+DQ, then
// AVX2, via CPUID on x86-64; scalar elsewhere) and every kernel branches on
// it per *block*, not per element, so dispatch cost is invisible. The
// scalar tier is not a stub: it is unrolled into independent chains that
// superscalar hardware pipelines well, and it is the only tier on non-x86
// builds. VER_SIMD=scalar|avx2|avx512 (env) *caps* the tier at that level
// (never raises it above detection), and ScopedSimdLevel (tests/benches)
// forces one, so every supported tier stays continuously exercised.
//
// Why not hardware CRC32/CLMUL: the bit-identity contract pins the hash
// family to the splitmix64-based mixers of util/hash.h — CRC32-based cell
// hashes would change every persisted profile, snapshot fingerprint and
// equivalence baseline. Hardware carry-less multiply earns its keep only
// where hash *values* are free to differ across hosts, and no such site
// survives the contract; the wide integer multiply-mix below is the
// portable, value-stable alternative.

#ifndef VER_UTIL_SIMD_H_
#define VER_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ver {
namespace simd {

/// Dispatch tier of the kernel implementations.
enum class Level : int {
  kScalar = 0,  // unrolled portable loops (every platform)
  kAvx2 = 1,    // 4x64-bit integer lanes (x86-64 with AVX2)
  kAvx512 = 2,  // 8x64-bit lanes (x86-64 with AVX-512F+DQ: native 64-bit
                // multiply and unsigned min, mask-register twin tests)
};

const char* LevelName(Level level);

/// The tier kernels currently run at: the detected tier, unless overridden
/// by the VER_SIMD environment variable or a ScopedSimdLevel.
Level ActiveLevel();

/// Highest tier this CPU supports (ignores overrides).
Level DetectedLevel();

/// Test/bench hook: force a tier (clamped to DetectedLevel()) or reset to
/// detection. Not thread-safe against concurrent kernel calls; call it
/// from single-threaded test setup only.
void ForceLevel(Level level);
void ResetForcedLevel();

/// RAII override for tests: forces `level` for the scope's lifetime.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(Level level) { ForceLevel(level); }
  ~ScopedSimdLevel() { ResetForcedLevel(); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
};

/// Cells per kernel block: callers stage per-cell hashes through a stack
/// buffer of this many words, so blocked call sites never heap-allocate.
inline constexpr size_t kBlockCells = 256;

/// Prefetch a cache line for read. No-op where unsupported.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
#else
  (void)addr;
#endif
}

// ---------------------------------------------------------------------------
// Blocked kernels. Each documents its scalar reference; all tiers are
// bit-identical to it.
// ---------------------------------------------------------------------------

/// Row-hash combine: acc[i] = HashCombine(acc[i], hashes[i]) for i < n
/// (util/hash.h HashCombine — the Algorithm 3 row-hash accumulator).
void CombineHashes(uint64_t* acc, const uint64_t* hashes, size_t n);

/// Int-cell hashing: out[i] = HashIntValue(v[i]) for i < n
/// (table/value.h HashIntValue — Mix64 over the xored payload).
void HashInt64Cells(const int64_t* v, size_t n, uint64_t* out);

/// Fused hash+combine for all-valid int64 columns:
/// acc[i] = HashCombine(acc[i], HashIntValue(v[i])) for i < n. One pass —
/// no staging buffer between the cell hash and the row-hash accumulator.
void CombineInt64Cells(uint64_t* acc, const int64_t* v, size_t n);

/// Fused hash+combine for all-valid double columns:
/// acc[i] = HashCombine(acc[i], HashDoubleValue(v[i])) for i < n, with
/// HashDoubleValue's integral-twin rule intact (table/value.h). The AVX2
/// tier vectorizes the common all-non-integral groups and falls back to
/// the scalar hash for any 4-lane group containing an integral twin, so
/// the twin branch never costs bit identity.
void CombineDoubleCells(uint64_t* acc, const double* v, size_t n);

/// Fused gather+combine for all-valid dictionary columns:
/// acc[i] = HashCombine(acc[i], entry_hashes[codes[i]]) for i < n. The
/// AVX2 tier gathers 4 cached entry hashes per iteration straight off the
/// code array (vpgatherdq); every codes[i] must index entry_hashes.
void CombineDictCells(uint64_t* acc, const uint32_t* codes,
                      const uint64_t* entry_hashes, size_t n);

/// Fused hash+combine for all-valid tag-mixed numeric columns (the
/// kNumeric encoding: per-cell 64-bit payload in `num_bits`, bit i of
/// `int_tag_words` set when cell i is an int64, clear when it is a
/// double's bit pattern):
///   acc[i] = HashCombine(acc[i],
///                        tag ? HashIntValue(int64(num_bits[i]))
///                            : HashDoubleValue(double(num_bits[i])))
/// The wide tiers read the tags a lane-group at a time (the group's tag
/// bits never straddle a word because group starts are lane-aligned):
/// all-int groups take the integer path, all-double groups the double path
/// with the integral-twin guard of CombineDoubleCells, and mixed groups
/// fall back to the scalar hash — bit identity at every tier.
void CombineNumericCells(uint64_t* acc, const uint64_t* num_bits,
                         const uint64_t* int_tag_words, size_t n);

/// Blocked MinHash update: slots[j] = min(slots[j], Mix64(elems[i] ^
/// seeds[j])) over all i < n, for each permutation j < num_perms. Min is
/// commutative, so any evaluation order — the kernels tile permutations
/// into registers and stream the elements once — yields the scalar loop's
/// slots bit for bit.
void MinHashUpdate(uint64_t* slots, const uint64_t* seeds, size_t num_perms,
                   const uint64_t* elems, size_t n);

}  // namespace simd
}  // namespace ver

#endif  // VER_UTIL_SIMD_H_
