#include "util/latency_recorder.h"

#include "util/check.h"

namespace ver {

namespace {

// Largest nanosecond count a double of seconds may convert to without
// overflowing uint64 (2^63, ~292 years — far beyond any latency).
constexpr double kMaxNanosAsDouble = 9.2e18;

void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t LatencyRecorder::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBucketCount) return static_cast<size_t>(nanos);
  // Octave = floor(log2(nanos)); its kSubBucketCount linear sub-buckets
  // each span 2^(octave - kSubBucketBits) nanoseconds.
  const int octave = 63 - __builtin_clzll(nanos);
  const int shift = octave - kSubBucketBits;
  const uint64_t sub = (nanos >> shift) - kSubBucketCount;
  return kSubBucketCount +
         static_cast<size_t>(octave - kSubBucketBits) * kSubBucketCount +
         static_cast<size_t>(sub);
}

uint64_t LatencyRecorder::BucketLowerBound(size_t index) {
  VER_DCHECK(index < kNumBuckets) << "bucket index out of range";
  if (index < kSubBucketCount) return index;
  const uint64_t octave_offset =
      (index - kSubBucketCount) / kSubBucketCount;  // octave - kSubBucketBits
  const uint64_t sub = (index - kSubBucketCount) % kSubBucketCount;
  return (kSubBucketCount + sub) << octave_offset;
}

uint64_t LatencyRecorder::BucketUpperBound(size_t index) {
  VER_DCHECK(index < kNumBuckets) << "bucket index out of range";
  if (index < kSubBucketCount) return index;
  const uint64_t octave_offset = (index - kSubBucketCount) / kSubBucketCount;
  const uint64_t sub = (index - kSubBucketCount) % kSubBucketCount;
  return ((kSubBucketCount + sub + 1) << octave_offset) - 1;
}

void LatencyRecorder::Record(double seconds) {
  if (seconds <= 0) {
    RecordNanos(0);
    return;
  }
  const double nanos = seconds * 1e9;
  RecordNanos(nanos >= kMaxNanosAsDouble
                  ? static_cast<uint64_t>(kMaxNanosAsDouble)
                  : static_cast<uint64_t>(nanos));
}

void LatencyRecorder::RecordNanos(uint64_t nanos) {
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(&min_nanos_, nanos);
  AtomicMax(&max_nanos_, nanos);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_nanos_.fetch_add(other.sum_nanos_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  AtomicMin(&min_nanos_, other.min_nanos_.load(std::memory_order_relaxed));
  AtomicMax(&max_nanos_, other.max_nanos_.load(std::memory_order_relaxed));
}

void LatencyRecorder::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyRecorder::ValueAtQuantileNanos(double q) const {
  const int64_t total = count_.load(std::memory_order_relaxed);
  if (total <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the sample that answers the quantile, 1-based: the smallest
  // rank whose cumulative share is >= q (so p0 and p100 are min and max).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;

  const uint64_t observed_max = max_nanos_.load(std::memory_order_relaxed);
  int64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<int64_t>(
        buckets_[i].load(std::memory_order_relaxed));
    if (cumulative >= rank) {
      const uint64_t upper = BucketUpperBound(i);
      // The exact max is tracked separately; never report a bucket bound
      // beyond a value actually seen.
      return upper < observed_max ? upper : observed_max;
    }
  }
  // A concurrent Record bumped count_ before its bucket; report the max.
  return observed_max;
}

LatencyStats LatencyRecorder::Snapshot() const {
  LatencyStats stats;
  stats.count = count_.load(std::memory_order_relaxed);
  if (stats.count <= 0) return stats;
  stats.mean_s = static_cast<double>(sum_nanos_.load(
                     std::memory_order_relaxed)) /
                 static_cast<double>(stats.count) / 1e9;
  stats.p50_s = static_cast<double>(ValueAtQuantileNanos(0.50)) / 1e9;
  stats.p99_s = static_cast<double>(ValueAtQuantileNanos(0.99)) / 1e9;
  stats.p999_s = static_cast<double>(ValueAtQuantileNanos(0.999)) / 1e9;
  stats.max_s =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e9;
  return stats;
}

}  // namespace ver
