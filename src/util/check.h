// VER_CHECK: machine-checked invariants for conditions the code used to
// trust silently.
//
// A failed check prints `file:line  CHECK failed: <expr>  <message>` to
// stderr and aborts — an invariant violation means the process state is
// undefined, and continuing would turn a loud crash into silent data
// corruption. Checks are NOT error handling: anything a caller could
// plausibly trigger (bad file bytes, out-of-range user input) must return a
// Status instead. The full CHECK-vs-DCHECK-vs-Status policy is in
// docs/HARDENING.md.
//
//   VER_CHECK(cond)            always on, in every build type
//   VER_CHECK_OK(status_expr)  always on; prints Status::ToString() on fail
//   VER_DCHECK(cond)           debug builds only; compiled out (with its
//                              arguments still semantically checked but not
//                              evaluated) under NDEBUG — use on hot paths
//   VER_DCHECK_OK(status_expr) debug-only variant of VER_CHECK_OK
//
// Every macro accepts a streamed message tail for context:
//
//   VER_CHECK(row < num_rows_) << "row " << row << " of " << num_rows_;
//
// The message expressions after `<<` are evaluated only when the check
// fails, so an expensive diagnostic (e.g. ToString of a large object) costs
// nothing on the success path.

#ifndef VER_UTIL_CHECK_H_
#define VER_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace ver {
namespace internal {

/// Accumulates the streamed message of a failing check and aborts in its
/// destructor. Constructed only on the failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << "  CHECK failed: " << expr;
  }

  /// Appends user context: `VER_CHECK(x) << "detail " << v;`.
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << sep() << v;
    return *this;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

 private:
  const char* sep() {
    if (separated_) return "";
    separated_ = true;
    return "  ";
  }

  std::ostringstream stream_;
  bool separated_ = false;
};

/// Swallows streamed message operands of a compiled-out VER_DCHECK without
/// evaluating them (it sits on the never-taken branch of a short-circuit).
class CheckSink {
 public:
  template <typename T>
  CheckSink& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace ver

/// Fatal unless `cond` is true. Enabled in every build type.
#define VER_CHECK(cond)                                      \
  while (!(cond))                                            \
  ::ver::internal::CheckFailure(__FILE__, __LINE__, #cond)

/// Fatal unless `status_expr` evaluates to an OK Status.
#define VER_CHECK_OK(status_expr)                                        \
  for (::ver::Status _ver_check_st = (status_expr); !_ver_check_st.ok();) \
  ::ver::internal::CheckFailure(__FILE__, __LINE__, #status_expr)        \
      << _ver_check_st.ToString()

#ifndef NDEBUG
#define VER_DCHECK(cond) VER_CHECK(cond)
#define VER_DCHECK_OK(status_expr) VER_CHECK_OK(status_expr)
#else
// `false && (cond)`: the condition still type-checks (so a DCHECK cannot
// bit-rot in release-only code paths) but is never evaluated, and the whole
// statement folds away.
#define VER_DCHECK(cond) \
  while (false && (cond)) ::ver::internal::CheckSink()
#define VER_DCHECK_OK(status_expr) \
  while (false && (status_expr).ok()) ::ver::internal::CheckSink()
#endif

#endif  // VER_UTIL_CHECK_H_
