// Packed word-level bitset for dense integer membership sets.
//
// The discovery layer repeatedly answers "have I seen id k yet?" over a
// universe whose size it already knows (dictionary codes per column,
// profile ids per index). std::unordered_set<int> pays a heap node plus a
// hash per probe for that; a packed bitset answers the same question with
// one shift/mask into a contiguous uint64_t array and iterates set members
// in ascending order via ctz, 64 candidates per word.
//
// PackedBitset deliberately has no iterator types or proxy references —
// callers either probe (test / TestAndSet) inside their own first-occurrence
// loop, preserving whatever visit order that loop has, or drain ascending
// with ForEachSetBit.

#ifndef VER_UTIL_BITSET_H_
#define VER_UTIL_BITSET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ver {

class PackedBitset {
 public:
  PackedBitset() = default;
  explicit PackedBitset(size_t num_bits) { Resize(num_bits); }

  /// Grows or shrinks to `num_bits` capacity; newly exposed bits are clear.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  /// Clears every bit, keeping capacity.
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  size_t size_bits() const { return num_bits_; }

  bool test(size_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  void set(size_t bit) { words_[bit >> 6] |= uint64_t{1} << (bit & 63); }

  /// Sets `bit`; returns true iff it was previously clear (first sight).
  bool TestAndSet(size_t bit) {
    uint64_t& word = words_[bit >> 6];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    const bool was_clear = (word & mask) == 0;
    word |= mask;
    return was_clear;
  }

  size_t Popcount() const {
    size_t total = 0;
    for (uint64_t w : words_) total += __builtin_popcountll(w);
    return total;
  }

  /// Visits every set bit in ascending order: clears the lowest set bit of
  /// a word copy each step (w &= w - 1), so each word costs popcount(w)
  /// iterations, not 64.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ver

#endif  // VER_UTIL_BITSET_H_
