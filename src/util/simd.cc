#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "table/value.h"
#include "util/hash.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VER_SIMD_X86 1
#include <immintrin.h>
#else
#define VER_SIMD_X86 0
#endif

namespace ver {
namespace simd {

namespace {

// -1 = no override; otherwise the forced Level. Relaxed atomics: overrides
// are a single-threaded test/bench affordance, not a synchronization point.
std::atomic<int> g_forced_level{-1};

Level Detect() {
#if VER_SIMD_X86
  // The 512-bit tier needs DQ on top of F for the native 64-bit multiply
  // (vpmullq) — F alone would force the same 32-bit partial-product dance
  // as AVX2 and surrender most of the win.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq"))
    return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level EnvCap(Level detected) {
  // VER_SIMD caps the tier: it can hold a machine *below* its detected
  // level (for A/B runs and scalar soak tests) but never raises one above
  // it — requesting avx512 on an AVX2 box still runs AVX2.
  const char* env = std::getenv("VER_SIMD");
  if (env == nullptr) return detected;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "avx2") == 0)
    return detected < Level::kAvx2 ? detected : Level::kAvx2;
  return detected;  // "avx512" and unknown values keep the detected tier
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level kDetected = Detect();
  return kDetected;
}

Level ActiveLevel() {
  int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level kCapped = EnvCap(DetectedLevel());
  return kCapped;
}

void ForceLevel(Level level) {
  if (level > DetectedLevel()) level = DetectedLevel();
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetForcedLevel() {
  g_forced_level.store(-1, std::memory_order_relaxed);
}

// ------------------------------ scalar tier ------------------------------
//
// The portable tier is itself blocked: 4 independent accumulator chains per
// iteration keep the two Mix64 multiplies of neighbouring cells in flight
// together instead of serializing behind one chain.

namespace {

// column_data.cc keeps its bit-pattern decoder file-local, so the numeric
// kernel reconstructs the double the same way: a memcpy bit cast.
inline double DoubleFromBits(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// Scalar reference for one kNumeric cell: the tag bit picks the hash family.
inline uint64_t NumericCellHash(uint64_t bits, bool is_int) {
  return is_int ? HashIntValue(static_cast<int64_t>(bits))
                : HashDoubleValue(DoubleFromBits(bits));
}

void CombineHashesScalar(uint64_t* acc, const uint64_t* hashes, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64_t a0 = HashCombine(acc[i], hashes[i]);
    uint64_t a1 = HashCombine(acc[i + 1], hashes[i + 1]);
    uint64_t a2 = HashCombine(acc[i + 2], hashes[i + 2]);
    uint64_t a3 = HashCombine(acc[i + 3], hashes[i + 3]);
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], hashes[i]);
}

void HashInt64CellsScalar(const int64_t* v, size_t n, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64_t h0 = HashIntValue(v[i]);
    uint64_t h1 = HashIntValue(v[i + 1]);
    uint64_t h2 = HashIntValue(v[i + 2]);
    uint64_t h3 = HashIntValue(v[i + 3]);
    out[i] = h0;
    out[i + 1] = h1;
    out[i + 2] = h2;
    out[i + 3] = h3;
  }
  for (; i < n; ++i) out[i] = HashIntValue(v[i]);
}

void CombineInt64CellsScalar(uint64_t* acc, const int64_t* v, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64_t a0 = HashCombine(acc[i], HashIntValue(v[i]));
    uint64_t a1 = HashCombine(acc[i + 1], HashIntValue(v[i + 1]));
    uint64_t a2 = HashCombine(acc[i + 2], HashIntValue(v[i + 2]));
    uint64_t a3 = HashCombine(acc[i + 3], HashIntValue(v[i + 3]));
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashIntValue(v[i]));
}

void CombineDoubleCellsScalar(uint64_t* acc, const double* v, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64_t a0 = HashCombine(acc[i], HashDoubleValue(v[i]));
    uint64_t a1 = HashCombine(acc[i + 1], HashDoubleValue(v[i + 1]));
    uint64_t a2 = HashCombine(acc[i + 2], HashDoubleValue(v[i + 2]));
    uint64_t a3 = HashCombine(acc[i + 3], HashDoubleValue(v[i + 3]));
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashDoubleValue(v[i]));
}

void CombineDictCellsScalar(uint64_t* acc, const uint32_t* codes,
                            const uint64_t* entry_hashes, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64_t a0 = HashCombine(acc[i], entry_hashes[codes[i]]);
    uint64_t a1 = HashCombine(acc[i + 1], entry_hashes[codes[i + 1]]);
    uint64_t a2 = HashCombine(acc[i + 2], entry_hashes[codes[i + 2]]);
    uint64_t a3 = HashCombine(acc[i + 3], entry_hashes[codes[i + 3]]);
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], entry_hashes[codes[i]]);
}

void CombineNumericCellsScalar(uint64_t* acc, const uint64_t* num_bits,
                               const uint64_t* tags, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // i is 4-aligned, so the group's 4 tag bits live in one word.
    unsigned nib =
        static_cast<unsigned>(tags[i >> 6] >> (i & 63)) & 0xfu;
    uint64_t a0 =
        HashCombine(acc[i], NumericCellHash(num_bits[i], (nib & 1u) != 0));
    uint64_t a1 = HashCombine(
        acc[i + 1], NumericCellHash(num_bits[i + 1], (nib & 2u) != 0));
    uint64_t a2 = HashCombine(
        acc[i + 2], NumericCellHash(num_bits[i + 2], (nib & 4u) != 0));
    uint64_t a3 = HashCombine(
        acc[i + 3], NumericCellHash(num_bits[i + 3], (nib & 8u) != 0));
    acc[i] = a0;
    acc[i + 1] = a1;
    acc[i + 2] = a2;
    acc[i + 3] = a3;
  }
  for (; i < n; ++i) {
    bool is_int = ((tags[i >> 6] >> (i & 63)) & 1u) != 0;
    acc[i] = HashCombine(acc[i], NumericCellHash(num_bits[i], is_int));
  }
}

void MinHashUpdateScalar(uint64_t* slots, const uint64_t* seeds,
                         size_t num_perms, const uint64_t* elems, size_t n) {
  // Tile 4 permutation slots into registers and stream the elements once
  // per tile: turns the old per-element slot read-modify-write sweep into
  // 4 independent min chains with zero stores in the inner loop.
  size_t j = 0;
  for (; j + 4 <= num_perms; j += 4) {
    uint64_t s0 = slots[j], s1 = slots[j + 1];
    uint64_t s2 = slots[j + 2], s3 = slots[j + 3];
    const uint64_t d0 = seeds[j], d1 = seeds[j + 1];
    const uint64_t d2 = seeds[j + 2], d3 = seeds[j + 3];
    for (size_t i = 0; i < n; ++i) {
      uint64_t x = elems[i];
      uint64_t h0 = Mix64(x ^ d0);
      uint64_t h1 = Mix64(x ^ d1);
      uint64_t h2 = Mix64(x ^ d2);
      uint64_t h3 = Mix64(x ^ d3);
      if (h0 < s0) s0 = h0;
      if (h1 < s1) s1 = h1;
      if (h2 < s2) s2 = h2;
      if (h3 < s3) s3 = h3;
    }
    slots[j] = s0;
    slots[j + 1] = s1;
    slots[j + 2] = s2;
    slots[j + 3] = s3;
  }
  for (; j < num_perms; ++j) {
    uint64_t s = slots[j];
    const uint64_t d = seeds[j];
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = Mix64(elems[i] ^ d);
      if (h < s) s = h;
    }
    slots[j] = s;
  }
}

}  // namespace

// ------------------------------- AVX2 tier -------------------------------
//
// 4x64-bit lanes. AVX2 has no 64-bit integer multiply, so Mix64's two
// multiplies are synthesized from 32-bit partial products (exact mod 2^64);
// unsigned 64-bit min is synthesized from signed compare with the sign bit
// flipped. Everything else is lane-wise xor/shift/add — bit-identical to
// the scalar tier by construction.

#if VER_SIMD_X86

namespace {

__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i a, __m256i b) {
  // a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
  __m256i a_hi = _mm256_srli_epi64(a, 32);
  __m256i b_hi = _mm256_srli_epi64(b, 32);
  __m256i ll = _mm256_mul_epu32(a, b);
  __m256i lh = _mm256_mul_epu32(a, b_hi);
  __m256i hl = _mm256_mul_epu32(a_hi, b);
  __m256i cross = _mm256_add_epi64(lh, hl);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64V(__m256i x) {
  const __m256i c1 = _mm256_set1_epi64x(0x9e3779b97f4a7c15LL);
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c3 = _mm256_set1_epi64x(
      static_cast<long long>(0x94d049bb133111ebULL));
  x = _mm256_add_epi64(x, c1);
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c2);
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c3);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) inline __m256i MinU64(__m256i a, __m256i b) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  __m256i a_gt_b = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                                      _mm256_xor_si256(b, sign));
  return _mm256_blendv_epi8(a, b, a_gt_b);
}

__attribute__((target("avx2"))) void CombineHashesAvx2(uint64_t* acc,
                                                       const uint64_t* hashes,
                                                       size_t n) {
  const __m256i golden = _mm256_set1_epi64x(0x9e3779b97f4a7c15LL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    // h ^ (Mix64(v) + K + (h << 12) + (h >> 4))
    __m256i t = _mm256_add_epi64(Mix64V(v), golden);
    t = _mm256_add_epi64(t, _mm256_slli_epi64(a, 12));
    t = _mm256_add_epi64(t, _mm256_srli_epi64(a, 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_xor_si256(a, t));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], hashes[i]);
}

__attribute__((target("avx2"))) void HashInt64CellsAvx2(const int64_t* v,
                                                        size_t n,
                                                        uint64_t* out) {
  const __m256i salt = _mm256_set1_epi64x(0x1234abcdLL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        Mix64V(_mm256_xor_si256(x, salt)));
  }
  for (; i < n; ++i) out[i] = HashIntValue(v[i]);
}

// acc = acc ^ (Mix64(cell) + K + (acc << 12) + (acc >> 4)), 4 lanes.
__attribute__((target("avx2"))) inline __m256i CombineV(__m256i acc,
                                                        __m256i cell) {
  const __m256i golden = _mm256_set1_epi64x(0x9e3779b97f4a7c15LL);
  __m256i t = _mm256_add_epi64(Mix64V(cell), golden);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(acc, 12));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(acc, 4));
  return _mm256_xor_si256(acc, t);
}

__attribute__((target("avx2"))) void CombineInt64CellsAvx2(uint64_t* acc,
                                                           const int64_t* v,
                                                           size_t n) {
  const __m256i salt = _mm256_set1_epi64x(0x1234abcdLL);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i cell = Mix64V(_mm256_xor_si256(x, salt));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), CombineV(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashIntValue(v[i]));
}

__attribute__((target("avx2"))) void CombineDoubleCellsAvx2(uint64_t* acc,
                                                            const double* v,
                                                            size_t n) {
  // HashDoubleValue branches on the integral-twin rule (table/value.h):
  // doubles with an exact int64 twin hash as that integer. The twin test
  // itself vectorizes (round-to-current-mode + compare + magnitude check,
  // false for NaN/inf exactly like the scalar `rounded == v` test), so the
  // common all-non-integral group takes the pure vector path; any group
  // with a twin lane falls back to the scalar hash for those 4 cells,
  // which keeps bit identity without per-lane int64 conversion.
  const __m256i salt2 = _mm256_set1_epi64x(0x9876fedcLL);
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d limit = _mm256_set1_pd(9.2e18);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_loadu_pd(v + i);
    __m256d rounded =
        _mm256_round_pd(d, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
    __m256d twin = _mm256_and_pd(
        _mm256_cmp_pd(rounded, d, _CMP_EQ_OQ),
        _mm256_cmp_pd(_mm256_and_pd(d, abs_mask), limit, _CMP_LT_OQ));
    if (_mm256_movemask_pd(twin) != 0) {
      uint64_t a0 = HashCombine(acc[i], HashDoubleValue(v[i]));
      uint64_t a1 = HashCombine(acc[i + 1], HashDoubleValue(v[i + 1]));
      uint64_t a2 = HashCombine(acc[i + 2], HashDoubleValue(v[i + 2]));
      uint64_t a3 = HashCombine(acc[i + 3], HashDoubleValue(v[i + 3]));
      acc[i] = a0;
      acc[i + 1] = a1;
      acc[i + 2] = a2;
      acc[i + 3] = a3;
      continue;
    }
    __m256i cell =
        Mix64V(_mm256_xor_si256(_mm256_castpd_si256(d), salt2));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), CombineV(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashDoubleValue(v[i]));
}

__attribute__((target("avx2"))) void CombineDictCellsAvx2(
    uint64_t* acc, const uint32_t* codes, const uint64_t* entry_hashes,
    size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    __m256i cell = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(entry_hashes), c, 8);
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), CombineV(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], entry_hashes[codes[i]]);
}

__attribute__((target("avx2"))) void CombineNumericCellsAvx2(
    uint64_t* acc, const uint64_t* num_bits, const uint64_t* tags, size_t n) {
  // Tag-steered three-way split per 4-lane group: the nibble of tag bits
  // (never straddling a word — group starts are 4-aligned) picks the
  // all-int vector path, the all-double vector path (with the same twin
  // guard as CombineDoubleCells), or the scalar mixed-group fallback.
  const __m256i salt_int = _mm256_set1_epi64x(0x1234abcdLL);
  const __m256i salt_dbl = _mm256_set1_epi64x(0x9876fedcLL);
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d limit = _mm256_set1_pd(9.2e18);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    unsigned nib = static_cast<unsigned>(tags[i >> 6] >> (i & 63)) & 0xfu;
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(num_bits + i));
    if (nib == 0xfu) {
      __m256i cell = Mix64V(_mm256_xor_si256(x, salt_int));
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                          CombineV(a, cell));
      continue;
    }
    if (nib == 0u) {
      __m256d d = _mm256_castsi256_pd(x);
      __m256d rounded =
          _mm256_round_pd(d, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
      __m256d twin = _mm256_and_pd(
          _mm256_cmp_pd(rounded, d, _CMP_EQ_OQ),
          _mm256_cmp_pd(_mm256_and_pd(d, abs_mask), limit, _CMP_LT_OQ));
      if (_mm256_movemask_pd(twin) == 0) {
        __m256i cell = Mix64V(_mm256_xor_si256(x, salt_dbl));
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                            CombineV(a, cell));
        continue;
      }
    }
    for (size_t k = 0; k < 4; ++k) {
      acc[i + k] = HashCombine(
          acc[i + k],
          NumericCellHash(num_bits[i + k], ((nib >> k) & 1u) != 0));
    }
  }
  for (; i < n; ++i) {
    bool is_int = ((tags[i >> 6] >> (i & 63)) & 1u) != 0;
    acc[i] = HashCombine(acc[i], NumericCellHash(num_bits[i], is_int));
  }
}

__attribute__((target("avx2"))) void MinHashUpdateAvx2(uint64_t* slots,
                                                       const uint64_t* seeds,
                                                       size_t num_perms,
                                                       const uint64_t* elems,
                                                       size_t n) {
  size_t j = 0;
  for (; j + 4 <= num_perms; j += 4) {
    __m256i seed =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + j));
    __m256i best =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots + j));
    for (size_t i = 0; i < n; ++i) {
      __m256i x = _mm256_set1_epi64x(static_cast<long long>(elems[i]));
      best = MinU64(best, Mix64V(_mm256_xor_si256(x, seed)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots + j), best);
  }
  if (j < num_perms) {
    MinHashUpdateScalar(slots + j, seeds + j, num_perms - j, elems, n);
  }
}

}  // namespace

// ------------------------------ AVX-512 tier ------------------------------
//
// 8x64-bit lanes, F+DQ only (no VL/BW dependence). DQ supplies the native
// 64-bit multiply (vpmullq) that AVX2 has to synthesize, F supplies native
// unsigned 64-bit min (vpminuq) and mask-register compares, so the twin and
// tag tests read straight out of __mmask8 instead of a movemask shuffle.
// Arithmetic is otherwise the same lane-wise xor/shift/add — bit-identical
// to the scalar tier by construction.

// GCC's unmasked AVX-512 shift intrinsics expand to masked builtins whose
// passthrough operand is _mm512_undefined_epi32(), which -Wmaybe-uninitialized
// flags through the header's self-initialized `__Y = __Y` idiom.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace {

__attribute__((target("avx512f,avx512dq"))) inline __m512i Mix64V512(
    __m512i x) {
  const __m512i c1 = _mm512_set1_epi64(0x9e3779b97f4a7c15LL);
  const __m512i c2 = _mm512_set1_epi64(
      static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m512i c3 = _mm512_set1_epi64(
      static_cast<long long>(0x94d049bb133111ebULL));
  x = _mm512_add_epi64(x, c1);
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), c2);
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), c3);
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

// acc = acc ^ (Mix64(cell) + K + (acc << 12) + (acc >> 4)), 8 lanes.
__attribute__((target("avx512f,avx512dq"))) inline __m512i CombineV512(
    __m512i acc, __m512i cell) {
  const __m512i golden = _mm512_set1_epi64(0x9e3779b97f4a7c15LL);
  __m512i t = _mm512_add_epi64(Mix64V512(cell), golden);
  t = _mm512_add_epi64(t, _mm512_slli_epi64(acc, 12));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(acc, 4));
  return _mm512_xor_si512(acc, t);
}

__attribute__((target("avx512f,avx512dq"))) void CombineHashesAvx512(
    uint64_t* acc, const uint64_t* hashes, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i a = _mm512_loadu_si512(acc + i);
    __m512i v = _mm512_loadu_si512(hashes + i);
    _mm512_storeu_si512(acc + i, CombineV512(a, v));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], hashes[i]);
}

__attribute__((target("avx512f,avx512dq"))) void HashInt64CellsAvx512(
    const int64_t* v, size_t n, uint64_t* out) {
  const __m512i salt = _mm512_set1_epi64(0x1234abcdLL);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(v + i);
    _mm512_storeu_si512(out + i, Mix64V512(_mm512_xor_si512(x, salt)));
  }
  for (; i < n; ++i) out[i] = HashIntValue(v[i]);
}

__attribute__((target("avx512f,avx512dq"))) void CombineInt64CellsAvx512(
    uint64_t* acc, const int64_t* v, size_t n) {
  const __m512i salt = _mm512_set1_epi64(0x1234abcdLL);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(v + i);
    __m512i cell = Mix64V512(_mm512_xor_si512(x, salt));
    __m512i a = _mm512_loadu_si512(acc + i);
    _mm512_storeu_si512(acc + i, CombineV512(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashIntValue(v[i]));
}

__attribute__((target("avx512f,avx512dq"))) void CombineDoubleCellsAvx512(
    uint64_t* acc, const double* v, size_t n) {
  // Same twin-guard strategy as the AVX2 tier, but the test lands in a
  // mask register: any set bit sends the 8-cell group to the scalar hash.
  const __m512i salt2 = _mm512_set1_epi64(0x9876fedcLL);
  const __m512d abs_mask = _mm512_castsi512_pd(
      _mm512_set1_epi64(0x7fffffffffffffffLL));
  const __m512d limit = _mm512_set1_pd(9.2e18);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d d = _mm512_loadu_pd(v + i);
    __m512d rounded =
        _mm512_roundscale_pd(d, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
    __mmask8 twin =
        _mm512_cmp_pd_mask(rounded, d, _CMP_EQ_OQ) &
        _mm512_cmp_pd_mask(_mm512_and_pd(d, abs_mask), limit, _CMP_LT_OQ);
    if (twin != 0) {
      for (size_t k = 0; k < 8; ++k) {
        acc[i + k] = HashCombine(acc[i + k], HashDoubleValue(v[i + k]));
      }
      continue;
    }
    __m512i cell =
        Mix64V512(_mm512_xor_si512(_mm512_castpd_si512(d), salt2));
    __m512i a = _mm512_loadu_si512(acc + i);
    _mm512_storeu_si512(acc + i, CombineV512(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], HashDoubleValue(v[i]));
}

__attribute__((target("avx512f,avx512dq"))) void CombineDictCellsAvx512(
    uint64_t* acc, const uint32_t* codes, const uint64_t* entry_hashes,
    size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    __m512i cell = _mm512_i32gather_epi64(c, entry_hashes, 8);
    __m512i a = _mm512_loadu_si512(acc + i);
    _mm512_storeu_si512(acc + i, CombineV512(a, cell));
  }
  for (; i < n; ++i) acc[i] = HashCombine(acc[i], entry_hashes[codes[i]]);
}

__attribute__((target("avx512f,avx512dq"))) void CombineNumericCellsAvx512(
    uint64_t* acc, const uint64_t* num_bits, const uint64_t* tags, size_t n) {
  // Same three-way split as the AVX2 tier over 8-lane groups: the tag byte
  // (8-aligned group starts never straddle a word) steers between the
  // all-int path, the twin-guarded all-double path, and the scalar mix.
  const __m512i salt_int = _mm512_set1_epi64(0x1234abcdLL);
  const __m512i salt_dbl = _mm512_set1_epi64(0x9876fedcLL);
  const __m512d abs_mask = _mm512_castsi512_pd(
      _mm512_set1_epi64(0x7fffffffffffffffLL));
  const __m512d limit = _mm512_set1_pd(9.2e18);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    unsigned byte = static_cast<unsigned>(tags[i >> 6] >> (i & 63)) & 0xffu;
    __m512i x = _mm512_loadu_si512(num_bits + i);
    if (byte == 0xffu) {
      __m512i cell = Mix64V512(_mm512_xor_si512(x, salt_int));
      __m512i a = _mm512_loadu_si512(acc + i);
      _mm512_storeu_si512(acc + i, CombineV512(a, cell));
      continue;
    }
    if (byte == 0u) {
      __m512d d = _mm512_castsi512_pd(x);
      __m512d rounded = _mm512_roundscale_pd(
          d, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
      __mmask8 twin =
          _mm512_cmp_pd_mask(rounded, d, _CMP_EQ_OQ) &
          _mm512_cmp_pd_mask(_mm512_and_pd(d, abs_mask), limit, _CMP_LT_OQ);
      if (twin == 0) {
        __m512i cell = Mix64V512(_mm512_xor_si512(x, salt_dbl));
        __m512i a = _mm512_loadu_si512(acc + i);
        _mm512_storeu_si512(acc + i, CombineV512(a, cell));
        continue;
      }
    }
    for (size_t k = 0; k < 8; ++k) {
      acc[i + k] = HashCombine(
          acc[i + k],
          NumericCellHash(num_bits[i + k], ((byte >> k) & 1u) != 0));
    }
  }
  for (; i < n; ++i) {
    bool is_int = ((tags[i >> 6] >> (i & 63)) & 1u) != 0;
    acc[i] = HashCombine(acc[i], NumericCellHash(num_bits[i], is_int));
  }
}

__attribute__((target("avx512f,avx512dq"))) void MinHashUpdateAvx512(
    uint64_t* slots, const uint64_t* seeds, size_t num_perms,
    const uint64_t* elems, size_t n) {
  size_t j = 0;
  for (; j + 8 <= num_perms; j += 8) {
    __m512i seed = _mm512_loadu_si512(seeds + j);
    __m512i best = _mm512_loadu_si512(slots + j);
    for (size_t i = 0; i < n; ++i) {
      __m512i x = _mm512_set1_epi64(static_cast<long long>(elems[i]));
      best = _mm512_min_epu64(best,
                              Mix64V512(_mm512_xor_si512(x, seed)));
    }
    _mm512_storeu_si512(slots + j, best);
  }
  if (j < num_perms) {
    MinHashUpdateScalar(slots + j, seeds + j, num_perms - j, elems, n);
  }
}

}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // VER_SIMD_X86

// ------------------------------- dispatch --------------------------------

void CombineHashes(uint64_t* acc, const uint64_t* hashes, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    CombineHashesAvx512(acc, hashes, n);
    return;
  }
  if (l == Level::kAvx2) {
    CombineHashesAvx2(acc, hashes, n);
    return;
  }
#endif
  CombineHashesScalar(acc, hashes, n);
}

void HashInt64Cells(const int64_t* v, size_t n, uint64_t* out) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    HashInt64CellsAvx512(v, n, out);
    return;
  }
  if (l == Level::kAvx2) {
    HashInt64CellsAvx2(v, n, out);
    return;
  }
#endif
  HashInt64CellsScalar(v, n, out);
}

void CombineInt64Cells(uint64_t* acc, const int64_t* v, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    CombineInt64CellsAvx512(acc, v, n);
    return;
  }
  if (l == Level::kAvx2) {
    CombineInt64CellsAvx2(acc, v, n);
    return;
  }
#endif
  CombineInt64CellsScalar(acc, v, n);
}

void CombineDoubleCells(uint64_t* acc, const double* v, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    CombineDoubleCellsAvx512(acc, v, n);
    return;
  }
  if (l == Level::kAvx2) {
    CombineDoubleCellsAvx2(acc, v, n);
    return;
  }
#endif
  CombineDoubleCellsScalar(acc, v, n);
}

void CombineDictCells(uint64_t* acc, const uint32_t* codes,
                      const uint64_t* entry_hashes, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    CombineDictCellsAvx512(acc, codes, entry_hashes, n);
    return;
  }
  if (l == Level::kAvx2) {
    CombineDictCellsAvx2(acc, codes, entry_hashes, n);
    return;
  }
#endif
  CombineDictCellsScalar(acc, codes, entry_hashes, n);
}

void CombineNumericCells(uint64_t* acc, const uint64_t* num_bits,
                         const uint64_t* int_tag_words, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    CombineNumericCellsAvx512(acc, num_bits, int_tag_words, n);
    return;
  }
  if (l == Level::kAvx2) {
    CombineNumericCellsAvx2(acc, num_bits, int_tag_words, n);
    return;
  }
#endif
  CombineNumericCellsScalar(acc, num_bits, int_tag_words, n);
}

void MinHashUpdate(uint64_t* slots, const uint64_t* seeds, size_t num_perms,
                   const uint64_t* elems, size_t n) {
#if VER_SIMD_X86
  Level l = ActiveLevel();
  if (l == Level::kAvx512) {
    MinHashUpdateAvx512(slots, seeds, num_perms, elems, n);
    return;
  }
  if (l == Level::kAvx2) {
    MinHashUpdateAvx2(slots, seeds, num_perms, elems, n);
    return;
  }
#endif
  MinHashUpdateScalar(slots, seeds, num_perms, elems, n);
}

}  // namespace simd
}  // namespace ver
