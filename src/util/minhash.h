// MinHash sketches with Lazo-style joint Jaccard/containment estimation.
//
// The discovery engine proxies join paths by inclusion dependencies between
// columns (paper, Challenge 2). Exact containment over large columns is
// expensive, so columns are sketched once and compared in O(num_permutations).
// Cardinalities are kept alongside the signature so that containment can be
// derived from the Jaccard estimate the way Lazo [ICDE'19] does.

#ifndef VER_UTIL_MINHASH_H_
#define VER_UTIL_MINHASH_H_

#include <cstdint>
#include <vector>

#include "util/serde.h"

namespace ver {

/// A MinHash signature plus the exact cardinality of the sketched set.
struct MinHashSignature {
  std::vector<uint64_t> slots;
  /// Number of distinct elements that were sketched.
  uint64_t cardinality = 0;

  bool empty() const { return cardinality == 0; }
  int num_permutations() const { return static_cast<int>(slots.size()); }

  /// Snapshot serialization (sketches ride inside persisted profiles).
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r);
};

/// Produces MinHash signatures with a fixed family of hash permutations.
///
/// Two MinHashers with the same (num_permutations, seed) produce comparable
/// signatures; the discovery index uses a single shared instance.
class MinHasher {
 public:
  explicit MinHasher(int num_permutations = 128,
                     uint64_t seed = 0x5eed1234abcdef01ULL);

  /// Sketches a set given the 64-bit hashes of its *distinct* elements.
  MinHashSignature Compute(const std::vector<uint64_t>& element_hashes) const;

  int num_permutations() const { return num_permutations_; }

 private:
  int num_permutations_;
  std::vector<uint64_t> permutation_seeds_;
};

/// Fraction of agreeing slots: unbiased estimator of Jaccard similarity.
double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b);

/// Lazo estimator of Jaccard containment JC(a ⊆ b) = |a∩b| / |a|.
///
/// With J = J(a,b) and cardinalities |a|, |b|:
///   |a∩b| = J * (|a| + |b|) / (1 + J),  so  JC = |a∩b| / |a|.
/// The result is clamped to [0, 1].
double EstimateContainment(const MinHashSignature& a,
                           const MinHashSignature& b);

/// Exact counterparts used for validation and for small columns.
double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b);
double ExactContainment(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b);

}  // namespace ver

#endif  // VER_UTIL_MINHASH_H_
