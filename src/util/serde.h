// Checked binary serialization for persistent discovery snapshots.
//
// Snapshots are little-endian regardless of host byte order. A snapshot
// file is a magic number, a format version, and a sequence of tagged
// sections, each protected by its own checksum. Readers are bounds-checked
// and return Status on truncation or corruption — a damaged snapshot must
// produce a descriptive error, never a crash or an over-allocation.

#ifndef VER_UTIL_SERDE_H_
#define VER_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace ver {

/// True when the host's in-memory integer layout equals the wire layout,
/// enabling the bulk memcpy fast paths and (v3+) zero-copy mapped views.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline constexpr bool kSerdeHostLittleEndian = true;
#else
inline constexpr bool kSerdeHostLittleEndian = false;
#endif

/// Array payloads inside v3 snapshot sections start on this boundary (both
/// relative to the section payload and absolute in the file, because v3
/// section payloads themselves start on it). 64 covers every SIMD kernel's
/// widest load and one x86 cache line.
inline constexpr size_t kSnapshotArrayAlignment = 64;

/// Appends fixed-width little-endian primitives to an in-memory buffer.
/// Writing cannot fail; errors surface when the buffer is flushed to disk.
class SerdeWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, so doubles round-trip exactly.
  void WriteDouble(double v);
  /// u64 byte length followed by the raw bytes. Never aligned — byte blobs
  /// have no element type to misalign (paged loaders adopt them at any
  /// offset), and padding every small string (names, keys) would bloat
  /// snapshots for nothing.
  void WriteString(std::string_view s);

  // Bulk typed arrays: u64 element count + packed little-endian elements,
  // preceded by AlignForArray() padding so the element data lands on
  // kSnapshotArrayAlignment (unless alignment is disabled for legacy
  // layouts). The pointer forms are the primary API — PagedView-backed
  // stores are not std::vectors; the vector forms forward.
  void WriteU64Array(const uint64_t* p, size_t n);
  void WriteU32Array(const uint32_t* p, size_t n);
  void WriteI32Array(const int* p, size_t n);
  void WriteI64Array(const int64_t* p, size_t n);
  void WriteDoubleArray(const double* p, size_t n);
  void WriteU8Array(const uint8_t* p, size_t n);
  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU64Array(v.data(), v.size());
  }
  void WriteU32Vector(const std::vector<uint32_t>& v) {
    WriteU32Array(v.data(), v.size());
  }
  void WriteI32Vector(const std::vector<int>& v) {
    WriteI32Array(v.data(), v.size());
  }
  void WriteI64Vector(const std::vector<int64_t>& v) {
    WriteI64Array(v.data(), v.size());
  }
  void WriteDoubleVector(const std::vector<double>& v) {
    WriteDoubleArray(v.data(), v.size());
  }
  void WriteU8Vector(const std::vector<uint8_t>& v) {
    WriteU8Array(v.data(), v.size());
  }

  /// Pads with zeros so the *data* of the next bulk array (which starts 8
  /// bytes later, after the u64 count prefix) lands on
  /// kSnapshotArrayAlignment. Called automatically by every Write*Array /
  /// Write*Vector. The pad length is a pure function of the current
  /// position, so a reader tracking the same position recomputes it without
  /// any marker byte. No-op when alignment is disabled (snapshots saved in
  /// a legacy pre-v3 format).
  void AlignForArray();
  void set_align_arrays(bool on) { align_arrays_ = on; }

  size_t pos() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
  bool align_arrays_ = true;
};

/// Bounds-checked little-endian reader over one in-memory payload. Every
/// Read returns IOError naming `context` when the payload is too short;
/// length prefixes are validated against the remaining bytes before any
/// allocation happens.
class SerdeReader {
 public:
  SerdeReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadBool(bool* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  /// Zero-copy ReadString: exposes the string's bytes inside the reader's
  /// underlying buffer instead of copying. Same lifetime contract as
  /// ReadArrayExtent. Never preceded by alignment padding (mirrors
  /// WriteString).
  Status ReadStringExtent(const char** data_out, uint64_t* len_out);
  Status ReadU64Vector(std::vector<uint64_t>* out);
  Status ReadU32Vector(std::vector<uint32_t>* out);
  Status ReadI32Vector(std::vector<int>* out);
  Status ReadI64Vector(std::vector<int64_t>* out);
  Status ReadDoubleVector(std::vector<double>* out);
  Status ReadU8Vector(std::vector<uint8_t>* out);
  /// Bulk copy of `n` raw bytes (section payload extraction).
  Status ReadRaw(void* out, size_t n);

  /// Zero-copy counterpart of the Read*Vector calls: skips the alignment
  /// padding, reads the u64 count, bounds-checks `count * elem_width`
  /// payload bytes, exposes a pointer to them *inside the reader's
  /// underlying buffer* and skips past. The view lives exactly as long as
  /// the buffer the reader was constructed over — paged loaders hand
  /// readers a view of an mmapped section and keep the map alive, resident
  /// loaders must copy instead.
  Status ReadArrayExtent(size_t elem_width, const char* what,
                         const char** data_out, uint64_t* count_out);

  /// Skips the zero padding AlignForArray() emitted, mirroring its position
  /// arithmetic. Called automatically by every Read*Vector / ReadArrayExtent.
  /// No-op when the payload was written unaligned — readers over legacy
  /// (pre-v3) snapshot payloads must set_aligned(false).
  Status SkipArrayPadding();
  void set_aligned(bool on) { aligned_ = on; }
  bool aligned() const { return aligned_; }

  size_t pos() const { return pos_; }

  size_t remaining() const {
    // Every Read advances pos_ only after a successful bounds check, so the
    // cursor can never pass the end — the subtraction cannot wrap.
    VER_DCHECK(pos_ <= data_.size())
        << "reader cursor " << pos_ << " past payload of " << data_.size();
    return data_.size() - pos_;
  }
  /// Error when payload bytes are left over (format drift guard).
  Status ExpectEnd() const;

  /// Overflow-safe guard for element counts before resize/allocate: fails
  /// unless `count` elements of at least `elem_width` bytes each could
  /// still fit in the remaining payload. Callers sizing containers from a
  /// file-supplied count must run it first, so a corrupt count errors out
  /// instead of triggering a huge allocation.
  Status CheckCount(uint64_t count, size_t elem_width, const char* what);

 private:
  Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  std::string context_;
  // Default matches SerdeWriter's align_arrays_ default, so a plain
  // writer -> reader round-trip needs no flags; only legacy payloads do.
  bool aligned_ = true;
};

/// One tagged section of a snapshot file.
struct SnapshotSection {
  uint32_t id = 0;
  std::string payload;
};

/// Location of one section inside a snapshot file — the parsed form of a
/// v3 section-table entry (synthesized for legacy inline-framed files).
struct SnapshotSectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;  // absolute file offset of the payload
  uint64_t size = 0;    // payload bytes
  uint64_t checksum = 0;
};

/// Bumped on any incompatible layout change; see docs/ARCHITECTURE.md
/// ("Persistence & snapshot lifecycle") for the version-bump policy.
/// v2 added the memcpy-loadable columnar repo-tables section (dictionary +
/// codes + null bitmaps per column). v3 moved section framing into an
/// up-front section table ({id, offset, size, checksum} per section) with
/// payloads at 64-byte-aligned file offsets, and padded every bulk array
/// inside a payload onto the same boundary — the layout that lets a
/// buffer-pool pager serve arrays straight out of an mmapped snapshot.
/// v4 sharded the discovery engine's index sections: a shard-layout
/// section records the table partition and each shard's keyword and
/// similarity indexes live in their own per-shard sections (v1-v3 files
/// load as a single shard; section framing itself is unchanged from v3).
inline constexpr uint32_t kSnapshotFormatVersion = 4;

/// Oldest format version ReadSnapshotFile still accepts. v1 files simply
/// lack the sections newer versions added; section consumers treat those
/// as optional. v1/v2 files carry unaligned inline-framed sections and are
/// only readable resident (never paged).
inline constexpr uint32_t kSnapshotMinReadVersion = 1;

/// Parses a snapshot's header out of `data` (the full file bytes) without
/// copying or checksumming any payload: magic, version and per-section
/// {id, offset, size, checksum}. For v3 this touches only the section
/// table; for legacy files it walks the inline framing. The shared front
/// half of ReadSnapshotFile and the pager's SnapshotMap.
Status ParseSnapshotLayout(std::string_view data, const std::string& name,
                           std::vector<SnapshotSectionEntry>* entries,
                           uint32_t* format_version);

/// Writes `sections` as a snapshot file. v3 (the default): magic, format
/// version, section count, section table, then each payload zero-padded to
/// a 64-byte-aligned offset. v1/v2 (tests emitting previous-version files):
/// the legacy inline framing {id, size, payload, checksum}. The file is
/// written to `path + ".tmp"` and renamed into place, so a concurrent
/// reader never observes a half-written snapshot.
Status WriteSnapshotFile(const std::string& path,
                         const std::vector<SnapshotSection>& sections,
                         uint32_t format_version = kSnapshotFormatVersion);

/// Reads a snapshot file and validates magic, format version (any version
/// in [kSnapshotMinReadVersion, kSnapshotFormatVersion]), section framing
/// and every per-section checksum. On any mismatch returns a descriptive
/// IOError/InvalidArgument and leaves `sections` untouched. The file's
/// format version is reported through `format_version` when non-null.
Status ReadSnapshotFile(const std::string& path,
                        std::vector<SnapshotSection>* sections,
                        uint32_t* format_version = nullptr);

/// Checksum used for snapshot section payloads (word-at-a-time mixing).
/// Exposed so tests and the pager's optional verification can recompute it.
uint64_t SnapshotSectionChecksum(std::string_view payload);

}  // namespace ver

#endif  // VER_UTIL_SERDE_H_
