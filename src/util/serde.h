// Checked binary serialization for persistent discovery snapshots.
//
// Snapshots are little-endian regardless of host byte order. A snapshot
// file is a magic number, a format version, and a sequence of tagged
// sections, each protected by its own checksum. Readers are bounds-checked
// and return Status on truncation or corruption — a damaged snapshot must
// produce a descriptive error, never a crash or an over-allocation.

#ifndef VER_UTIL_SERDE_H_
#define VER_UTIL_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace ver {

/// Appends fixed-width little-endian primitives to an in-memory buffer.
/// Writing cannot fail; errors surface when the buffer is flushed to disk.
class SerdeWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern, so doubles round-trip exactly.
  void WriteDouble(double v);
  /// u64 byte length followed by the raw bytes.
  void WriteString(std::string_view s);
  void WriteU64Vector(const std::vector<uint64_t>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteI32Vector(const std::vector<int>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteU8Vector(const std::vector<uint8_t>& v);

  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over one in-memory payload. Every
/// Read returns IOError naming `context` when the payload is too short;
/// length prefixes are validated against the remaining bytes before any
/// allocation happens.
class SerdeReader {
 public:
  SerdeReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadI64(int64_t* out);
  Status ReadBool(bool* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  Status ReadU64Vector(std::vector<uint64_t>* out);
  Status ReadU32Vector(std::vector<uint32_t>* out);
  Status ReadI32Vector(std::vector<int>* out);
  Status ReadI64Vector(std::vector<int64_t>* out);
  Status ReadDoubleVector(std::vector<double>* out);
  Status ReadU8Vector(std::vector<uint8_t>* out);
  /// Bulk copy of `n` raw bytes (section payload extraction).
  Status ReadRaw(void* out, size_t n);

  size_t remaining() const {
    // Every Read advances pos_ only after a successful bounds check, so the
    // cursor can never pass the end — the subtraction cannot wrap.
    VER_DCHECK(pos_ <= data_.size())
        << "reader cursor " << pos_ << " past payload of " << data_.size();
    return data_.size() - pos_;
  }
  /// Error when payload bytes are left over (format drift guard).
  Status ExpectEnd() const;

  /// Overflow-safe guard for element counts before resize/allocate: fails
  /// unless `count` elements of at least `elem_width` bytes each could
  /// still fit in the remaining payload. Callers sizing containers from a
  /// file-supplied count must run it first, so a corrupt count errors out
  /// instead of triggering a huge allocation.
  Status CheckCount(uint64_t count, size_t elem_width, const char* what);

 private:
  Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  std::string context_;
};

/// One tagged section of a snapshot file.
struct SnapshotSection {
  uint32_t id = 0;
  std::string payload;
};

/// Bumped on any incompatible layout change; see docs/ARCHITECTURE.md
/// ("Persistence & snapshot lifecycle") for the version-bump policy.
/// v2 added the memcpy-loadable columnar repo-tables section (dictionary +
/// codes + null bitmaps per column).
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Oldest format version ReadSnapshotFile still accepts. v1 files simply
/// lack the sections newer versions added; section consumers treat those
/// as optional.
inline constexpr uint32_t kSnapshotMinReadVersion = 1;

/// Writes `sections` as a snapshot file: magic, format version, section
/// count, then per section {id, size, payload, checksum}. The file is
/// written to `path + ".tmp"` and renamed into place, so a concurrent
/// reader never observes a half-written snapshot. `format_version` exists
/// for tests that emit previous-version files; production callers use the
/// default.
Status WriteSnapshotFile(const std::string& path,
                         const std::vector<SnapshotSection>& sections,
                         uint32_t format_version = kSnapshotFormatVersion);

/// Reads a snapshot file and validates magic, format version (any version
/// in [kSnapshotMinReadVersion, kSnapshotFormatVersion]), section framing
/// and every per-section checksum. On any mismatch returns a descriptive
/// IOError/InvalidArgument and leaves `sections` untouched. The file's
/// format version is reported through `format_version` when non-null.
Status ReadSnapshotFile(const std::string& path,
                        std::vector<SnapshotSection>* sections,
                        uint32_t* format_version = nullptr);

}  // namespace ver

#endif  // VER_UTIL_SERDE_H_
