#include "util/thread_pool.h"

#include <algorithm>

namespace ver {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr || pool_->num_threads() <= 1) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    MutexLock lock(&mu_);
    --pending_;
    if (pending_ == 0) done_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) done_.Wait(mu_);
}

int ResolveParallelism(int parallelism) {
  if (parallelism == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, parallelism);
}

void ParallelFor(ThreadPool* pool, size_t n, size_t num_chunks,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  num_chunks = std::max<size_t>(1, std::min(num_chunks, n));
  if (pool == nullptr || pool->num_threads() <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c, c * n / num_chunks, (c + 1) * n / num_chunks);
    }
    return;
  }
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * n / num_chunks;
    size_t end = (c + 1) * n / num_chunks;
    pool->Submit([&fn, c, begin, end] { fn(c, begin, end); });
  }
  pool->Wait();
}

size_t RecommendedChunks(const ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) return 1;
  return static_cast<size_t>(pool->num_threads()) * 4;
}

}  // namespace ver
