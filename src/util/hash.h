// 64-bit hashing primitives shared across sketches, row hashing and indexing.

#ifndef VER_UTIL_HASH_H_
#define VER_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace ver {

/// Finalizer of splitmix64: a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes; stable across platforms and runs.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  // A final mix sharpens avalanche behaviour of plain FNV.
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Boost-style combiner for aggregating field hashes into a row hash.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace ver

#endif  // VER_UTIL_HASH_H_
