#include "util/serde.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/hash.h"

namespace ver {

namespace {

// 8-byte magic at offset 0 of every snapshot file.
constexpr char kMagic[8] = {'V', 'E', 'R', 'S', 'N', 'A', 'P', '\0'};

void AppendLE(std::string* buf, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ParseLE(const char* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// Word-at-a-time mixing checksum. Snapshot sections run to megabytes and
// are checksummed on every cold start, so byte-wise FNV (~2ns/byte) would
// dominate load time; mixing 8 bytes per step keeps validation ~10x
// cheaper while still catching any flipped or dropped byte.
uint64_t SectionChecksum(std::string_view payload) {
  const char* p = payload.data();
  size_t n = payload.size();
  uint64_t h = 0x5345435455555243ULL ^ n;
  // ParseLE keeps the checksum identical across host byte orders (it
  // compiles to a plain 8-byte load on little-endian targets).
  while (n >= 8) {
    h = Mix64(h ^ ParseLE(p, 8));
    p += 8;
    n -= 8;
  }
  if (n > 0) h = Mix64(h ^ ParseLE(p, static_cast<int>(n)));
  return Mix64(h);
}

// Zero bytes needed after position `pos` so the data of the next array
// (which starts 8 bytes later, after its u64 count prefix) is aligned.
size_t ArrayPadAt(size_t pos) {
  return (kSnapshotArrayAlignment - ((pos + 8) % kSnapshotArrayAlignment)) %
         kSnapshotArrayAlignment;
}

}  // namespace

uint64_t SnapshotSectionChecksum(std::string_view payload) {
  return SectionChecksum(payload);
}

void SerdeWriter::WriteU32(uint32_t v) { AppendLE(&buf_, v, 4); }
void SerdeWriter::WriteU64(uint64_t v) { AppendLE(&buf_, v, 8); }

void SerdeWriter::AlignForArray() {
  if (!align_arrays_) return;
  buf_.append(ArrayPadAt(buf_.size()), '\0');
}

void SerdeWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void SerdeWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buf_.append(s.data(), s.size());
}

// Bulk array fast path: on little-endian hosts the in-memory layout equals
// the wire layout, so whole arrays memcpy. Big-endian hosts take the
// element-wise path. Load speed is the whole point of snapshots (cold
// start), so the hot vectors — sketches, distinct hashes, posting lists —
// must not move element by element.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
constexpr bool kHostIsLittleEndian = true;
#else
constexpr bool kHostIsLittleEndian = false;
#endif

void SerdeWriter::WriteU64Array(const uint64_t* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  if (kHostIsLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(p), n * 8);
    return;
  }
  for (size_t i = 0; i < n; ++i) WriteU64(p[i]);
}

void SerdeWriter::WriteU32Array(const uint32_t* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  if (kHostIsLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(p), n * 4);
    return;
  }
  for (size_t i = 0; i < n; ++i) WriteU32(p[i]);
}

void SerdeWriter::WriteI32Array(const int* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  if (kHostIsLittleEndian && sizeof(int) == 4) {
    buf_.append(reinterpret_cast<const char*>(p), n * 4);
    return;
  }
  for (size_t i = 0; i < n; ++i) WriteI32(p[i]);
}

void SerdeWriter::WriteI64Array(const int64_t* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  if (kHostIsLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(p), n * 8);
    return;
  }
  for (size_t i = 0; i < n; ++i) WriteI64(p[i]);
}

void SerdeWriter::WriteDoubleArray(const double* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  if (kHostIsLittleEndian) {
    buf_.append(reinterpret_cast<const char*>(p), n * 8);
    return;
  }
  for (size_t i = 0; i < n; ++i) WriteDouble(p[i]);
}

void SerdeWriter::WriteU8Array(const uint8_t* p, size_t n) {
  AlignForArray();
  WriteU64(n);
  buf_.append(reinterpret_cast<const char*>(p), n);
}

Status SerdeReader::Need(size_t n, const char* what) {
  if (remaining() < n) {
    return Status::IOError("truncated " + context_ + ": need " +
                           std::to_string(n) + " bytes for " + what +
                           ", have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Status SerdeReader::ReadU8(uint8_t* out) {
  VER_RETURN_IF_ERROR(Need(1, "u8"));
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status SerdeReader::ReadU32(uint32_t* out) {
  VER_RETURN_IF_ERROR(Need(4, "u32"));
  *out = static_cast<uint32_t>(ParseLE(data_.data() + pos_, 4));
  pos_ += 4;
  return Status::OK();
}

Status SerdeReader::ReadU64(uint64_t* out) {
  VER_RETURN_IF_ERROR(Need(8, "u64"));
  *out = ParseLE(data_.data() + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status SerdeReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  VER_RETURN_IF_ERROR(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status SerdeReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  VER_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status SerdeReader::ReadBool(bool* out) {
  uint8_t v = 0;
  VER_RETURN_IF_ERROR(ReadU8(&v));
  *out = v != 0;
  return Status::OK();
}

Status SerdeReader::ReadDouble(double* out) {
  uint64_t bits = 0;
  VER_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status SerdeReader::ReadString(std::string* out) {
  uint64_t len;
  VER_RETURN_IF_ERROR(ReadU64(&len));
  VER_RETURN_IF_ERROR(Need(static_cast<size_t>(len), "string bytes"));
  out->assign(data_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status SerdeReader::CheckCount(uint64_t count, size_t elem_width,
                               const char* what) {
  VER_DCHECK(elem_width > 0) << "zero element width for " << what;
  // Divide instead of multiplying: count * width could wrap size_t for a
  // crafted count, sneaking a huge resize() past the bounds check.
  if (count > remaining() / elem_width) {
    return Status::IOError("truncated " + context_ + ": " + what +
                           " claims " + std::to_string(count) +
                           " elements, only " + std::to_string(remaining()) +
                           " bytes remain");
  }
  return Status::OK();
}

Status SerdeReader::ReadU64Vector(std::vector<uint64_t>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 8, "u64 vector"));
  out->resize(static_cast<size_t>(count));
  if (kHostIsLittleEndian) {
    return ReadRaw(out->data(), static_cast<size_t>(count) * 8);
  }
  for (uint64_t i = 0; i < count; ++i) {
    VER_RETURN_IF_ERROR(ReadU64(&(*out)[i]));
  }
  return Status::OK();
}

Status SerdeReader::ReadU32Vector(std::vector<uint32_t>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 4, "u32 vector"));
  out->resize(static_cast<size_t>(count));
  if (kHostIsLittleEndian) {
    return ReadRaw(out->data(), static_cast<size_t>(count) * 4);
  }
  for (uint64_t i = 0; i < count; ++i) {
    VER_RETURN_IF_ERROR(ReadU32(&(*out)[i]));
  }
  return Status::OK();
}

Status SerdeReader::ReadI32Vector(std::vector<int>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 4, "i32 vector"));
  out->resize(static_cast<size_t>(count));
  if (kHostIsLittleEndian && sizeof(int) == 4) {
    return ReadRaw(out->data(), static_cast<size_t>(count) * 4);
  }
  for (uint64_t i = 0; i < count; ++i) {
    int32_t v;
    VER_RETURN_IF_ERROR(ReadI32(&v));
    (*out)[i] = v;
  }
  return Status::OK();
}

Status SerdeReader::ReadI64Vector(std::vector<int64_t>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 8, "i64 vector"));
  out->resize(static_cast<size_t>(count));
  if (kHostIsLittleEndian) {
    return ReadRaw(out->data(), static_cast<size_t>(count) * 8);
  }
  for (uint64_t i = 0; i < count; ++i) {
    VER_RETURN_IF_ERROR(ReadI64(&(*out)[i]));
  }
  return Status::OK();
}

Status SerdeReader::ReadDoubleVector(std::vector<double>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 8, "double vector"));
  out->resize(static_cast<size_t>(count));
  if (kHostIsLittleEndian) {
    return ReadRaw(out->data(), static_cast<size_t>(count) * 8);
  }
  for (uint64_t i = 0; i < count; ++i) {
    VER_RETURN_IF_ERROR(ReadDouble(&(*out)[i]));
  }
  return Status::OK();
}

Status SerdeReader::ReadU8Vector(std::vector<uint8_t>* out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, 1, "u8 vector"));
  out->resize(static_cast<size_t>(count));
  return ReadRaw(out->data(), static_cast<size_t>(count));
}

Status SerdeReader::ReadRaw(void* out, size_t n) {
  VER_DCHECK(out != nullptr || n == 0) << "null destination for raw read";
  VER_RETURN_IF_ERROR(Need(n, "raw bytes"));
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status SerdeReader::ReadStringExtent(const char** data_out,
                                     uint64_t* len_out) {
  uint64_t len;
  VER_RETURN_IF_ERROR(ReadU64(&len));
  VER_RETURN_IF_ERROR(Need(static_cast<size_t>(len), "string bytes"));
  *data_out = data_.data() + pos_;
  *len_out = len;
  pos_ += static_cast<size_t>(len);
  return Status::OK();
}

Status SerdeReader::ReadArrayExtent(size_t elem_width, const char* what,
                                    const char** data_out,
                                    uint64_t* count_out) {
  VER_RETURN_IF_ERROR(SkipArrayPadding());
  uint64_t count;
  VER_RETURN_IF_ERROR(ReadU64(&count));
  VER_RETURN_IF_ERROR(CheckCount(count, elem_width, what));
  *data_out = data_.data() + pos_;
  *count_out = count;
  pos_ += static_cast<size_t>(count) * elem_width;
  return Status::OK();
}

Status SerdeReader::SkipArrayPadding() {
  if (!aligned_) return Status::OK();
  size_t pad = ArrayPadAt(pos_);
  VER_RETURN_IF_ERROR(Need(pad, "array alignment padding"));
  pos_ += pad;
  return Status::OK();
}

Status SerdeReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::IOError(context_ + " has " + std::to_string(remaining()) +
                           " unexpected trailing bytes");
  }
  return Status::OK();
}

Status WriteSnapshotFile(const std::string& path,
                         const std::vector<SnapshotSection>& sections,
                         uint32_t format_version) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLE(&out, format_version, 4);
  AppendLE(&out, sections.size(), 4);
  if (format_version >= 3) {
    // v3: up-front section table, payloads at 64-byte-aligned offsets.
    // Offsets are computable before any payload is emitted: table end, then
    // each payload aligned up from the previous end.
    constexpr size_t kEntryBytes = 4 + 8 + 8 + 8;
    uint64_t offset = out.size() + sections.size() * kEntryBytes;
    for (const SnapshotSection& s : sections) {
      offset = (offset + kSnapshotArrayAlignment - 1) /
               kSnapshotArrayAlignment * kSnapshotArrayAlignment;
      AppendLE(&out, s.id, 4);
      AppendLE(&out, offset, 8);
      AppendLE(&out, s.payload.size(), 8);
      AppendLE(&out, SectionChecksum(s.payload), 8);
      offset += s.payload.size();
    }
    for (const SnapshotSection& s : sections) {
      size_t aligned = (out.size() + kSnapshotArrayAlignment - 1) /
                       kSnapshotArrayAlignment * kSnapshotArrayAlignment;
      out.append(aligned - out.size(), '\0');
      out.append(s.payload);
    }
  } else {
    // Legacy inline framing (v1/v2): {id, size, payload, checksum}.
    for (const SnapshotSection& s : sections) {
      AppendLE(&out, s.id, 4);
      AppendLE(&out, s.payload.size(), 8);
      out.append(s.payload);
      AppendLE(&out, SectionChecksum(s.payload), 8);
    }
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool flushed = std::fclose(f) == 0;
  if (written != out.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status ParseSnapshotLayout(std::string_view data, const std::string& name,
                           std::vector<SnapshotSectionEntry>* entries,
                           uint32_t* format_version) {
  SerdeReader r(data, "snapshot header of " + name);
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(name + " is not a Ver snapshot (bad magic)");
  }
  for (size_t i = 0; i < sizeof(kMagic); ++i) {
    uint8_t ignored;
    VER_RETURN_IF_ERROR(r.ReadU8(&ignored));
  }
  uint32_t version, section_count;
  VER_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version < kSnapshotMinReadVersion || version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        name + " uses snapshot format version " + std::to_string(version) +
        "; this build reads versions " +
        std::to_string(kSnapshotMinReadVersion) + " through " +
        std::to_string(kSnapshotFormatVersion) +
        " (rebuild the index with ver_cli build-index)");
  }
  VER_RETURN_IF_ERROR(r.ReadU32(&section_count));
  if (format_version != nullptr) *format_version = version;

  std::vector<SnapshotSectionEntry> parsed;
  if (version >= 3) {
    // v3: section table only — payload bytes are never touched here, which
    // is what makes a paged open O(header), not O(file).
    constexpr size_t kEntryBytes = 4 + 8 + 8 + 8;
    if (static_cast<uint64_t>(section_count) * kEntryBytes > r.remaining()) {
      return Status::IOError("truncated snapshot " + name +
                             ": section table cut short");
    }
    parsed.reserve(section_count);
    uint64_t prev_end = 16 + uint64_t{section_count} * kEntryBytes;
    for (uint32_t i = 0; i < section_count; ++i) {
      SnapshotSectionEntry e;
      VER_RETURN_IF_ERROR(r.ReadU32(&e.id));
      VER_RETURN_IF_ERROR(r.ReadU64(&e.offset));
      VER_RETURN_IF_ERROR(r.ReadU64(&e.size));
      VER_RETURN_IF_ERROR(r.ReadU64(&e.checksum));
      // Offsets must be aligned, ascending and inside the file — a corrupt
      // table must not produce out-of-range views downstream.
      if (e.offset % kSnapshotArrayAlignment != 0 || e.offset < prev_end ||
          e.offset > data.size() || e.size > data.size() - e.offset) {
        return Status::IOError("corrupt snapshot " + name + ": section " +
                               std::to_string(e.id) +
                               " has an invalid table entry");
      }
      prev_end = e.offset + e.size;
      parsed.push_back(e);
    }
    if (prev_end != data.size()) {
      return Status::IOError("snapshot " + name + " has " +
                             std::to_string(data.size() - prev_end) +
                             " unexpected trailing bytes");
    }
  } else {
    // Legacy inline framing: walk {id, size, payload, checksum} records
    // with a manual cursor (the payload is skipped, never copied). The
    // header is not checksummed, so the reserve is capped by what the file
    // could actually hold (each section needs >= 20 framing bytes) — a
    // corrupt count must error out below, not trigger a huge allocation.
    parsed.reserve(std::min<size_t>(section_count,
                                    (data.size() - 16) / 20 + 1));
    size_t pos = 16;
    for (uint32_t i = 0; i < section_count; ++i) {
      if (data.size() - pos < 12) {
        return Status::IOError("truncated snapshot " + name +
                               ": section framing cut short");
      }
      SnapshotSectionEntry e;
      e.id = static_cast<uint32_t>(ParseLE(data.data() + pos, 4));
      e.size = ParseLE(data.data() + pos + 4, 8);
      pos += 12;
      if (e.size > data.size() - pos ||
          data.size() - pos - static_cast<size_t>(e.size) < 8) {
        return Status::IOError("truncated snapshot " + name + ": section " +
                               std::to_string(e.id) + " claims " +
                               std::to_string(e.size) + " bytes, only " +
                               std::to_string(data.size() - pos) + " remain");
      }
      e.offset = pos;
      pos += static_cast<size_t>(e.size);
      e.checksum = ParseLE(data.data() + pos, 8);
      pos += 8;
      parsed.push_back(e);
    }
    if (pos != data.size()) {
      return Status::IOError("snapshot " + name + " has " +
                             std::to_string(data.size() - pos) +
                             " unexpected trailing bytes");
    }
  }
  *entries = std::move(parsed);
  return Status::OK();
}

Status ReadSnapshotFile(const std::string& path,
                        std::vector<SnapshotSection>* sections,
                        uint32_t* format_version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open snapshot " + path);
  }
  // Pre-size the buffer from the file length (one read, no regrow copies);
  // fall back to chunked growth if the size probe fails.
  std::string data;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) data.reserve(static_cast<size_t>(size));
    std::rewind(f);
  }
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("cannot read snapshot " + path);
  }

  std::vector<SnapshotSectionEntry> entries;
  VER_RETURN_IF_ERROR(ParseSnapshotLayout(data, path, &entries,
                                          format_version));
  std::vector<SnapshotSection> parsed;
  parsed.reserve(entries.size());
  for (const SnapshotSectionEntry& e : entries) {
    SnapshotSection s;
    s.id = e.id;
    s.payload.assign(data.data() + e.offset, static_cast<size_t>(e.size));
    if (e.checksum != SectionChecksum(s.payload)) {
      return Status::IOError("snapshot " + path + " is corrupt: section " +
                             std::to_string(s.id) + " checksum mismatch");
    }
    parsed.push_back(std::move(s));
  }
  *sections = std::move(parsed);
  return Status::OK();
}

}  // namespace ver
