// Status: exception-free error propagation for fallible library operations.
//
// Library code never throws; operations that can fail return a Status (or a
// Result<T>, see util/result.h). This mirrors the RocksDB/Arrow idiom.

#ifndef VER_UTIL_STATUS_H_
#define VER_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace ver {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kNotImplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no message and is cheap to copy. Construct error
/// statuses via the named factories, e.g. `Status::NotFound("no such table")`.
///
/// [[nodiscard]]: ignoring a returned Status is a compile error under the
/// tree-wide -Werror — handle it, propagate it with VER_RETURN_IF_ERROR, or
/// assert it away with VER_CHECK_OK (util/check.h) when failure would mean
/// a programming bug rather than a runtime condition.
class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace ver

/// Propagates a non-OK Status to the caller.
#define VER_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ver::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // VER_UTIL_STATUS_H_
