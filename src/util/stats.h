// Descriptive statistics for benchmark reporting (medians, percentiles,
// boxplot-style summaries as in the paper's Fig. 3/4).

#ifndef VER_UTIL_STATS_H_
#define VER_UTIL_STATS_H_

#include <string>
#include <vector>

namespace ver {

double Mean(const std::vector<double>& xs);
double Median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> xs, double p);

/// min / p25 / median / p75 / max summary of a sample.
struct FiveNumberSummary {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0;

  std::string ToString(int decimals = 2) const;
};

FiveNumberSummary Summarize(const std::vector<double>& xs);

}  // namespace ver

#endif  // VER_UTIL_STATS_H_
