// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef VER_UTIL_RESULT_H_
#define VER_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ver {

/// Holds either a T or a non-OK Status explaining why no T was produced.
///
/// Accessing `value()` on an errored Result is a programming error (checked
/// by assert in debug builds). Typical use:
///
///   Result<Table> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return my_table;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace ver

/// Unwraps a Result into `lhs`, propagating a non-OK status to the caller.
#define VER_ASSIGN_OR_RETURN(lhs, expr)         \
  VER_ASSIGN_OR_RETURN_IMPL(                    \
      VER_CONCAT_NAME(_res_, __LINE__), lhs, expr)

#define VER_CONCAT_NAME_INNER(x, y) x##y
#define VER_CONCAT_NAME(x, y) VER_CONCAT_NAME_INNER(x, y)
#define VER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#endif  // VER_UTIL_RESULT_H_
