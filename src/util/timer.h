// Wall-clock timing used by the benchmark harness and pipeline stage timing.

#ifndef VER_UTIL_TIMER_H_
#define VER_UTIL_TIMER_H_

#include <chrono>

namespace ver {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections.
class StopwatchAccumulator {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_ += timer_.ElapsedSeconds(); }
  double total_seconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

/// RAII helper adding a scope's duration to an accumulator double.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace ver

#endif  // VER_UTIL_TIMER_H_
