// Deterministic random source; every generator and randomized algorithm in
// the library takes an explicit seed so experiments are reproducible.

#ifndef VER_UTIL_RNG_H_
#define VER_UTIL_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace ver {

/// Thin deterministic wrapper over mt19937_64 with sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Skewed index in [0, n): low indices are much more popular (inverse-CDF
  /// of u^exponent). Used to model skewed value popularity in workloads.
  size_t SkewedIndex(size_t n, double exponent = 3.0);

  /// k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, items.size() - 1))];
  }

  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  /// Derives an independent child seed; children of distinct tags diverge.
  uint64_t Fork(uint64_t tag);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ver

#endif  // VER_UTIL_RNG_H_
