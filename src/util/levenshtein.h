// Bounded Levenshtein edit distance for fuzzy keyword matching.

#ifndef VER_UTIL_LEVENSHTEIN_H_
#define VER_UTIL_LEVENSHTEIN_H_

#include <string_view>

namespace ver {

/// Edit distance between `a` and `b`, or `max_distance + 1` as soon as the
/// distance provably exceeds `max_distance` (banded DP, O(len * max_distance)).
int BoundedLevenshtein(std::string_view a, std::string_view b,
                       int max_distance);

/// True when edit distance <= max_distance (case-sensitive).
bool WithinEditDistance(std::string_view a, std::string_view b,
                        int max_distance);

}  // namespace ver

#endif  // VER_UTIL_LEVENSHTEIN_H_
