// LatencyRecorder: a lock-free log-bucketed latency histogram for the
// serving layer (the tail-latency counterpart of util/stats.h, which keeps
// every sample and is for offline bench reporting only).
//
// Design (HdrHistogram-style): a sample is converted to integer nanoseconds
// and dropped into one of kNumBuckets counters. Values below
// kSubBucketCount nanoseconds get an exact bucket each; above that, every
// power-of-two octave is split into kSubBucketCount linear sub-buckets, so
// the relative quantization error is bounded by 1/kSubBucketCount (~3% at
// 32 sub-buckets) across the full uint64 nanosecond range. Bucket
// boundaries are a pure function of the value — never of recording order
// or thread count — so two recorders fed the same multiset of samples are
// bit-identical, and Merge(a, b) equals recording a's and b's samples into
// one recorder (tests/latency_recorder_test.cc guards both).
//
// Thread-safety: Record/RecordNanos are wait-free (one relaxed fetch_add
// plus two bounded CAS loops for min/max) and may race freely with
// Snapshot(); a concurrent snapshot sees some subset of in-flight records,
// which is the right semantics for a stats() gauge read under load.
// Quantile extraction returns the highest value mapping to the bucket
// where the cumulative count reaches the requested rank (HdrHistogram's
// "highest equivalent value"), so reported quantiles never understate.

#ifndef VER_UTIL_LATENCY_RECORDER_H_
#define VER_UTIL_LATENCY_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ver {

/// Immutable summary extracted from a LatencyRecorder (or from any merged
/// set of them): sample count plus mean/quantiles/max in seconds. A plain
/// value struct so it can ride inside ServerStats.
struct LatencyStats {
  int64_t count = 0;
  double mean_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double p999_s = 0;
  double max_s = 0;
};

class LatencyRecorder {
 public:
  /// Sub-buckets per power-of-two octave; also the size of the exact
  /// low-value region. Power of two.
  static constexpr uint64_t kSubBucketCount = 32;
  static constexpr int kSubBucketBits = 5;  // log2(kSubBucketCount)
  /// Buckets 0..kSubBucketCount-1 are exact; octaves 5..63 contribute
  /// kSubBucketCount buckets each.
  static constexpr size_t kNumBuckets =
      kSubBucketCount + (64 - kSubBucketBits) * kSubBucketCount;

  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Records one latency sample given in seconds (negative clamps to 0).
  void Record(double seconds);

  /// Records one latency sample given in integer nanoseconds.
  void RecordNanos(uint64_t nanos);

  /// Adds every sample recorded into `other` so far into this recorder.
  /// Merging per-thread recorders is bit-identical to recording all their
  /// samples into one shared recorder.
  void Merge(const LatencyRecorder& other);

  /// Drops all samples (counters, sum, min, max). Not linearizable against
  /// concurrent Record calls; meant for bench warmup resets.
  void Reset();

  /// Count / mean / p50 / p99 / p999 / max, in seconds. A recorder with no
  /// samples summarizes to all zeros.
  [[nodiscard]] LatencyStats Snapshot() const;

  /// Number of samples recorded so far.
  [[nodiscard]] int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// The highest recorded-equivalent value (ns) at quantile `q` in [0, 1]:
  /// the upper bound of the bucket where the cumulative count first reaches
  /// rank ceil(q * count), clamped to the exact observed max. 0 when empty.
  [[nodiscard]] uint64_t ValueAtQuantileNanos(double q) const;

  /// Count currently in bucket `index` (for merge/boundary tests).
  [[nodiscard]] uint64_t BucketCount(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // --- bucket geometry (pure functions, exposed for tests and docs) ---

  /// Index of the bucket `nanos` falls into.
  [[nodiscard]] static size_t BucketIndex(uint64_t nanos);

  /// Smallest nanosecond value mapping to bucket `index`.
  [[nodiscard]] static uint64_t BucketLowerBound(size_t index);

  /// Largest nanosecond value mapping to bucket `index` — the value
  /// quantile extraction reports for samples in this bucket.
  [[nodiscard]] static uint64_t BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> min_nanos_{UINT64_MAX};
  std::atomic<uint64_t> max_nanos_{0};
};

}  // namespace ver

#endif  // VER_UTIL_LATENCY_RECORDER_H_
