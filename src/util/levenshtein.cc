#include "util/levenshtein.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace ver {

int BoundedLevenshtein(std::string_view a, std::string_view b,
                       int max_distance) {
  if (max_distance < 0) return 1;
  int la = static_cast<int>(a.size());
  int lb = static_cast<int>(b.size());
  if (std::abs(la - lb) > max_distance) return max_distance + 1;
  if (la == 0) return lb;
  if (lb == 0) return la;

  // Banded dynamic program: only cells within `max_distance` of the diagonal
  // can yield a distance <= max_distance.
  const int kInf = max_distance + 1;
  std::vector<int> prev(lb + 1, kInf);
  std::vector<int> cur(lb + 1, kInf);
  for (int j = 0; j <= std::min(lb, max_distance); ++j) prev[j] = j;

  for (int i = 1; i <= la; ++i) {
    int lo = std::max(1, i - max_distance);
    int hi = std::min(lb, i + max_distance);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 1) cur[0] = (i <= max_distance) ? i : kInf;
    int row_min = cur[0];
    for (int j = lo; j <= hi; ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      int del = prev[j] + 1;
      int ins = cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > max_distance) return kInf;
    std::swap(prev, cur);
  }
  return std::min(prev[lb], kInf);
}

bool WithinEditDistance(std::string_view a, std::string_view b,
                        int max_distance) {
  return BoundedLevenshtein(a, b, max_distance) <= max_distance;
}

}  // namespace ver
