// Fixed-size worker pool for the offline discovery path.
//
// The design goal is determinism, not just speed: ParallelFor partitions an
// index range into contiguous chunks whose boundaries depend only on
// (n, num_chunks), so callers that merge per-chunk results in chunk order
// produce output bit-identical to a serial run regardless of worker count or
// scheduling.

#ifndef VER_UTIL_THREAD_POOL_H_
#define VER_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ver {

/// A pool of `num_threads` workers draining a shared task queue.
///
/// Intended usage is phase-at-a-time: submit a batch of tasks, Wait() for
/// all of them, then move to the next phase. Tasks must not Submit() from
/// inside the pool (no nesting) and must not throw.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ VER_GUARDED_BY(mu_);
  CondVar task_ready_;
  CondVar all_done_;
  size_t in_flight_ VER_GUARDED_BY(mu_) = 0;
  bool stop_ VER_GUARDED_BY(mu_) = false;
};

/// Completion tracking for one caller's batch of tasks on a *shared* pool.
///
/// ThreadPool::Wait blocks until every task from every submitter finishes,
/// which makes it unusable when many threads scatter work into one pool
/// concurrently (the sharded engine's query-time fan-out). A TaskGroup
/// counts only its own submissions: Run() hands the task to the pool (or
/// runs it inline when the pool is null or serial) and Wait() blocks until
/// this group's tasks — and no one else's — have finished. Tasks must not
/// throw and must not Run() into the same pool (no nesting, same as
/// ThreadPool::Submit). A group is single-use per scatter: Run all tasks,
/// Wait once, destroy.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Runs `task` on the pool, or inline when there is no (multi-worker)
  /// pool. Inline execution keeps the scatter path allocation- and
  /// lock-free for serial engines.
  void Run(std::function<void()> task);

  /// Blocks until every task Run() through this group has finished.
  void Wait();

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_;
  size_t pending_ VER_GUARDED_BY(mu_) = 0;
};

/// Resolves a `parallelism` knob to a worker count: 0 means "all hardware
/// threads", anything else is clamped to at least 1.
int ResolveParallelism(int parallelism);

/// Splits [0, n) into `num_chunks` contiguous chunks and runs
/// `fn(chunk_index, begin, end)` for each, blocking until all finish.
///
/// With a null pool or a single worker the chunks run inline, in chunk
/// order; otherwise they run concurrently. Chunk boundaries are a pure
/// function of (n, num_chunks), never of the pool, so per-chunk results
/// merged in chunk order are identical either way.
void ParallelFor(ThreadPool* pool, size_t n, size_t num_chunks,
                 const std::function<void(size_t, size_t, size_t)>& fn);

/// Chunk count giving decent load balance for `pool` (a small multiple of
/// the worker count); 1 when the pool is absent or serial.
size_t RecommendedChunks(const ThreadPool* pool);

}  // namespace ver

#endif  // VER_UTIL_THREAD_POOL_H_
