// Small string helpers used throughout parsing, tokenization and indexing.

#ifndef VER_UTIL_STRING_UTIL_H_
#define VER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ver {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII lowercase in place — the allocation-free form for scratch buffers
/// reused across a scan.
void ToLowerInPlace(std::string* s);

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Lowercased maximal alphanumeric runs: "Birth Rate/1000" -> {birth,rate,1000}.
std::vector<std::string> Tokenize(std::string_view s);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `s` parses fully as a (possibly signed) integer.
bool LooksLikeInt(std::string_view s);

/// True when `s` parses fully as a floating point number.
bool LooksLikeDouble(std::string_view s);

/// Fixed-precision formatting without trailing-zero noise ("3.5", "2").
std::string FormatDouble(double v, int max_decimals = 3);

}  // namespace ver

#endif  // VER_UTIL_STRING_UTIL_H_
