// Flat open-addressing multimap for the materializer's hash-join build
// side: uint64_t cell-hash -> the ascending row numbers carrying that hash.
//
// Layout. One power-of-two slot array of 16-byte {key, offset, count}
// entries (count == 0 marks an empty slot) plus one contiguous rows_ array
// holding every group's payload back to back. Linear probing; capacity is
// sized for a <= 0.7 load factor over the *distinct* key count. Compared
// with unordered_map<uint64_t, vector<int64_t>> this removes the per-key
// vector header, the per-node allocation, and the two dependent pointer
// hops per probe — a probe is one slot load (prefetchable ahead of time)
// plus a bounded linear scan.
//
// Build is two-phase so each group's rows land contiguous and in ascending
// row order, which the materializer's join contract (extension rows appended
// in build-row order) depends on: phase 1 claims slots and counts group
// sizes, a prefix sum turns counts into offsets, phase 2 re-walks the input
// in row order appending into each group's cursor.

#ifndef VER_UTIL_FLAT_MULTIMAP_H_
#define VER_UTIL_FLAT_MULTIMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/hash.h"
#include "util/simd.h"

namespace ver {

class FlatU64MultiMap {
 public:
  struct Group {
    const int64_t* begin = nullptr;
    size_t size = 0;
  };

  /// Builds the table from keys[0..n): row r is filed under keys[r] unless
  /// the validity bitmap (bit r clear = null, same layout as
  /// ColumnData::validity_words()) rules it out. Null rows never match a
  /// probe, mirroring SQL join semantics. A null `valid_words` means all
  /// rows are valid.
  void Build(const uint64_t* keys, const uint64_t* valid_words, int64_t n) {
    slots_.clear();
    rows_.clear();
    mask_ = 0;
    if (n <= 0) return;

    // Sizing for distinct keys is wasted work (it needs the table we are
    // building), so size for n keys total: pow2 >= n / 0.7. Over-sizing
    // for duplicate-heavy columns costs memory, not correctness.
    size_t cap = 16;
    while (cap * 7 < static_cast<size_t>(n) * 10) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;

    // Phase 1: claim a slot per distinct key, count group sizes.
    int64_t valid_rows = 0;
    for (int64_t r = 0; r < n; ++r) {
      if (valid_words != nullptr && !BitSet(valid_words, r)) continue;
      Slot& s = FindOrClaim(keys[r]);
      ++s.count;
      ++valid_rows;
    }

    // Prefix sum: each group's offset into the shared rows_ array.
    uint32_t next = 0;
    for (Slot& s : slots_) {
      if (s.count == 0) continue;
      s.offset = next;
      next += s.count;
    }

    // Phase 2: fill in row order through each group's cursor (the offset
    // advances while filling and is rewound by count afterwards).
    rows_.resize(static_cast<size_t>(valid_rows));
    for (int64_t r = 0; r < n; ++r) {
      if (valid_words != nullptr && !BitSet(valid_words, r)) continue;
      Slot& s = FindOrClaim(keys[r]);
      rows_[s.offset++] = r;
    }
    for (Slot& s : slots_) {
      if (s.count != 0) s.offset -= s.count;
    }
  }

  /// The rows filed under `key` (empty group if absent), ascending.
  Group Find(uint64_t key) const {
    if (slots_.empty()) return Group{};
    size_t i = Mix64(key) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.count == 0) return Group{};
      if (s.key == key) return Group{rows_.data() + s.offset, s.count};
      i = (i + 1) & mask_;
    }
  }

  /// Prefetches the home slot of `key`'s probe chain so a Find issued a few
  /// keys later hits cache instead of stalling on the dependent load.
  void PrefetchBucket(uint64_t key) const {
    if (slots_.empty()) return;
    simd::PrefetchRead(&slots_[Mix64(key) & mask_]);
  }

  bool empty() const { return rows_.empty(); }
  size_t num_rows() const { return rows_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t offset = 0;
    uint32_t count = 0;  // 0 = empty slot
  };
  static_assert(sizeof(Slot) == 16, "slot must stay one half cache line");

  static bool BitSet(const uint64_t* words, int64_t bit) {
    return (words[bit >> 6] >> (bit & 63)) & 1u;
  }

  Slot& FindOrClaim(uint64_t key) {
    size_t i = Mix64(key) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.count == 0 && s.key != key) {
        // Either truly empty or a phase-2 revisit of a claimed-but-unfilled
        // slot; claimed slots have count > 0 by the end of phase 1, so in
        // phase 2 count==0 cannot happen for an existing key. Claim it.
        s.key = key;
        return s;
      }
      if (s.key == key) return s;
      i = (i + 1) & mask_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<int64_t> rows_;
  size_t mask_ = 0;
};

}  // namespace ver

#endif  // VER_UTIL_FLAT_MULTIMAP_H_
