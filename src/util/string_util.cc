#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ver {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAlnum(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z');
}

char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(LowerChar(c));
  return out;
}

void ToLowerInPlace(std::string* s) {
  for (char& c : *s) c = LowerChar(c);
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : s) {
    if (IsAlnum(c)) {
      cur.push_back(LowerChar(c));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

bool LooksLikeInt(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return false;
  // strtod accepts "inf"/"nan"/hex floats; restrict to plain decimal forms so
  // value ingestion does not misclassify free text.
  bool seen_digit = false;
  bool seen_dot = false;
  bool seen_exp = false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c >= '0' && c <= '9') {
      seen_digit = true;
    } else if (c == '.' && !seen_dot && !seen_exp) {
      seen_dot = true;
    } else if ((c == 'e' || c == 'E') && seen_digit && !seen_exp) {
      seen_exp = true;
      if (i + 1 < s.size() && (s[i + 1] == '+' || s[i + 1] == '-')) ++i;
      seen_digit = false;  // exponent needs its own digits
    } else {
      return false;
    }
  }
  return seen_digit;
}

std::string FormatDouble(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') last -= 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace ver
