// Clang thread-safety annotations for compiler-enforced lock discipline.
//
// Annotating a member with VER_GUARDED_BY(mu_) (or a function with
// VER_REQUIRES / VER_EXCLUDES) turns lock misuse into a *build error* under
// Clang's -Wthread-safety analysis — reading guarded state without the
// mutex, re-acquiring a held lock, returning with a lock held — instead of
// a timing-dependent TSan report. GCC does not implement the analysis, so
// every macro expands to nothing there; the annotations are zero-cost
// documentation on one compiler and machine-checked contracts on the other.
//
// The CI job `clang-static-analysis` builds the tree with Clang and
// -Werror=thread-safety, so an unannotated mutex acquisition or a guarded
// access outside its critical section cannot merge. Conventions (which
// state gets annotated, how to name the guarding mutex in comments) are in
// docs/HARDENING.md.
//
// The macro set mirrors the standard abseil/LLVM vocabulary, prefixed to
// stay collision-free:
//
//   VER_GUARDED_BY(mu)      data member readable/writable only with `mu` held
//   VER_PT_GUARDED_BY(mu)   pointer member whose *pointee* needs `mu`
//   VER_REQUIRES(mu)        function must be called with `mu` held
//   VER_EXCLUDES(mu)        function must be called with `mu` NOT held
//   VER_ACQUIRE(mu)         function acquires `mu` and returns holding it
//   VER_RELEASE(mu)         function releases `mu`
//   VER_CAPABILITY(x)       type acts as a lockable capability (for wrappers)
//   VER_SCOPED_CAPABILITY   RAII type that acquires in ctor, releases in dtor
//   VER_RETURN_CAPABILITY(mu)  function returns a reference to `mu`
//   VER_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify in a comment)

#ifndef VER_UTIL_THREAD_ANNOTATIONS_H_
#define VER_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define VER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VER_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC lack -Wthread-safety
#endif

#define VER_GUARDED_BY(x) VER_THREAD_ANNOTATION(guarded_by(x))
#define VER_PT_GUARDED_BY(x) VER_THREAD_ANNOTATION(pt_guarded_by(x))
#define VER_REQUIRES(...) \
  VER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VER_EXCLUDES(...) VER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define VER_ACQUIRE(...) \
  VER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VER_RELEASE(...) \
  VER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VER_CAPABILITY(x) VER_THREAD_ANNOTATION(capability(x))
#define VER_SCOPED_CAPABILITY VER_THREAD_ANNOTATION(scoped_lockable)
#define VER_RETURN_CAPABILITY(x) VER_THREAD_ANNOTATION(lock_returned(x))
#define VER_NO_THREAD_SAFETY_ANALYSIS \
  VER_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // VER_UTIL_THREAD_ANNOTATIONS_H_
