#include "util/minhash.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"
#include "util/simd.h"

namespace ver {

MinHasher::MinHasher(int num_permutations, uint64_t seed)
    : num_permutations_(num_permutations) {
  permutation_seeds_.reserve(num_permutations_);
  uint64_t state = seed;
  for (int i = 0; i < num_permutations_; ++i) {
    state = Mix64(state + 0x9e3779b97f4a7c15ULL);
    permutation_seeds_.push_back(state);
  }
}

MinHashSignature MinHasher::Compute(
    const std::vector<uint64_t>& element_hashes) const {
  MinHashSignature sig;
  sig.cardinality = element_hashes.size();
  sig.slots.assign(num_permutations_,
                   std::numeric_limits<uint64_t>::max());
  // Blocked kernel: permutation slots are tiled into registers and the
  // element stream passes once per tile. Min is commutative, so the slots
  // match the old element-outer/permutation-inner loop bit for bit.
  simd::MinHashUpdate(sig.slots.data(), permutation_seeds_.data(),
                      static_cast<size_t>(num_permutations_),
                      element_hashes.data(), element_hashes.size());
  return sig;
}

void MinHashSignature::SaveTo(SerdeWriter* w) const {
  w->WriteU64(cardinality);
  w->WriteU64Vector(slots);
}

Status MinHashSignature::LoadFrom(SerdeReader* r) {
  VER_RETURN_IF_ERROR(r->ReadU64(&cardinality));
  return r->ReadU64Vector(&slots);
}

double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b) {
  if (a.slots.size() != b.slots.size() || a.slots.empty()) return 0.0;
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  int agree = 0;
  for (size_t i = 0; i < a.slots.size(); ++i) {
    if (a.slots[i] == b.slots[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.slots.size());
}

double EstimateContainment(const MinHashSignature& a,
                           const MinHashSignature& b) {
  if (a.empty()) return 0.0;
  double j = EstimateJaccard(a, b);
  if (j <= 0.0) return 0.0;
  double na = static_cast<double>(a.cardinality);
  double nb = static_cast<double>(b.cardinality);
  double intersection = j * (na + nb) / (1.0 + j);
  double jc = intersection / na;
  return std::clamp(jc, 0.0, 1.0);
}

namespace {

// Sorted-unique copy so exact set operations are linear merges.
std::vector<uint64_t> SortedUnique(const std::vector<uint64_t>& v) {
  std::vector<uint64_t> s = v;
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

uint64_t IntersectionSize(const std::vector<uint64_t>& sa,
                          const std::vector<uint64_t>& sb) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++count;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
  std::vector<uint64_t> sa = SortedUnique(a);
  std::vector<uint64_t> sb = SortedUnique(b);
  if (sa.empty() && sb.empty()) return 1.0;
  uint64_t inter = IntersectionSize(sa, sb);
  uint64_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

double ExactContainment(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) {
  std::vector<uint64_t> sa = SortedUnique(a);
  std::vector<uint64_t> sb = SortedUnique(b);
  if (sa.empty()) return 0.0;
  uint64_t inter = IntersectionSize(sa, sb);
  return static_cast<double>(inter) / static_cast<double>(sa.size());
}

}  // namespace ver
