#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/hash.h"

namespace ver {

size_t Rng::SkewedIndex(size_t n, double exponent) {
  assert(n > 0);
  // Inverse-CDF draw: P(index < q*n) = q^(1/exponent), so exponent = 3
  // sends ~58% of the mass to the first fifth of the range.
  double u = UniformDouble(1e-12, 1.0);
  double x = std::pow(u, exponent);
  auto idx = static_cast<size_t>(x * static_cast<double>(n));
  return std::min(idx, n - 1);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = static_cast<size_t>(UniformInt(i, n - 1));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<size_t> seen;
  while (out.size() < k) {
    auto candidate = static_cast<size_t>(UniformInt(0, n - 1));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

uint64_t Rng::Fork(uint64_t tag) {
  uint64_t base = engine_();
  return Mix64(base ^ Mix64(tag));
}

}  // namespace ver
