// Deterministic vocabularies backing the synthetic dataset generators.
//
// The paper evaluates on ChEMBL, WDC web tables and Open Data portal crawls;
// those corpora are substituted with generators whose value domains come
// from these pools (real small lists expanded with seeded synthetic names).

#ifndef VER_WORKLOAD_VOCAB_H_
#define VER_WORKLOAD_VOCAB_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace ver {

/// The 50 US states.
const std::vector<std::string>& UsStates();

/// ~60 large US cities.
const std::vector<std::string>& UsCities();

/// ~60 countries.
const std::vector<std::string>& Countries();

/// Organism names (ChEMBL-like).
const std::vector<std::string>& Organisms();

/// Assay type codes (ChEMBL-like).
const std::vector<std::string>& AssayTypes();

/// Protein class labels (ChEMBL-like).
const std::vector<std::string>& ProteinClasses();

/// Generic english-ish nouns for filler schemas and open-data content.
const std::vector<std::string>& GenericNouns();

/// `n` unique pronounceable names with the given prefix, seeded.
std::vector<std::string> SyntheticNames(const std::string& prefix, int n,
                                        uint64_t seed);

/// `n` unique 3-letter IATA-like codes, seeded.
std::vector<std::string> IataCodes(int n, uint64_t seed);

/// Church names built from states/cities ("First Baptist Church of X").
std::vector<std::string> ChurchNames(int n, uint64_t seed);

/// Newspaper titles built from cities ("The <City> Chronicle").
std::vector<std::string> NewspaperTitles(int n, uint64_t seed);

}  // namespace ver

#endif  // VER_WORKLOAD_VOCAB_H_
