// WDC-like web table generator.
//
// Models the paper's WDC slice: thousands of tiny topic tables crawled from
// the web, many versions of the same fact table with
//   - exact duplicates (compatible),
//   - nested coverage through shared join keys (contained; the paper's WDC
//     Q2 insight),
//   - partially overlapping coverage (complementary unions; C3 insight),
//   - conflicting fact versions (highly discriminative contradictions; the
//     paper's WDC Q3 / Fig. 2 insight),
// plus unrelated filler tables. The five topics mirror the user-study tasks
// of Table II (airports/IATA, churches, newspapers, population, birth rate).

#ifndef VER_WORKLOAD_WDC_GEN_H_
#define VER_WORKLOAD_WDC_GEN_H_

#include "workload/ground_truth.h"

namespace ver {

struct WdcSpec {
  /// Versions of each topic's fact table.
  int versions_per_topic = 10;
  /// Unrelated small tables.
  int num_filler_tables = 60;
  uint64_t seed = 0x3dc;
};

/// Builds the repository and its 5 ground-truth queries (Q1..Q5, one per
/// user-study topic).
GeneratedDataset GenerateWdcLike(const WdcSpec& spec);

}  // namespace ver

#endif  // VER_WORKLOAD_WDC_GEN_H_
