#include "workload/noisy_query.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"
#include "util/string_util.h"

namespace ver {

const char* NoiseLevelToString(NoiseLevel level) {
  switch (level) {
    case NoiseLevel::kZero:
      return "Zero";
    case NoiseLevel::kMedium:
      return "Med";
    case NoiseLevel::kHigh:
      return "High";
  }
  return "unknown";
}

namespace {

std::vector<std::string> DistinctTexts(const TableRepository& repo,
                                       const ColumnRef& ref) {
  // Dictionary columns yield each distinct cell once with no row scan;
  // text-level duplicates (2 vs 2.0 both render "2") collapse via `seen`.
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  repo.column_data(ref).ForEachDistinctCell([&](CellView v) {
    std::string text = v.ToText();
    if (seen.insert(text).second) out.push_back(std::move(text));
  });
  std::sort(out.begin(), out.end());  // determinism across hash orders
  return out;
}

std::vector<std::string> SampleK(const std::vector<std::string>& pool, int k,
                                 Rng* rng) {
  std::vector<std::string> out;
  if (pool.empty() || k <= 0) return out;
  int take = std::min<int>(k, static_cast<int>(pool.size()));
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), take)) {
    out.push_back(pool[idx]);
  }
  return out;
}

}  // namespace

Result<ExampleQuery> MakeNoisyQuery(const TableRepository& repo,
                                    const GroundTruthQuery& gt,
                                    NoiseLevel level, int rows_per_column,
                                    uint64_t seed) {
  Rng rng(seed);
  ExampleQuery query;
  for (size_t a = 0; a < gt.gt_tables.size(); ++a) {
    VER_ASSIGN_OR_RETURN(
        ColumnRef gt_col,
        ResolveColumn(repo, gt.gt_tables[a], gt.gt_attributes[a]));
    std::vector<std::string> gt_values = DistinctTexts(repo, gt_col);

    // Noise pool: values of the noise column that are NOT ground truth.
    std::vector<std::string> noise_values;
    if (a < gt.noise_tables.size() && !gt.noise_tables[a].empty()) {
      Result<ColumnRef> noise_col =
          ResolveColumn(repo, gt.noise_tables[a], gt.noise_attributes[a]);
      if (noise_col.ok()) {
        std::unordered_set<std::string> gt_set(gt_values.begin(),
                                               gt_values.end());
        for (std::string& text : DistinctTexts(repo, noise_col.value())) {
          if (!gt_set.count(text)) noise_values.push_back(std::move(text));
        }
      }
    }

    int num_noise = 0;
    switch (level) {
      case NoiseLevel::kZero:
        num_noise = 0;
        break;
      case NoiseLevel::kMedium:
        num_noise = rows_per_column / 3;  // 1/3 noise (1 of 3 by default)
        break;
      case NoiseLevel::kHigh:
        num_noise = (2 * rows_per_column) / 3;  // 2/3 noise
        break;
    }
    num_noise = std::min<int>(num_noise, static_cast<int>(noise_values.size()));
    int num_gt = rows_per_column - num_noise;

    std::vector<std::string> examples = SampleK(gt_values, num_gt, &rng);
    std::vector<std::string> noise = SampleK(noise_values, num_noise, &rng);
    examples.insert(examples.end(), noise.begin(), noise.end());
    // Top up from ground truth when pools ran dry.
    while (static_cast<int>(examples.size()) < rows_per_column &&
           !gt_values.empty()) {
      examples.push_back(rng.Choice(gt_values));
    }
    query.columns.push_back(std::move(examples));
    query.attribute_hints.push_back(gt.gt_attributes[a]);
  }
  return query;
}

}  // namespace ver
