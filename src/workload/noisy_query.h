// Noisy QBE query generation (Section VI-B "Noisy Query Generation"):
// example values sampled from ground-truth columns mixed, per noise level,
// with values sampled from high-containment noise columns.

#ifndef VER_WORKLOAD_NOISY_QUERY_H_
#define VER_WORKLOAD_NOISY_QUERY_H_

#include "core/query.h"
#include "util/result.h"
#include "workload/ground_truth.h"

namespace ver {

enum class NoiseLevel { kZero, kMedium, kHigh };

const char* NoiseLevelToString(NoiseLevel level);

/// Builds an l-row example query for `gt`.
///   Zero:   all examples from the ground-truth columns.
///   Medium: 2/3 ground truth, 1/3 from the noise column (values NOT in the
///           ground-truth column — genuinely misleading examples).
///   High:   1/3 ground truth, 2/3 noise.
/// Falls back to ground-truth values when a noise column is missing/dry.
Result<ExampleQuery> MakeNoisyQuery(const TableRepository& repo,
                                    const GroundTruthQuery& gt,
                                    NoiseLevel level, int rows_per_column,
                                    uint64_t seed);

}  // namespace ver

#endif  // VER_WORKLOAD_NOISY_QUERY_H_
