#include "workload/vocab.h"

#include <unordered_set>

namespace ver {

const std::vector<std::string>& UsStates() {
  static const std::vector<std::string> kStates = {
      "Alabama",       "Alaska",        "Arizona",        "Arkansas",
      "California",    "Colorado",      "Connecticut",    "Delaware",
      "Florida",       "Georgia",       "Hawaii",         "Idaho",
      "Illinois",      "Indiana",       "Iowa",           "Kansas",
      "Kentucky",      "Louisiana",     "Maine",          "Maryland",
      "Massachusetts", "Michigan",      "Minnesota",      "Mississippi",
      "Missouri",      "Montana",       "Nebraska",       "Nevada",
      "New Hampshire", "New Jersey",    "New Mexico",     "New York",
      "North Carolina", "North Dakota", "Ohio",           "Oklahoma",
      "Oregon",        "Pennsylvania",  "Rhode Island",   "South Carolina",
      "South Dakota",  "Tennessee",     "Texas",          "Utah",
      "Vermont",       "Virginia",      "Washington",     "West Virginia",
      "Wisconsin",     "Wyoming"};
  return kStates;
}

const std::vector<std::string>& UsCities() {
  static const std::vector<std::string> kCities = {
      "New York",     "Los Angeles",  "Chicago",      "Houston",
      "Phoenix",      "Philadelphia", "San Antonio",  "San Diego",
      "Dallas",       "San Jose",     "Austin",       "Jacksonville",
      "Fort Worth",   "Columbus",     "Charlotte",    "San Francisco",
      "Indianapolis", "Seattle",      "Denver",       "Boston",
      "El Paso",      "Nashville",    "Detroit",      "Oklahoma City",
      "Portland",     "Las Vegas",    "Memphis",      "Louisville",
      "Baltimore",    "Milwaukee",    "Albuquerque",  "Tucson",
      "Fresno",       "Mesa",         "Sacramento",   "Atlanta",
      "Kansas City",  "Colorado Springs", "Omaha",    "Raleigh",
      "Miami",        "Long Beach",   "Virginia Beach", "Oakland",
      "Minneapolis",  "Tulsa",        "Tampa",        "Arlington",
      "New Orleans",  "Wichita",      "Cleveland",    "Bakersfield",
      "Aurora",       "Anaheim",      "Honolulu",     "Santa Ana",
      "Riverside",    "Corpus Christi", "Lexington",  "Pittsburgh"};
  return kCities;
}

const std::vector<std::string>& Countries() {
  static const std::vector<std::string> kCountries = {
      "China",        "India",        "United States", "Indonesia",
      "Pakistan",     "Brazil",       "Nigeria",       "Bangladesh",
      "Russia",       "Mexico",       "Japan",         "Ethiopia",
      "Philippines",  "Egypt",        "Vietnam",       "Congo",
      "Turkey",       "Iran",         "Germany",       "Thailand",
      "France",       "United Kingdom", "Italy",       "Tanzania",
      "South Africa", "Myanmar",      "Kenya",         "Colombia",
      "Spain",        "Argentina",    "Uganda",        "Ukraine",
      "Algeria",      "Sudan",        "Iraq",          "Afghanistan",
      "Poland",       "Canada",       "Morocco",       "Saudi Arabia",
      "Uzbekistan",   "Peru",         "Malaysia",      "Angola",
      "Ghana",        "Mozambique",   "Yemen",         "Nepal",
      "Venezuela",    "Madagascar",   "Australia",     "North Korea",
      "Cameroon",     "Niger",        "Sri Lanka",     "Burkina Faso",
      "Mali",         "Chile",        "Romania",       "Kazakhstan"};
  return kCountries;
}

const std::vector<std::string>& Organisms() {
  static const std::vector<std::string> kOrganisms = {
      "Homo sapiens",        "Mus musculus",     "Rattus norvegicus",
      "Escherichia coli",    "Bos taurus",       "Danio rerio",
      "Gallus gallus",       "Sus scrofa",       "Canis familiaris",
      "Plasmodium falciparum", "Saccharomyces cerevisiae",
      "Drosophila melanogaster"};
  return kOrganisms;
}

const std::vector<std::string>& AssayTypes() {
  static const std::vector<std::string> kTypes = {
      "Binding", "Functional", "ADMET", "Toxicity", "Physicochemical",
      "Unclassified"};
  return kTypes;
}

const std::vector<std::string>& ProteinClasses() {
  static const std::vector<std::string> kClasses = {
      "Enzyme",         "Kinase",          "Protease",
      "Ion channel",    "Transporter",     "Epigenetic regulator",
      "Membrane receptor", "Transcription factor", "Secreted protein",
      "Other cytosolic protein"};
  return kClasses;
}

const std::vector<std::string>& GenericNouns() {
  static const std::vector<std::string> kNouns = {
      "budget",   "permit",    "inspection", "license",  "project",
      "contract", "school",    "hospital",   "library",  "park",
      "route",    "station",   "district",   "zone",     "survey",
      "census",   "election",  "program",    "grant",    "vendor",
      "facility", "crime",     "incident",   "violation", "property",
      "parcel",   "street",    "bridge",     "tunnel",   "transit",
      "energy",   "water",     "sewer",      "waste",    "recycling",
      "health",   "food",      "restaurant", "business", "employee",
      "salary",   "payroll",   "tax",        "revenue",  "expense"};
  return kNouns;
}

namespace {

// Deterministic pronounceable token: alternating consonant/vowel pairs.
std::string Pronounceable(Rng* rng, int syllables) {
  static const char* kConsonants = "bcdfghklmnprstvz";
  static const char* kVowels = "aeiou";
  std::string out;
  for (int s = 0; s < syllables; ++s) {
    out.push_back(kConsonants[rng->UniformInt(0, 15)]);
    out.push_back(kVowels[rng->UniformInt(0, 4)]);
  }
  if (!out.empty()) out[0] = static_cast<char>(out[0] - 'a' + 'A');
  return out;
}

}  // namespace

std::vector<std::string> SyntheticNames(const std::string& prefix, int n,
                                        uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  while (static_cast<int>(out.size()) < n) {
    std::string name = prefix + Pronounceable(&rng, 3) + "-" +
                       std::to_string(rng.UniformInt(100, 999));
    if (seen.insert(name).second) out.push_back(std::move(name));
  }
  return out;
}

std::vector<std::string> IataCodes(int n, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  while (static_cast<int>(out.size()) < n) {
    std::string code;
    for (int i = 0; i < 3; ++i) {
      code.push_back(static_cast<char>('A' + rng.UniformInt(0, 25)));
    }
    if (seen.insert(code).second) out.push_back(std::move(code));
  }
  return out;
}

std::vector<std::string> ChurchNames(int n, uint64_t seed) {
  static const std::vector<std::string> kPrefixes = {
      "First Baptist Church of",   "St. Mary's Church of",
      "Grace Community Church of", "Holy Trinity Church of",
      "Calvary Chapel of",         "First Methodist Church of"};
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  const auto& cities = UsCities();
  while (static_cast<int>(out.size()) < n) {
    std::string name = rng.Choice(kPrefixes) + " " + rng.Choice(cities);
    if (seen.insert(name).second) out.push_back(std::move(name));
    if (seen.size() >= kPrefixes.size() * cities.size()) break;
  }
  return out;
}

std::vector<std::string> NewspaperTitles(int n, uint64_t seed) {
  static const std::vector<std::string> kSuffixes = {
      "Chronicle", "Tribune", "Herald", "Times", "Gazette", "Post",
      "Courier",   "Observer"};
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  const auto& cities = UsCities();
  while (static_cast<int>(out.size()) < n) {
    std::string name =
        "The " + rng.Choice(cities) + " " + rng.Choice(kSuffixes);
    if (seen.insert(name).second) out.push_back(std::move(name));
    if (seen.size() >= kSuffixes.size() * cities.size()) break;
  }
  return out;
}

}  // namespace ver
