#include "workload/chembl_gen.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"
#include "workload/vocab.h"
#include "util/check.h"

namespace ver {

namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& attrs,
                int64_t expected_rows = 0) {
  Schema schema;
  for (const std::string& a : attrs) {
    schema.AddAttribute(Attribute{a, ValueType::kString});
  }
  Table t(name, schema);
  // Pre-size columns (an upper bound is fine) so the append loops below
  // never reallocate mid-load.
  if (expected_rows > 0) t.Reserve(expected_rows);
  return t;
}

void MustAdd(TableRepository* repo, Table t) {
  t.InferColumnTypes();
  Result<int32_t> id = repo->AddTable(std::move(t));
  assert(id.ok());
  (void)id;
}

// Sample of `fraction` of `pool` plus `extra` synthetic values not in the
// pool — a noise column with high containment w.r.t. the pool.
std::vector<std::string> NoisePool(const std::vector<std::string>& pool,
                                   double fraction,
                                   const std::string& extra_prefix, int extra,
                                   Rng* rng) {
  std::vector<std::string> out;
  int keep = static_cast<int>(fraction * static_cast<double>(pool.size()));
  for (size_t idx : rng->SampleWithoutReplacement(pool.size(), keep)) {
    out.push_back(pool[idx]);
  }
  std::vector<std::string> extras =
      SyntheticNames(extra_prefix, extra, rng->Fork(0xe17a));
  out.insert(out.end(), extras.begin(), extras.end());
  rng->Shuffle(&out);
  return out;
}

}  // namespace

GeneratedDataset GenerateChemblLike(const ChemblSpec& spec) {
  GeneratedDataset dataset;
  dataset.name = "ChEMBL-like";
  Rng rng(spec.seed);

  // --- value domains ----------------------------------------------------
  std::vector<std::string> compound_names =
      SyntheticNames("Comp-", spec.num_compounds, rng.Fork(1));
  std::vector<std::string> target_names =
      SyntheticNames("TGT-", spec.num_targets, rng.Fork(2));
  std::vector<std::string> cell_names =
      SyntheticNames("CELL-", spec.num_cells, rng.Fork(3));
  std::vector<std::string> cell_descriptions;
  cell_descriptions.reserve(cell_names.size());
  for (const std::string& n : cell_names) {
    cell_descriptions.push_back(n + " immortalized line");  // 1:1 mapping
  }
  const auto& organisms = Organisms();
  const auto& assay_types = AssayTypes();
  const auto& protein_classes = ProteinClasses();

  // Organism assignment per target: "mapping A" (ground truth).
  std::vector<std::string> target_organism(target_names.size());
  for (size_t i = 0; i < target_names.size(); ++i) {
    target_organism[i] = organisms[rng.SkewedIndex(organisms.size())];
  }

  // --- compounds ---------------------------------------------------------
  {
    Table t = MakeTable("compounds",
                        {"compound_id", "pref_name", "molweight", "formula"},
                        spec.num_compounds);
    for (int i = 0; i < spec.num_compounds; ++i) {
      VER_CHECK_OK(
          t.AppendRow({Value::Int(1000 + i), Value::String(compound_names[i]),
                       Value::Double(100.0 + rng.UniformInt(0, 7000) / 10.0),
                       Value::String("C" + std::to_string(rng.UniformInt(5, 40)) +
                                     "H" + std::to_string(rng.UniformInt(5, 60)))}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- molecule_dictionary: 85% of compound names + extras (noise column
  // for compounds.pref_name; also creates contained (pref_name, molweight)
  // views when joined back to compounds) ---------------------------------
  {
    std::vector<std::string> md_names =
        NoisePool(compound_names, 0.85, "Mol-", spec.num_compounds / 7, &rng);
    Table t = MakeTable("molecule_dictionary",
                        {"molregno", "pref_name", "max_phase"},
                        static_cast<int64_t>(md_names.size()));
    for (size_t i = 0; i < md_names.size(); ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(5000 + static_cast<int64_t>(i)),
                                Value::String(md_names[i]),
                                Value::Int(rng.UniformInt(0, 4))}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- cell_dictionary (alternate 1:1 keys) ------------------------------
  {
    Table t = MakeTable("cell_dictionary",
                        {"cell_id", "cell_name", "cell_description"},
                        spec.num_cells);
    for (int i = 0; i < spec.num_cells; ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(i), Value::String(cell_names[i]),
                                Value::String(cell_descriptions[i])}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- assays: denormalized with BOTH cell_name and cell_description so
  // two join keys connect assays <-> cell_dictionary (compatible views) ---
  {
    Table t = MakeTable("assays", {"assay_id", "assay_type", "cell_name",
                                   "cell_description", "organism"},
                        spec.num_assays);
    for (int i = 0; i < spec.num_assays; ++i) {
      int cell = static_cast<int>(rng.UniformInt(0, spec.num_cells - 1));
      VER_CHECK_OK(t.AppendRow({Value::Int(20000 + i),
                                Value::String(assay_types[rng.SkewedIndex(
                                    assay_types.size())]),
                                Value::String(cell_names[cell]),
                                Value::String(cell_descriptions[cell]),
                                Value::String(organisms[rng.SkewedIndex(
                                    organisms.size())])}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- target_dictionary: ground truth (pref_name, organism) -------------
  {
    Table t = MakeTable("target_dictionary",
                        {"tid", "pref_name", "organism", "target_type"},
                        spec.num_targets);
    for (int i = 0; i < spec.num_targets; ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(i), Value::String(target_names[i]),
                                Value::String(target_organism[i]),
                                Value::String(rng.Bernoulli(0.7) ? "SINGLE PROTEIN"
                                                                 : "PROTEIN COMPLEX")}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- component_sequences: pref_name covers 90% of target names, but the
  // organism disagrees with target_dictionary for ~30% of them. A wrong
  // join path through pref_name then yields contradictory
  // (pref_name, organism) views (the paper's Q4 insight). -----------------
  {
    Table t = MakeTable(
        "component_sequences",
        {"component_id", "pref_name", "organism", "sequence_length"},
        spec.num_targets + spec.num_targets / 8);
    int keep = static_cast<int>(0.9 * spec.num_targets);
    std::vector<size_t> chosen =
        rng.SampleWithoutReplacement(target_names.size(), keep);
    std::sort(chosen.begin(), chosen.end());
    int component_id = 7000;
    for (size_t idx : chosen) {
      std::string organism = target_organism[idx];
      if (rng.Bernoulli(0.3)) {
        // Disagreeing mapping: a different organism for the same name.
        std::string other = organisms[rng.SkewedIndex(organisms.size())];
        if (other == organism) {
          other = organisms[(rng.SkewedIndex(organisms.size()) + 1) %
                            organisms.size()];
        }
        organism = other;
      }
      VER_CHECK_OK(t.AppendRow({Value::Int(component_id++),
                                Value::String(target_names[idx]), Value::String(organism),
                                Value::Int(rng.UniformInt(120, 3000))}));
    }
    // A few extra components not in target_dictionary.
    for (const std::string& name : SyntheticNames(
             "CMP-", spec.num_targets / 8, rng.Fork(0xc0))) {
      VER_CHECK_OK(t.AppendRow({Value::Int(component_id++), Value::String(name),
                                Value::String(organisms[rng.SkewedIndex(organisms.size())]),
                                Value::Int(rng.UniformInt(120, 3000))}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- component_class ----------------------------------------------------
  {
    Table t = MakeTable("component_class", {"component_id", "protein_class"},
                        spec.num_targets);
    int num_components = static_cast<int>(0.9 * spec.num_targets);
    for (int i = 0; i < num_components; ++i) {
      if (rng.Bernoulli(0.8)) {
        VER_CHECK_OK(t.AppendRow({Value::Int(7000 + i),
                                  Value::String(protein_classes[rng.SkewedIndex(
                                      protein_classes.size())])}));
      }
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- activities ----------------------------------------------------------
  {
    Table t = MakeTable("activities", {"activity_id", "compound_id",
                                       "assay_id", "standard_value"},
                        spec.num_activities);
    for (int i = 0; i < spec.num_activities; ++i) {
      VER_CHECK_OK(t.AppendRow(
                       {Value::Int(90000 + i),
                        Value::Int(1000 + rng.UniformInt(0, spec.num_compounds - 1)),
                        Value::Int(20000 + rng.UniformInt(0, spec.num_assays - 1)),
                        Value::Double(rng.UniformInt(1, 99999) / 100.0)}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- compound_records: 60% of compound names (contained mechanism and
  // noise column for Q4) ---------------------------------------------------
  {
    std::vector<std::string> rec_names =
        NoisePool(compound_names, 0.82, "Rec-", spec.num_compounds / 6, &rng);
    Table t = MakeTable("compound_records",
                        {"record_id", "pref_name", "record_source"},
                        static_cast<int64_t>(rec_names.size()));
    for (size_t i = 0; i < rec_names.size(); ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(40000 + static_cast<int64_t>(i)),
                                Value::String(rec_names[i]),
                                Value::String(rng.Bernoulli(0.5) ? "LITERATURE"
                                                                 : "DEPOSITION")}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- biosamples: noise column for cell_name ------------------------------
  {
    std::vector<std::string> sample_names =
        NoisePool(cell_names, 0.85, "SMP-", spec.num_cells / 6, &rng);
    Table t = MakeTable("biosamples", {"sample_id", "sample_name", "tissue"},
                        static_cast<int64_t>(sample_names.size()));
    static const std::vector<std::string> kTissues = {
        "lung", "liver", "brain", "kidney", "skin", "blood"};
    for (size_t i = 0; i < sample_names.size(); ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(60000 + static_cast<int64_t>(i)),
                                Value::String(sample_names[i]),
                                Value::String(kTissues[rng.SkewedIndex(kTissues.size())])}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- filler dictionaries -------------------------------------------------
  // Every third dictionary carries a couple of coincidental matches (a
  // stray cell/compound/target name in an unrelated column): Select-All
  // retrieves these on any example hit, Column-Selection's clustering
  // discards them (Fig. 5 mechanism).
  const auto& nouns = GenericNouns();
  for (int f = 0; f < spec.num_filler_tables; ++f) {
    Table t = MakeTable("dict_" + std::to_string(f),
                        {"id", "name", "category"}, 40);
    std::vector<std::string> names =
        SyntheticNames("D" + std::to_string(f) + "-", 40,
                       rng.Fork(0xf00 + f));
    for (int j = 0; j < 5; ++j) {
      names[j] = cell_names[rng.UniformInt(0, cell_names.size() - 1)];
      names[j + 5] =
          compound_names[rng.UniformInt(0, compound_names.size() - 1)];
      names[j + 10] =
          target_names[rng.UniformInt(0, target_names.size() - 1)];
    }
    for (size_t i = 0; i < names.size(); ++i) {
      VER_CHECK_OK(t.AppendRow({Value::Int(static_cast<int64_t>(f) * 1000 +
                                           static_cast<int64_t>(i)),
                                Value::String(names[i]),
                                Value::String(nouns[rng.SkewedIndex(nouns.size())])}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- ground-truth queries -----------------------------------------------
  dataset.queries = {
      // Q1: cell_name x assay_type via assays ⋈ cell_dictionary. The
      // alternate 1:1 key (cell_description) creates compatible views.
      GroundTruthQuery{
          "Q1",
          {"cell_dictionary", "assays"},
          {"cell_name", "assay_type"},
          {GtJoin{"cell_dictionary", "cell_name", "assays", "cell_name"}},
          {"biosamples", ""},
          {"sample_name", ""}},
      // Q2: target pref_name x organism, single table; contradictions come
      // from component_sequences' disagreeing organism mapping.
      GroundTruthQuery{"Q2",
                       {"target_dictionary", "target_dictionary"},
                       {"pref_name", "organism"},
                       {},
                       {"component_sequences", ""},
                       {"pref_name", ""}},
      // Q3: compound pref_name x molweight; molecule_dictionary joins
      // produce contained views.
      GroundTruthQuery{"Q3",
                       {"compounds", "compounds"},
                       {"pref_name", "molweight"},
                       {},
                       {"molecule_dictionary", ""},
                       {"pref_name", ""}},
      // Q4: compound pref_name x standard_value via activities.
      GroundTruthQuery{
          "Q4",
          {"compounds", "activities"},
          {"pref_name", "standard_value"},
          {GtJoin{"compounds", "compound_id", "activities", "compound_id"}},
          {"compound_records", ""},
          {"pref_name", ""}},
      // Q5: cell_name x organism via assays.
      GroundTruthQuery{
          "Q5",
          {"cell_dictionary", "assays"},
          {"cell_name", "organism"},
          {GtJoin{"cell_dictionary", "cell_name", "assays", "cell_name"}},
          {"biosamples", ""},
          {"sample_name", ""}},
  };
  return dataset;
}

}  // namespace ver
