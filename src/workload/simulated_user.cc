#include "workload/simulated_user.h"

#include <algorithm>

namespace ver {

SimulatedUser::SimulatedUser(SimulatedUserProfile profile,
                             std::vector<int> acceptable_views,
                             const std::vector<View>* views,
                             const DistillationResult* distillation)
    : profile_(profile),
      acceptable_(acceptable_views.begin(), acceptable_views.end()),
      views_(views),
      distillation_(distillation),
      rng_(profile.seed) {}

bool SimulatedUser::GroundTruthHasAttribute(
    const std::string& attribute) const {
  for (int v : acceptable_) {
    if ((*views_)[v].table.schema().IndexOf(attribute) >= 0) return true;
  }
  return false;
}

Answer SimulatedUser::Respond(const Question& question) {
  double competence =
      profile_.competence[static_cast<int>(question.interface_kind)];
  if (!rng_.Bernoulli(competence)) return Answer{AnswerType::kSkip};

  switch (question.interface_kind) {
    case QuestionInterface::kDataset: {
      if (question.view_index < 0) return Answer{AnswerType::kSkip};
      return Answer{Accepts(question.view_index) ? AnswerType::kYes
                                                 : AnswerType::kNo};
    }
    case QuestionInterface::kAttribute: {
      if (acceptable_.empty()) return Answer{AnswerType::kSkip};
      return Answer{GroundTruthHasAttribute(question.attribute)
                        ? AnswerType::kYes
                        : AnswerType::kNo};
    }
    case QuestionInterface::kDatasetPair: {
      // Prefer the side whose contradiction group contains an acceptable
      // view; a user who cannot tell skips.
      if (question.contradiction_index < 0 ||
          question.contradiction_index >=
              static_cast<int>(distillation_->contradictions.size())) {
        return Answer{AnswerType::kSkip};
      }
      const Contradiction& contra =
          distillation_->contradictions[question.contradiction_index];
      auto group_of = [&contra](int view) -> const std::vector<int>* {
        for (const auto& g : contra.groups) {
          if (std::find(g.begin(), g.end(), view) != g.end()) return &g;
        }
        return nullptr;
      };
      const std::vector<int>* ga = group_of(question.view_a);
      const std::vector<int>* gb = group_of(question.view_b);
      auto group_acceptable = [this](const std::vector<int>* g) {
        if (g == nullptr) return false;
        for (int v : *g) {
          if (acceptable_.count(v)) return true;
        }
        return false;
      };
      bool a_ok = group_acceptable(ga);
      bool b_ok = group_acceptable(gb);
      if (a_ok == b_ok) return Answer{AnswerType::kSkip};
      return Answer{a_ok ? AnswerType::kPickA : AnswerType::kPickB};
    }
    case QuestionInterface::kSummary: {
      bool contains = false;
      for (int v : question.summary_views) {
        if (acceptable_.count(v)) {
          contains = true;
          break;
        }
      }
      return Answer{contains ? AnswerType::kYes : AnswerType::kNo};
    }
  }
  return Answer{AnswerType::kSkip};
}

SessionOutcome DriveSession(PresentationSession* session, SimulatedUser* user,
                            int max_interactions) {
  SessionOutcome outcome;
  for (int i = 0; i < max_interactions && !session->Done(); ++i) {
    Question q = session->NextQuestion();
    Answer a = user->Respond(q);
    session->SubmitAnswer(q, a);
    ++outcome.interactions;
    // After each exchange the user re-inspects the ranking and stops when
    // their view is on top and endorsed by at least one answered question.
    if (a.type == AnswerType::kSkip) continue;
    std::vector<RankedView> ranking = session->RankedViews();
    if (!ranking.empty() && ranking.front().utility > 0 &&
        user->Accepts(ranking.front().view_index)) {
      outcome.found = true;
      break;
    }
  }
  if (!outcome.found) {
    // Session over (or budget exhausted): the user picks the top view.
    std::vector<RankedView> ranking = session->RankedViews();
    if (!ranking.empty() && user->Accepts(ranking.front().view_index)) {
      outcome.found = true;
    }
  }
  outcome.views_remaining = static_cast<int>(session->remaining().size());
  return outcome;
}

}  // namespace ver
