// Open-Data-like generator: a large heterogeneous portal crawl.
//
// Drives the scalability experiments (Fig. 3/4): tables are generated in a
// fixed deterministic order, so the dataset at sample portion p is exactly
// the first ceil(p*N) tables — the nesting property the paper's subsampling
// guarantees ("all datasets present in a smaller size version are also
// present in the larger sample"). Queries reference only tables inside the
// smallest portion so every portion can answer every query.

#ifndef VER_WORKLOAD_OPEN_DATA_GEN_H_
#define VER_WORKLOAD_OPEN_DATA_GEN_H_

#include "workload/ground_truth.h"

namespace ver {

struct OpenDataSpec {
  /// Table count at portion 1.0.
  int num_tables = 240;
  /// Fraction of tables to materialize (0 < portion <= 1).
  double portion = 1.0;
  /// Ground-truth queries to derive (all within the first 25% of tables).
  int num_queries = 50;
  /// Rows per table are drawn from [min_rows, max_rows].
  int min_rows = 15;
  int max_rows = 90;
  uint64_t seed = 0x0da7a;
};

GeneratedDataset GenerateOpenDataLike(const OpenDataSpec& spec);

}  // namespace ver

#endif  // VER_WORKLOAD_OPEN_DATA_GEN_H_
