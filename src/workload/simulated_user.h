// SimulatedUser: stand-in for the paper's IRB user study participants.
//
// The user knows which candidate views are acceptable (the ground truth) and
// answers questions truthfully — but only when competent on the question's
// interface (per-interface answer probability); otherwise they skip. This
// reproduces the paper's observation that different users can answer
// different interfaces, which is exactly what the bandit learns.

#ifndef VER_WORKLOAD_SIMULATED_USER_H_
#define VER_WORKLOAD_SIMULATED_USER_H_

#include <unordered_set>
#include <vector>

#include "core/distillation.h"
#include "core/presentation.h"
#include "engine/view.h"
#include "util/rng.h"

namespace ver {

struct SimulatedUserProfile {
  /// Probability of answering (vs. skipping) per question interface,
  /// indexed by QuestionInterface.
  double competence[kNumQuestionInterfaces] = {0.9, 0.9, 0.9, 0.9};
  uint64_t seed = 0x5eed0e5e;
};

class SimulatedUser {
 public:
  /// `views` and `distillation` must outlive the user.
  SimulatedUser(SimulatedUserProfile profile,
                std::vector<int> acceptable_views,
                const std::vector<View>* views,
                const DistillationResult* distillation);

  /// Answers one question (truthful or skip).
  Answer Respond(const Question& question);

  /// True when the user would recognize `view_index` as their view.
  bool Accepts(int view_index) const {
    return acceptable_.count(view_index) > 0;
  }

  const std::unordered_set<int>& acceptable() const { return acceptable_; }

 private:
  SimulatedUserProfile profile_;
  std::unordered_set<int> acceptable_;
  const std::vector<View>* views_;
  const DistillationResult* distillation_;
  Rng rng_;

  bool GroundTruthHasAttribute(const std::string& attribute) const;
};

/// Outcome of driving one presentation session with a simulated user.
struct SessionOutcome {
  bool found = false;        // ground truth surfaced as top-1 / selected
  int interactions = 0;      // questions answered or skipped
  int views_remaining = 0;   // candidate count at session end
};

/// Runs a full session: asks up to `max_interactions` questions, stopping
/// early when an acceptable view ranks first (the user would select it) or
/// the candidate set collapses. Uses the session's ranking after every
/// answer, mirroring the user-study protocol.
SessionOutcome DriveSession(PresentationSession* session, SimulatedUser* user,
                            int max_interactions);

}  // namespace ver

#endif  // VER_WORKLOAD_SIMULATED_USER_H_
