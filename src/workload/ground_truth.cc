#include "workload/ground_truth.h"

#include <algorithm>
#include <unordered_set>

#include "engine/materializer.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace ver {

Result<ColumnRef> ResolveColumn(const TableRepository& repo,
                                const std::string& table,
                                const std::string& attribute) {
  VER_ASSIGN_OR_RETURN(int32_t tid, repo.FindTable(table));
  int col = repo.table(tid).schema().IndexOf(attribute);
  if (col < 0) {
    return Status::NotFound("no attribute '" + attribute + "' in table '" +
                            table + "'");
  }
  return ColumnRef{tid, col};
}

Result<std::vector<ColumnRef>> ResolveProjection(const TableRepository& repo,
                                                 const GroundTruthQuery& gt) {
  std::vector<ColumnRef> out;
  for (size_t i = 0; i < gt.gt_tables.size(); ++i) {
    VER_ASSIGN_OR_RETURN(
        ColumnRef ref, ResolveColumn(repo, gt.gt_tables[i],
                                     gt.gt_attributes[i]));
    out.push_back(ref);
  }
  return out;
}

Result<Table> MaterializeGroundTruth(const TableRepository& repo,
                                     const GroundTruthQuery& gt) {
  VER_ASSIGN_OR_RETURN(std::vector<ColumnRef> projection,
                       ResolveProjection(repo, gt));
  JoinGraph graph;
  for (const GtJoin& j : gt.joins) {
    VER_ASSIGN_OR_RETURN(ColumnRef left,
                         ResolveColumn(repo, j.left_table, j.left_attribute));
    VER_ASSIGN_OR_RETURN(
        ColumnRef right, ResolveColumn(repo, j.right_table, j.right_attribute));
    graph.edges.push_back(JoinEdge{left, right, 1.0, 1.0});
  }
  std::vector<int32_t> mandatory;
  for (const ColumnRef& p : projection) mandatory.push_back(p.table_id);
  NormalizeJoinGraph(&graph, mandatory);
  Materializer materializer(&repo);
  MaterializeOptions options;
  return materializer.Materialize(graph, projection, options,
                                  "gt_" + gt.name);
}

namespace {

// Row-hash set of a table in canonical (attribute-name sorted) column order.
std::unordered_set<uint64_t> CanonicalRowSet(const Table& t) {
  std::vector<int> cols(t.num_columns());
  for (int i = 0; i < t.num_columns(); ++i) cols[i] = i;
  std::sort(cols.begin(), cols.end(), [&t](int a, int b) {
    std::string la = ToLower(t.schema().attribute(a).name);
    std::string lb = ToLower(t.schema().attribute(b).name);
    if (la != lb) return la < lb;
    return a < b;
  });
  std::unordered_set<uint64_t> set;
  set.reserve(static_cast<size_t>(t.num_rows()));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    uint64_t h = 0x726f7768617368ULL;
    for (int c : cols) h = HashCombine(h, t.cell_hash(r, c));
    set.insert(h);
  }
  return set;
}

}  // namespace

Result<std::vector<int>> GroundTruthMatches(const TableRepository& repo,
                                            const GroundTruthQuery& gt,
                                            const std::vector<View>& views) {
  VER_ASSIGN_OR_RETURN(std::vector<ColumnRef> projection,
                       ResolveProjection(repo, gt));
  VER_ASSIGN_OR_RETURN(Table gt_table, MaterializeGroundTruth(repo, gt));
  std::string gt_signature = gt_table.schema().CanonicalSignature();
  std::unordered_set<uint64_t> gt_rows = CanonicalRowSet(gt_table);

  std::vector<int> matches;
  for (size_t i = 0; i < views.size(); ++i) {
    const View& v = views[i];
    if (v.HasSameProjection(projection)) {
      matches.push_back(static_cast<int>(i));
      continue;
    }
    // Content equivalence: same schema block and covers every GT row.
    if (v.table.schema().CanonicalSignature() != gt_signature) continue;
    std::unordered_set<uint64_t> rows = CanonicalRowSet(v.table);
    bool covers = true;
    for (uint64_t h : gt_rows) {
      if (!rows.count(h)) {
        covers = false;
        break;
      }
    }
    if (covers) matches.push_back(static_cast<int>(i));
  }
  return matches;
}

Result<bool> ContainsGroundTruth(const TableRepository& repo,
                                 const GroundTruthQuery& gt,
                                 const std::vector<View>& views) {
  VER_ASSIGN_OR_RETURN(std::vector<int> matches,
                       GroundTruthMatches(repo, gt, views));
  return !matches.empty();
}

}  // namespace ver
