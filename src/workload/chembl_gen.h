// ChEMBL-like dataset generator.
//
// Reproduces the *mechanisms* the paper reports on ChEMBL rather than the
// corpus itself: a snowflake of bio-activity tables with
//   - alternate 1:1 join keys (cell_name <-> cell_description) that yield
//     *compatible* candidate views (Table IV C1 insight),
//   - dictionary tables covering subsets of a fact table's domain that
//     yield *contained* views (C2),
//   - a low-quality join column (component pref_name vs target pref_name)
//     whose organism mapping partially disagrees, yielding *contradictory*
//     views from wrong join paths (C4 / Fig. 2 insight),
//   - per-query noise columns with Jaccard containment > 0.8 w.r.t. the
//     ground-truth columns, for the Medium/High noise workloads (Table V).

#ifndef VER_WORKLOAD_CHEMBL_GEN_H_
#define VER_WORKLOAD_CHEMBL_GEN_H_

#include "workload/ground_truth.h"

namespace ver {

struct ChemblSpec {
  int num_compounds = 300;
  int num_targets = 120;
  int num_cells = 80;
  int num_assays = 400;
  int num_activities = 600;
  /// Additional small dictionary tables (ChEMBL has ~70 tables total).
  int num_filler_tables = 12;
  uint64_t seed = 0xc4e3b1;
};

/// Builds the repository and its 5 ground-truth queries (Q1..Q5).
GeneratedDataset GenerateChemblLike(const ChemblSpec& spec);

}  // namespace ver

#endif  // VER_WORKLOAD_CHEMBL_GEN_H_
