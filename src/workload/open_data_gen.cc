#include "workload/open_data_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "workload/vocab.h"
#include "util/check.h"

namespace ver {

namespace {

void MustAdd(TableRepository* repo, Table t) {
  t.InferColumnTypes();
  Result<int32_t> id = repo->AddTable(std::move(t));
  assert(id.ok());
  (void)id;
}

// Shared value domains that make open-data tables joinable.
struct Pool {
  std::string attr_name;
  std::vector<std::string> values;
};

// A planted shared-pool column, recorded for query derivation.
struct PlantedColumn {
  int table_index;         // generation order index
  std::string table_name;
  int pool_id;
  std::string pool_attr;   // the joinable column
  std::string other_attr;  // a same-table payload column
  double coverage;
};

}  // namespace

GeneratedDataset GenerateOpenDataLike(const OpenDataSpec& spec) {
  GeneratedDataset dataset;
  dataset.name = "OpenData-like";
  Rng seed_rng(spec.seed);

  std::vector<Pool> pools;
  pools.push_back({"city", UsCities()});
  pools.push_back({"state", UsStates()});
  pools.push_back({"country", Countries()});
  pools.push_back({"agency",
                   SyntheticNames("Agency of ", 40, seed_rng.Fork(1))});
  pools.push_back({"department",
                   SyntheticNames("Dept-", 40, seed_rng.Fork(2))});
  pools.push_back({"vendor", SyntheticNames("Vendor-", 50,
                                            seed_rng.Fork(3))});

  const auto& nouns = GenericNouns();
  const int total = std::max(
      8, static_cast<int>(std::ceil(spec.portion * spec.num_tables)));
  const int quarter =
      std::max(4, static_cast<int>(std::ceil(0.25 * spec.num_tables)));

  std::vector<PlantedColumn> planted;

  for (int i = 0; i < total; ++i) {
    // Per-table RNG keyed only by (seed, i): table i is identical across
    // portions — the nesting guarantee.
    Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));

    // The first |pools| tables are full-coverage "registry" tables; they
    // sit inside every portion and keep the join graph connected.
    if (i < static_cast<int>(pools.size())) {
      const Pool& pool = pools[i];
      Schema schema;
      schema.AddAttribute(Attribute{pool.attr_name, ValueType::kString});
      schema.AddAttribute(Attribute{"registry_id", ValueType::kInt});
      Table t("od_registry_" + pool.attr_name, schema);
      t.Reserve(static_cast<int64_t>(pool.values.size()));
      for (size_t v = 0; v < pool.values.size(); ++v) {
        VER_CHECK_OK(t.AppendRow({Value::String(pool.values[v]),
                                  Value::Int(static_cast<int64_t>(v))}));
      }
      MustAdd(&dataset.repo, std::move(t));
      continue;
    }

    std::string noun = nouns[rng.SkewedIndex(nouns.size())];
    std::string table_name =
        "od_" + noun + "_" + std::to_string(i);
    int rows = static_cast<int>(rng.UniformInt(spec.min_rows, spec.max_rows));

    bool has_pool = rng.Bernoulli(0.65);
    int pool_id =
        has_pool ? static_cast<int>(rng.UniformInt(0, pools.size() - 1)) : -1;

    Schema schema;
    std::string other_attr = noun + "_name";
    if (has_pool) {
      schema.AddAttribute(
          Attribute{pools[pool_id].attr_name, ValueType::kString});
    }
    schema.AddAttribute(Attribute{other_attr, ValueType::kString});
    // With small probability the payload header is missing (noisy schema).
    if (rng.Bernoulli(0.08)) {
      schema.AddAttribute(Attribute{"", ValueType::kString});
    } else {
      schema.AddAttribute(Attribute{noun + "_count", ValueType::kInt});
    }

    double coverage = 0.0;
    std::vector<std::string> pool_sample;
    if (has_pool) {
      const auto& values = pools[pool_id].values;
      coverage = 0.45 + 0.5 * rng.UniformDouble();
      int take = std::max<int>(
          2, static_cast<int>(coverage * static_cast<double>(values.size())));
      take = std::min<int>(take, static_cast<int>(values.size()));
      for (size_t idx : rng.SampleWithoutReplacement(values.size(), take)) {
        pool_sample.push_back(values[idx]);
      }
      // One row per pool key so the key column is an approximate key.
      rows = std::min<int>(rows, static_cast<int>(pool_sample.size()));
    }
    Table t(table_name, schema);
    t.Reserve(rows);
    std::vector<std::string> uniques =
        SyntheticNames(noun + std::to_string(i) + "-", rows,
                       rng.Fork(0xabc));
    for (int r = 0; r < rows; ++r) {
      std::vector<Value> row;
      if (has_pool) {
        row.push_back(Value::String(pool_sample[static_cast<size_t>(r)]));
      }
      row.push_back(Value::String(uniques[r]));
      row.push_back(Value::Int(rng.UniformInt(0, 100000)));
      VER_CHECK_OK(t.AppendRow(std::move(row)));
    }
    MustAdd(&dataset.repo, std::move(t));

    // A third of the pooled tables ship with a conflicting "alternative"
    // sibling: same schema and key coverage, and a payload column sharing
    // ~70% of the parent's values (so column selection clusters them
    // together) but remapping/disagreeing on the rest — the semantic
    // ambiguity VIEW-PRESENTATION is meant to resolve (surviving views
    // that contradict on the pool key).
    if (has_pool && rng.Bernoulli(0.35)) {
      Schema alt_schema;
      alt_schema.AddAttribute(
          Attribute{pools[pool_id].attr_name, ValueType::kString});
      alt_schema.AddAttribute(Attribute{other_attr, ValueType::kString});
      alt_schema.AddAttribute(Attribute{noun + "_count", ValueType::kInt});
      Table alt(table_name + "_alt", alt_schema);
      alt.Reserve(rows);
      std::vector<std::string> alt_uniques =
          SyntheticNames(noun + std::to_string(i) + "x-", rows,
                         rng.Fork(0xabd));
      for (int r = 0; r < rows; ++r) {
        // Shift by one so even "shared" payload values land on different
        // keys: the views disagree per key while sharing a value domain.
        const std::string& payload =
            (r % 10 < 7) ? uniques[static_cast<size_t>((r + 1) % rows)]
                         : alt_uniques[static_cast<size_t>(r)];
        VER_CHECK_OK(
            alt.AppendRow({Value::String(pool_sample[static_cast<size_t>(r)]),
                           Value::String(payload),
                           Value::Int(rng.UniformInt(0, 100000))}));
      }
      MustAdd(&dataset.repo, std::move(alt));
    }

    if (has_pool && i < quarter) {
      planted.push_back(PlantedColumn{i, table_name, pool_id,
                                      pools[pool_id].attr_name, other_attr,
                                      coverage});
    }
  }

  // --- queries: all inside the smallest portion ---------------------------
  // Alternate single-table queries (pool key + payload) with join queries
  // (payloads of two tables sharing a pool, joined through the pool column).
  std::unordered_map<int, std::vector<int>> by_pool;  // pool -> planted idx
  for (size_t p = 0; p < planted.size(); ++p) {
    by_pool[planted[p].pool_id].push_back(static_cast<int>(p));
  }
  Rng qrng(spec.seed ^ 0x5151);
  int qid = 0;
  size_t round = 0;
  while (static_cast<int>(dataset.queries.size()) < spec.num_queries &&
         round < 4 * planted.size() + 16) {
    ++round;
    if (planted.empty()) break;
    const PlantedColumn& a =
        planted[static_cast<size_t>(qrng.UniformInt(0, planted.size() - 1))];
    bool join_query = qrng.Bernoulli(0.5);
    const std::vector<int>& same_pool = by_pool[a.pool_id];
    if (join_query && same_pool.size() >= 2) {
      const PlantedColumn& b = planted[static_cast<size_t>(
          same_pool[qrng.UniformInt(0, same_pool.size() - 1)])];
      if (b.table_name == a.table_name) continue;
      dataset.queries.push_back(GroundTruthQuery{
          "OD-Q" + std::to_string(qid++),
          {a.table_name, b.table_name},
          {a.other_attr, b.other_attr},
          {GtJoin{a.table_name, a.pool_attr, b.table_name, b.pool_attr}},
          {"", ""},
          {"", ""}});
    } else {
      dataset.queries.push_back(GroundTruthQuery{
          "OD-Q" + std::to_string(qid++),
          {a.table_name, a.table_name},
          {a.pool_attr, a.other_attr},
          {},
          {"", ""},
          {"", ""}});
    }
  }
  return dataset;
}

}  // namespace ver
