#include "workload/wdc_gen.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "workload/vocab.h"
#include "util/check.h"

namespace ver {

namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& attrs,
                int64_t expected_rows = 0) {
  Schema schema;
  for (const std::string& a : attrs) {
    schema.AddAttribute(Attribute{a, ValueType::kString});
  }
  Table t(name, schema);
  // Pre-size columns (an upper bound is fine) so the append loops below
  // never reallocate mid-load.
  if (expected_rows > 0) t.Reserve(expected_rows);
  return t;
}

void MustAdd(TableRepository* repo, Table t) {
  t.InferColumnTypes();
  Result<int32_t> id = repo->AddTable(std::move(t));
  assert(id.ok());
  (void)id;
}

// One topic: a key column domain plus a per-key fact value. Version tables
// subset the key domain; some carry a coherent *alternative* fact mapping
// (like a conflicting census year), so that views derived from them agree
// with each other and contradict master-derived views — the discriminative
// contradictions of the paper's WDC Q3 / Fig. 2.
struct Topic {
  std::string table_prefix;
  std::string key_attr;
  std::string value_attr;
  std::vector<std::string> keys;
  std::vector<std::string> values;      // parallel ground-truth facts
  std::vector<std::string> alt_values;  // conflicting alternative mapping
  bool numeric_value = false;
};

// Builds the alternative mapping: ~40% of keys get a conflicting value.
void FillAlternativeMapping(Topic* topic, Rng* rng) {
  topic->alt_values = topic->values;
  for (size_t i = 0; i < topic->alt_values.size(); ++i) {
    if (!rng->Bernoulli(0.4)) continue;
    if (topic->numeric_value) {
      topic->alt_values[i] = std::to_string(rng->UniformInt(1000, 2000000));
    } else {
      topic->alt_values[i] =
          topic->values[(i + 7) % topic->values.size()];
    }
  }
}

void EmitTopic(const Topic& topic, int versions, Rng* rng,
               TableRepository* repo) {
  const int n = static_cast<int>(topic.keys.size());
  // The master covers most but not all of the domain; random versions draw
  // from the full domain so their coverage overlaps without nesting — the
  // complementary-union mechanism (paper's WDC Q2 / C3 insight).
  const int master_n = std::max(2, (17 * n) / 20);

  {
    Table t = MakeTable(topic.table_prefix + "_master",
                        {topic.key_attr, topic.value_attr}, master_n);
    for (int i = 0; i < master_n; ++i) {
      VER_CHECK_OK(t.AppendRow({Value::String(topic.keys[i]),
                                Value::Parse(topic.values[i])}));
    }
    MustAdd(repo, std::move(t));
  }

  for (int v = 0; v < versions; ++v) {
    // Version style: duplicates of master (compatible), nested-prefix
    // subsets (contained), random full-domain subsets (complementary), and
    // some conflicting-fact versions (contradictory).
    Table t = MakeTable(topic.table_prefix + "_v" + std::to_string(v),
                        {topic.key_attr, topic.value_attr}, n);
    std::vector<size_t> members;
    if (v < 2) {
      // Exact duplicate of the master.
      members.resize(master_n);
      for (int i = 0; i < master_n; ++i) members[i] = i;
    } else if (v < 4) {
      // Nested prefix subsets: master ⊃ v2 ⊃ v3 (contained mechanism).
      int take = v == 2 ? (3 * master_n) / 4 : master_n / 2;
      members.resize(take);
      for (int i = 0; i < take; ++i) members[i] = i;
    } else {
      // Random subset of the FULL domain with 40-90% coverage.
      int take = static_cast<int>(
          n * (0.4 + 0.5 * rng->UniformDouble()));
      take = std::max(take, 2);
      members = rng->SampleWithoutReplacement(n, take);
      std::sort(members.begin(), members.end());
    }
    // Every third random version reports the coherent alternative mapping,
    // so alternative-side views agree with each other and contradict the
    // master side on the same key values (discriminative contradictions).
    bool alternative = v >= 4 && (v % 3 == 1);
    for (size_t idx : members) {
      const std::string& value =
          alternative ? topic.alt_values[idx] : topic.values[idx];
      VER_CHECK_OK(
          t.AppendRow({Value::String(topic.keys[idx]), Value::Parse(value)}));
    }
    MustAdd(repo, std::move(t));
  }
}

}  // namespace

GeneratedDataset GenerateWdcLike(const WdcSpec& spec) {
  GeneratedDataset dataset;
  dataset.name = "WDC-like";
  Rng rng(spec.seed);

  const auto& states = UsStates();
  const auto& countries = Countries();

  // --- topic domains ------------------------------------------------------
  std::vector<std::string> iata = IataCodes(static_cast<int>(states.size()),
                                            rng.Fork(11));
  std::vector<std::string> churches =
      ChurchNames(static_cast<int>(states.size()), rng.Fork(12));
  std::vector<std::string> newspapers =
      NewspaperTitles(static_cast<int>(states.size()), rng.Fork(13));
  std::vector<std::string> population;
  std::vector<std::string> births;
  for (size_t i = 0; i < countries.size(); ++i) {
    population.push_back(std::to_string(rng.UniformInt(500000, 1400000000)));
    births.push_back(std::to_string(rng.UniformInt(60, 480) / 10.0));
  }

  std::vector<Topic> topics = {
      {"airports", "state", "iata_code", states, iata, {}, false},
      {"churches", "state", "church", states, churches, {}, false},
      {"newspapers", "state", "newspaper_title", states, newspapers, {},
       false},
      {"population", "country", "population", countries, population, {},
       true},
      {"births", "country", "births_per_1000", countries, births, {}, true},
  };
  for (Topic& topic : topics) {
    FillAlternativeMapping(&topic, &rng);
    EmitTopic(topic, spec.versions_per_topic, &rng, &dataset.repo);
  }

  // --- noise columns ------------------------------------------------------
  // state_mailing.state_name: most states + fake region names (noise for
  // the 'state' key); country_codes.country_name analogous.
  {
    Table t = MakeTable("state_mailing", {"state_name", "zip_prefix"},
                        static_cast<int64_t>(states.size()) + 8);
    int keep = static_cast<int>(0.86 * states.size());
    for (size_t idx : rng.SampleWithoutReplacement(states.size(), keep)) {
      VER_CHECK_OK(t.AppendRow({Value::String(states[idx]),
                                Value::String(std::to_string(rng.UniformInt(100, 999)))}));
    }
    for (const std::string& fake :
         SyntheticNames("Region of ", 8, rng.Fork(21))) {
      VER_CHECK_OK(t.AppendRow({Value::String(fake),
                                Value::String(std::to_string(rng.UniformInt(100, 999)))}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }
  {
    Table t = MakeTable("country_codes", {"country_name", "iso_code"},
                        static_cast<int64_t>(countries.size()) + 8);
    int keep = static_cast<int>(0.85 * countries.size());
    for (size_t idx : rng.SampleWithoutReplacement(countries.size(), keep)) {
      VER_CHECK_OK(t.AppendRow({Value::String(countries[idx]),
                                Value::String(IataCodes(1, rng.Fork(idx + 500))[0])}));
    }
    for (const std::string& fake :
         SyntheticNames("Territory of ", 8, rng.Fork(22))) {
      VER_CHECK_OK(t.AppendRow({Value::String(fake), Value::String("ZZZ")}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- filler tables --------------------------------------------------------
  // A third of the filler tables carry a couple of *coincidental* matches
  // (a state or country string inside an unrelated column, like the person
  // name "Virginia"). Select-All retrieves these columns on any example
  // hit; Column-Selection's clustering discards them (low similarity to
  // the true domain) — the mechanism behind the Fig. 5/6 gap.
  const auto& nouns = GenericNouns();
  const auto& cities = UsCities();
  for (int f = 0; f < spec.num_filler_tables; ++f) {
    std::string noun = nouns[rng.SkewedIndex(nouns.size())];
    Table t = MakeTable("web_" + noun + "_" + std::to_string(f),
                        {noun + "_name", "city", "count"}, 40);
    int rows = static_cast<int>(rng.UniformInt(8, 40));
    std::vector<std::string> names =
        SyntheticNames(noun + "-", rows, rng.Fork(0x1000 + f));
    bool coincidental = (f % 3 == 0);
    for (int r = 0; r < rows; ++r) {
      std::string name = names[r];
      std::string city = cities[rng.SkewedIndex(cities.size())];
      if (coincidental && r < 2) {
        // Two stray domain values in unrelated columns.
        name = states[rng.SkewedIndex(states.size())];
        city = countries[rng.SkewedIndex(countries.size())];
      }
      VER_CHECK_OK(t.AppendRow({Value::String(name), Value::String(city),
                                Value::Int(rng.UniformInt(1, 5000))}));
    }
    MustAdd(&dataset.repo, std::move(t));
  }

  // --- ground-truth queries (one per user-study task) ----------------------
  auto topic_query = [&](const std::string& name, const Topic& t,
                         const std::string& noise_table,
                         const std::string& noise_attr) {
    return GroundTruthQuery{
        name,
        {t.table_prefix + "_master", t.table_prefix + "_master"},
        {t.key_attr, t.value_attr},
        {},
        {noise_table, ""},
        {noise_attr, ""}};
  };
  dataset.queries = {
      topic_query("Q1", topics[0], "state_mailing", "state_name"),
      topic_query("Q2", topics[1], "state_mailing", "state_name"),
      topic_query("Q3", topics[2], "state_mailing", "state_name"),
      topic_query("Q4", topics[3], "country_codes", "country_name"),
      topic_query("Q5", topics[4], "country_codes", "country_name"),
  };
  return dataset;
}

}  // namespace ver
