// Ground-truth bookkeeping for the synthetic workloads: which PJ-view a
// query is "about", how to materialize it, and whether a candidate view set
// hits it (the Ground Truth Hit Ratio of Table V).

#ifndef VER_WORKLOAD_GROUND_TRUTH_H_
#define VER_WORKLOAD_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "engine/view.h"
#include "storage/repository.h"
#include "util/result.h"

namespace ver {

/// One join edge of a ground-truth view, by names.
struct GtJoin {
  std::string left_table;
  std::string left_attribute;
  std::string right_table;
  std::string right_attribute;
};

/// A ground-truth PJ-query: the projection that defines the desired view,
/// the joins needed to materialize it, and per-attribute noise columns
/// (columns with high Jaccard containment w.r.t. the ground-truth column,
/// used by the Medium/High noise query generators).
struct GroundTruthQuery {
  std::string name;  // "Q1".."Q5"
  std::vector<std::string> gt_tables;      // one per query attribute
  std::vector<std::string> gt_attributes;  // parallel to gt_tables
  std::vector<GtJoin> joins;               // empty for single-table views
  std::vector<std::string> noise_tables;      // parallel; may hold ""
  std::vector<std::string> noise_attributes;  // parallel; may hold ""
};

/// A generated dataset: the pathless collection plus its query workload.
struct GeneratedDataset {
  std::string name;
  TableRepository repo;
  std::vector<GroundTruthQuery> queries;
};

/// Resolves a (table, attribute) name pair to a ColumnRef.
Result<ColumnRef> ResolveColumn(const TableRepository& repo,
                                const std::string& table,
                                const std::string& attribute);

/// Resolves the ground-truth projection columns.
Result<std::vector<ColumnRef>> ResolveProjection(const TableRepository& repo,
                                                 const GroundTruthQuery& gt);

/// Materializes the ground-truth view itself (set semantics).
Result<Table> MaterializeGroundTruth(const TableRepository& repo,
                                     const GroundTruthQuery& gt);

/// Indices of candidate views that *are* the ground truth: either projected
/// from exactly the ground-truth columns, or content-equivalent (same schema
/// block, row set containing every ground-truth row).
Result<std::vector<int>> GroundTruthMatches(const TableRepository& repo,
                                            const GroundTruthQuery& gt,
                                            const std::vector<View>& views);

/// True when at least one view matches (Table V's hit predicate).
Result<bool> ContainsGroundTruth(const TableRepository& repo,
                                 const GroundTruthQuery& gt,
                                 const std::vector<View>& views);

}  // namespace ver

#endif  // VER_WORKLOAD_GROUND_TRUTH_H_
