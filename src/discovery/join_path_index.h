// Join path index: GENERATE-JOIN-GRAPHS(tables, rho) from the paper's
// Appendix A. Built offline from the similarity index's inclusion-dependency
// edges; queried online to connect candidate tables within rho hops.

#ifndef VER_DISCOVERY_JOIN_PATH_INDEX_H_
#define VER_DISCOVERY_JOIN_PATH_INDEX_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "discovery/join_graph.h"
#include "discovery/profile.h"
#include "discovery/similarity_index.h"
#include "pager/paged_view.h"
#include "util/thread_pool.h"

namespace ver {

struct JoinPathOptions {
  /// Containment threshold above which a column pair is a join edge — the
  /// discovery-index threshold t of Fig. 8a (paper default 0.8; lowering
  /// it admits noisier join paths). Unitless, in [0, 1].
  double containment_threshold = 0.8;
  /// Join endpoints need at least this many distinct values. Units:
  /// distinct values; default 2.
  int64_t min_distinct = 2;
  /// Cap on alternative join graphs returned per table-path, guarding the
  /// cartesian blowup of alternate keys along multi-hop paths. Units:
  /// graphs; default 64. No paper counterpart (implementation guard).
  int max_graphs_per_path = 64;
  /// Cap on total join graphs per query. Units: graphs; default 4096.
  /// No paper counterpart (implementation guard).
  int max_total_graphs = 4096;
};

/// Table-level join connectivity with per-table-pair column-pair choices.
class JoinPathIndex {
 public:
  /// Discovers all joinable column pairs and builds table adjacency.
  /// With a pool, candidate-pair scoring shards across workers; per-chunk
  /// edges merge in chunk order, so the index equals a serial build.
  void Build(const std::vector<ColumnProfile>* profiles,
             const SimilarityIndex& similarity, const JoinPathOptions& options,
             ThreadPool* pool = nullptr);

  /// Pair-list build for sharded engines: scores an explicit candidate
  /// pair list (ascending (i, j), i < j, deduplicated) instead of asking
  /// one similarity index. A monolithic engine's pair list is exactly
  /// similarity.AllCandidatePairs(), so the overload above delegates here
  /// — and a sharded engine passing the sorted union of per-shard and
  /// cross-shard pairs produces the identical index.
  void Build(const std::vector<ColumnProfile>* profiles,
             const std::vector<std::pair<int, int>>& pairs,
             const JoinPathOptions& options, ThreadPool* pool = nullptr);

  /// Incrementally discovers join edges for profiles appended after
  /// Build() (starting at `first_new`) and refreshes table adjacency.
  void AddColumns(const std::vector<ColumnProfile>* profiles,
                  const SimilarityIndex& similarity, size_t first_new);

  /// Pair-list variant of AddColumns for sharded engines: evaluates the
  /// given (new_column, existing_column) pairs in order. Callers must
  /// present pairs the way AddColumns discovers them — for each new column
  /// i ascending, its partners j < i ascending — so overlay edge order
  /// matches the single-shard incremental path.
  void AddColumnPairs(const std::vector<ColumnProfile>* profiles,
                      const std::vector<std::pair<int, int>>& pairs);

  /// All join graphs connecting `tables` where every inter-table route uses
  /// at most `max_hops` join edges. With a single input table, returns the
  /// single-table graph. Results are deduplicated and sorted by score.
  std::vector<JoinGraph> GenerateJoinGraphs(
      const std::vector<int32_t>& tables, int max_hops) const;

  /// All joinable column pairs between two specific tables: snapshot-loaded
  /// flat edges first (older profiles), then incremental overlay edges —
  /// the same two-store merge order the other indexes use.
  std::vector<JoinEdge> EdgesBetween(int32_t table_a, int32_t table_b) const;

  /// Total number of joinable column pairs discovered (Table I statistic).
  int64_t num_joinable_column_pairs() const {
    return num_joinable_column_pairs_;
  }

  /// Tables adjacent to `table` in the join connectivity graph.
  std::vector<int32_t> AdjacentTables(int32_t table) const;

  /// Snapshot serialization. Both stores are written merged into one flat
  /// sorted layout (u64 table-pair keys, u32 edge offsets, structure-of-
  /// arrays edge records), so the bytes are deterministic; the adjacency
  /// lists are derived data and are rebuilt on load. Resident loads
  /// validate every edge endpoint against `repo`; with a pager `binding`
  /// the arrays are adopted as borrowed mmap extents, the O(edges) scan is
  /// skipped, and EdgesBetween drops any edge whose decoded endpoints fall
  /// outside the repository instead. `options` comes from the engine's
  /// options section (persisted once).
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const TableRepository& repo,
                  const JoinPathOptions& options,
                  const PagerBinding* binding = nullptr);

  /// Adds the flat edge store's paged extents to `pin` (no-op if resident).
  void PinInto(PagePin* pin) const { flat_edges_.PinInto(pin); }

 private:
  /// Immutable snapshot-loaded edge store: table-pair keys sorted
  /// ascending, per-pair edge slices addressed by offsets, edge fields as
  /// parallel arrays (borrowable straight out of the mmapped snapshot).
  struct FlatEdges {
    PagedView<uint64_t> pair_keys;    // (min_id << 32) | max_id, sorted
    PagedView<uint32_t> offsets;      // pair_keys.size() + 1 entries
    PagedView<uint64_t> left;         // ColumnRef::Encode per edge
    PagedView<uint64_t> right;
    PagedView<double> containment;
    PagedView<double> key_quality;

    size_t num_pairs() const { return static_cast<size_t>(pair_keys.size()); }
    /// Index of `key`, or -1.
    ptrdiff_t find(uint64_t key) const;
    /// Bounds-guarded edge slice [begin, end) for pair index `i`; empty on
    /// a corrupt offset pair (paged loads skip offset validation).
    std::pair<uint32_t, uint32_t> edge_range(size_t i) const {
      uint32_t b = offsets[i], e = offsets[i + 1];
      if (b > e || e > left.size()) return {0, 0};
      return {b, e};
    }
    void SaveTo(SerdeWriter* w) const;
    Status LoadFrom(SerdeReader* r, const PagerBinding* binding);
    void PinInto(PagePin* pin) const {
      pair_keys.PinInto(pin);
      offsets.PinInto(pin);
      left.PinInto(pin);
      right.PinInto(pin);
      containment.PinInto(pin);
      key_quality.PinInto(pin);
    }
  };

  // Incremental overlay (Build/AddColumns inserts).
  // Key: (min_table_id, max_table_id).
  std::map<std::pair<int32_t, int32_t>, std::vector<JoinEdge>> pair_edges_;
  // Immutable snapshot-loaded base.
  FlatEdges flat_edges_;
  // Column counts per table, captured at LoadFrom: lets EdgesBetween
  // range-check decoded flat edges without touching the repository (the
  // query-time guard replacing the skipped paged validation scan).
  std::vector<int32_t> table_num_columns_;
  std::map<int32_t, std::vector<int32_t>> adjacency_;
  int64_t num_joinable_column_pairs_ = 0;
  JoinPathOptions options_;

  // Decodes flat edge slot `o` and appends it if its endpoints are in
  // range (corrupt paged records are dropped, never dereferenced).
  void AppendFlatEdge(uint32_t o, std::vector<JoinEdge>* out) const;

  // Evaluates one candidate column pair; returns true and fills `edge` when
  // the pair is joinable. Pure with respect to index state, so candidate
  // scoring can run on worker threads.
  bool ScoreEdge(const ColumnProfile& a, const ColumnProfile& b,
                 JoinEdge* edge) const;
  // Evaluates one candidate column pair and records the edge if joinable.
  void MaybeAddEdge(const ColumnProfile& a, const ColumnProfile& b);
  void RebuildAdjacency();

  // Simple table paths a -> b with <= max_hops edges (excluding cycles).
  std::vector<std::vector<int32_t>> TablePaths(int32_t from, int32_t to,
                                               int max_hops) const;

  // Expands one table path into concrete join graphs (one column pair per
  // consecutive table pair), capped at options_.max_graphs_per_path.
  void ExpandPath(const std::vector<int32_t>& path,
                  std::vector<JoinGraph>* out) const;
};

}  // namespace ver

#endif  // VER_DISCOVERY_JOIN_PATH_INDEX_H_
