#include "discovery/join_graph.h"

#include <algorithm>

namespace ver {

std::string JoinGraph::Signature() const {
  std::vector<std::pair<uint64_t, uint64_t>> encs;
  encs.reserve(edges.size());
  for (const JoinEdge& e : edges) encs.push_back(e.CanonicalEncoding());
  std::sort(encs.begin(), encs.end());
  std::string sig;
  sig.reserve(encs.size() * 16 + tables.size() * 4);
  for (const auto& [a, b] : encs) {
    sig += std::to_string(a);
    sig.push_back(':');
    sig += std::to_string(b);
    sig.push_back(';');
  }
  // Single-table graphs have no edges; distinguish them by table id.
  if (encs.empty()) {
    for (int32_t t : tables) {
      sig += std::to_string(t);
      sig.push_back(',');
    }
  }
  return sig;
}

std::string JoinGraph::ToString(const TableRepository& repo) const {
  if (edges.empty()) {
    std::string out = "single-table{";
    for (size_t i = 0; i < tables.size(); ++i) {
      if (i) out += ",";
      out += repo.table(tables[i]).name();
    }
    return out + "}";
  }
  std::string out = "join{";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i) out += ", ";
    out += repo.ColumnDisplayName(edges[i].left);
    out += " = ";
    out += repo.ColumnDisplayName(edges[i].right);
  }
  return out + "}";
}

void NormalizeJoinGraph(JoinGraph* graph,
                        const std::vector<int32_t>& mandatory_tables) {
  std::vector<int32_t> tables = mandatory_tables;
  for (const JoinEdge& e : graph->edges) {
    tables.push_back(e.left.table_id);
    tables.push_back(e.right.table_id);
  }
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  graph->tables = std::move(tables);
  graph->score = ScoreJoinGraph(*graph);
}

double ScoreJoinGraph(const JoinGraph& graph) {
  if (graph.edges.empty()) return 1.0;
  double quality_sum = 0.0;
  for (const JoinEdge& e : graph.edges) quality_sum += e.key_quality;
  double mean_quality = quality_sum / static_cast<double>(graph.edges.size());
  // Smaller graphs rank higher (paper, Appendix C): light per-hop penalty.
  return mean_quality - 0.05 * static_cast<double>(graph.edges.size());
}

}  // namespace ver
