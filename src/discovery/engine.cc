#include "discovery/engine.h"

#include <memory>

#include "util/thread_pool.h"

namespace ver {

std::unique_ptr<DiscoveryEngine> DiscoveryEngine::Build(
    const TableRepository& repo, const DiscoveryOptions& options) {
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->repo_ = &repo;
  engine->options_ = options;
  int workers = ResolveParallelism(options.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  engine->profiles_ = ProfileRepository(repo, options.profiler, pool.get());
  engine->profile_index_.reserve(engine->profiles_.size());
  for (size_t i = 0; i < engine->profiles_.size(); ++i) {
    engine->profile_index_.emplace(engine->profiles_[i].ref.Encode(),
                                   static_cast<int>(i));
  }
  engine->keywords_.Build(repo);
  engine->similarity_.Build(&engine->profiles_, options.similarity,
                            pool.get());
  engine->join_paths_.Build(&engine->profiles_, engine->similarity_,
                            options.join_paths, pool.get());
  return engine;
}

Status DiscoveryEngine::IndexNewTable(int32_t table_id) {
  if (table_id < 0 || table_id >= repo_->num_tables()) {
    return Status::InvalidArgument("table id " + std::to_string(table_id) +
                                   " not in repository");
  }
  if (profile_index_.count(ColumnRef{table_id, 0}.Encode()) ||
      repo_->table(table_id).num_columns() == 0) {
    if (repo_->table(table_id).num_columns() == 0) return Status::OK();
    return Status::AlreadyExists("table " + std::to_string(table_id) +
                                 " is already indexed");
  }
  size_t first_new = profiles_.size();
  std::vector<ColumnProfile> fresh =
      ProfileTable(*repo_, table_id, options_.profiler);
  for (ColumnProfile& p : fresh) {
    profile_index_.emplace(p.ref.Encode(), static_cast<int>(profiles_.size()));
    profiles_.push_back(std::move(p));
  }
  keywords_.AddTable(*repo_, table_id);
  similarity_.AddProfiles(first_new);
  join_paths_.AddColumns(&profiles_, similarity_, first_new);
  return Status::OK();
}

namespace {

// Section ids of the snapshot file. New sections get new ids; changing the
// payload of an existing section requires a kSnapshotFormatVersion bump.
constexpr uint32_t kSectionRepoFingerprint = 1;
constexpr uint32_t kSectionOptions = 2;
constexpr uint32_t kSectionProfiles = 3;
constexpr uint32_t kSectionKeywordIndex = 4;
constexpr uint32_t kSectionSimilarityIndex = 5;
constexpr uint32_t kSectionJoinPathIndex = 6;
// v2: the repository's tables in columnar form (per column: null bitmap,
// typed payload or dictionary + codes + arena — see ColumnData::SaveTo).
// Absent from v1 files; Load() never needs it (the caller supplies the
// repository), LoadRepository() reconstructs a repository from it so a
// server can cold-start without re-parsing CSVs.
constexpr uint32_t kSectionRepoTables = 7;

void SaveOptions(const DiscoveryOptions& o, SerdeWriter* w) {
  w->WriteI32(o.profiler.minhash_permutations);
  w->WriteU64(o.profiler.seed);
  w->WriteI64(o.profiler.exact_set_max);
  w->WriteI32(o.similarity.lsh_bands);
  w->WriteI64(o.similarity.min_distinct);
  w->WriteU64(o.similarity.max_posting_length);
  w->WriteDouble(o.join_paths.containment_threshold);
  w->WriteI64(o.join_paths.min_distinct);
  w->WriteI32(o.join_paths.max_graphs_per_path);
  w->WriteI32(o.join_paths.max_total_graphs);
  w->WriteDouble(o.similarity_cluster_threshold);
  w->WriteI32(o.fuzzy_max_edits);
  w->WriteI32(o.parallelism);
}

Status LoadOptions(SerdeReader* r, DiscoveryOptions* o) {
  VER_RETURN_IF_ERROR(r->ReadI32(&o->profiler.minhash_permutations));
  VER_RETURN_IF_ERROR(r->ReadU64(&o->profiler.seed));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->profiler.exact_set_max));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->similarity.lsh_bands));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->similarity.min_distinct));
  uint64_t max_posting;
  VER_RETURN_IF_ERROR(r->ReadU64(&max_posting));
  o->similarity.max_posting_length = static_cast<size_t>(max_posting);
  VER_RETURN_IF_ERROR(r->ReadDouble(&o->join_paths.containment_threshold));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->join_paths.min_distinct));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->join_paths.max_graphs_per_path));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->join_paths.max_total_graphs));
  VER_RETURN_IF_ERROR(r->ReadDouble(&o->similarity_cluster_threshold));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->fuzzy_max_edits));
  return r->ReadI32(&o->parallelism);
}

void SaveRepoFingerprint(const TableRepository& repo, SerdeWriter* w) {
  w->WriteI32(repo.num_tables());
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    const Table& table = repo.table(t);
    w->WriteString(table.name());
    w->WriteI64(table.num_rows());
    table.schema().SaveTo(w);
  }
}

// Compares the stored fingerprint against the live repository; a snapshot
// only loads over the exact table set it was built from.
Status CheckRepoFingerprint(SerdeReader* r, const TableRepository& repo) {
  int32_t num_tables;
  VER_RETURN_IF_ERROR(r->ReadI32(&num_tables));
  if (num_tables != repo.num_tables()) {
    return Status::InvalidArgument(
        "snapshot was built over " + std::to_string(num_tables) +
        " tables but the repository has " + std::to_string(repo.num_tables()));
  }
  for (int32_t t = 0; t < num_tables; ++t) {
    std::string name;
    int64_t num_rows;
    Schema schema;
    VER_RETURN_IF_ERROR(r->ReadString(&name));
    VER_RETURN_IF_ERROR(r->ReadI64(&num_rows));
    VER_RETURN_IF_ERROR(schema.LoadFrom(r));
    const Table& table = repo.table(t);
    if (table.name() != name || table.num_rows() != num_rows ||
        table.schema().num_attributes() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "snapshot table " + std::to_string(t) + " (" + name + ", " +
          std::to_string(num_rows) + " rows, " +
          std::to_string(schema.num_attributes()) +
          " columns) does not match repository table " + table.name());
    }
    for (int c = 0; c < schema.num_attributes(); ++c) {
      if (schema.attribute(c).name != table.schema().attribute(c).name) {
        return Status::InvalidArgument(
            "snapshot table " + name + " column " + std::to_string(c) +
            " is named '" + schema.attribute(c).name +
            "' but the repository has '" + table.schema().attribute(c).name +
            "'");
      }
      // Type drift means the column's *content* changed (types are
      // inferred from data), so the stored sketches no longer describe it.
      if (schema.attribute(c).type != table.schema().attribute(c).type) {
        return Status::InvalidArgument(
            "snapshot table " + name + " column " + std::to_string(c) +
            " was " + ValueTypeToString(schema.attribute(c).type) +
            " but the repository has " +
            ValueTypeToString(table.schema().attribute(c).type) +
            " — re-run build-index");
      }
    }
  }
  return Status::OK();
}

// The bytes behind one snapshot load: section views backed either by owned
// buffers (the checksum-verified resident read) or by a pager runtime's
// mmapped file (framing parsed, content paged in on demand).
struct SnapshotSource {
  std::vector<SnapshotSection> owned;     // resident reads only
  std::shared_ptr<PagerRuntime> runtime;  // paged opens only
  uint32_t version = 0;
  PagerBinding binding_value;

  struct View {
    uint32_t id;
    std::string_view payload;
  };
  std::vector<View> views;

  bool paged() const { return runtime != nullptr; }
  /// Binding for LoadFrom calls; null when resident.
  const PagerBinding* binding() const {
    return paged() ? &binding_value : nullptr;
  }
};

// Opens `path` paged when requested (reusing `reuse` if it already maps
// this file), resident otherwise. Structural can't-page conditions
// (pre-v3 file, no mmap) fall back to the resident read; real errors
// propagate.
Status OpenSnapshotSource(const std::string& path, const PagingOptions& paging,
                          const std::shared_ptr<PagerRuntime>& reuse,
                          SnapshotSource* out) {
  if (paging.enabled) {
    std::shared_ptr<PagerRuntime> runtime;
    if (reuse != nullptr && reuse->path() == path) {
      runtime = reuse;
    } else {
      Result<std::shared_ptr<PagerRuntime>> opened =
          PagerRuntime::Open(path, paging);
      if (opened.ok()) {
        runtime = std::move(opened).value();
      } else if (!opened.status().IsNotImplemented()) {
        return opened.status();
      }
    }
    if (runtime != nullptr) {
      out->runtime = runtime;
      out->version = runtime->map().format_version();
      out->binding_value = runtime->binding();
      out->views.reserve(runtime->map().sections().size());
      for (const SnapshotSectionEntry& e : runtime->map().sections()) {
        out->views.push_back({e.id, runtime->map().section_payload(e)});
      }
      return Status::OK();
    }
  }
  VER_RETURN_IF_ERROR(ReadSnapshotFile(path, &out->owned, &out->version));
  out->views.reserve(out->owned.size());
  for (const SnapshotSection& s : out->owned) {
    out->views.push_back({s.id, s.payload});
  }
  return Status::OK();
}

// First (and only) view with `id`; errors on duplicates or absence.
Result<const SnapshotSource::View*> FindSectionView(const SnapshotSource& src,
                                                    const std::string& path,
                                                    uint32_t id,
                                                    const char* name) {
  const SnapshotSource::View* found = nullptr;
  for (const SnapshotSource::View& v : src.views) {
    if (v.id != id) continue;
    if (found != nullptr) {
      return Status::IOError("snapshot " + path + " has duplicate " +
                             std::string(name) + " sections");
    }
    found = &v;
  }
  if (found == nullptr) {
    return Status::IOError("snapshot " + path + " is missing the " +
                           std::string(name) + " section");
  }
  return found;
}

}  // namespace

Status DiscoveryEngine::Save(const std::string& path,
                             uint32_t format_version) const {
  if (format_version < kSnapshotMinReadVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot save snapshot format version " +
        std::to_string(format_version) + "; supported range is " +
        std::to_string(kSnapshotMinReadVersion) + ".." +
        std::to_string(kSnapshotFormatVersion));
  }
  // Pre-v3 formats carry unaligned array payloads; the writer's padding
  // must match what a reader of that version expects.
  const bool align = format_version >= 3;
  auto section_writer = [align] {
    SerdeWriter w;
    w.set_align_arrays(align);
    return w;
  };
  std::vector<SnapshotSection> sections;
  {
    SerdeWriter w = section_writer();
    SaveRepoFingerprint(*repo_, &w);
    sections.push_back({kSectionRepoFingerprint, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    SaveOptions(options_, &w);
    sections.push_back({kSectionOptions, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    w.WriteU64(profiles_.size());
    for (const ColumnProfile& p : profiles_) p.SaveTo(&w);
    sections.push_back({kSectionProfiles, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    VER_RETURN_IF_ERROR(keywords_.SaveTo(&w));
    sections.push_back({kSectionKeywordIndex, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    VER_RETURN_IF_ERROR(similarity_.SaveTo(&w));
    sections.push_back({kSectionSimilarityIndex, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    join_paths_.SaveTo(&w);
    sections.push_back({kSectionJoinPathIndex, w.TakeBuffer()});
  }
  if (format_version >= 2) {
    SerdeWriter w = section_writer();
    w.WriteI32(repo_->num_tables());
    for (int32_t t = 0; t < repo_->num_tables(); ++t) {
      repo_->table(t).SaveTo(&w);
    }
    sections.push_back({kSectionRepoTables, w.TakeBuffer()});
  }
  return WriteSnapshotFile(path, sections, format_version);
}

Result<TableRepository> DiscoveryEngine::LoadRepository(
    const std::string& path) {
  return LoadRepository(path, PagingOptions{});
}

Result<TableRepository> DiscoveryEngine::LoadRepository(
    const std::string& path, const PagingOptions& paging) {
  SnapshotSource src;
  VER_RETURN_IF_ERROR(OpenSnapshotSource(path, paging, nullptr, &src));
  const SnapshotSource::View* tables = nullptr;
  for (const SnapshotSource::View& v : src.views) {
    if (v.id == kSectionRepoTables) {
      if (tables != nullptr) {
        return Status::IOError("snapshot " + path +
                               " has duplicate repo-tables sections");
      }
      tables = &v;
    }
  }
  if (tables == nullptr) {
    return Status::NotFound(
        "snapshot " + path + " (format version " +
        std::to_string(src.version) +
        ") carries no table data; re-run build-index to write a version " +
        std::to_string(kSnapshotFormatVersion) +
        " snapshot, or load the repository from its CSV directory");
  }
  SerdeReader r(tables->payload, "repo tables section of " + path);
  r.set_aligned(src.version >= 3);
  int32_t num_tables;
  VER_RETURN_IF_ERROR(r.ReadI32(&num_tables));
  if (num_tables < 0) {
    return Status::IOError("snapshot " + path +
                           " declares a negative table count");
  }
  TableRepository repo;
  for (int32_t t = 0; t < num_tables; ++t) {
    Table table;
    VER_RETURN_IF_ERROR(table.LoadFrom(&r, src.binding()));
    VER_ASSIGN_OR_RETURN(int32_t id, repo.AddTable(std::move(table)));
    (void)id;
  }
  VER_RETURN_IF_ERROR(r.ExpectEnd());
  // The repository keeps the runtime alive for as long as any table
  // borrows from the map.
  repo.set_pager(src.runtime);
  return repo;
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Load(
    const TableRepository& repo, const std::string& path) {
  // A repository paged from this very snapshot implies the caller wants
  // the engine paged too (one map, one budget); otherwise resident.
  PagingOptions paging;
  paging.enabled =
      repo.pager() != nullptr && repo.pager()->path() == path;
  return Load(repo, path, paging);
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Load(
    const TableRepository& repo, const std::string& path,
    const PagingOptions& paging) {
  SnapshotSource src;
  VER_RETURN_IF_ERROR(OpenSnapshotSource(path, paging, repo.pager(), &src));
  const uint32_t version = src.version;

  auto find_section =
      [&](uint32_t id, const char* name) -> Result<const SnapshotSource::View*> {
    return FindSectionView(src, path, id, name);
  };
  auto reader_for = [&](const SnapshotSource::View& s, const char* name) {
    SerdeReader r(s.payload, std::string(name) + " section of " + path);
    // Legacy (pre-v3) payloads carry no array-alignment padding.
    r.set_aligned(version >= 3);
    return r;
  };

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* fingerprint,
                       find_section(kSectionRepoFingerprint, "fingerprint"));
  {
    SerdeReader r = reader_for(*fingerprint, "fingerprint");
    VER_RETURN_IF_ERROR(CheckRepoFingerprint(&r, repo));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->repo_ = &repo;

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* options,
                       find_section(kSectionOptions, "options"));
  {
    SerdeReader r = reader_for(*options, "options");
    VER_RETURN_IF_ERROR(LoadOptions(&r, &engine->options_));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* profiles,
                       find_section(kSectionProfiles, "profiles"));
  {
    SerdeReader r = reader_for(*profiles, "profiles");
    uint64_t count;
    VER_RETURN_IF_ERROR(r.ReadU64(&count));
    // A serialized profile is >= 57 bytes (ref + name length + stats +
    // sketch + hash-set length); 8 is a safe floor for the count guard.
    VER_RETURN_IF_ERROR(r.CheckCount(count, 8, "profile count"));
    engine->profiles_.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      ColumnProfile p;
      VER_RETURN_IF_ERROR(p.LoadFrom(&r));
      engine->profiles_.push_back(std::move(p));
    }
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }
  engine->profile_index_.reserve(engine->profiles_.size());
  for (size_t i = 0; i < engine->profiles_.size(); ++i) {
    engine->profile_index_.emplace(engine->profiles_[i].ref.Encode(),
                                   static_cast<int>(i));
  }

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* keywords,
                       find_section(kSectionKeywordIndex, "keyword index"));
  {
    SerdeReader r = reader_for(*keywords, "keyword index");
    VER_RETURN_IF_ERROR(engine->keywords_.LoadFrom(&r, repo, src.binding()));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  VER_ASSIGN_OR_RETURN(
      const SnapshotSource::View* similarity,
      find_section(kSectionSimilarityIndex, "similarity index"));
  {
    SerdeReader r = reader_for(*similarity, "similarity index");
    VER_RETURN_IF_ERROR(engine->similarity_.LoadFrom(
        &r, &engine->profiles_, engine->options_.similarity, src.binding()));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* join_paths,
                       find_section(kSectionJoinPathIndex, "join path index"));
  {
    SerdeReader r = reader_for(*join_paths, "join path index");
    VER_RETURN_IF_ERROR(engine->join_paths_.LoadFrom(
        &r, repo, engine->options_.join_paths, src.binding()));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }
  engine->pager_ = src.runtime;
  return engine;
}

void DiscoveryEngine::PinInto(PagePin* pin) const {
  if (pager_ == nullptr && !repo_->paged()) return;
  for (int32_t t = 0; t < repo_->num_tables(); ++t) {
    repo_->table(t).PinInto(pin);
  }
  keywords_.PinInto(pin);
  similarity_.PinInto(pin);
  join_paths_.PinInto(pin);
}

std::vector<KeywordHit> DiscoveryEngine::SearchKeyword(
    const std::string& keyword, KeywordTarget target, bool fuzzy) const {
  return keywords_.Search(keyword, target,
                          fuzzy ? options_.fuzzy_max_edits : 0);
}

std::vector<ColumnRef> DiscoveryEngine::Neighbors(const ColumnRef& column,
                                                  double threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  std::vector<ColumnRef> out;
  for (const Neighbor& n :
       similarity_.ContainmentNeighbors(it->second, threshold)) {
    out.push_back(profiles_[n.profile_index].ref);
  }
  return out;
}

std::vector<ColumnRef> DiscoveryEngine::SimilarColumns(
    const ColumnRef& column, double jaccard_threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  std::vector<ColumnRef> out;
  for (const Neighbor& n :
       similarity_.JaccardNeighbors(it->second, jaccard_threshold)) {
    out.push_back(profiles_[n.profile_index].ref);
  }
  return out;
}

std::vector<JoinGraph> DiscoveryEngine::GenerateJoinGraphs(
    const std::vector<int32_t>& tables, int max_hops) const {
  return join_paths_.GenerateJoinGraphs(tables, max_hops);
}

}  // namespace ver
