#include "discovery/engine.h"

#include <memory>

#include "util/thread_pool.h"

namespace ver {

std::unique_ptr<DiscoveryEngine> DiscoveryEngine::Build(
    const TableRepository& repo, const DiscoveryOptions& options) {
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->repo_ = &repo;
  engine->options_ = options;
  int workers = ResolveParallelism(options.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  engine->profiles_ = ProfileRepository(repo, options.profiler, pool.get());
  engine->profile_index_.reserve(engine->profiles_.size());
  for (size_t i = 0; i < engine->profiles_.size(); ++i) {
    engine->profile_index_.emplace(engine->profiles_[i].ref.Encode(),
                                   static_cast<int>(i));
  }
  engine->keywords_.Build(repo);
  engine->similarity_.Build(&engine->profiles_, options.similarity,
                            pool.get());
  engine->join_paths_.Build(&engine->profiles_, engine->similarity_,
                            options.join_paths, pool.get());
  return engine;
}

Status DiscoveryEngine::IndexNewTable(int32_t table_id) {
  if (table_id < 0 || table_id >= repo_->num_tables()) {
    return Status::InvalidArgument("table id " + std::to_string(table_id) +
                                   " not in repository");
  }
  if (profile_index_.count(ColumnRef{table_id, 0}.Encode()) ||
      repo_->table(table_id).num_columns() == 0) {
    if (repo_->table(table_id).num_columns() == 0) return Status::OK();
    return Status::AlreadyExists("table " + std::to_string(table_id) +
                                 " is already indexed");
  }
  size_t first_new = profiles_.size();
  std::vector<ColumnProfile> fresh =
      ProfileTable(*repo_, table_id, options_.profiler);
  for (ColumnProfile& p : fresh) {
    profile_index_.emplace(p.ref.Encode(), static_cast<int>(profiles_.size()));
    profiles_.push_back(std::move(p));
  }
  keywords_.AddTable(*repo_, table_id);
  similarity_.AddProfiles(first_new);
  join_paths_.AddColumns(&profiles_, similarity_, first_new);
  return Status::OK();
}

std::vector<KeywordHit> DiscoveryEngine::SearchKeyword(
    const std::string& keyword, KeywordTarget target, bool fuzzy) const {
  return keywords_.Search(keyword, target,
                          fuzzy ? options_.fuzzy_max_edits : 0);
}

std::vector<ColumnRef> DiscoveryEngine::Neighbors(const ColumnRef& column,
                                                  double threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  std::vector<ColumnRef> out;
  for (const Neighbor& n :
       similarity_.ContainmentNeighbors(it->second, threshold)) {
    out.push_back(profiles_[n.profile_index].ref);
  }
  return out;
}

std::vector<ColumnRef> DiscoveryEngine::SimilarColumns(
    const ColumnRef& column, double jaccard_threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  std::vector<ColumnRef> out;
  for (const Neighbor& n :
       similarity_.JaccardNeighbors(it->second, jaccard_threshold)) {
    out.push_back(profiles_[n.profile_index].ref);
  }
  return out;
}

std::vector<JoinGraph> DiscoveryEngine::GenerateJoinGraphs(
    const std::vector<int32_t>& tables, int max_hops) const {
  return join_paths_.GenerateJoinGraphs(tables, max_hops);
}

}  // namespace ver
