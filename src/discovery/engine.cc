#include "discovery/engine.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace ver {

namespace {

// Shard assignment is a pure function of the table *name* (not its id), so
// a table keeps its shard across re-indexes and repository reloads.
int ShardOfName(std::string_view name, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<int>(HashString(name) % num_shards);
}

}  // namespace

void DiscoveryEngine::PartitionTables(int num_shards) {
  shards_.clear();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_shared<Shard>();
    shard->built_profiles = profiles_;
    shards_.push_back(std::move(shard));
  }
  shard_of_table_.assign(static_cast<size_t>(repo_->num_tables()), 0);
  for (int32_t t = 0; t < repo_->num_tables(); ++t) {
    int s = ShardOfName(repo_->table(t).name(), shards_.size());
    shard_of_table_[static_cast<size_t>(t)] = s;
    shards_[static_cast<size_t>(s)]->table_ids.push_back(t);
  }
}

std::vector<std::vector<int>> DiscoveryEngine::ShardMemberProfiles() const {
  std::vector<std::vector<int>> members(shards_.size());
  const auto& ps = *profiles_;
  // Profiles are in build order (table 0..N-1), so each shard's member
  // list comes out ascending — the order the subset build requires.
  for (size_t i = 0; i < ps.size(); ++i) {
    int s = shard_of_table_[static_cast<size_t>(ps[i].ref.table_id)];
    members[static_cast<size_t>(s)].push_back(static_cast<int>(i));
  }
  return members;
}

void DiscoveryEngine::BuildShardIndexes(ThreadPool* pool) {
  std::vector<std::vector<int>> members = ShardMemberProfiles();
  if (shards_.size() == 1) {
    // Monolithic path, kept exactly: the pool parallelizes *inside* the
    // single similarity build (bit-identical chunk merge).
    shards_[0]->keywords.Build(*repo_);
    shards_[0]->similarity.BuildMembers(profiles_.get(), members[0],
                                        options_.similarity, pool);
    return;
  }
  // One task per shard, serial inside: shards are the unit of parallelism
  // and each shard's indexes depend only on its own member list, so
  // scheduling order cannot change any result.
  TaskGroup group(pool);
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Run([this, s, &members] {
      shards_[s]->keywords.BuildTables(*repo_, shards_[s]->table_ids);
      shards_[s]->similarity.BuildMembers(profiles_.get(), members[s],
                                          options_.similarity, nullptr);
    });
  }
  group.Wait();
}

std::vector<std::pair<int, int>> DiscoveryEngine::ComputeJoinCandidatePairs(
    ThreadPool* pool) const {
  if (shards_.size() == 1) {
    // Exactly the monolithic join build's input (already sorted, deduped).
    return shards_[0]->similarity.AllCandidatePairs();
  }
  // One slot per task — per-shard pair lists first, then one per shard
  // pair (s < t) of cross-shard probes. Tasks write only their slot and
  // the final sort+dedup canonicalizes, so the result is independent of
  // scheduling. Probing t's buckets with s's member profiles tests the
  // same shared-bucket condition the monolith's AllCandidatePairs tests,
  // so the union reproduces the monolithic pair set (a superset only when
  // a value's posting list overflows max_posting_length in the monolith —
  // see docs/ARCHITECTURE.md).
  size_t n = shards_.size();
  std::vector<std::vector<int>> members = ShardMemberProfiles();
  std::vector<std::vector<std::pair<int, int>>> slots(n + n * (n - 1) / 2);
  TaskGroup group(pool);
  for (size_t s = 0; s < n; ++s) {
    group.Run(
        [this, s, &slots] { slots[s] = shards_[s]->similarity.AllCandidatePairs(); });
  }
  size_t slot = n;
  for (size_t s = 0; s < n; ++s) {
    for (size_t t = s + 1; t < n; ++t, ++slot) {
      group.Run([this, s, t, slot, &slots, &members] {
        std::vector<std::pair<int, int>>& out = slots[slot];
        for (int i : members[s]) {
          for (int j : shards_[t]->similarity.Candidates(*profiles_, i)) {
            out.emplace_back(std::min(i, j), std::max(i, j));
          }
        }
      });
    }
  }
  group.Wait();
  size_t total = 0;
  for (const auto& v : slots) total += v.size();
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(total);
  for (const auto& v : slots) pairs.insert(pairs.end(), v.begin(), v.end());
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

void DiscoveryEngine::SetupScatterPool() {
  scatter_pool_.reset();
  if (shards_.size() <= 1) return;
  int workers = ResolveParallelism(options_.parallelism);
  if (workers <= 1) return;
  scatter_pool_ = std::make_unique<ThreadPool>(
      std::min(workers, static_cast<int>(shards_.size())));
}

void DiscoveryEngine::InitCounters() {
  counters_.clear();
  counters_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    counters_.push_back(std::make_unique<ShardCounters>());
  }
}

std::unique_ptr<DiscoveryEngine> DiscoveryEngine::Build(
    const TableRepository& repo, const DiscoveryOptions& options) {
  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->repo_ = &repo;
  engine->options_ = options;
  engine->options_.num_shards = std::max(1, options.num_shards);
  int workers = ResolveParallelism(options.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  engine->profiles_ = std::make_shared<std::vector<ColumnProfile>>(
      ProfileRepository(repo, options.profiler, pool.get()));
  engine->profile_index_.reserve(engine->profiles_->size());
  for (size_t i = 0; i < engine->profiles_->size(); ++i) {
    engine->profile_index_.emplace((*engine->profiles_)[i].ref.Encode(),
                                   static_cast<int>(i));
  }
  engine->PartitionTables(engine->options_.num_shards);
  engine->BuildShardIndexes(pool.get());
  engine->join_paths_.Build(engine->profiles_.get(),
                            engine->ComputeJoinCandidatePairs(pool.get()),
                            engine->options_.join_paths, pool.get());
  engine->InitCounters();
  engine->SetupScatterPool();
  return engine;
}

Status DiscoveryEngine::IndexNewTable(int32_t table_id) {
  if (table_id < 0 || table_id >= repo_->num_tables()) {
    return Status::InvalidArgument("table id " + std::to_string(table_id) +
                                   " not in repository");
  }
  for (const std::shared_ptr<Shard>& shard : shards_) {
    if (shard.use_count() > 1) {
      return Status::InvalidArgument(
          "engine shares shards with another engine (WithRebuiltShard); "
          "index new tables on a freshly built or loaded engine");
    }
  }
  if (profile_index_.count(ColumnRef{table_id, 0}.Encode()) ||
      repo_->table(table_id).num_columns() == 0) {
    if (repo_->table(table_id).num_columns() == 0) return Status::OK();
    return Status::AlreadyExists("table " + std::to_string(table_id) +
                                 " is already indexed");
  }
  size_t first_new = profiles_->size();
  std::vector<ColumnProfile> fresh =
      ProfileTable(*repo_, table_id, options_.profiler);
  for (ColumnProfile& p : fresh) {
    profile_index_.emplace(p.ref.Encode(),
                           static_cast<int>(profiles_->size()));
    profiles_->push_back(std::move(p));
  }
  // Route the table to its hash shard (the same function Build used).
  int s = ShardOfName(repo_->table(table_id).name(), shards_.size());
  if (shard_of_table_.size() <= static_cast<size_t>(table_id)) {
    shard_of_table_.resize(static_cast<size_t>(table_id) + 1, -1);
  }
  shard_of_table_[static_cast<size_t>(table_id)] = s;
  Shard& owner = *shards_[static_cast<size_t>(s)];
  owner.table_ids.insert(std::lower_bound(owner.table_ids.begin(),
                                          owner.table_ids.end(), table_id),
                         table_id);
  owner.keywords.AddTable(*repo_, table_id);
  owner.similarity.AddProfiles(first_new);
  // Other shards gain no postings, but their eligibility flags must keep
  // covering every profile (the snapshot invariant); AddProfiles past the
  // end inserts nothing and refreshes the flags.
  for (size_t o = 0; o < shards_.size(); ++o) {
    if (static_cast<int>(o) != s) {
      shards_[o]->similarity.AddProfiles(profiles_->size());
    }
  }
  if (shards_.size() == 1) {
    join_paths_.AddColumns(profiles_.get(), shards_[0]->similarity,
                           first_new);
  } else {
    // Probe every shard for the new columns' join partners, preserving
    // the single-shard AddColumns order: for each new column i ascending,
    // its partners j < i ascending.
    std::vector<std::pair<int, int>> pairs;
    for (size_t i = first_new; i < profiles_->size(); ++i) {
      std::vector<int> js;
      for (const std::shared_ptr<Shard>& shard : shards_) {
        for (int j :
             shard->similarity.Candidates(*profiles_, static_cast<int>(i))) {
          if (static_cast<size_t>(j) >= first_new &&
              static_cast<size_t>(j) >= i) {
            continue;
          }
          js.push_back(j);
        }
      }
      std::sort(js.begin(), js.end());
      for (int j : js) pairs.emplace_back(static_cast<int>(i), j);
    }
    join_paths_.AddColumnPairs(profiles_.get(), pairs);
  }
  return Status::OK();
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::WithRebuiltShard(
    const TableRepository& repo, int shard) const {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " out of range; engine has " +
        std::to_string(num_shards()) + " shards");
  }
  // Global profile indices (and with them every index posting) stay valid
  // only while the repository keeps its shape; anything else needs a full
  // rebuild.
  if (repo.num_tables() != repo_->num_tables()) {
    return Status::InvalidArgument(
        "per-shard rebuild needs the same table count (" +
        std::to_string(repo.num_tables()) + " vs " +
        std::to_string(repo_->num_tables()) +
        "); schema-shape changes need a full rebuild");
  }
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    if (repo.table(t).num_columns() != repo_->table(t).num_columns()) {
      return Status::InvalidArgument(
          "per-shard rebuild needs identical per-table column counts "
          "(table " +
          std::to_string(t) +
          " changed); schema-shape changes need a full rebuild");
    }
  }
  std::unique_ptr<DiscoveryEngine> out(new DiscoveryEngine());
  out->repo_ = &repo;
  out->options_ = options_;
  out->shard_of_table_ = shard_of_table_;
  out->profiles_ = std::make_shared<std::vector<ColumnProfile>>(*profiles_);
  out->profile_index_ = profile_index_;
  int workers = ResolveParallelism(options_.parallelism);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  // Re-profile only the swapped shard's tables against the new repository
  // and overwrite their global slots; every other profile is carried over.
  for (int32_t t : shards_[static_cast<size_t>(shard)]->table_ids) {
    std::vector<ColumnProfile> fresh = ProfileTable(repo, t, options_.profiler);
    for (ColumnProfile& p : fresh) {
      auto it = out->profile_index_.find(p.ref.Encode());
      if (it == out->profile_index_.end()) {
        return Status::InvalidArgument(
            "table " + std::to_string(t) +
            " gained columns the engine never profiled; run a full rebuild");
      }
      (*out->profiles_)[static_cast<size_t>(it->second)] = std::move(p);
    }
  }
  // Untouched shards are shared by reference; the rebuilt one is built
  // fresh over its member subset (never incrementally — the incremental
  // path discovers pairs in a different orientation).
  out->shards_ = shards_;
  auto rebuilt = std::make_shared<Shard>();
  rebuilt->table_ids = shards_[static_cast<size_t>(shard)]->table_ids;
  rebuilt->built_profiles = out->profiles_;
  rebuilt->keywords.BuildTables(repo, rebuilt->table_ids);
  rebuilt->similarity.BuildMembers(
      out->profiles_.get(), out->ShardMemberProfiles()[static_cast<size_t>(shard)],
      options_.similarity, pool.get());
  out->shards_[static_cast<size_t>(shard)] = std::move(rebuilt);
  out->join_paths_.Build(out->profiles_.get(),
                         out->ComputeJoinCandidatePairs(pool.get()),
                         options_.join_paths, pool.get());
  out->InitCounters();
  out->SetupScatterPool();
  // Shared shards may borrow extents from this engine's mmapped snapshot;
  // the successor keeps that map alive.
  out->pager_ = pager_;
  return out;
}

namespace {

// Section ids of the snapshot file. New sections get new ids; changing the
// payload of an existing section requires a kSnapshotFormatVersion bump.
constexpr uint32_t kSectionRepoFingerprint = 1;
constexpr uint32_t kSectionOptions = 2;
constexpr uint32_t kSectionProfiles = 3;
// v1-v3: the monolithic engine's single keyword/similarity index. v4
// files carry per-shard sections instead (see kSectionShardLayout).
constexpr uint32_t kSectionKeywordIndex = 4;
constexpr uint32_t kSectionSimilarityIndex = 5;
constexpr uint32_t kSectionJoinPathIndex = 6;
// v2: the repository's tables in columnar form (per column: null bitmap,
// typed payload or dictionary + codes + arena — see ColumnData::SaveTo).
// Absent from v1 files; Load() never needs it (the caller supplies the
// repository), LoadRepository() reconstructs a repository from it so a
// server can cold-start without re-parsing CSVs.
constexpr uint32_t kSectionRepoTables = 7;
// v4: the shard layout — shard count, then each shard's table-id array.
// Loads take the partition from here and never re-hash.
constexpr uint32_t kSectionShardLayout = 8;
// v4: per-shard index sections at 100 + shard*2 + {0 keyword,
// 1 similarity}. Independent sections are what make per-shard builds
// saveable in parallel-friendly units and per-shard residency spaces
// possible under paging.
constexpr uint32_t kShardSectionBase = 100;

uint32_t ShardKeywordSectionId(size_t s) {
  return kShardSectionBase + static_cast<uint32_t>(s) * 2;
}
uint32_t ShardSimilaritySectionId(size_t s) {
  return kShardSectionBase + static_cast<uint32_t>(s) * 2 + 1;
}

void SaveOptions(const DiscoveryOptions& o, uint32_t format_version,
                 SerdeWriter* w) {
  w->WriteI32(o.profiler.minhash_permutations);
  w->WriteU64(o.profiler.seed);
  w->WriteI64(o.profiler.exact_set_max);
  w->WriteI32(o.similarity.lsh_bands);
  w->WriteI64(o.similarity.min_distinct);
  w->WriteU64(o.similarity.max_posting_length);
  w->WriteDouble(o.join_paths.containment_threshold);
  w->WriteI64(o.join_paths.min_distinct);
  w->WriteI32(o.join_paths.max_graphs_per_path);
  w->WriteI32(o.join_paths.max_total_graphs);
  w->WriteDouble(o.similarity_cluster_threshold);
  w->WriteI32(o.fuzzy_max_edits);
  w->WriteI32(o.parallelism);
  // Pre-v4 readers stop here; their engines are single-shard by format.
  if (format_version >= 4) w->WriteI32(o.num_shards);
}

Status LoadOptions(SerdeReader* r, uint32_t format_version,
                   DiscoveryOptions* o) {
  VER_RETURN_IF_ERROR(r->ReadI32(&o->profiler.minhash_permutations));
  VER_RETURN_IF_ERROR(r->ReadU64(&o->profiler.seed));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->profiler.exact_set_max));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->similarity.lsh_bands));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->similarity.min_distinct));
  uint64_t max_posting;
  VER_RETURN_IF_ERROR(r->ReadU64(&max_posting));
  o->similarity.max_posting_length = static_cast<size_t>(max_posting);
  VER_RETURN_IF_ERROR(r->ReadDouble(&o->join_paths.containment_threshold));
  VER_RETURN_IF_ERROR(r->ReadI64(&o->join_paths.min_distinct));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->join_paths.max_graphs_per_path));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->join_paths.max_total_graphs));
  VER_RETURN_IF_ERROR(r->ReadDouble(&o->similarity_cluster_threshold));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->fuzzy_max_edits));
  VER_RETURN_IF_ERROR(r->ReadI32(&o->parallelism));
  o->num_shards = 1;
  if (format_version >= 4) VER_RETURN_IF_ERROR(r->ReadI32(&o->num_shards));
  return Status::OK();
}

void SaveRepoFingerprint(const TableRepository& repo, SerdeWriter* w) {
  w->WriteI32(repo.num_tables());
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    const Table& table = repo.table(t);
    w->WriteString(table.name());
    w->WriteI64(table.num_rows());
    table.schema().SaveTo(w);
  }
}

// Compares the stored fingerprint against the live repository; a snapshot
// only loads over the exact table set it was built from.
Status CheckRepoFingerprint(SerdeReader* r, const TableRepository& repo) {
  int32_t num_tables;
  VER_RETURN_IF_ERROR(r->ReadI32(&num_tables));
  if (num_tables != repo.num_tables()) {
    return Status::InvalidArgument(
        "snapshot was built over " + std::to_string(num_tables) +
        " tables but the repository has " + std::to_string(repo.num_tables()));
  }
  for (int32_t t = 0; t < num_tables; ++t) {
    std::string name;
    int64_t num_rows;
    Schema schema;
    VER_RETURN_IF_ERROR(r->ReadString(&name));
    VER_RETURN_IF_ERROR(r->ReadI64(&num_rows));
    VER_RETURN_IF_ERROR(schema.LoadFrom(r));
    const Table& table = repo.table(t);
    if (table.name() != name || table.num_rows() != num_rows ||
        table.schema().num_attributes() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "snapshot table " + std::to_string(t) + " (" + name + ", " +
          std::to_string(num_rows) + " rows, " +
          std::to_string(schema.num_attributes()) +
          " columns) does not match repository table " + table.name());
    }
    for (int c = 0; c < schema.num_attributes(); ++c) {
      if (schema.attribute(c).name != table.schema().attribute(c).name) {
        return Status::InvalidArgument(
            "snapshot table " + name + " column " + std::to_string(c) +
            " is named '" + schema.attribute(c).name +
            "' but the repository has '" + table.schema().attribute(c).name +
            "'");
      }
      // Type drift means the column's *content* changed (types are
      // inferred from data), so the stored sketches no longer describe it.
      if (schema.attribute(c).type != table.schema().attribute(c).type) {
        return Status::InvalidArgument(
            "snapshot table " + name + " column " + std::to_string(c) +
            " was " + ValueTypeToString(schema.attribute(c).type) +
            " but the repository has " +
            ValueTypeToString(table.schema().attribute(c).type) +
            " — re-run build-index");
      }
    }
  }
  return Status::OK();
}

// The bytes behind one snapshot load: section views backed either by owned
// buffers (the checksum-verified resident read) or by a pager runtime's
// mmapped file (framing parsed, content paged in on demand).
struct SnapshotSource {
  std::vector<SnapshotSection> owned;     // resident reads only
  std::shared_ptr<PagerRuntime> runtime;  // paged opens only
  uint32_t version = 0;
  PagerBinding binding_value;

  struct View {
    uint32_t id;
    std::string_view payload;
  };
  std::vector<View> views;

  bool paged() const { return runtime != nullptr; }
  /// Binding for LoadFrom calls; null when resident.
  const PagerBinding* binding() const {
    return paged() ? &binding_value : nullptr;
  }
  /// Per-shard binding (own buffer-pool space); null when resident.
  const PagerBinding* shard_binding(size_t shard) const {
    return paged() ? runtime->ShardBinding(shard) : nullptr;
  }
};

// Opens `path` paged when requested (reusing `reuse` if it already maps
// this file), resident otherwise. Structural can't-page conditions
// (pre-v3 file, no mmap) fall back to the resident read; real errors
// propagate.
Status OpenSnapshotSource(const std::string& path, const PagingOptions& paging,
                          const std::shared_ptr<PagerRuntime>& reuse,
                          SnapshotSource* out) {
  if (paging.enabled) {
    std::shared_ptr<PagerRuntime> runtime;
    if (reuse != nullptr && reuse->path() == path) {
      runtime = reuse;
    } else {
      Result<std::shared_ptr<PagerRuntime>> opened =
          PagerRuntime::Open(path, paging);
      if (opened.ok()) {
        runtime = std::move(opened).value();
      } else if (!opened.status().IsNotImplemented()) {
        return opened.status();
      }
    }
    if (runtime != nullptr) {
      out->runtime = runtime;
      out->version = runtime->map().format_version();
      out->binding_value = runtime->binding();
      out->views.reserve(runtime->map().sections().size());
      for (const SnapshotSectionEntry& e : runtime->map().sections()) {
        out->views.push_back({e.id, runtime->map().section_payload(e)});
      }
      return Status::OK();
    }
  }
  VER_RETURN_IF_ERROR(ReadSnapshotFile(path, &out->owned, &out->version));
  out->views.reserve(out->owned.size());
  for (const SnapshotSection& s : out->owned) {
    out->views.push_back({s.id, s.payload});
  }
  return Status::OK();
}

// First (and only) view with `id`; errors on duplicates or absence.
Result<const SnapshotSource::View*> FindSectionView(const SnapshotSource& src,
                                                    const std::string& path,
                                                    uint32_t id,
                                                    const char* name) {
  const SnapshotSource::View* found = nullptr;
  for (const SnapshotSource::View& v : src.views) {
    if (v.id != id) continue;
    if (found != nullptr) {
      return Status::IOError("snapshot " + path + " has duplicate " +
                             std::string(name) + " sections");
    }
    found = &v;
  }
  if (found == nullptr) {
    return Status::IOError("snapshot " + path + " is missing the " +
                           std::string(name) + " section");
  }
  return found;
}

}  // namespace

Status DiscoveryEngine::Save(const std::string& path,
                             uint32_t format_version) const {
  if (format_version < kSnapshotMinReadVersion ||
      format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "cannot save snapshot format version " +
        std::to_string(format_version) + "; supported range is " +
        std::to_string(kSnapshotMinReadVersion) + ".." +
        std::to_string(kSnapshotFormatVersion));
  }
  if (format_version < 4 && shards_.size() > 1) {
    return Status::InvalidArgument(
        "snapshot format version " + std::to_string(format_version) +
        " is single-shard; a " + std::to_string(shards_.size()) +
        "-shard engine needs format version 4 or newer");
  }
  // Pre-v3 formats carry unaligned array payloads; the writer's padding
  // must match what a reader of that version expects.
  const bool align = format_version >= 3;
  auto section_writer = [align] {
    SerdeWriter w;
    w.set_align_arrays(align);
    return w;
  };
  std::vector<SnapshotSection> sections;
  {
    SerdeWriter w = section_writer();
    SaveRepoFingerprint(*repo_, &w);
    sections.push_back({kSectionRepoFingerprint, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    SaveOptions(options_, format_version, &w);
    sections.push_back({kSectionOptions, w.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    w.WriteU64(profiles_->size());
    for (const ColumnProfile& p : *profiles_) p.SaveTo(&w);
    sections.push_back({kSectionProfiles, w.TakeBuffer()});
  }
  if (format_version >= 4) {
    {
      SerdeWriter w = section_writer();
      w.WriteU64(shards_.size());
      for (const std::shared_ptr<Shard>& shard : shards_) {
        w.WriteI32Array(shard->table_ids.data(), shard->table_ids.size());
      }
      sections.push_back({kSectionShardLayout, w.TakeBuffer()});
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      SerdeWriter kw = section_writer();
      VER_RETURN_IF_ERROR(shards_[s]->keywords.SaveTo(&kw));
      sections.push_back({ShardKeywordSectionId(s), kw.TakeBuffer()});
      SerdeWriter sw = section_writer();
      VER_RETURN_IF_ERROR(shards_[s]->similarity.SaveTo(&sw));
      sections.push_back({ShardSimilaritySectionId(s), sw.TakeBuffer()});
    }
  } else {
    // Legacy single-shard layout: shard 0 *is* the monolithic index, so
    // these bytes are identical to what a pre-sharding engine wrote.
    SerdeWriter kw = section_writer();
    VER_RETURN_IF_ERROR(shards_[0]->keywords.SaveTo(&kw));
    sections.push_back({kSectionKeywordIndex, kw.TakeBuffer()});
    SerdeWriter sw = section_writer();
    VER_RETURN_IF_ERROR(shards_[0]->similarity.SaveTo(&sw));
    sections.push_back({kSectionSimilarityIndex, sw.TakeBuffer()});
  }
  {
    SerdeWriter w = section_writer();
    join_paths_.SaveTo(&w);
    sections.push_back({kSectionJoinPathIndex, w.TakeBuffer()});
  }
  if (format_version >= 2) {
    SerdeWriter w = section_writer();
    w.WriteI32(repo_->num_tables());
    for (int32_t t = 0; t < repo_->num_tables(); ++t) {
      repo_->table(t).SaveTo(&w);
    }
    sections.push_back({kSectionRepoTables, w.TakeBuffer()});
  }
  return WriteSnapshotFile(path, sections, format_version);
}

Result<TableRepository> DiscoveryEngine::LoadRepository(
    const std::string& path) {
  return LoadRepository(path, PagingOptions{});
}

Result<TableRepository> DiscoveryEngine::LoadRepository(
    const std::string& path, const PagingOptions& paging) {
  SnapshotSource src;
  VER_RETURN_IF_ERROR(OpenSnapshotSource(path, paging, nullptr, &src));
  const SnapshotSource::View* tables = nullptr;
  for (const SnapshotSource::View& v : src.views) {
    if (v.id == kSectionRepoTables) {
      if (tables != nullptr) {
        return Status::IOError("snapshot " + path +
                               " has duplicate repo-tables sections");
      }
      tables = &v;
    }
  }
  if (tables == nullptr) {
    return Status::NotFound(
        "snapshot " + path + " (format version " +
        std::to_string(src.version) +
        ") carries no table data; re-run build-index to write a version " +
        std::to_string(kSnapshotFormatVersion) +
        " snapshot, or load the repository from its CSV directory");
  }
  SerdeReader r(tables->payload, "repo tables section of " + path);
  r.set_aligned(src.version >= 3);
  int32_t num_tables;
  VER_RETURN_IF_ERROR(r.ReadI32(&num_tables));
  if (num_tables < 0) {
    return Status::IOError("snapshot " + path +
                           " declares a negative table count");
  }
  TableRepository repo;
  for (int32_t t = 0; t < num_tables; ++t) {
    Table table;
    VER_RETURN_IF_ERROR(table.LoadFrom(&r, src.binding()));
    VER_ASSIGN_OR_RETURN(int32_t id, repo.AddTable(std::move(table)));
    (void)id;
  }
  VER_RETURN_IF_ERROR(r.ExpectEnd());
  // The repository keeps the runtime alive for as long as any table
  // borrows from the map.
  repo.set_pager(src.runtime);
  return repo;
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Load(
    const TableRepository& repo, const std::string& path) {
  // A repository paged from this very snapshot implies the caller wants
  // the engine paged too (one map, one budget); otherwise resident.
  PagingOptions paging;
  paging.enabled =
      repo.pager() != nullptr && repo.pager()->path() == path;
  return Load(repo, path, paging);
}

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::Load(
    const TableRepository& repo, const std::string& path,
    const PagingOptions& paging) {
  SnapshotSource src;
  VER_RETURN_IF_ERROR(OpenSnapshotSource(path, paging, repo.pager(), &src));
  const uint32_t version = src.version;

  auto find_section =
      [&](uint32_t id, const char* name) -> Result<const SnapshotSource::View*> {
    return FindSectionView(src, path, id, name);
  };
  auto reader_for = [&](const SnapshotSource::View& s, const char* name) {
    SerdeReader r(s.payload, std::string(name) + " section of " + path);
    // Legacy (pre-v3) payloads carry no array-alignment padding.
    r.set_aligned(version >= 3);
    return r;
  };

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* fingerprint,
                       find_section(kSectionRepoFingerprint, "fingerprint"));
  {
    SerdeReader r = reader_for(*fingerprint, "fingerprint");
    VER_RETURN_IF_ERROR(CheckRepoFingerprint(&r, repo));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  std::unique_ptr<DiscoveryEngine> engine(new DiscoveryEngine());
  engine->repo_ = &repo;

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* options,
                       find_section(kSectionOptions, "options"));
  {
    SerdeReader r = reader_for(*options, "options");
    VER_RETURN_IF_ERROR(LoadOptions(&r, version, &engine->options_));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* profiles,
                       find_section(kSectionProfiles, "profiles"));
  engine->profiles_ = std::make_shared<std::vector<ColumnProfile>>();
  {
    SerdeReader r = reader_for(*profiles, "profiles");
    uint64_t count;
    VER_RETURN_IF_ERROR(r.ReadU64(&count));
    // A serialized profile is >= 57 bytes (ref + name length + stats +
    // sketch + hash-set length); 8 is a safe floor for the count guard.
    VER_RETURN_IF_ERROR(r.CheckCount(count, 8, "profile count"));
    engine->profiles_->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      ColumnProfile p;
      VER_RETURN_IF_ERROR(p.LoadFrom(&r));
      engine->profiles_->push_back(std::move(p));
    }
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }
  engine->profile_index_.reserve(engine->profiles_->size());
  for (size_t i = 0; i < engine->profiles_->size(); ++i) {
    engine->profile_index_.emplace((*engine->profiles_)[i].ref.Encode(),
                                   static_cast<int>(i));
  }

  if (version >= 4) {
    // The shard layout is authoritative: loads never re-hash table names,
    // so a snapshot round-trips its partition even if the hash ever
    // changes.
    VER_ASSIGN_OR_RETURN(const SnapshotSource::View* layout,
                         find_section(kSectionShardLayout, "shard layout"));
    SerdeReader r = reader_for(*layout, "shard layout");
    uint64_t num_shards;
    VER_RETURN_IF_ERROR(r.ReadU64(&num_shards));
    if (num_shards == 0) {
      return Status::IOError("snapshot " + path + " declares zero shards");
    }
    VER_RETURN_IF_ERROR(r.CheckCount(num_shards, 8, "shard count"));
    engine->shard_of_table_.assign(static_cast<size_t>(repo.num_tables()),
                                   -1);
    engine->shards_.reserve(static_cast<size_t>(num_shards));
    for (uint64_t s = 0; s < num_shards; ++s) {
      const char* raw = nullptr;
      uint64_t n = 0;
      VER_RETURN_IF_ERROR(
          r.ReadArrayExtent(sizeof(int32_t), "shard table ids", &raw, &n));
      auto shard = std::make_shared<Shard>();
      shard->built_profiles = engine->profiles_;
      shard->table_ids.resize(static_cast<size_t>(n));
      if (n > 0) {
        std::memcpy(shard->table_ids.data(), raw,
                    static_cast<size_t>(n) * sizeof(int32_t));
      }
      int32_t prev = -1;
      for (int32_t t : shard->table_ids) {
        if (t < 0 || t >= repo.num_tables() || t <= prev ||
            engine->shard_of_table_[static_cast<size_t>(t)] != -1) {
          return Status::IOError(
              "snapshot " + path +
              " has a corrupt shard layout (table ids must be ascending, "
              "in range, and assigned to exactly one shard)");
        }
        prev = t;
        engine->shard_of_table_[static_cast<size_t>(t)] =
            static_cast<int>(s);
      }
      engine->shards_.push_back(std::move(shard));
    }
    VER_RETURN_IF_ERROR(r.ExpectEnd());
    for (size_t s = 0; s < engine->shards_.size(); ++s) {
      // Per-shard residency spaces only pay off when there is more than
      // one shard; a 1-shard v4 snapshot pages exactly like v3 (one
      // space), which keeps single-shard serving's pool accounting
      // unchanged.
      const PagerBinding* binding =
          engine->shards_.size() > 1 ? src.shard_binding(s) : src.binding();
      VER_ASSIGN_OR_RETURN(
          const SnapshotSource::View* kw,
          find_section(ShardKeywordSectionId(s), "shard keyword index"));
      {
        SerdeReader kr = reader_for(*kw, "shard keyword index");
        VER_RETURN_IF_ERROR(
            engine->shards_[s]->keywords.LoadFrom(&kr, repo, binding));
        VER_RETURN_IF_ERROR(kr.ExpectEnd());
      }
      VER_ASSIGN_OR_RETURN(
          const SnapshotSource::View* sim,
          find_section(ShardSimilaritySectionId(s), "shard similarity index"));
      {
        SerdeReader sr = reader_for(*sim, "shard similarity index");
        VER_RETURN_IF_ERROR(engine->shards_[s]->similarity.LoadFrom(
            &sr, engine->profiles_.get(), engine->options_.similarity,
            binding));
        VER_RETURN_IF_ERROR(sr.ExpectEnd());
      }
    }
  } else {
    // Pre-v4 snapshots are monolithic: load them as one shard owning
    // every table.
    auto shard = std::make_shared<Shard>();
    shard->built_profiles = engine->profiles_;
    shard->table_ids.reserve(static_cast<size_t>(repo.num_tables()));
    for (int32_t t = 0; t < repo.num_tables(); ++t) {
      shard->table_ids.push_back(t);
    }
    engine->shard_of_table_.assign(static_cast<size_t>(repo.num_tables()), 0);
    engine->shards_.push_back(std::move(shard));

    VER_ASSIGN_OR_RETURN(const SnapshotSource::View* keywords,
                         find_section(kSectionKeywordIndex, "keyword index"));
    {
      SerdeReader r = reader_for(*keywords, "keyword index");
      VER_RETURN_IF_ERROR(
          engine->shards_[0]->keywords.LoadFrom(&r, repo, src.binding()));
      VER_RETURN_IF_ERROR(r.ExpectEnd());
    }

    VER_ASSIGN_OR_RETURN(
        const SnapshotSource::View* similarity,
        find_section(kSectionSimilarityIndex, "similarity index"));
    {
      SerdeReader r = reader_for(*similarity, "similarity index");
      VER_RETURN_IF_ERROR(engine->shards_[0]->similarity.LoadFrom(
          &r, engine->profiles_.get(), engine->options_.similarity,
          src.binding()));
      VER_RETURN_IF_ERROR(r.ExpectEnd());
    }
  }
  engine->options_.num_shards = static_cast<int>(engine->shards_.size());

  VER_ASSIGN_OR_RETURN(const SnapshotSource::View* join_paths,
                       find_section(kSectionJoinPathIndex, "join path index"));
  {
    SerdeReader r = reader_for(*join_paths, "join path index");
    VER_RETURN_IF_ERROR(engine->join_paths_.LoadFrom(
        &r, repo, engine->options_.join_paths, src.binding()));
    VER_RETURN_IF_ERROR(r.ExpectEnd());
  }
  engine->pager_ = src.runtime;
  engine->InitCounters();
  engine->SetupScatterPool();
  return engine;
}

void DiscoveryEngine::PinInto(PagePin* pin) const {
  if (pager_ == nullptr && !repo_->paged()) return;
  for (int32_t t = 0; t < repo_->num_tables(); ++t) {
    repo_->table(t).PinInto(pin);
  }
  for (const std::shared_ptr<Shard>& shard : shards_) {
    shard->keywords.PinInto(pin);
    shard->similarity.PinInto(pin);
  }
  join_paths_.PinInto(pin);
}

std::vector<KeywordHit> DiscoveryEngine::SearchKeyword(
    const std::string& keyword, KeywordTarget target, bool fuzzy) const {
  const int max_edits = fuzzy ? options_.fuzzy_max_edits : 0;
  if (shards_.size() == 1) {
    std::vector<KeywordHit> hits =
        shards_[0]->keywords.Search(keyword, target, max_edits);
    counters_[0]->candidates.fetch_add(hits.size(),
                                       std::memory_order_relaxed);
    return hits;
  }
  // Scatter: every shard searches its own postings in parallel.
  std::vector<std::vector<KeywordHit>> per(shards_.size());
  TaskGroup group(scatter_pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Run([this, &per, &keyword, target, max_edits, s] {
      per[s] = shards_[s]->keywords.Search(keyword, target, max_edits);
    });
  }
  group.Wait();
  // Gather: columns partition across shards and every hit's fields are
  // computed from its own column alone, so concatenating and re-sorting
  // by the monolithic Search's key — (table, column, matched-attribute),
  // unique per hit — reproduces the 1-shard hit list exactly.
  size_t total = 0;
  for (size_t s = 0; s < per.size(); ++s) {
    counters_[s]->candidates.fetch_add(per[s].size(),
                                       std::memory_order_relaxed);
    total += per[s].size();
  }
  std::vector<KeywordHit> out;
  out.reserve(total);
  for (std::vector<KeywordHit>& v : per) {
    out.insert(out.end(), v.begin(), v.end());
  }
  std::sort(out.begin(), out.end(),
            [](const KeywordHit& a, const KeywordHit& b) {
              if (a.column.table_id != b.column.table_id) {
                return a.column.table_id < b.column.table_id;
              }
              if (a.column.column_index != b.column.column_index) {
                return a.column.column_index < b.column.column_index;
              }
              return a.matched_attribute < b.matched_attribute;
            });
  return out;
}

namespace {

// Gathered neighbor lists merge under the same order every per-shard list
// already has — (score desc, profile index asc). Profile indices are
// unique across shards, so the sort is a total order and the merged list
// equals the monolithic one.
void SortNeighbors(std::vector<Neighbor>* out) {
  std::sort(out->begin(), out->end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.profile_index < b.profile_index;
  });
}

}  // namespace

std::vector<ColumnRef> DiscoveryEngine::Neighbors(const ColumnRef& column,
                                                  double threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  const int idx = it->second;
  std::vector<std::vector<Neighbor>> per(shards_.size());
  TaskGroup group(scatter_pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Run([this, &per, idx, threshold, s] {
      per[s] = shards_[s]->similarity.ContainmentNeighbors(*profiles_, idx,
                                                           threshold);
    });
  }
  group.Wait();
  std::vector<Neighbor> merged;
  for (size_t s = 0; s < per.size(); ++s) {
    counters_[s]->candidates.fetch_add(per[s].size(),
                                       std::memory_order_relaxed);
    merged.insert(merged.end(), per[s].begin(), per[s].end());
  }
  if (shards_.size() > 1) SortNeighbors(&merged);
  std::vector<ColumnRef> out;
  out.reserve(merged.size());
  for (const Neighbor& n : merged) {
    out.push_back((*profiles_)[static_cast<size_t>(n.profile_index)].ref);
  }
  return out;
}

std::vector<ColumnRef> DiscoveryEngine::SimilarColumns(
    const ColumnRef& column, double jaccard_threshold) const {
  auto it = profile_index_.find(column.Encode());
  if (it == profile_index_.end()) return {};
  const int idx = it->second;
  std::vector<std::vector<Neighbor>> per(shards_.size());
  TaskGroup group(scatter_pool_.get());
  for (size_t s = 0; s < shards_.size(); ++s) {
    group.Run([this, &per, idx, jaccard_threshold, s] {
      per[s] = shards_[s]->similarity.JaccardNeighbors(*profiles_, idx,
                                                       jaccard_threshold);
    });
  }
  group.Wait();
  std::vector<Neighbor> merged;
  for (size_t s = 0; s < per.size(); ++s) {
    counters_[s]->candidates.fetch_add(per[s].size(),
                                       std::memory_order_relaxed);
    merged.insert(merged.end(), per[s].begin(), per[s].end());
  }
  if (shards_.size() > 1) SortNeighbors(&merged);
  std::vector<ColumnRef> out;
  out.reserve(merged.size());
  for (const Neighbor& n : merged) {
    out.push_back((*profiles_)[static_cast<size_t>(n.profile_index)].ref);
  }
  return out;
}

std::vector<JoinGraph> DiscoveryEngine::GenerateJoinGraphs(
    const std::vector<int32_t>& tables, int max_hops) const {
  return join_paths_.GenerateJoinGraphs(tables, max_hops);
}

void DiscoveryEngine::NoteCandidateDiscovery() const {
  for (const std::unique_ptr<ShardCounters>& c : counters_) {
    c->scatter_queries.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<DiscoveryEngine::ShardCounterSnapshot>
DiscoveryEngine::shard_counters() const {
  std::vector<ShardCounterSnapshot> out(counters_.size());
  for (size_t s = 0; s < counters_.size(); ++s) {
    out[s].scatter_queries =
        counters_[s]->scatter_queries.load(std::memory_order_relaxed);
    out[s].candidates =
        counters_[s]->candidates.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace ver
