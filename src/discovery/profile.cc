#include "discovery/profile.h"

#include <algorithm>

namespace ver {

namespace {

void ProfileTableInto(const TableRepository& repo, int32_t t,
                      const MinHasher& hasher, const ProfilerOptions& options,
                      std::vector<ColumnProfile>* out) {
  const Table& table = repo.table(t);
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnProfile p;
    p.ref = ColumnRef{t, c};
    p.attribute_name = table.schema().attribute(c).name;
    p.stats = ComputeColumnStats(table, c);
    std::vector<uint64_t> hashes = DistinctValueHashes(table, c);
    p.signature = hasher.Compute(hashes);
    if (static_cast<int64_t>(hashes.size()) <= options.exact_set_max) {
      std::sort(hashes.begin(), hashes.end());
      p.distinct_hashes = std::move(hashes);
    }
    out->push_back(std::move(p));
  }
}

}  // namespace

void ColumnProfile::SaveTo(SerdeWriter* w) const {
  w->WriteI32(ref.table_id);
  w->WriteI32(ref.column_index);
  w->WriteString(attribute_name);
  stats.SaveTo(w);
  signature.SaveTo(w);
  w->WriteU64Vector(distinct_hashes);
}

Status ColumnProfile::LoadFrom(SerdeReader* r) {
  VER_RETURN_IF_ERROR(r->ReadI32(&ref.table_id));
  VER_RETURN_IF_ERROR(r->ReadI32(&ref.column_index));
  VER_RETURN_IF_ERROR(r->ReadString(&attribute_name));
  VER_RETURN_IF_ERROR(stats.LoadFrom(r));
  VER_RETURN_IF_ERROR(signature.LoadFrom(r));
  return r->ReadU64Vector(&distinct_hashes);
}

std::vector<ColumnProfile> ProfileRepository(const TableRepository& repo,
                                             const ProfilerOptions& options,
                                             ThreadPool* pool) {
  MinHasher hasher(options.minhash_permutations, options.seed);
  std::vector<ColumnProfile> profiles;
  profiles.reserve(static_cast<size_t>(repo.TotalColumns()));
  size_t num_tables = static_cast<size_t>(repo.num_tables());
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int32_t t = 0; t < repo.num_tables(); ++t) {
      ProfileTableInto(repo, t, hasher, options, &profiles);
    }
    return profiles;
  }
  // One task per table (tables vary wildly in size, so finer chunks balance
  // better); concatenation in table order reproduces the serial output.
  std::vector<std::vector<ColumnProfile>> per_table(num_tables);
  ParallelFor(pool, num_tables, num_tables,
              [&](size_t, size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  ProfileTableInto(repo, static_cast<int32_t>(t), hasher,
                                   options, &per_table[t]);
                }
              });
  for (std::vector<ColumnProfile>& chunk : per_table) {
    for (ColumnProfile& p : chunk) profiles.push_back(std::move(p));
  }
  return profiles;
}

std::vector<ColumnProfile> ProfileTable(const TableRepository& repo,
                                        int32_t table_id,
                                        const ProfilerOptions& options) {
  MinHasher hasher(options.minhash_permutations, options.seed);
  std::vector<ColumnProfile> profiles;
  ProfileTableInto(repo, table_id, hasher, options, &profiles);
  return profiles;
}

namespace {

uint64_t SortedIntersectionSize(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

double ProfileContainment(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.has_exact_set() && b.has_exact_set()) {
    if (a.distinct_hashes.empty()) return 0.0;
    uint64_t inter =
        SortedIntersectionSize(a.distinct_hashes, b.distinct_hashes);
    return static_cast<double>(inter) /
           static_cast<double>(a.distinct_hashes.size());
  }
  return EstimateContainment(a.signature, b.signature);
}

double ProfileJaccard(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.has_exact_set() && b.has_exact_set()) {
    if (a.distinct_hashes.empty() && b.distinct_hashes.empty()) return 1.0;
    uint64_t inter =
        SortedIntersectionSize(a.distinct_hashes, b.distinct_hashes);
    uint64_t uni =
        a.distinct_hashes.size() + b.distinct_hashes.size() - inter;
    return uni == 0 ? 0.0
                    : static_cast<double>(inter) / static_cast<double>(uni);
  }
  return EstimateJaccard(a.signature, b.signature);
}

}  // namespace ver
