// Column profiles: the per-column summaries the discovery index is built on.

#ifndef VER_DISCOVERY_PROFILE_H_
#define VER_DISCOVERY_PROFILE_H_

#include <string>
#include <vector>

#include "storage/repository.h"
#include "table/column_stats.h"
#include "util/minhash.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace ver {

/// Offline summary of one column: statistics plus sketches.
///
/// `distinct_hashes` is retained (sorted) when the column has at most
/// `exact_set_max` distinct values, enabling exact containment; larger
/// columns fall back to the MinHash/Lazo estimate.
struct ColumnProfile {
  ColumnRef ref;
  std::string attribute_name;  // may be empty (noisy tables)
  ColumnStats stats;
  MinHashSignature signature;
  std::vector<uint64_t> distinct_hashes;  // sorted; empty when too large

  bool has_exact_set() const { return !distinct_hashes.empty(); }

  /// Snapshot serialization (the profiles section of a DiscoverySnapshot).
  void SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r);
};

struct ProfilerOptions {
  /// MinHash signature width (the paper's Lazo sketches, Section VI-A).
  /// Units: permutations; default 128. More = better containment
  /// estimates, linearly more memory per column.
  int minhash_permutations = 128;
  /// Seed deriving the permutation family. Sketches are only comparable
  /// across profiles built with the same seed.
  uint64_t seed = 0x7065726d7574ULL;
  /// Columns with more distinct values than this keep only the sketch
  /// (larger ones would make exact containment too expensive). Units:
  /// distinct values; default 100000.
  int64_t exact_set_max = 100000;
};

/// Profiles every column of the repository (the offline indexing pass).
/// With a pool, tables are profiled concurrently and concatenated in table
/// order, so the result is identical to the serial pass.
std::vector<ColumnProfile> ProfileRepository(const TableRepository& repo,
                                             const ProfilerOptions& options,
                                             ThreadPool* pool = nullptr);

/// Profiles the columns of one table (incremental index maintenance).
/// Sketches are comparable with ProfileRepository output for the same
/// options (the permutation family is derived from options.seed).
std::vector<ColumnProfile> ProfileTable(const TableRepository& repo,
                                        int32_t table_id,
                                        const ProfilerOptions& options);

/// Containment JC(a ⊆ b): exact when both profiles kept their value sets,
/// otherwise the Lazo sketch estimate.
double ProfileContainment(const ColumnProfile& a, const ColumnProfile& b);

/// Jaccard similarity J(a, b), exact when possible.
double ProfileJaccard(const ColumnProfile& a, const ColumnProfile& b);

}  // namespace ver

#endif  // VER_DISCOVERY_PROFILE_H_
