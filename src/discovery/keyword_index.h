// Keyword retrieval index: SEARCH-KEYWORD(target, fuzzy) of the paper's
// Appendix A. Finds columns whose attribute name or cell values contain an
// input string, exactly or within a Levenshtein distance.
//
// Postings live in two stores that Search consults together:
//  - a mutable hash map, filled by Build()/AddTable() (fast incremental
//    inserts while indexing);
//  - an immutable flat store (sorted key blob + offset arrays), bulk-loaded
//    from a snapshot in a handful of memcpys — this is what makes
//    zero-rebuild cold starts fast, since rehashing tens of thousands of
//    string keys dominated snapshot loading otherwise.
// A column's postings are never split across stores for the same key
// growth step, and tables indexed after a Load land in the hash map, so
// the combined view is identical to a from-scratch build.

#ifndef VER_DISCOVERY_KEYWORD_INDEX_H_
#define VER_DISCOVERY_KEYWORD_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/repository.h"
#include "util/serde.h"

namespace ver {

/// What part of a table the keyword may match.
enum class KeywordTarget {
  kValues,      // cell contents
  kAttributes,  // attribute (header) names
  kAll,
};

struct KeywordHit {
  ColumnRef column;
  bool matched_attribute = false;  // else matched a value
  bool exact = true;               // else fuzzy
  /// For value hits: how many distinct cell texts of this column matched.
  int match_count = 1;
};

/// Inverted index over lowercased cell texts and attribute names.
class KeywordIndex {
 public:
  /// Indexes every column of the repository. Cell texts are trimmed and
  /// lowercased; numeric values are indexed by their canonical text.
  void Build(const TableRepository& repo);

  /// Incrementally indexes one table that was appended to the repository
  /// after Build() or LoadFrom() (online index maintenance).
  void AddTable(const TableRepository& repo, int32_t table_id);

  /// Columns matching `keyword`. `max_edits` = 0 means exact match only;
  /// otherwise the vocabulary is scanned with a banded edit-distance check.
  std::vector<KeywordHit> Search(const std::string& keyword,
                                 KeywordTarget target,
                                 int max_edits = 0) const;

  /// Distinct indexed cell texts across both stores.
  int64_t vocabulary_size() const;

  /// Snapshot serialization. Writes both stores merged into one sorted
  /// flat layout (deterministic bytes for a given logical index state);
  /// LoadFrom restores it as the immutable flat store with no per-key
  /// work beyond bounds validation — offsets and every posting's
  /// ColumnRef are checked against `repo`, so a corrupt file cannot
  /// smuggle in out-of-range column addresses. SaveTo fails (rather than
  /// silently wrapping the u32 offsets) if the flat layout exceeds 4 GiB
  /// of key text or 2^32 postings.
  Status SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const TableRepository& repo);

 private:
  /// Immutable posting store: keys sorted ascending in one blob, postings
  /// concatenated in key order. find() is a binary search over key slices.
  struct FlatPostings {
    std::string blob;                       // key bytes, concatenated
    std::vector<uint32_t> key_offsets;      // num_keys + 1 entries
    std::vector<uint64_t> columns;          // ColumnRef::Encode, concatenated
    std::vector<uint32_t> posting_offsets;  // num_keys + 1 entries

    size_t num_keys() const {
      return key_offsets.empty() ? 0 : key_offsets.size() - 1;
    }
    std::string_view key(size_t i) const {
      return std::string_view(blob).substr(key_offsets[i],
                                           key_offsets[i + 1] - key_offsets[i]);
    }
    /// Index of `needle`, or -1.
    ptrdiff_t find(std::string_view needle) const;
    void SaveTo(SerdeWriter* w) const;
    /// Restores and validates the offset arrays (monotonic, in bounds).
    Status LoadFrom(SerdeReader* r);
  };

  /// One vocabulary word, resolvable to its postings in either store.
  struct VocabEntry {
    std::string_view text;
    const std::vector<ColumnRef>* map_postings;  // null when flat
    ptrdiff_t flat_index;                        // -1 when in the hash map
  };

  void IndexTable(const TableRepository& repo, int32_t table_id);
  void RebuildVocabBuckets();

  // Mutable store: lowercased text -> columns containing it (deduped).
  std::unordered_map<std::string, std::vector<ColumnRef>> value_postings_;
  std::unordered_map<std::string, std::vector<ColumnRef>> attr_postings_;
  // Immutable store (snapshot-loaded base).
  FlatPostings flat_values_;
  FlatPostings flat_attrs_;
  // Vocabulary of both stores bucketed by length for banded fuzzy scans.
  std::vector<std::vector<VocabEntry>> vocab_by_length_;
  std::vector<std::vector<VocabEntry>> attr_vocab_by_length_;
};

}  // namespace ver

#endif  // VER_DISCOVERY_KEYWORD_INDEX_H_
