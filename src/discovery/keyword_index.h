// Keyword retrieval index: SEARCH-KEYWORD(target, fuzzy) of the paper's
// Appendix A. Finds columns whose attribute name or cell values contain an
// input string, exactly or within a Levenshtein distance.

#ifndef VER_DISCOVERY_KEYWORD_INDEX_H_
#define VER_DISCOVERY_KEYWORD_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/repository.h"

namespace ver {

/// What part of a table the keyword may match.
enum class KeywordTarget {
  kValues,      // cell contents
  kAttributes,  // attribute (header) names
  kAll,
};

struct KeywordHit {
  ColumnRef column;
  bool matched_attribute = false;  // else matched a value
  bool exact = true;               // else fuzzy
  /// For value hits: how many distinct cell texts of this column matched.
  int match_count = 1;
};

/// Inverted index over lowercased cell texts and attribute names.
class KeywordIndex {
 public:
  /// Indexes every column of the repository. Cell texts are trimmed and
  /// lowercased; numeric values are indexed by their canonical text.
  void Build(const TableRepository& repo);

  /// Incrementally indexes one table that was appended to the repository
  /// after Build() (online index maintenance).
  void AddTable(const TableRepository& repo, int32_t table_id);

  /// Columns matching `keyword`. `max_edits` = 0 means exact match only;
  /// otherwise the vocabulary is scanned with a banded edit-distance check.
  std::vector<KeywordHit> Search(const std::string& keyword,
                                 KeywordTarget target,
                                 int max_edits = 0) const;

  int64_t vocabulary_size() const {
    return static_cast<int64_t>(value_postings_.size());
  }

 private:
  void IndexTable(const TableRepository& repo, int32_t table_id);

  // lowercased cell text -> columns containing it (deduped).
  std::unordered_map<std::string, std::vector<ColumnRef>> value_postings_;
  // lowercased attribute name -> columns with that header.
  std::unordered_map<std::string, std::vector<ColumnRef>> attr_postings_;
  // vocabulary bucketed by length for banded fuzzy scans.
  std::vector<std::vector<const std::string*>> vocab_by_length_;
  std::vector<std::vector<const std::string*>> attr_vocab_by_length_;
};

}  // namespace ver

#endif  // VER_DISCOVERY_KEYWORD_INDEX_H_
