// Keyword retrieval index: SEARCH-KEYWORD(target, fuzzy) of the paper's
// Appendix A. Finds columns whose attribute name or cell values contain an
// input string, exactly or within a Levenshtein distance.
//
// Postings live in two stores that Search consults together:
//  - a mutable hash map, filled by Build()/AddTable() (fast incremental
//    inserts while indexing);
//  - an immutable flat store (sorted key blob + offset arrays), bulk-loaded
//    from a snapshot in a handful of memcpys — this is what makes
//    zero-rebuild cold starts fast, since rehashing tens of thousands of
//    string keys dominated snapshot loading otherwise.
// A column's postings are never split across stores for the same key
// growth step, and tables indexed after a Load land in the hash map, so
// the combined view is identical to a from-scratch build.

#ifndef VER_DISCOVERY_KEYWORD_INDEX_H_
#define VER_DISCOVERY_KEYWORD_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pager/paged_view.h"
#include "storage/repository.h"
#include "util/serde.h"

namespace ver {

/// What part of a table the keyword may match.
enum class KeywordTarget {
  kValues,      // cell contents
  kAttributes,  // attribute (header) names
  kAll,
};

struct KeywordHit {
  ColumnRef column;
  bool matched_attribute = false;  // else matched a value
  bool exact = true;               // else fuzzy
  /// For value hits: how many distinct cell texts of this column matched.
  int match_count = 1;
};

/// Inverted index over lowercased cell texts and attribute names.
class KeywordIndex {
 public:
  /// Indexes every column of the repository. Cell texts are trimmed and
  /// lowercased; numeric values are indexed by their canonical text.
  void Build(const TableRepository& repo);

  /// Shard-subset build: indexes only `table_ids` (ascending). Postings
  /// keep their global ColumnRefs, so a sharded engine concatenating the
  /// per-shard Search results and re-sorting by (table, column, attribute)
  /// reproduces the monolithic index's hit list exactly.
  void BuildTables(const TableRepository& repo,
                   const std::vector<int32_t>& table_ids);

  /// Incrementally indexes one table that was appended to the repository
  /// after Build() or LoadFrom() (online index maintenance).
  void AddTable(const TableRepository& repo, int32_t table_id);

  /// Columns matching `keyword`. `max_edits` = 0 means exact match only;
  /// otherwise the vocabulary is scanned with a banded edit-distance check.
  std::vector<KeywordHit> Search(const std::string& keyword,
                                 KeywordTarget target,
                                 int max_edits = 0) const;

  /// Distinct indexed cell texts across both stores.
  int64_t vocabulary_size() const;

  /// Snapshot serialization. Writes both stores merged into one sorted
  /// flat layout (deterministic bytes for a given logical index state);
  /// LoadFrom restores it as the immutable flat store with no per-key
  /// work beyond bounds validation — offsets and every posting's
  /// ColumnRef are checked against `repo`, so a corrupt file cannot
  /// smuggle in out-of-range column addresses. SaveTo fails (rather than
  /// silently wrapping the u32 offsets) if the flat layout exceeds 4 GiB
  /// of key text or 2^32 postings.
  ///
  /// With a pager `binding` the flat stores are adopted as borrowed mmap
  /// extents and the O(keys)/O(postings) validation scans are skipped
  /// (they would fault in the whole store); the accessors below instead
  /// bounds-guard each slice they take, so a corrupt offset yields an
  /// empty result, never an out-of-range read.
  Status SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const TableRepository& repo,
                  const PagerBinding* binding = nullptr);

  /// Adds the flat stores' paged extents to `pin` (no-op when resident).
  void PinInto(PagePin* pin) const {
    flat_values_.PinInto(pin);
    flat_attrs_.PinInto(pin);
  }

 private:
  /// Immutable posting store: keys sorted ascending in one blob, postings
  /// concatenated in key order. find() is a binary search over key slices.
  /// Storage is PagedView/PagedBytes: owned after a resident load,
  /// borrowed mmap extents under a paged one.
  struct FlatPostings {
    PagedBytes blob;                       // key bytes, concatenated
    PagedView<uint32_t> key_offsets;       // num_keys + 1 entries
    PagedView<uint64_t> columns;           // ColumnRef::Encode, concatenated
    PagedView<uint32_t> posting_offsets;   // num_keys + 1 entries

    size_t num_keys() const {
      return key_offsets.empty() ? 0
                                 : static_cast<size_t>(key_offsets.size()) - 1;
    }
    /// Bounds-guarded key slice: empty view on a corrupt offset pair. The
    /// guard never touches blob bytes, so building vocabulary entries
    /// faults in only the offset array.
    std::string_view key(size_t i) const {
      uint64_t b = key_offsets[i], e = key_offsets[i + 1];
      if (b > e || e > blob.size()) return {};
      return blob.view().substr(static_cast<size_t>(b),
                                static_cast<size_t>(e - b));
    }
    /// Bounds-guarded posting slice [begin, end) into columns for key `i`;
    /// empty on a corrupt offset pair.
    std::pair<uint32_t, uint32_t> posting_range(size_t i) const {
      uint32_t b = posting_offsets[i], e = posting_offsets[i + 1];
      if (b > e || e > columns.size()) return {0, 0};
      return {b, e};
    }
    /// Index of `needle`, or -1.
    ptrdiff_t find(std::string_view needle) const;
    void SaveTo(SerdeWriter* w) const;
    /// Restores the store; resident loads validate the offset arrays
    /// (monotonic, in bounds), paged loads defer to the guarded accessors.
    Status LoadFrom(SerdeReader* r, const PagerBinding* binding);
    void PinInto(PagePin* pin) const {
      blob.PinInto(pin);
      key_offsets.PinInto(pin);
      columns.PinInto(pin);
      posting_offsets.PinInto(pin);
    }
  };

  /// One vocabulary word, resolvable to its postings in either store.
  struct VocabEntry {
    std::string_view text;
    const std::vector<ColumnRef>* map_postings;  // null when flat
    ptrdiff_t flat_index;                        // -1 when in the hash map
  };

  void IndexTable(const TableRepository& repo, int32_t table_id);
  void RebuildVocabBuckets();

  // Mutable store: lowercased text -> columns containing it (deduped).
  std::unordered_map<std::string, std::vector<ColumnRef>> value_postings_;
  std::unordered_map<std::string, std::vector<ColumnRef>> attr_postings_;
  // Immutable store (snapshot-loaded base).
  FlatPostings flat_values_;
  FlatPostings flat_attrs_;
  // Vocabulary of both stores bucketed by length for banded fuzzy scans.
  std::vector<std::vector<VocabEntry>> vocab_by_length_;
  std::vector<std::vector<VocabEntry>> attr_vocab_by_length_;
};

}  // namespace ver

#endif  // VER_DISCOVERY_KEYWORD_INDEX_H_
