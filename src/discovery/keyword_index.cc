#include "discovery/keyword_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/levenshtein.h"
#include "util/string_util.h"

namespace ver {

namespace {

void BucketVocabulary(
    const std::unordered_map<std::string, std::vector<ColumnRef>>& postings,
    std::vector<std::vector<const std::string*>>* buckets) {
  buckets->clear();
  for (const auto& [text, cols] : postings) {
    size_t len = text.size();
    if (buckets->size() <= len) buckets->resize(len + 1);
    (*buckets)[len].push_back(&text);
  }
}

}  // namespace

void KeywordIndex::Build(const TableRepository& repo) {
  value_postings_.clear();
  attr_postings_.clear();
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    IndexTable(repo, t);
  }
  BucketVocabulary(value_postings_, &vocab_by_length_);
  BucketVocabulary(attr_postings_, &attr_vocab_by_length_);
}

void KeywordIndex::AddTable(const TableRepository& repo, int32_t table_id) {
  IndexTable(repo, table_id);
  // Key pointers in unordered_map are stable across inserts, but the fuzzy
  // buckets only know keys present at bucketing time; rebucket.
  BucketVocabulary(value_postings_, &vocab_by_length_);
  BucketVocabulary(attr_postings_, &attr_vocab_by_length_);
}

void KeywordIndex::IndexTable(const TableRepository& repo, int32_t t) {
  const Table& table = repo.table(t);
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnRef ref{t, c};
    const Attribute& attr = table.schema().attribute(c);
    if (attr.has_name()) {
      attr_postings_[ToLower(attr.name)].push_back(ref);
    }
    std::unordered_set<std::string> seen;  // dedupe cell texts per column
    for (const Value& v : table.column(c)) {
      if (v.is_null()) continue;
      std::string text = ToLower(v.ToText());
      if (seen.insert(text).second) {
        value_postings_[text].push_back(ref);
      }
    }
  }
}

std::vector<KeywordHit> KeywordIndex::Search(const std::string& keyword,
                                             KeywordTarget target,
                                             int max_edits) const {
  std::string needle = ToLower(Trim(keyword));
  // Accumulate per-column hit counts, keeping attribute/value hits distinct.
  std::unordered_map<uint64_t, KeywordHit> hits;

  auto add_hit = [&hits](const ColumnRef& ref, bool attribute, bool exact) {
    uint64_t key = ref.Encode() * 2 + (attribute ? 1 : 0);
    auto it = hits.find(key);
    if (it == hits.end()) {
      hits.emplace(key, KeywordHit{ref, attribute, exact, 1});
    } else {
      it->second.match_count += 1;
      it->second.exact = it->second.exact || exact;
    }
  };

  auto search_postings =
      [&](const std::unordered_map<std::string, std::vector<ColumnRef>>&
              postings,
          const std::vector<std::vector<const std::string*>>& buckets,
          bool attribute) {
        auto it = postings.find(needle);
        if (it != postings.end()) {
          for (const ColumnRef& ref : it->second) {
            add_hit(ref, attribute, /*exact=*/true);
          }
        }
        if (max_edits <= 0) return;
        int lo = std::max<int>(0, static_cast<int>(needle.size()) - max_edits);
        int hi = static_cast<int>(needle.size()) + max_edits;
        for (int len = lo; len <= hi && len < static_cast<int>(buckets.size());
             ++len) {
          for (const std::string* candidate : buckets[len]) {
            if (*candidate == needle) continue;  // already handled exactly
            if (WithinEditDistance(needle, *candidate, max_edits)) {
              for (const ColumnRef& ref : postings.at(*candidate)) {
                add_hit(ref, attribute, /*exact=*/false);
              }
            }
          }
        }
      };

  if (target == KeywordTarget::kValues || target == KeywordTarget::kAll) {
    search_postings(value_postings_, vocab_by_length_, /*attribute=*/false);
  }
  if (target == KeywordTarget::kAttributes || target == KeywordTarget::kAll) {
    search_postings(attr_postings_, attr_vocab_by_length_, /*attribute=*/true);
  }

  std::vector<KeywordHit> out;
  out.reserve(hits.size());
  for (auto& [_, hit] : hits) out.push_back(hit);
  std::sort(out.begin(), out.end(), [](const KeywordHit& a,
                                       const KeywordHit& b) {
    if (a.column.table_id != b.column.table_id) {
      return a.column.table_id < b.column.table_id;
    }
    if (a.column.column_index != b.column.column_index) {
      return a.column.column_index < b.column.column_index;
    }
    return a.matched_attribute < b.matched_attribute;
  });
  return out;
}

}  // namespace ver
