#include "discovery/keyword_index.h"

#include <algorithm>

#include "util/bitset.h"
#include "util/levenshtein.h"
#include "util/string_util.h"

namespace ver {

namespace {

ColumnRef DecodeColumnRef(uint64_t encoded) {
  return ColumnRef{static_cast<int32_t>(encoded >> 32),
                   static_cast<int32_t>(encoded & 0xffffffffULL)};
}

// Sorted pointers to the hash-map keys (deterministic iteration order).
std::vector<const std::string*> SortedKeys(
    const std::unordered_map<std::string, std::vector<ColumnRef>>& postings) {
  std::vector<const std::string*> keys;
  keys.reserve(postings.size());
  for (const auto& [text, cols] : postings) {
    (void)cols;
    keys.push_back(&text);
  }
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  return keys;
}

}  // namespace

ptrdiff_t KeywordIndex::FlatPostings::find(std::string_view needle) const {
  size_t lo = 0, hi = num_keys();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (key(mid) < needle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < num_keys() && key(lo) == needle) return static_cast<ptrdiff_t>(lo);
  return -1;
}

void KeywordIndex::FlatPostings::SaveTo(SerdeWriter* w) const {
  w->WriteString(blob.view());
  w->WriteU32Array(key_offsets.data(), key_offsets.size());
  w->WriteU64Array(columns.data(), columns.size());
  w->WriteU32Array(posting_offsets.data(), posting_offsets.size());
}

Status KeywordIndex::FlatPostings::LoadFrom(SerdeReader* r,
                                            const PagerBinding* binding) {
  {
    const char* raw = nullptr;
    uint64_t len = 0;
    VER_RETURN_IF_ERROR(r->ReadStringExtent(&raw, &len));
    blob.Adopt(binding, raw, len);
  }
  auto load_u32 = [&](PagedView<uint32_t>* out, const char* what) -> Status {
    const char* raw = nullptr;
    uint64_t n = 0;
    VER_RETURN_IF_ERROR(r->ReadArrayExtent(sizeof(uint32_t), what, &raw, &n));
    out->Adopt(binding, raw, n);
    return Status::OK();
  };
  VER_RETURN_IF_ERROR(load_u32(&key_offsets, "keyword key offsets"));
  {
    const char* raw = nullptr;
    uint64_t n = 0;
    VER_RETURN_IF_ERROR(
        r->ReadArrayExtent(sizeof(uint64_t), "keyword postings", &raw, &n));
    columns.Adopt(binding, raw, n);
  }
  VER_RETURN_IF_ERROR(load_u32(&posting_offsets, "keyword posting offsets"));
  if (key_offsets.size() != posting_offsets.size()) {
    return Status::IOError("corrupt keyword index: inconsistent offsets");
  }
  // Offset sanity: monotonic and in bounds, so key()/posting slicing can
  // never read out of range even if a corrupt file slipped past the
  // checksum. Paged loads skip the scan (it would fault in both offset
  // arrays eagerly) — key()/posting_range() guard each slice instead.
  if (binding != nullptr && binding->pool != nullptr) return Status::OK();
  auto offsets_valid = [](const PagedView<uint32_t>& offsets, size_t end) {
    if (offsets.empty()) return end == 0;
    if (offsets.front() != 0 || offsets.back() != end) return false;
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) return false;
    }
    return true;
  };
  if (!offsets_valid(key_offsets, blob.size()) ||
      !offsets_valid(posting_offsets, columns.size())) {
    return Status::IOError("corrupt keyword index: inconsistent offsets");
  }
  return Status::OK();
}

int64_t KeywordIndex::vocabulary_size() const {
  int64_t size = static_cast<int64_t>(flat_values_.num_keys());
  for (const auto& [text, cols] : value_postings_) {
    (void)cols;
    // Words already in the flat base (re-indexed after a snapshot load)
    // count once.
    if (flat_values_.num_keys() == 0 || flat_values_.find(text) < 0) ++size;
  }
  return size;
}

void KeywordIndex::Build(const TableRepository& repo) {
  value_postings_.clear();
  attr_postings_.clear();
  flat_values_ = FlatPostings();
  flat_attrs_ = FlatPostings();
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    IndexTable(repo, t);
  }
  RebuildVocabBuckets();
}

void KeywordIndex::BuildTables(const TableRepository& repo,
                               const std::vector<int32_t>& table_ids) {
  value_postings_.clear();
  attr_postings_.clear();
  flat_values_ = FlatPostings();
  flat_attrs_ = FlatPostings();
  for (int32_t t : table_ids) {
    IndexTable(repo, t);
  }
  RebuildVocabBuckets();
}

void KeywordIndex::AddTable(const TableRepository& repo, int32_t table_id) {
  IndexTable(repo, table_id);
  // Key pointers in unordered_map are stable across inserts, but the fuzzy
  // buckets only know keys present at bucketing time; rebucket.
  RebuildVocabBuckets();
}

void KeywordIndex::IndexTable(const TableRepository& repo, int32_t t) {
  const Table& table = repo.table(t);
  // One scratch text buffer for the whole table (the old loop built a
  // std::string per distinct cell into an unordered_set<std::string>), and
  // posting dedup that needs no set at all: columns index one at a time,
  // so a text already posted by *this* column has this column's ref at the
  // back of its posting list — older refs can never follow it.
  std::string scratch;
  PackedBitset code_seen;
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnRef ref{t, c};
    const Attribute& attr = table.schema().attribute(c);
    if (attr.has_name()) {
      attr_postings_[ToLower(attr.name)].push_back(ref);
    }
    auto post_scratch = [&]() {
      ToLowerInPlace(&scratch);
      std::vector<ColumnRef>& cols = value_postings_[scratch];
      if (cols.empty() || cols.back().table_id != ref.table_id ||
          cols.back().column_index != ref.column_index) {
        cols.push_back(ref);
      }
    };
    const ColumnData& data = table.column_data(c);
    if (data.is_dict()) {
      // Dictionary columns dedupe on codes first: each distinct cell is
      // lowercased and posted once, in first-occurrence row order (same
      // postings as the per-row loop, minus the re-hashing).
      code_seen.Resize(data.dict_size());
      for (int64_t r = 0; r < table.num_rows(); ++r) {
        if (data.is_null(r)) continue;
        uint32_t code = data.code(r);
        if (!code_seen.TestAndSet(code)) continue;
        scratch.clear();
        data.dict_entry(code).AppendTextTo(&scratch);
        post_scratch();
      }
      continue;
    }
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      CellView v = data.cell(r);
      if (v.is_null()) continue;
      scratch.clear();
      v.AppendTextTo(&scratch);
      post_scratch();
    }
  }
}

void KeywordIndex::RebuildVocabBuckets() {
  auto bucket = [](const std::unordered_map<std::string,
                                            std::vector<ColumnRef>>& postings,
                   const FlatPostings& flat,
                   std::vector<std::vector<VocabEntry>>* buckets) {
    buckets->clear();
    auto add = [buckets](VocabEntry entry) {
      size_t len = entry.text.size();
      if (buckets->size() <= len) buckets->resize(len + 1);
      (*buckets)[len].push_back(entry);
    };
    for (size_t i = 0; i < flat.num_keys(); ++i) {
      add(VocabEntry{flat.key(i), nullptr, static_cast<ptrdiff_t>(i)});
    }
    for (const auto& [text, cols] : postings) {
      add(VocabEntry{text, &cols, -1});
    }
  };
  bucket(value_postings_, flat_values_, &vocab_by_length_);
  bucket(attr_postings_, flat_attrs_, &attr_vocab_by_length_);
}

std::vector<KeywordHit> KeywordIndex::Search(const std::string& keyword,
                                             KeywordTarget target,
                                             int max_edits) const {
  std::string needle = ToLower(Trim(keyword));
  // Accumulate per-column hit counts, keeping attribute/value hits distinct.
  std::unordered_map<uint64_t, KeywordHit> hits;

  auto add_hit = [&hits](const ColumnRef& ref, bool attribute, bool exact) {
    uint64_t key = ref.Encode() * 2 + (attribute ? 1 : 0);
    auto it = hits.find(key);
    if (it == hits.end()) {
      hits.emplace(key, KeywordHit{ref, attribute, exact, 1});
    } else {
      it->second.match_count += 1;
      it->second.exact = it->second.exact || exact;
    }
  };

  auto search_postings =
      [&](const std::unordered_map<std::string, std::vector<ColumnRef>>&
              postings,
          const FlatPostings& flat,
          const std::vector<std::vector<VocabEntry>>& buckets,
          bool attribute) {
        // Exact lookups, in both stores (a key present in both — the flat
        // base plus tables indexed after a Load — contributes from each).
        auto it = postings.find(needle);
        if (it != postings.end()) {
          for (const ColumnRef& ref : it->second) {
            add_hit(ref, attribute, /*exact=*/true);
          }
        }
        ptrdiff_t fi = flat.find(needle);
        if (fi >= 0) {
          auto [pb, pe] = flat.posting_range(static_cast<size_t>(fi));
          for (uint32_t p = pb; p < pe; ++p) {
            add_hit(DecodeColumnRef(flat.columns[p]), attribute,
                    /*exact=*/true);
          }
        }
        if (max_edits <= 0) return;
        int lo = std::max<int>(0, static_cast<int>(needle.size()) - max_edits);
        int hi = static_cast<int>(needle.size()) + max_edits;
        for (int len = lo; len <= hi && len < static_cast<int>(buckets.size());
             ++len) {
          for (const VocabEntry& entry : buckets[len]) {
            if (entry.text == needle) continue;  // already handled exactly
            if (!WithinEditDistance(needle, entry.text, max_edits)) continue;
            if (entry.map_postings != nullptr) {
              for (const ColumnRef& ref : *entry.map_postings) {
                add_hit(ref, attribute, /*exact=*/false);
              }
            } else {
              auto [pb, pe] = flat.posting_range(
                  static_cast<size_t>(entry.flat_index));
              for (uint32_t p = pb; p < pe; ++p) {
                add_hit(DecodeColumnRef(flat.columns[p]), attribute,
                        /*exact=*/false);
              }
            }
          }
        }
      };

  if (target == KeywordTarget::kValues || target == KeywordTarget::kAll) {
    search_postings(value_postings_, flat_values_, vocab_by_length_,
                    /*attribute=*/false);
  }
  if (target == KeywordTarget::kAttributes || target == KeywordTarget::kAll) {
    search_postings(attr_postings_, flat_attrs_, attr_vocab_by_length_,
                    /*attribute=*/true);
  }

  std::vector<KeywordHit> out;
  out.reserve(hits.size());
  for (auto& [_, hit] : hits) out.push_back(hit);
  std::sort(out.begin(), out.end(), [](const KeywordHit& a,
                                       const KeywordHit& b) {
    if (a.column.table_id != b.column.table_id) {
      return a.column.table_id < b.column.table_id;
    }
    if (a.column.column_index != b.column.column_index) {
      return a.column.column_index < b.column.column_index;
    }
    return a.matched_attribute < b.matched_attribute;
  });
  return out;
}

// Merges the flat base and the sorted hash-map keys into one flat store.
// For a key present in both, flat postings come first — flat entries are
// older (lower) table ids, so the merged order equals a from-scratch
// build's insertion order.
Status KeywordIndex::SaveTo(SerdeWriter* w) const {
  auto save_merged =
      [w](const FlatPostings& flat,
          const std::unordered_map<std::string, std::vector<ColumnRef>>&
              postings) -> Status {
        std::vector<const std::string*> map_keys = SortedKeys(postings);
        FlatPostings out;
        out.key_offsets.mut().push_back(0);
        out.posting_offsets.mut().push_back(0);
        size_t fi = 0, mi = 0;
        auto emit_flat = [&](size_t i) {
          std::string_view key = flat.key(i);
          out.blob.mut().append(key.data(), key.size());
          auto [pb, pe] = flat.posting_range(i);
          for (uint32_t p = pb; p < pe; ++p) {
            out.columns.mut().push_back(flat.columns[p]);
          }
        };
        auto emit_map = [&](size_t i) {
          const std::string& key = *map_keys[i];
          out.blob.mut().append(key);
          for (const ColumnRef& ref : postings.at(key)) {
            out.columns.mut().push_back(ref.Encode());
          }
        };
        while (fi < flat.num_keys() || mi < map_keys.size()) {
          if (mi >= map_keys.size() ||
              (fi < flat.num_keys() && flat.key(fi) < *map_keys[mi])) {
            emit_flat(fi++);
          } else if (fi >= flat.num_keys() || *map_keys[mi] < flat.key(fi)) {
            emit_map(mi++);
          } else {  // same key in both stores: flat (older tables) first
            std::string_view key = flat.key(fi);
            out.blob.mut().append(key.data(), key.size());
            auto [pb, pe] = flat.posting_range(fi);
            for (uint32_t p = pb; p < pe; ++p) {
              out.columns.mut().push_back(flat.columns[p]);
            }
            for (const ColumnRef& ref : postings.at(*map_keys[mi])) {
              out.columns.mut().push_back(ref.Encode());
            }
            ++fi;
            ++mi;
          }
          if (out.blob.size() > UINT32_MAX || out.columns.size() > UINT32_MAX) {
            return Status::OutOfRange(
                "keyword index exceeds the snapshot format's u32 offset "
                "range; cannot save");
          }
          out.key_offsets.mut().push_back(
              static_cast<uint32_t>(out.blob.size()));
          out.posting_offsets.mut().push_back(
              static_cast<uint32_t>(out.columns.size()));
        }
        out.SaveTo(w);
        return Status::OK();
      };
  VER_RETURN_IF_ERROR(save_merged(flat_values_, value_postings_));
  return save_merged(flat_attrs_, attr_postings_);
}

Status KeywordIndex::LoadFrom(SerdeReader* r, const TableRepository& repo,
                              const PagerBinding* binding) {
  VER_RETURN_IF_ERROR(flat_values_.LoadFrom(r, binding));
  VER_RETURN_IF_ERROR(flat_attrs_.LoadFrom(r, binding));
  // Every posting must address a real column: hits flow straight into the
  // pipeline, which dereferences them against the repository. Paged loads
  // skip the scan (it would fault in every posting page); the snapshot's
  // framing was validated and postings came from this repository's save.
  if (binding == nullptr || binding->pool == nullptr) {
    for (const FlatPostings* flat : {&flat_values_, &flat_attrs_}) {
      for (uint64_t encoded : flat->columns) {
        ColumnRef ref = DecodeColumnRef(encoded);
        if (ref.table_id < 0 || ref.table_id >= repo.num_tables() ||
            ref.column_index < 0 ||
            ref.column_index >= repo.table(ref.table_id).num_columns()) {
          return Status::IOError(
              "corrupt keyword index: posting addresses nonexistent column " +
              ref.ToString());
        }
      }
    }
  }
  value_postings_.clear();
  attr_postings_.clear();
  RebuildVocabBuckets();
  return Status::OK();
}

}  // namespace ver
