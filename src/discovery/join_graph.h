// Join graphs: the combinatorial object connecting candidate tables through
// inferred inclusion dependencies (Definition 4's join paths, generalized to
// graphs over more than two tables).

#ifndef VER_DISCOVERY_JOIN_GRAPH_H_
#define VER_DISCOVERY_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "storage/repository.h"

namespace ver {

/// One inferred joinable column pair (an inclusion-dependency edge).
struct JoinEdge {
  ColumnRef left;
  ColumnRef right;
  /// Max containment across directions — strength of the inclusion proxy.
  double containment = 0.0;
  /// How key-like the better side is (max uniqueness); PK/FK approximation.
  double key_quality = 0.0;

  /// Canonical encoding independent of left/right orientation.
  std::pair<uint64_t, uint64_t> CanonicalEncoding() const {
    uint64_t a = left.Encode(), b = right.Encode();
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
};

/// A set of join edges whose induced table graph is connected; an empty edge
/// set denotes the single-table "graph".
struct JoinGraph {
  std::vector<JoinEdge> edges;
  /// Tables touched by the graph, sorted ascending (includes intermediates).
  std::vector<int32_t> tables;
  /// Discovery-engine ranking score: key-like edges up, more hops down.
  double score = 0.0;

  int num_hops() const { return static_cast<int>(edges.size()); }

  /// Canonical signature for deduplication across enumeration orders.
  std::string Signature() const;

  /// Human-readable description using repository names.
  std::string ToString(const TableRepository& repo) const;
};

/// Recomputes `tables` from the edge set plus mandatory tables.
void NormalizeJoinGraph(JoinGraph* graph,
                        const std::vector<int32_t>& mandatory_tables);

/// score = mean key quality - hop penalty; single-table graphs score 1.
double ScoreJoinGraph(const JoinGraph& graph);

}  // namespace ver

#endif  // VER_DISCOVERY_JOIN_GRAPH_H_
