// DiscoveryEngine: the facade over all offline indices (the paper's
// DISCOVERY ENGINE AND INDEX CREATION component). Exposes the three
// functions Ver consumes (Appendix A): SEARCH-KEYWORD, NEIGHBORS and
// GENERATE-JOIN-GRAPHS, plus profile access.
//
// The engine is internally sharded: tables are hash-partitioned across N
// shards (DiscoveryOptions::num_shards), each owning its own keyword and
// similarity index built over just its tables, while column profiles and
// the join-path index stay global. Queries scatter across the shards (in
// parallel when the engine was built with parallelism > 1) and gather the
// per-shard results with deterministic merges, so every answer is
// bit-identical to a 1-shard engine over the same repository.

#ifndef VER_DISCOVERY_ENGINE_H_
#define VER_DISCOVERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "discovery/join_path_index.h"
#include "discovery/keyword_index.h"
#include "discovery/profile.h"
#include "discovery/similarity_index.h"
#include "pager/pager.h"
#include "storage/repository.h"
#include "util/result.h"
#include "util/serde.h"
#include "util/thread_pool.h"

namespace ver {

/// Knobs for offline index construction and the Appendix A discovery
/// functions. Each nested struct documents its own knobs.
struct DiscoveryOptions {
  /// Column profiling: sketch width, seed, exact-set cutoff.
  ProfilerOptions profiler;
  /// NEIGHBORS index: LSH bands, posting caps, distinct-value floor.
  SimilarityOptions similarity;
  /// GENERATE-JOIN-GRAPHS index: join-edge threshold and graph caps.
  JoinPathOptions join_paths;
  /// Jaccard threshold for content-similarity clustering during
  /// COLUMN-SELECTION (Algorithm 4 line 5's similarity edges). Unitless,
  /// in [0, 1]; default 0.5.
  double similarity_cluster_threshold = 0.5;
  /// Levenshtein budget for fuzzy SEARCH-KEYWORD (Appendix A's
  /// fuzzy=true). Units: edits; default 2; 0 disables fuzzy matching.
  int fuzzy_max_edits = 2;
  /// Worker threads for offline index construction (profiling, LSH banding,
  /// join-path candidate scoring) and, when num_shards > 1, for query-time
  /// scatter across shards. Units: threads; default 1 = serial;
  /// 0 = all hardware threads. No paper counterpart (the paper builds
  /// indices with Aurum). Output is bit-identical to serial for any value.
  int parallelism = 1;
  /// Number of hash-partitioned shards the engine splits the repository
  /// into. Tables are assigned by a fingerprint of their name, each shard
  /// builds its own keyword + similarity index (in parallel when
  /// parallelism > 1), and snapshots persist every shard as its own
  /// section group (format v4). Queries scatter-gather across shards and
  /// answer bit-identically to 1 shard. Units: shards; default 1.
  int num_shards = 1;
  /// Paged snapshot serving (mmap + buffer-pool residency). A load-time,
  /// per-process choice — NOT serialized into snapshots, and ignored by
  /// Build()/Save(). See PagingOptions for the knobs.
  PagingOptions paging;
};

/// Offline discovery index over one repository.
///
/// Build once, query many times. The engine borrows the repository; the
/// repository must outlive the engine.
///
/// Thread-safety contract (audited for the serving layer): Build() and
/// IndexNewTable() are exclusive writers. Every const method —
/// SearchKeyword, Neighbors, SimilarColumns, GenerateJoinGraphs, profile
/// access and the index accessors — only reads state built beforehand;
/// there are no lazily-populated caches or memoization on the read path
/// (the per-shard scatter counters are plain atomics). Concurrent const
/// calls are therefore data-race-free and return results identical to
/// serial execution. IndexNewTable must not run concurrently with any
/// other call; callers that need online maintenance under traffic must
/// serialize it externally (VerServer never calls it).
class DiscoveryEngine {
 public:
  /// Profiles all columns and constructs all indices.
  static std::unique_ptr<DiscoveryEngine> Build(
      const TableRepository& repo,
      const DiscoveryOptions& options = DiscoveryOptions());

  /// Persists the engine — options, column profiles (with sketches), the
  /// shard layout with every shard's keyword + similarity index, the
  /// global join-path index, plus a fingerprint of the repository's table
  /// names, row counts and schemas — as one versioned snapshot file (see
  /// util/serde.h for the format). The write is atomic (temp + rename).
  /// `format_version` defaults to the current format; passing an older
  /// version emits a genuine legacy file for downgrade paths and
  /// compatibility tests (pre-v4 formats are single-shard: saving a
  /// multi-shard engine at version <= 3 is an InvalidArgument).
  Status Save(const std::string& path,
              uint32_t format_version = kSnapshotFormatVersion) const;

  /// Restores an engine from a snapshot written by Save(). `repo` must be
  /// the repository the snapshot was built over (checked against the
  /// stored fingerprint) and must outlive the engine. A loaded engine
  /// answers every query bit-identically to the freshly built engine it
  /// was saved from, and supports IndexNewTable exactly like one. The
  /// shard layout comes from the file (never re-hashed); v1-v3 files load
  /// as one shard. On any corruption (bad magic, version skew,
  /// truncation, checksum mismatch) returns a descriptive error and
  /// constructs nothing.
  static Result<std::unique_ptr<DiscoveryEngine>> Load(
      const TableRepository& repo, const std::string& path);

  /// Load() with an explicit paging choice. With paging enabled the
  /// snapshot is mmapped and the index posting stores are borrowed from
  /// the map under a buffer-pool budget instead of being copied out;
  /// queries answer bit-identically, cold start touches O(pages read)
  /// instead of O(file), and checksum verification is skipped (the
  /// paged trust model: framing validated, content bounds-guarded at
  /// query time). When the snapshot is multi-shard, each shard's sections
  /// register as their own buffer-pool space against the shared budget,
  /// so residency is accounted per shard (single-shard snapshots keep the
  /// one-space layout). When `repo` was itself paged from the same path, the engine
  /// shares the repository's runtime (one map, one budget). Snapshots
  /// that cannot be paged (pre-v3 format, platforms without mmap)
  /// silently fall back to the resident path.
  static Result<std::unique_ptr<DiscoveryEngine>> Load(
      const TableRepository& repo, const std::string& path,
      const PagingOptions& paging);

  /// Reconstructs the repository a snapshot was built over from the
  /// snapshot's columnar table sections (format version >= 2): every
  /// column's dictionary, codes and null bitmap memcpy-load, so a server
  /// cold-starts without re-parsing a single CSV. The result passes the
  /// snapshot's own fingerprint check, i.e. Load(LoadRepository(path),
  /// path) answers queries bit-identically to the engine that was saved.
  /// v1 snapshots (no table data) return NotFound with guidance.
  static Result<TableRepository> LoadRepository(const std::string& path);

  /// LoadRepository() with an explicit paging choice: column payloads
  /// (codes, null bitmaps, dictionary arenas) stay in the mmapped file
  /// and page in on demand under the budget. The returned repository
  /// holds the runtime (repo.pager()); pass the same path to Load() to
  /// share it. Falls back to the resident path when the snapshot cannot
  /// be paged structurally (pre-v3 format, no mmap).
  static Result<TableRepository> LoadRepository(const std::string& path,
                                                const PagingOptions& paging);

  const TableRepository& repo() const { return *repo_; }
  const DiscoveryOptions& options() const { return options_; }

  /// SEARCH-KEYWORD(target, fuzzy): columns containing `keyword`.
  /// Scattered across shards; gathered hits are re-sorted by
  /// (table, column, matched-attribute) — the monolithic index's order.
  std::vector<KeywordHit> SearchKeyword(const std::string& keyword,
                                        KeywordTarget target,
                                        bool fuzzy = false) const;

  /// NEIGHBORS(threshold): columns whose containment with `column` is at
  /// least `threshold` (inclusion-dependency neighbors). Scattered across
  /// shards; gathered neighbors merge by (score desc, profile index asc).
  std::vector<ColumnRef> Neighbors(const ColumnRef& column,
                                   double threshold) const;

  /// Content-similar columns (Jaccard), used for candidate clustering.
  std::vector<ColumnRef> SimilarColumns(const ColumnRef& column,
                                        double jaccard_threshold) const;

  /// GENERATE-JOIN-GRAPHS(tables, rho). The join-path index is global
  /// (join graphs span shards by nature), built from the deterministic
  /// union of per-shard and cross-shard candidate pairs.
  std::vector<JoinGraph> GenerateJoinGraphs(const std::vector<int32_t>& tables,
                                            int max_hops) const;

  const ColumnProfile& profile(const ColumnRef& ref) const {
    return (*profiles_)[static_cast<size_t>(
        profile_index_.at(ref.Encode()))];
  }
  const std::vector<ColumnProfile>& profiles() const { return *profiles_; }
  const JoinPathIndex& join_path_index() const { return join_paths_; }
  /// Shard 0's indexes — for a 1-shard engine (the default) these are the
  /// whole engine; multi-shard callers should query through the engine.
  const KeywordIndex& keyword_index() const { return shards_[0]->keywords; }
  const SimilarityIndex& similarity_index() const {
    return shards_[0]->similarity;
  }

  /// Table I statistic: total joinable column pairs discovered offline.
  int64_t num_joinable_column_pairs() const {
    return join_paths_.num_joinable_column_pairs();
  }

  // --- Shard topology & observability ---------------------------------

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Tables owned by shard `s`, ascending.
  const std::vector<int32_t>& shard_tables(int s) const {
    return shards_[static_cast<size_t>(s)]->table_ids;
  }
  /// Shard owning table `t`.
  int shard_of_table(int32_t t) const {
    return shard_of_table_[static_cast<size_t>(t)];
  }

  /// Point-in-time copy of one shard's scatter counters.
  struct ShardCounterSnapshot {
    uint64_t scatter_queries = 0;  // discovery queries scattered into it
    uint64_t candidates = 0;       // hits + neighbors it contributed
  };
  std::vector<ShardCounterSnapshot> shard_counters() const;

  /// Records that one pipeline query entered candidate discovery and will
  /// scatter across all shards; called by the query driver, counted in
  /// shard_counters(). Thread-safe (relaxed atomics).
  void NoteCandidateDiscovery() const;

  /// Online index maintenance: indexes a table that was appended to the
  /// repository after Build(). The table is routed to its hash shard and
  /// all indices (keyword, similarity, join paths) update incrementally;
  /// queries afterwards behave as if the engine had been built from
  /// scratch over the grown repository. Fails with InvalidArgument on
  /// an engine whose shards are shared with another engine (after
  /// WithRebuiltShard) — mutating a shared shard would corrupt the other
  /// engine's answers.
  Status IndexNewTable(int32_t table_id);

  /// Per-shard re-index for hot swaps: returns a new engine over `repo`
  /// (which must have the same table count and per-table column counts as
  /// the current repository — schema-shape changes need a full rebuild)
  /// where shard `shard`'s tables are re-profiled and its keyword +
  /// similarity indexes rebuilt, every other shard is shared by reference
  /// with this engine, and the global join-path index is recomputed. The
  /// returned engine serves `repo`; this engine keeps serving its own
  /// repository untouched, so a server can swap one shard under traffic.
  Result<std::unique_ptr<DiscoveryEngine>> WithRebuiltShard(
      const TableRepository& repo, int shard) const;

  /// The pager runtime this engine's indices borrow from (null when
  /// loaded resident). Shared with the repository when both were paged
  /// from the same snapshot.
  const std::shared_ptr<PagerRuntime>& pager() const { return pager_; }
  bool paged() const { return pager_ != nullptr; }

  /// Pins every paged extent the engine and repository borrow (tables,
  /// posting stores, join edges) into `pin`; no-op when resident.
  void PinInto(PagePin* pin) const;

 private:
  /// One hash partition of the repository: its table set plus the keyword
  /// and similarity indexes over exactly those tables. Postings stay
  /// keyed by *global* table/profile ids, which is what makes gathered
  /// results mergeable with the monolithic order. Shards are shared by
  /// shared_ptr between an engine and its WithRebuiltShard successors;
  /// `built_profiles` keeps the profile vector the similarity index was
  /// built against alive across that sharing.
  struct Shard {
    std::vector<int32_t> table_ids;  // ascending
    KeywordIndex keywords;
    SimilarityIndex similarity;
    std::shared_ptr<const std::vector<ColumnProfile>> built_profiles;
  };

  /// Per-shard query counters (relaxed atomics; heap-allocated so the
  /// shard vector stays movable).
  struct ShardCounters {
    std::atomic<uint64_t> scatter_queries{0};
    std::atomic<uint64_t> candidates{0};
  };

  DiscoveryEngine() = default;

  /// Assigns every repository table to a shard by name fingerprint and
  /// fills shard_of_table_ + per-shard table id lists.
  void PartitionTables(int num_shards);
  /// Ascending global profile indices per shard.
  std::vector<std::vector<int>> ShardMemberProfiles() const;
  /// Builds every shard's keyword + similarity index; with a pool and
  /// num_shards > 1, one task per shard.
  void BuildShardIndexes(ThreadPool* pool);
  /// The global join candidate pair set: the sorted, deduplicated union
  /// of per-shard AllCandidatePairs plus cross-shard probes. For one
  /// shard this is exactly AllCandidatePairs (the monolithic input).
  std::vector<std::pair<int, int>> ComputeJoinCandidatePairs(
      ThreadPool* pool) const;
  /// Creates the query-time scatter pool when sharded and parallel.
  void SetupScatterPool();
  void InitCounters();

  const TableRepository* repo_ = nullptr;
  DiscoveryOptions options_;
  /// Global profiles in build order (table 0..N-1, columns in schema
  /// order) regardless of shard count — every profile index and
  /// Encode-keyed sort is shard-invariant because of this. Shared so a
  /// WithRebuiltShard successor's shards can pin the vector they were
  /// built against.
  std::shared_ptr<std::vector<ColumnProfile>> profiles_;
  std::unordered_map<uint64_t, int> profile_index_;  // ColumnRef -> index
  std::vector<std::shared_ptr<Shard>> shards_;
  std::vector<int> shard_of_table_;
  JoinPathIndex join_paths_;
  std::vector<std::unique_ptr<ShardCounters>> counters_;
  /// Scatter pool for query-time fan-out; created when num_shards > 1 and
  /// the engine was configured with parallelism > 1. Shared by all
  /// concurrent queries — each query tracks only its own tasks with a
  /// TaskGroup, never ThreadPool::Wait.
  std::unique_ptr<ThreadPool> scatter_pool_;
  std::shared_ptr<PagerRuntime> pager_;
};

}  // namespace ver

#endif  // VER_DISCOVERY_ENGINE_H_
