// DiscoveryEngine: the facade over all offline indices (the paper's
// DISCOVERY ENGINE AND INDEX CREATION component). Exposes the three
// functions Ver consumes (Appendix A): SEARCH-KEYWORD, NEIGHBORS and
// GENERATE-JOIN-GRAPHS, plus profile access.

#ifndef VER_DISCOVERY_ENGINE_H_
#define VER_DISCOVERY_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "discovery/join_path_index.h"
#include "discovery/keyword_index.h"
#include "discovery/profile.h"
#include "discovery/similarity_index.h"
#include "pager/pager.h"
#include "storage/repository.h"
#include "util/result.h"
#include "util/serde.h"

namespace ver {

/// Knobs for offline index construction and the Appendix A discovery
/// functions. Each nested struct documents its own knobs.
struct DiscoveryOptions {
  /// Column profiling: sketch width, seed, exact-set cutoff.
  ProfilerOptions profiler;
  /// NEIGHBORS index: LSH bands, posting caps, distinct-value floor.
  SimilarityOptions similarity;
  /// GENERATE-JOIN-GRAPHS index: join-edge threshold and graph caps.
  JoinPathOptions join_paths;
  /// Jaccard threshold for content-similarity clustering during
  /// COLUMN-SELECTION (Algorithm 4 line 5's similarity edges). Unitless,
  /// in [0, 1]; default 0.5.
  double similarity_cluster_threshold = 0.5;
  /// Levenshtein budget for fuzzy SEARCH-KEYWORD (Appendix A's
  /// fuzzy=true). Units: edits; default 2; 0 disables fuzzy matching.
  int fuzzy_max_edits = 2;
  /// Worker threads for offline index construction (profiling, LSH banding,
  /// join-path candidate scoring). Units: threads; default 1 = serial;
  /// 0 = all hardware threads. No paper counterpart (the paper builds
  /// indices with Aurum). Output is bit-identical to serial for any value.
  int parallelism = 1;
  /// Paged snapshot serving (mmap + buffer-pool residency). A load-time,
  /// per-process choice — NOT serialized into snapshots, and ignored by
  /// Build()/Save(). See PagingOptions for the knobs.
  PagingOptions paging;
};

/// Offline discovery index over one repository.
///
/// Build once, query many times. The engine borrows the repository; the
/// repository must outlive the engine.
///
/// Thread-safety contract (audited for the serving layer): Build() and
/// IndexNewTable() are exclusive writers. Every const method —
/// SearchKeyword, Neighbors, SimilarColumns, GenerateJoinGraphs, profile
/// access and the index accessors — only reads state built beforehand;
/// there are no lazily-populated caches, memoization, or hidden statics on
/// the read path (KeywordIndex::Search, SimilarityIndex neighbor queries
/// and JoinPathIndex::GenerateJoinGraphs allocate their results on the
/// stack). Concurrent const calls are therefore data-race-free and return
/// results identical to serial execution. IndexNewTable must not run
/// concurrently with any other call; callers that need online maintenance
/// under traffic must serialize it externally (VerServer never calls it).
class DiscoveryEngine {
 public:
  /// Profiles all columns and constructs all indices.
  static std::unique_ptr<DiscoveryEngine> Build(
      const TableRepository& repo,
      const DiscoveryOptions& options = DiscoveryOptions());

  /// Persists the engine — options, column profiles (with sketches), and
  /// all four indices, plus a fingerprint of the repository's table names,
  /// row counts and schemas — as one versioned snapshot file (see
  /// util/serde.h for the format). The write is atomic (temp + rename).
  /// `format_version` defaults to the current format; passing an older
  /// version emits a genuine legacy file (unaligned payloads, inline
  /// framing) for downgrade paths and compatibility tests.
  Status Save(const std::string& path,
              uint32_t format_version = kSnapshotFormatVersion) const;

  /// Restores an engine from a snapshot written by Save(). `repo` must be
  /// the repository the snapshot was built over (checked against the
  /// stored fingerprint) and must outlive the engine. A loaded engine
  /// answers every query bit-identically to the freshly built engine it
  /// was saved from, and supports IndexNewTable exactly like one. On any
  /// corruption (bad magic, version skew, truncation, checksum mismatch)
  /// returns a descriptive error and constructs nothing.
  static Result<std::unique_ptr<DiscoveryEngine>> Load(
      const TableRepository& repo, const std::string& path);

  /// Load() with an explicit paging choice. With paging enabled the
  /// snapshot is mmapped and the index posting stores are borrowed from
  /// the map under a buffer-pool budget instead of being copied out;
  /// queries answer bit-identically, cold start touches O(pages read)
  /// instead of O(file), and checksum verification is skipped (the
  /// paged trust model: framing validated, content bounds-guarded at
  /// query time). When `repo` was itself paged from the same path, the
  /// engine shares the repository's runtime (one map, one budget).
  /// Snapshots that cannot be paged (pre-v3 format, platforms without
  /// mmap) silently fall back to the resident path.
  static Result<std::unique_ptr<DiscoveryEngine>> Load(
      const TableRepository& repo, const std::string& path,
      const PagingOptions& paging);

  /// Reconstructs the repository a snapshot was built over from the
  /// snapshot's columnar table sections (format version >= 2): every
  /// column's dictionary, codes and null bitmap memcpy-load, so a server
  /// cold-starts without re-parsing a single CSV. The result passes the
  /// snapshot's own fingerprint check, i.e. Load(LoadRepository(path),
  /// path) answers queries bit-identically to the engine that was saved.
  /// v1 snapshots (no table data) return NotFound with guidance.
  static Result<TableRepository> LoadRepository(const std::string& path);

  /// LoadRepository() with an explicit paging choice: column payloads
  /// (codes, null bitmaps, dictionary arenas) stay in the mmapped file
  /// and page in on demand under the budget. The returned repository
  /// holds the runtime (repo.pager()); pass the same path to Load() to
  /// share it. Falls back to the resident path when the snapshot cannot
  /// be paged structurally (pre-v3 format, no mmap).
  static Result<TableRepository> LoadRepository(const std::string& path,
                                                const PagingOptions& paging);

  const TableRepository& repo() const { return *repo_; }
  const DiscoveryOptions& options() const { return options_; }

  /// SEARCH-KEYWORD(target, fuzzy): columns containing `keyword`.
  std::vector<KeywordHit> SearchKeyword(const std::string& keyword,
                                        KeywordTarget target,
                                        bool fuzzy = false) const;

  /// NEIGHBORS(threshold): columns whose containment with `column` is at
  /// least `threshold` (inclusion-dependency neighbors).
  std::vector<ColumnRef> Neighbors(const ColumnRef& column,
                                   double threshold) const;

  /// Content-similar columns (Jaccard), used for candidate clustering.
  std::vector<ColumnRef> SimilarColumns(const ColumnRef& column,
                                        double jaccard_threshold) const;

  /// GENERATE-JOIN-GRAPHS(tables, rho).
  std::vector<JoinGraph> GenerateJoinGraphs(const std::vector<int32_t>& tables,
                                            int max_hops) const;

  const ColumnProfile& profile(const ColumnRef& ref) const {
    return profiles_[profile_index_.at(ref.Encode())];
  }
  const std::vector<ColumnProfile>& profiles() const { return profiles_; }
  const JoinPathIndex& join_path_index() const { return join_paths_; }
  const KeywordIndex& keyword_index() const { return keywords_; }
  const SimilarityIndex& similarity_index() const { return similarity_; }

  /// Table I statistic: total joinable column pairs discovered offline.
  int64_t num_joinable_column_pairs() const {
    return join_paths_.num_joinable_column_pairs();
  }

  /// Online index maintenance: indexes a table that was appended to the
  /// repository after Build(). All indices (keyword, similarity, join
  /// paths) are updated incrementally; queries afterwards behave as if the
  /// engine had been built from scratch over the grown repository.
  Status IndexNewTable(int32_t table_id);

  /// The pager runtime this engine's indices borrow from (null when
  /// loaded resident). Shared with the repository when both were paged
  /// from the same snapshot.
  const std::shared_ptr<PagerRuntime>& pager() const { return pager_; }
  bool paged() const { return pager_ != nullptr; }

  /// Pins every paged extent the engine and repository borrow (tables,
  /// posting stores, join edges) into `pin`; no-op when resident.
  void PinInto(PagePin* pin) const;

 private:
  DiscoveryEngine() = default;

  const TableRepository* repo_ = nullptr;
  DiscoveryOptions options_;
  std::vector<ColumnProfile> profiles_;
  std::unordered_map<uint64_t, int> profile_index_;  // ColumnRef -> index
  KeywordIndex keywords_;
  SimilarityIndex similarity_;
  JoinPathIndex join_paths_;
  std::shared_ptr<PagerRuntime> pager_;
};

}  // namespace ver

#endif  // VER_DISCOVERY_ENGINE_H_
