// Column-similarity index: the NEIGHBORS(threshold) function of the paper's
// Appendix A. Candidate pairs come from two tiers — an exact value-overlap
// posting list for columns whose distinct sets were retained, and LSH banding
// over MinHash signatures for everything — then candidates are verified with
// the containment/Jaccard estimators.

#ifndef VER_DISCOVERY_SIMILARITY_INDEX_H_
#define VER_DISCOVERY_SIMILARITY_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "discovery/profile.h"
#include "pager/paged_view.h"
#include "util/thread_pool.h"

namespace ver {

struct SimilarityOptions {
  /// Number of LSH bands; rows per band = permutations / bands. Default
  /// 32 bands over 128 permutations (4 rows/band), tuned for the paper's
  /// NEIGHBORS thresholds around 0.5-0.8. More bands = higher recall at
  /// lower thresholds, more candidates to verify.
  int lsh_bands = 32;
  /// Columns with fewer distinct values than this are ignored as join
  /// endpoints (single-value columns join everything and mean nothing).
  /// Units: distinct values; default 2.
  int64_t min_distinct = 2;
  /// Cap on postings per value hash in the overlap tier; very frequent
  /// values (e.g. "0") otherwise create quadratic candidate blowup.
  /// Units: columns per posting list; default 256.
  size_t max_posting_length = 256;
};

struct Neighbor {
  int profile_index;  // index into the profile vector
  double score;       // containment or jaccard, per query
};

/// Approximate nearest-neighbor structure over column profiles.
class SimilarityIndex {
 public:
  /// Builds both tiers from the profiles. Profiles must outlive the index.
  /// With a pool, banding and posting construction shard across workers;
  /// the merged index is identical to a serial build.
  void Build(const std::vector<ColumnProfile>* profiles,
             const SimilarityOptions& options, ThreadPool* pool = nullptr);

  /// Shard-subset build: indexes only `member_ids` (ascending indices into
  /// `profiles`) while keeping postings keyed by those global indices, so a
  /// probe with *any* global profile — member or not — works unchanged.
  /// With member_ids == [0, N) this produces byte-for-byte the monolithic
  /// Build: same chunk boundaries, same posting order, same cap decisions.
  void BuildMembers(const std::vector<ColumnProfile>* profiles,
                    const std::vector<int>& member_ids,
                    const SimilarityOptions& options,
                    ThreadPool* pool = nullptr);

  /// Indexes profiles appended to the vector after Build(), starting at
  /// index `first_new` (incremental index maintenance).
  void AddProfiles(size_t first_new, ThreadPool* pool = nullptr);

  /// Columns b with containment(query ⊆ b) >= threshold (excluding itself).
  std::vector<Neighbor> ContainmentNeighbors(int profile_index,
                                             double threshold) const;

  /// Columns b with Jaccard(query, b) >= threshold (excluding itself).
  std::vector<Neighbor> JaccardNeighbors(int profile_index,
                                         double threshold) const;

  /// Candidate profile indices for a query column (union of both tiers).
  std::vector<int> Candidates(int profile_index) const;

  /// Explicit-profiles variants for sharded engines: the query profile and
  /// verification scores come from the *caller's* vector, not the one this
  /// index was built against. A shard index shared between an old and a
  /// hot-swapped engine answers for both this way — each engine passes its
  /// own (shape-identical) profile vector, so scores and the query
  /// eligibility gate always reflect the caller's data, never a stale
  /// build. `profile_index` may be any global index, member of this shard
  /// or not (cross-shard probe).
  std::vector<int> Candidates(const std::vector<ColumnProfile>& profiles,
                              int profile_index) const;
  std::vector<Neighbor> ContainmentNeighbors(
      const std::vector<ColumnProfile>& profiles, int profile_index,
      double threshold) const;
  std::vector<Neighbor> JaccardNeighbors(
      const std::vector<ColumnProfile>& profiles, int profile_index,
      double threshold) const;

  /// All unordered candidate pairs (i < j), for offline edge construction.
  std::vector<std::pair<int, int>> AllCandidatePairs() const;

  /// Snapshot serialization. Both stores are written merged into one flat
  /// sorted layout (deterministic bytes for a given logical index state);
  /// posting order inside each bucket is preserved verbatim, keeping the
  /// max_posting_length cap semantics of the build ("first N columns in
  /// ascending index order") intact for later AddProfiles calls. LoadFrom
  /// restores the flat store with a handful of bulk copies — no rehashing
  /// — which is what makes snapshot cold starts fast. `profiles` and
  /// `options` play the role Build()'s arguments do (options are
  /// persisted once, in the engine's options section, not here). SaveTo
  /// fails rather than silently wrapping the u32 posting offsets.
  ///
  /// With a pager `binding` the flat stores are adopted as borrowed mmap
  /// extents and the O(postings) validation scans are skipped; queries
  /// bounds-guard each bucket slice and posting index instead.
  Status SaveTo(SerdeWriter* w) const;
  Status LoadFrom(SerdeReader* r, const std::vector<ColumnProfile>* profiles,
                  const SimilarityOptions& options,
                  const PagerBinding* binding = nullptr);

  /// Adds the flat stores' paged extents to `pin` (no-op when resident).
  void PinInto(PagePin* pin) const {
    flat_value_postings_.PinInto(pin);
    for (const FlatBuckets& b : flat_band_buckets_) b.PinInto(pin);
  }

 private:
  /// Immutable bucket store: sorted keys with concatenated posting lists,
  /// bulk-loaded from snapshots (or borrowed straight out of the mmapped
  /// file under a paged load). Queries binary-search it; incremental
  /// growth goes to the mutable hash maps instead.
  struct FlatBuckets {
    PagedView<uint64_t> keys;      // sorted ascending
    PagedView<uint32_t> offsets;   // keys.size() + 1 entries
    PagedView<int> postings;       // concatenated, in key order

    size_t num_keys() const { return static_cast<size_t>(keys.size()); }
    /// Index of `key`, or -1.
    ptrdiff_t find(uint64_t key) const;
    size_t posting_count(uint64_t key) const;
    /// Bounds-guarded posting slice [begin, end) for key index `i`; empty
    /// on a corrupt offset pair (paged loads skip offset validation).
    std::pair<uint32_t, uint32_t> bucket_range(size_t i) const {
      uint32_t b = offsets[i], e = offsets[i + 1];
      if (b > e || e > postings.size()) return {0, 0};
      return {b, e};
    }
    void SaveTo(SerdeWriter* w) const;
    /// Restores the store; resident loads validate the offset array
    /// (monotonic, in bounds), paged loads defer to bucket_range().
    Status LoadFrom(SerdeReader* r, const PagerBinding* binding);
    void PinInto(PagePin* pin) const {
      keys.PinInto(pin);
      offsets.PinInto(pin);
      postings.PinInto(pin);
    }
  };

  const std::vector<ColumnProfile>* profiles_ = nullptr;
  SimilarityOptions options_;
  int rows_per_band_ = 4;

  // Tier 1: value hash -> profile indices containing that value. Mutable
  // overlay (Build/AddProfiles) plus immutable snapshot-loaded base; the
  // logical posting list for a key is flat postings followed by map
  // postings, and the max_posting_length cap spans both.
  std::unordered_map<uint64_t, std::vector<int>> value_postings_;
  FlatBuckets flat_value_postings_;
  // Tier 2: per-band bucket -> profile indices (same two-store layout).
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> band_buckets_;
  std::vector<FlatBuckets> flat_band_buckets_;
  // Columns eligible as join endpoints.
  std::vector<bool> eligible_;

  uint64_t BandHash(const MinHashSignature& sig, int band) const;

  /// Inserts `ids` (ascending profile indices) into both tiers. The chunk
  /// decomposition depends only on ids.size(), so the same id list always
  /// produces the same buckets, serial or parallel.
  void InsertProfiles(const std::vector<int>& ids, ThreadPool* pool);
  void SetupBands();
};

}  // namespace ver

#endif  // VER_DISCOVERY_SIMILARITY_INDEX_H_
