#include "discovery/similarity_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace ver {

void SimilarityIndex::Build(const std::vector<ColumnProfile>* profiles,
                            const SimilarityOptions& options,
                            ThreadPool* pool) {
  profiles_ = profiles;
  options_ = options;
  value_postings_.clear();
  band_buckets_.clear();

  const auto& ps = *profiles_;
  eligible_.clear();
  int permutations =
      ps.empty() ? 128 : ps.front().signature.num_permutations();
  int bands = std::max(1, std::min(options_.lsh_bands, permutations));
  rows_per_band_ = std::max(1, permutations / bands);
  band_buckets_.resize(bands);
  AddProfiles(0, pool);
}

void SimilarityIndex::AddProfiles(size_t first_new, ThreadPool* pool) {
  const auto& ps = *profiles_;
  eligible_.resize(ps.size(), false);
  if (first_new >= ps.size()) return;
  for (size_t i = first_new; i < ps.size(); ++i) {
    eligible_[i] = ps[i].stats.num_distinct >= options_.min_distinct;
  }
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = first_new; i < ps.size(); ++i) {
      if (!eligible_[i]) continue;
      const ColumnProfile& p = ps[i];
      for (uint64_t h : p.distinct_hashes) {
        auto& posting = value_postings_[h];
        if (posting.size() < options_.max_posting_length) {
          posting.push_back(static_cast<int>(i));
        }
      }
      for (size_t b = 0; b < band_buckets_.size(); ++b) {
        band_buckets_[b][BandHash(p.signature, static_cast<int>(b))].push_back(
            static_cast<int>(i));
      }
    }
    return;
  }

  // Tier 2 (LSH banding): each band owns an independent bucket map, so a
  // worker filling whole bands — scanning profiles in ascending index order
  // — writes exactly what the serial loop writes.
  size_t bands = band_buckets_.size();
  ParallelFor(pool, bands, bands, [&](size_t, size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      for (size_t i = first_new; i < ps.size(); ++i) {
        if (!eligible_[i]) continue;
        band_buckets_[b][BandHash(ps[i].signature, static_cast<int>(b))]
            .push_back(static_cast<int>(i));
      }
    }
  });

  // Tier 1 (value postings): contiguous profile chunks build local posting
  // maps; merging in chunk order with the cap applied at merge time keeps
  // each posting list equal to the first max_posting_length column indices
  // in ascending order — the serial result.
  size_t n = ps.size() - first_new;
  size_t num_chunks = std::max<size_t>(1, std::min(RecommendedChunks(pool), n));
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> local(num_chunks);
  ParallelFor(pool, n, num_chunks, [&](size_t c, size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      size_t i = first_new + k;
      if (!eligible_[i]) continue;
      for (uint64_t h : ps[i].distinct_hashes) {
        auto& posting = local[c][h];
        if (posting.size() < options_.max_posting_length) {
          posting.push_back(static_cast<int>(i));
        }
      }
    }
  });
  for (auto& chunk : local) {
    for (auto& [h, ids] : chunk) {
      auto& posting = value_postings_[h];
      for (int id : ids) {
        if (posting.size() >= options_.max_posting_length) break;
        posting.push_back(id);
      }
    }
  }
}

uint64_t SimilarityIndex::BandHash(const MinHashSignature& sig,
                                   int band) const {
  uint64_t h = Mix64(static_cast<uint64_t>(band) + 0xabcdef12345ULL);
  int start = band * rows_per_band_;
  int end = std::min<int>(start + rows_per_band_,
                          static_cast<int>(sig.slots.size()));
  for (int i = start; i < end; ++i) h = HashCombine(h, sig.slots[i]);
  return h;
}

std::vector<int> SimilarityIndex::Candidates(int profile_index) const {
  std::unordered_set<int> out;
  const ColumnProfile& p = (*profiles_)[profile_index];
  if (!eligible_[profile_index]) return {};
  for (uint64_t h : p.distinct_hashes) {
    auto it = value_postings_.find(h);
    if (it == value_postings_.end()) continue;
    for (int other : it->second) {
      if (other != profile_index) out.insert(other);
    }
  }
  for (size_t b = 0; b < band_buckets_.size(); ++b) {
    auto it = band_buckets_[b].find(BandHash(p.signature, static_cast<int>(b)));
    if (it == band_buckets_[b].end()) continue;
    for (int other : it->second) {
      if (other != profile_index) out.insert(other);
    }
  }
  std::vector<int> v(out.begin(), out.end());
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<Neighbor> SimilarityIndex::ContainmentNeighbors(
    int profile_index, double threshold) const {
  std::vector<Neighbor> out;
  const ColumnProfile& query = (*profiles_)[profile_index];
  for (int other : Candidates(profile_index)) {
    double c = ProfileContainment(query, (*profiles_)[other]);
    if (c >= threshold) out.push_back(Neighbor{other, c});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.profile_index < b.profile_index;
  });
  return out;
}

std::vector<Neighbor> SimilarityIndex::JaccardNeighbors(
    int profile_index, double threshold) const {
  std::vector<Neighbor> out;
  const ColumnProfile& query = (*profiles_)[profile_index];
  for (int other : Candidates(profile_index)) {
    double j = ProfileJaccard(query, (*profiles_)[other]);
    if (j >= threshold) out.push_back(Neighbor{other, j});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.profile_index < b.profile_index;
  });
  return out;
}

std::vector<std::pair<int, int>> SimilarityIndex::AllCandidatePairs() const {
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<int, int>> pairs;
  auto add_bucket = [&](const std::vector<int>& bucket) {
    for (size_t i = 0; i < bucket.size(); ++i) {
      for (size_t j = i + 1; j < bucket.size(); ++j) {
        int a = bucket[i], b = bucket[j];
        if (a > b) std::swap(a, b);
        uint64_t key = (static_cast<uint64_t>(a) << 32) |
                       static_cast<uint64_t>(static_cast<uint32_t>(b));
        if (seen.insert(key).second) pairs.emplace_back(a, b);
      }
    }
  };
  for (const auto& [_, bucket] : value_postings_) add_bucket(bucket);
  for (const auto& band : band_buckets_) {
    for (const auto& [_, bucket] : band) add_bucket(bucket);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace ver
