#include "discovery/similarity_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/bitset.h"
#include "util/hash.h"

namespace ver {

ptrdiff_t SimilarityIndex::FlatBuckets::find(uint64_t key) const {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return -1;
  return it - keys.begin();
}

size_t SimilarityIndex::FlatBuckets::posting_count(uint64_t key) const {
  if (keys.empty()) return 0;
  ptrdiff_t i = find(key);
  if (i < 0) return 0;
  auto [b, e] = bucket_range(static_cast<size_t>(i));
  return e - b;
}

void SimilarityIndex::FlatBuckets::SaveTo(SerdeWriter* w) const {
  w->WriteU64Array(keys.data(), keys.size());
  w->WriteU32Array(offsets.data(), offsets.size());
  w->WriteI32Array(postings.data(), postings.size());
}

Status SimilarityIndex::FlatBuckets::LoadFrom(SerdeReader* r,
                                              const PagerBinding* binding) {
  {
    const char* raw = nullptr;
    uint64_t n = 0;
    VER_RETURN_IF_ERROR(
        r->ReadArrayExtent(sizeof(uint64_t), "bucket keys", &raw, &n));
    keys.Adopt(binding, raw, n);
  }
  {
    const char* raw = nullptr;
    uint64_t n = 0;
    VER_RETURN_IF_ERROR(
        r->ReadArrayExtent(sizeof(uint32_t), "bucket offsets", &raw, &n));
    offsets.Adopt(binding, raw, n);
  }
  {
    const char* raw = nullptr;
    uint64_t n = 0;
    VER_RETURN_IF_ERROR(
        r->ReadArrayExtent(sizeof(int), "bucket postings", &raw, &n));
    postings.Adopt(binding, raw, n);
  }
  bool valid = keys.empty() ? offsets.empty()
                            : offsets.size() == keys.size() + 1 &&
                                  offsets.front() == 0 &&
                                  offsets.back() == postings.size();
  if (!valid) {
    return Status::IOError("corrupt similarity index: inconsistent offsets");
  }
  // Monotonicity scan only on resident loads — paged loads defer to the
  // bucket_range() guard so the offset array isn't faulted in eagerly.
  if (binding != nullptr && binding->pool != nullptr) return Status::OK();
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IOError("corrupt similarity index: inconsistent offsets");
    }
  }
  return Status::OK();
}

void SimilarityIndex::SetupBands() {
  const auto& ps = *profiles_;
  int permutations =
      ps.empty() ? 128 : ps.front().signature.num_permutations();
  int bands = std::max(1, std::min(options_.lsh_bands, permutations));
  rows_per_band_ = std::max(1, permutations / bands);
  band_buckets_.resize(bands);
  flat_band_buckets_.resize(bands);
}

void SimilarityIndex::Build(const std::vector<ColumnProfile>* profiles,
                            const SimilarityOptions& options,
                            ThreadPool* pool) {
  std::vector<int> all(profiles->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  BuildMembers(profiles, all, options, pool);
}

void SimilarityIndex::BuildMembers(const std::vector<ColumnProfile>* profiles,
                                   const std::vector<int>& member_ids,
                                   const SimilarityOptions& options,
                                   ThreadPool* pool) {
  profiles_ = profiles;
  options_ = options;
  value_postings_.clear();
  band_buckets_.clear();
  flat_value_postings_ = FlatBuckets();
  flat_band_buckets_.clear();
  eligible_.clear();
  SetupBands();
  InsertProfiles(member_ids, pool);
}

void SimilarityIndex::AddProfiles(size_t first_new, ThreadPool* pool) {
  std::vector<int> ids;
  ids.reserve(profiles_->size() - std::min(first_new, profiles_->size()));
  for (size_t i = first_new; i < profiles_->size(); ++i) {
    ids.push_back(static_cast<int>(i));
  }
  InsertProfiles(ids, pool);
}

void SimilarityIndex::InsertProfiles(const std::vector<int>& ids,
                                     ThreadPool* pool) {
  const auto& ps = *profiles_;
  // Eligibility spans the *whole* profile vector, members and non-members
  // alike: it is a pure function of per-column stats, and covering every
  // column lets any global profile probe this shard's buckets and lets the
  // snapshot section keep its "one flag per profile" invariant.
  eligible_.resize(ps.size(), false);
  for (size_t i = 0; i < ps.size(); ++i) {
    eligible_[i] = ps[i].stats.num_distinct >= options_.min_distinct;
  }
  if (ids.empty()) return;
  // The posting cap spans both stores: a hash whose flat (snapshot-loaded)
  // posting list already holds N entries accepts only max_posting_length-N
  // more into the overlay map.
  auto posting_budget = [this](uint64_t h, size_t overlay_size) {
    return flat_value_postings_.posting_count(h) + overlay_size <
           options_.max_posting_length;
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int id : ids) {
      if (!eligible_[static_cast<size_t>(id)]) continue;
      const ColumnProfile& p = ps[static_cast<size_t>(id)];
      for (uint64_t h : p.distinct_hashes) {
        auto& posting = value_postings_[h];
        if (posting_budget(h, posting.size())) {
          posting.push_back(id);
        }
      }
      for (size_t b = 0; b < band_buckets_.size(); ++b) {
        band_buckets_[b][BandHash(p.signature, static_cast<int>(b))].push_back(
            id);
      }
    }
    return;
  }

  // Tier 2 (LSH banding): each band owns an independent bucket map, so a
  // worker filling whole bands — scanning members in ascending index order
  // — writes exactly what the serial loop writes.
  size_t bands = band_buckets_.size();
  ParallelFor(pool, bands, bands, [&](size_t, size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      for (int id : ids) {
        if (!eligible_[static_cast<size_t>(id)]) continue;
        band_buckets_[b][BandHash(ps[static_cast<size_t>(id)].signature,
                                  static_cast<int>(b))]
            .push_back(id);
      }
    }
  });

  // Tier 1 (value postings): contiguous member chunks build local posting
  // maps; merging in chunk order with the cap applied at merge time keeps
  // each posting list equal to the first max_posting_length member indices
  // in ascending order — the serial result. Chunk boundaries depend only
  // on ids.size(), never the pool.
  size_t n = ids.size();
  size_t num_chunks = std::max<size_t>(1, std::min(RecommendedChunks(pool), n));
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> local(num_chunks);
  ParallelFor(pool, n, num_chunks, [&](size_t c, size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      int id = ids[k];
      if (!eligible_[static_cast<size_t>(id)]) continue;
      for (uint64_t h : ps[static_cast<size_t>(id)].distinct_hashes) {
        auto& posting = local[c][h];
        if (posting.size() < options_.max_posting_length) {
          posting.push_back(id);
        }
      }
    }
  });
  for (auto& chunk : local) {
    for (auto& [h, chunk_ids] : chunk) {
      auto& posting = value_postings_[h];
      for (int id : chunk_ids) {
        if (!posting_budget(h, posting.size())) break;
        posting.push_back(id);
      }
    }
  }
}

uint64_t SimilarityIndex::BandHash(const MinHashSignature& sig,
                                   int band) const {
  uint64_t h = Mix64(static_cast<uint64_t>(band) + 0xabcdef12345ULL);
  int start = band * rows_per_band_;
  int end = std::min<int>(start + rows_per_band_,
                          static_cast<int>(sig.slots.size()));
  for (int i = start; i < end; ++i) h = HashCombine(h, sig.slots[i]);
  return h;
}

std::vector<int> SimilarityIndex::Candidates(int profile_index) const {
  return Candidates(*profiles_, profile_index);
}

std::vector<int> SimilarityIndex::Candidates(
    const std::vector<ColumnProfile>& profiles, int profile_index) const {
  const ColumnProfile& p = profiles[static_cast<size_t>(profile_index)];
  // The gate is recomputed from the caller's profile, not read from
  // eligible_: the stored bits describe the vector this index was built
  // against, which after a per-shard hot swap is not necessarily the one
  // the caller is serving. Same formula, so for the build-time vector the
  // answer is identical.
  if (p.stats.num_distinct < options_.min_distinct) return {};
  // Union the posting lists into a packed bitset over the profile universe
  // — word-level set bits instead of unordered_set nodes — then drain it
  // ascending: the same sorted candidate list as the set + sort this
  // replaces, with no per-candidate allocation or rehash.
  PackedBitset out(profiles.size());
  const size_t num_profiles = profiles.size();
  auto collect_flat = [&out, profile_index, num_profiles](
                          const FlatBuckets& flat, uint64_t key) {
    if (flat.keys.empty()) return;
    ptrdiff_t i = flat.find(key);
    if (i < 0) return;
    auto [pb, pe] = flat.bucket_range(static_cast<size_t>(i));
    for (uint32_t o = pb; o < pe; ++o) {
      int p = flat.postings[o];
      // Range guard replaces the load-time posting scan for paged stores:
      // a corrupt posting is dropped instead of indexing out of bounds.
      if (p != profile_index && p >= 0 && static_cast<size_t>(p) < num_profiles) {
        out.set(static_cast<size_t>(p));
      }
    }
  };
  for (uint64_t h : p.distinct_hashes) {
    collect_flat(flat_value_postings_, h);
    auto it = value_postings_.find(h);
    if (it == value_postings_.end()) continue;
    for (int other : it->second) {
      if (other != profile_index) out.set(static_cast<size_t>(other));
    }
  }
  for (size_t b = 0; b < band_buckets_.size(); ++b) {
    uint64_t key = BandHash(p.signature, static_cast<int>(b));
    if (b < flat_band_buckets_.size()) {
      collect_flat(flat_band_buckets_[b], key);
    }
    auto it = band_buckets_[b].find(key);
    if (it == band_buckets_[b].end()) continue;
    for (int other : it->second) {
      if (other != profile_index) out.set(static_cast<size_t>(other));
    }
  }
  std::vector<int> v;
  v.reserve(out.Popcount());
  out.ForEachSetBit(
      [&v](size_t bit) { v.push_back(static_cast<int>(bit)); });
  return v;
}

std::vector<Neighbor> SimilarityIndex::ContainmentNeighbors(
    int profile_index, double threshold) const {
  return ContainmentNeighbors(*profiles_, profile_index, threshold);
}

std::vector<Neighbor> SimilarityIndex::ContainmentNeighbors(
    const std::vector<ColumnProfile>& profiles, int profile_index,
    double threshold) const {
  std::vector<Neighbor> out;
  const ColumnProfile& query = profiles[static_cast<size_t>(profile_index)];
  for (int other : Candidates(profiles, profile_index)) {
    double c = ProfileContainment(query, profiles[static_cast<size_t>(other)]);
    if (c >= threshold) out.push_back(Neighbor{other, c});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.profile_index < b.profile_index;
  });
  return out;
}

std::vector<Neighbor> SimilarityIndex::JaccardNeighbors(
    int profile_index, double threshold) const {
  return JaccardNeighbors(*profiles_, profile_index, threshold);
}

std::vector<Neighbor> SimilarityIndex::JaccardNeighbors(
    const std::vector<ColumnProfile>& profiles, int profile_index,
    double threshold) const {
  std::vector<Neighbor> out;
  const ColumnProfile& query = profiles[static_cast<size_t>(profile_index)];
  for (int other : Candidates(profiles, profile_index)) {
    double j = ProfileJaccard(query, profiles[static_cast<size_t>(other)]);
    if (j >= threshold) out.push_back(Neighbor{other, j});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.profile_index < b.profile_index;
  });
  return out;
}

std::vector<std::pair<int, int>> SimilarityIndex::AllCandidatePairs() const {
  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<int, int>> pairs;
  auto add_bucket = [&](const std::vector<int>& bucket) {
    for (size_t i = 0; i < bucket.size(); ++i) {
      for (size_t j = i + 1; j < bucket.size(); ++j) {
        int a = bucket[i], b = bucket[j];
        if (a > b) std::swap(a, b);
        uint64_t key = (static_cast<uint64_t>(a) << 32) |
                       static_cast<uint64_t>(static_cast<uint32_t>(b));
        if (seen.insert(key).second) pairs.emplace_back(a, b);
      }
    }
  };
  // A key may live in both stores (flat base + overlay growth); its
  // logical bucket is the concatenation.
  auto add_store_pair =
      [&](const FlatBuckets& flat,
          const std::unordered_map<uint64_t, std::vector<int>>& map) {
        std::vector<int> combined;
        for (size_t i = 0; i < flat.num_keys(); ++i) {
          auto [pb, pe] = flat.bucket_range(i);
          combined.assign(flat.postings.begin() + pb,
                          flat.postings.begin() + pe);
          auto it = map.find(flat.keys[i]);
          if (it != map.end()) {
            combined.insert(combined.end(), it->second.begin(),
                            it->second.end());
          }
          add_bucket(combined);
        }
        for (const auto& [key, bucket] : map) {
          if (!flat.keys.empty() && flat.find(key) >= 0) continue;  // merged
          add_bucket(bucket);
        }
      };
  add_store_pair(flat_value_postings_, value_postings_);
  for (size_t b = 0; b < band_buckets_.size(); ++b) {
    static const FlatBuckets kEmpty;
    add_store_pair(
        b < flat_band_buckets_.size() ? flat_band_buckets_[b] : kEmpty,
        band_buckets_[b]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// SaveTo merges the flat store and the overlay map into one sorted flat
// store; for a key in both, flat postings (older, lower profile indices)
// come first — the insertion order of a from-scratch build.
Status SimilarityIndex::SaveTo(SerdeWriter* w) const {
  auto save_merged =
      [w](const FlatBuckets& flat,
          const std::unordered_map<uint64_t, std::vector<int>>& map)
      -> Status {
        std::vector<uint64_t> map_keys;
        map_keys.reserve(map.size());
        for (const auto& [key, bucket] : map) {
          (void)bucket;
          map_keys.push_back(key);
        }
        std::sort(map_keys.begin(), map_keys.end());
        FlatBuckets out;
        out.offsets.mut().push_back(0);
        size_t fi = 0, mi = 0;
        auto append_flat = [&](size_t i) {
          auto [pb, pe] = flat.bucket_range(i);
          out.postings.mut().insert(out.postings.mut().end(),
                                    flat.postings.begin() + pb,
                                    flat.postings.begin() + pe);
        };
        auto append_map = [&](uint64_t key) {
          const std::vector<int>& bucket = map.at(key);
          out.postings.mut().insert(out.postings.mut().end(), bucket.begin(),
                                    bucket.end());
        };
        while (fi < flat.num_keys() || mi < map_keys.size()) {
          if (mi >= map_keys.size() ||
              (fi < flat.num_keys() && flat.keys[fi] < map_keys[mi])) {
            out.keys.mut().push_back(flat.keys[fi]);
            append_flat(fi++);
          } else if (fi >= flat.num_keys() || map_keys[mi] < flat.keys[fi]) {
            out.keys.mut().push_back(map_keys[mi]);
            append_map(map_keys[mi++]);
          } else {  // both stores: flat (older profiles) first
            out.keys.mut().push_back(flat.keys[fi]);
            append_flat(fi++);
            append_map(map_keys[mi++]);
          }
          if (out.postings.size() > UINT32_MAX) {
            return Status::OutOfRange(
                "similarity index exceeds the snapshot format's u32 offset "
                "range; cannot save");
          }
          out.offsets.mut().push_back(
              static_cast<uint32_t>(out.postings.size()));
        }
        out.SaveTo(w);
        return Status::OK();
      };

  // Options are NOT written here: they live once in the engine's options
  // section (the single source of truth) and are passed back to LoadFrom.
  w->WriteI32(rows_per_band_);
  w->WriteU64(eligible_.size());
  for (bool e : eligible_) w->WriteBool(e);
  VER_RETURN_IF_ERROR(save_merged(flat_value_postings_, value_postings_));
  w->WriteU64(band_buckets_.size());
  static const FlatBuckets kEmpty;
  for (size_t b = 0; b < band_buckets_.size(); ++b) {
    VER_RETURN_IF_ERROR(save_merged(
        b < flat_band_buckets_.size() ? flat_band_buckets_[b] : kEmpty,
        band_buckets_[b]));
  }
  return Status::OK();
}

Status SimilarityIndex::LoadFrom(SerdeReader* r,
                                 const std::vector<ColumnProfile>* profiles,
                                 const SimilarityOptions& options,
                                 const PagerBinding* binding) {
  int rows_per_band;
  VER_RETURN_IF_ERROR(r->ReadI32(&rows_per_band));
  uint64_t num_eligible;
  VER_RETURN_IF_ERROR(r->ReadU64(&num_eligible));
  if (num_eligible != profiles->size()) {
    return Status::InvalidArgument(
        "snapshot similarity index covers " + std::to_string(num_eligible) +
        " columns but the profile section has " +
        std::to_string(profiles->size()));
  }
  std::vector<bool> eligible(static_cast<size_t>(num_eligible));
  for (uint64_t i = 0; i < num_eligible; ++i) {
    bool e;
    VER_RETURN_IF_ERROR(r->ReadBool(&e));
    eligible[i] = e;
  }
  // Posting values index the profile vector; a checksum-valid but crafted
  // or stale file must not smuggle in out-of-range indices that queries
  // would dereference.
  auto postings_in_range = [profiles](const FlatBuckets& flat) {
    for (int p : flat.postings) {
      if (p < 0 || static_cast<size_t>(p) >= profiles->size()) return false;
    }
    return true;
  };
  FlatBuckets values;
  VER_RETURN_IF_ERROR(values.LoadFrom(r, binding));
  uint64_t num_bands;
  VER_RETURN_IF_ERROR(r->ReadU64(&num_bands));
  // An empty serialized FlatBuckets is 24 bytes (three vector lengths);
  // guard the band count before sizing the vector.
  VER_RETURN_IF_ERROR(r->CheckCount(num_bands, 24, "band count"));
  std::vector<FlatBuckets> bands(static_cast<size_t>(num_bands));
  for (auto& band : bands) VER_RETURN_IF_ERROR(band.LoadFrom(r, binding));
  // Paged loads skip the O(postings) scan — it would fault in every
  // posting page, defeating the lazy cold start. Candidates() range-guards
  // each posting it reads instead.
  const bool deep_validate = binding == nullptr || binding->pool == nullptr;
  if (deep_validate) {
    if (!postings_in_range(values)) {
      return Status::IOError(
          "corrupt similarity index: posting out of profile range");
    }
    for (const auto& band : bands) {
      if (!postings_in_range(band)) {
        return Status::IOError(
            "corrupt similarity index: band posting out of profile range");
      }
    }
  }

  profiles_ = profiles;
  options_ = options;
  rows_per_band_ = rows_per_band;
  eligible_ = std::move(eligible);
  flat_value_postings_ = std::move(values);
  flat_band_buckets_ = std::move(bands);
  value_postings_.clear();
  band_buckets_.assign(flat_band_buckets_.size(), {});
  return Status::OK();
}

}  // namespace ver
