#include "discovery/join_path_index.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace ver {

namespace {

const std::vector<JoinEdge> kNoEdges;

std::pair<int32_t, int32_t> TableKey(int32_t a, int32_t b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

bool JoinPathIndex::ScoreEdge(const ColumnProfile& a, const ColumnProfile& b,
                              JoinEdge* edge) const {
  if (a.ref.table_id == b.ref.table_id) return false;  // self-joins out of scope
  if (a.stats.num_distinct < options_.min_distinct ||
      b.stats.num_distinct < options_.min_distinct) {
    return false;
  }
  // Join keys must be type-compatible: strings join strings, numbers join
  // numbers (int/double interchangeable).
  bool a_str = a.stats.dominant_type == ValueType::kString;
  bool b_str = b.stats.dominant_type == ValueType::kString;
  if (a_str != b_str) return false;

  double c_ab = ProfileContainment(a, b);
  double c_ba = ProfileContainment(b, a);
  double containment = std::max(c_ab, c_ba);
  if (containment < options_.containment_threshold) return false;

  edge->left = a.ref;
  edge->right = b.ref;
  edge->containment = containment;
  edge->key_quality = std::max(a.stats.uniqueness(), b.stats.uniqueness());
  return true;
}

void JoinPathIndex::MaybeAddEdge(const ColumnProfile& a,
                                 const ColumnProfile& b) {
  JoinEdge edge;
  if (!ScoreEdge(a, b, &edge)) return;
  pair_edges_[TableKey(a.ref.table_id, b.ref.table_id)].push_back(edge);
  ++num_joinable_column_pairs_;
}

void JoinPathIndex::RebuildAdjacency() {
  adjacency_.clear();
  for (const auto& [key, edges] : pair_edges_) {
    (void)edges;
    adjacency_[key.first].push_back(key.second);
    adjacency_[key.second].push_back(key.first);
  }
  for (auto& [table, neighbors] : adjacency_) {
    (void)table;
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
}

void JoinPathIndex::Build(const std::vector<ColumnProfile>* profiles,
                          const SimilarityIndex& similarity,
                          const JoinPathOptions& options, ThreadPool* pool) {
  options_ = options;
  pair_edges_.clear();
  adjacency_.clear();
  num_joinable_column_pairs_ = 0;

  const auto& ps = *profiles;
  std::vector<std::pair<int, int>> pairs = similarity.AllCandidatePairs();
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (auto [i, j] : pairs) MaybeAddEdge(ps[i], ps[j]);
    RebuildAdjacency();
    return;
  }
  // Candidate scoring (the containment computations) dominates Build; shard
  // the sorted pair list into contiguous chunks scored on workers. Each
  // chunk emits edges in pair order, and chunks merge in chunk order, so
  // pair_edges_ content and per-key edge order match the serial pass.
  size_t num_chunks =
      std::max<size_t>(1, std::min(RecommendedChunks(pool), pairs.size()));
  std::vector<std::vector<JoinEdge>> local(num_chunks);
  ParallelFor(pool, pairs.size(), num_chunks,
              [&](size_t c, size_t lo, size_t hi) {
                for (size_t k = lo; k < hi; ++k) {
                  JoinEdge edge;
                  if (ScoreEdge(ps[pairs[k].first], ps[pairs[k].second],
                                &edge)) {
                    local[c].push_back(edge);
                  }
                }
              });
  for (const std::vector<JoinEdge>& chunk : local) {
    for (const JoinEdge& edge : chunk) {
      pair_edges_[TableKey(edge.left.table_id, edge.right.table_id)].push_back(
          edge);
      ++num_joinable_column_pairs_;
    }
  }
  RebuildAdjacency();
}

void JoinPathIndex::AddColumns(const std::vector<ColumnProfile>* profiles,
                               const SimilarityIndex& similarity,
                               size_t first_new) {
  const auto& ps = *profiles;
  for (size_t i = first_new; i < ps.size(); ++i) {
    for (int j : similarity.Candidates(static_cast<int>(i))) {
      // Pairs among the new columns appear from both endpoints; keep the
      // j < i orientation so each pair is evaluated exactly once.
      if (static_cast<size_t>(j) >= first_new &&
          static_cast<size_t>(j) >= i) {
        continue;
      }
      MaybeAddEdge(ps[i], ps[static_cast<size_t>(j)]);
    }
  }
  RebuildAdjacency();
}

void JoinPathIndex::SaveTo(SerdeWriter* w) const {
  // Options are NOT written here: they live once in the engine's options
  // section (the single source of truth) and are passed back to LoadFrom.
  w->WriteI64(num_joinable_column_pairs_);
  w->WriteU64(pair_edges_.size());
  for (const auto& [key, edges] : pair_edges_) {
    w->WriteI32(key.first);
    w->WriteI32(key.second);
    w->WriteU64(edges.size());
    for (const JoinEdge& e : edges) {
      w->WriteI32(e.left.table_id);
      w->WriteI32(e.left.column_index);
      w->WriteI32(e.right.table_id);
      w->WriteI32(e.right.column_index);
      w->WriteDouble(e.containment);
      w->WriteDouble(e.key_quality);
    }
  }
}

Status JoinPathIndex::LoadFrom(SerdeReader* r, const TableRepository& repo,
                               const JoinPathOptions& options) {
  auto valid_ref = [&repo](const ColumnRef& ref) {
    return ref.table_id >= 0 && ref.table_id < repo.num_tables() &&
           ref.column_index >= 0 &&
           ref.column_index < repo.table(ref.table_id).num_columns();
  };
  int64_t num_pairs;
  VER_RETURN_IF_ERROR(r->ReadI64(&num_pairs));
  uint64_t num_table_pairs;
  VER_RETURN_IF_ERROR(r->ReadU64(&num_table_pairs));
  std::map<std::pair<int32_t, int32_t>, std::vector<JoinEdge>> edges_by_pair;
  for (uint64_t p = 0; p < num_table_pairs; ++p) {
    std::pair<int32_t, int32_t> key;
    VER_RETURN_IF_ERROR(r->ReadI32(&key.first));
    VER_RETURN_IF_ERROR(r->ReadI32(&key.second));
    uint64_t num_edges;
    VER_RETURN_IF_ERROR(r->ReadU64(&num_edges));
    // A serialized edge is 32 bytes; guard before reserving.
    VER_RETURN_IF_ERROR(r->CheckCount(num_edges, 32, "edge count"));
    std::vector<JoinEdge> edges;
    edges.reserve(static_cast<size_t>(num_edges));
    for (uint64_t e = 0; e < num_edges; ++e) {
      JoinEdge edge;
      VER_RETURN_IF_ERROR(r->ReadI32(&edge.left.table_id));
      VER_RETURN_IF_ERROR(r->ReadI32(&edge.left.column_index));
      VER_RETURN_IF_ERROR(r->ReadI32(&edge.right.table_id));
      VER_RETURN_IF_ERROR(r->ReadI32(&edge.right.column_index));
      VER_RETURN_IF_ERROR(r->ReadDouble(&edge.containment));
      VER_RETURN_IF_ERROR(r->ReadDouble(&edge.key_quality));
      // Edges feed the materializer, which dereferences both endpoints
      // against the repository — reject out-of-range addresses here.
      if (!valid_ref(edge.left) || !valid_ref(edge.right)) {
        return Status::IOError(
            "corrupt join path index: edge addresses nonexistent column " +
            edge.left.ToString() + " / " + edge.right.ToString());
      }
      edges.push_back(edge);
    }
    edges_by_pair[key] = std::move(edges);
  }
  options_ = options;
  num_joinable_column_pairs_ = num_pairs;
  pair_edges_ = std::move(edges_by_pair);
  RebuildAdjacency();
  return Status::OK();
}

const std::vector<JoinEdge>& JoinPathIndex::EdgesBetween(
    int32_t table_a, int32_t table_b) const {
  auto it = pair_edges_.find(TableKey(table_a, table_b));
  return it == pair_edges_.end() ? kNoEdges : it->second;
}

std::vector<int32_t> JoinPathIndex::AdjacentTables(int32_t table) const {
  auto it = adjacency_.find(table);
  return it == adjacency_.end() ? std::vector<int32_t>{} : it->second;
}

std::vector<std::vector<int32_t>> JoinPathIndex::TablePaths(
    int32_t from, int32_t to, int max_hops) const {
  std::vector<std::vector<int32_t>> paths;
  std::vector<int32_t> current{from};
  std::unordered_set<int32_t> on_path{from};

  // Depth-first enumeration of simple paths with at most max_hops edges.
  std::function<void(int32_t, int)> dfs = [&](int32_t node, int hops_left) {
    if (node == to) {
      paths.push_back(current);
      return;
    }
    if (hops_left == 0) return;
    auto it = adjacency_.find(node);
    if (it == adjacency_.end()) return;
    for (int32_t next : it->second) {
      if (on_path.count(next)) continue;
      current.push_back(next);
      on_path.insert(next);
      dfs(next, hops_left - 1);
      on_path.erase(next);
      current.pop_back();
    }
  };
  if (from == to) {
    paths.push_back(current);
    return paths;
  }
  dfs(from, max_hops);
  return paths;
}

void JoinPathIndex::ExpandPath(const std::vector<int32_t>& path,
                               std::vector<JoinGraph>* out) const {
  if (path.size() < 2) return;
  // Cartesian product of column-pair choices along the path, capped.
  std::vector<JoinGraph> partial{JoinGraph{}};
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const std::vector<JoinEdge>& choices = EdgesBetween(path[i], path[i + 1]);
    if (choices.empty()) return;  // path not realizable
    std::vector<JoinGraph> next;
    for (const JoinGraph& g : partial) {
      for (const JoinEdge& e : choices) {
        if (static_cast<int>(next.size()) >= options_.max_graphs_per_path) {
          break;
        }
        JoinGraph g2 = g;
        g2.edges.push_back(e);
        next.push_back(std::move(g2));
      }
    }
    partial = std::move(next);
  }
  for (JoinGraph& g : partial) out->push_back(std::move(g));
}

std::vector<JoinGraph> JoinPathIndex::GenerateJoinGraphs(
    const std::vector<int32_t>& tables, int max_hops) const {
  std::vector<int32_t> unique_tables = tables;
  std::sort(unique_tables.begin(), unique_tables.end());
  unique_tables.erase(
      std::unique(unique_tables.begin(), unique_tables.end()),
      unique_tables.end());

  std::vector<JoinGraph> graphs;
  if (unique_tables.empty()) return graphs;
  if (unique_tables.size() == 1) {
    JoinGraph g;
    NormalizeJoinGraph(&g, unique_tables);
    graphs.push_back(std::move(g));
    return graphs;
  }

  // Pairwise paths composed along a spanning chain t0-t1, t1-t2, ...
  // For tau = 2 (the common QBE case) this is exact path enumeration; for
  // tau > 2 it is a spanning-tree approximation of Steiner enumeration.
  std::vector<JoinGraph> partial{JoinGraph{}};
  for (size_t i = 0; i + 1 < unique_tables.size(); ++i) {
    std::vector<std::vector<int32_t>> paths =
        TablePaths(unique_tables[i], unique_tables[i + 1], max_hops);
    if (paths.empty()) return {};  // pair not connectable within rho
    std::vector<JoinGraph> segment_graphs;
    for (const auto& path : paths) {
      ExpandPath(path, &segment_graphs);
      if (static_cast<int>(segment_graphs.size()) >=
          options_.max_total_graphs) {
        break;
      }
    }
    std::vector<JoinGraph> next;
    for (const JoinGraph& g : partial) {
      for (const JoinGraph& seg : segment_graphs) {
        if (static_cast<int>(next.size()) >= options_.max_total_graphs) break;
        JoinGraph g2 = g;
        g2.edges.insert(g2.edges.end(), seg.edges.begin(), seg.edges.end());
        next.push_back(std::move(g2));
      }
    }
    partial = std::move(next);
  }

  // Normalize, dedupe by signature, sort by score.
  std::unordered_set<std::string> seen;
  for (JoinGraph& g : partial) {
    // Drop duplicate edges introduced by composing overlapping segments.
    std::sort(g.edges.begin(), g.edges.end(),
              [](const JoinEdge& a, const JoinEdge& b) {
                return a.CanonicalEncoding() < b.CanonicalEncoding();
              });
    g.edges.erase(std::unique(g.edges.begin(), g.edges.end(),
                              [](const JoinEdge& a, const JoinEdge& b) {
                                return a.CanonicalEncoding() ==
                                       b.CanonicalEncoding();
                              }),
                  g.edges.end());
    NormalizeJoinGraph(&g, unique_tables);
    if (seen.insert(g.Signature()).second) {
      graphs.push_back(std::move(g));
    }
  }
  std::sort(graphs.begin(), graphs.end(),
            [](const JoinGraph& a, const JoinGraph& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.Signature() < b.Signature();
            });
  return graphs;
}

}  // namespace ver
