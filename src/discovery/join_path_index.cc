#include "discovery/join_path_index.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "util/check.h"

namespace ver {

namespace {

std::pair<int32_t, int32_t> TableKey(int32_t a, int32_t b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

uint64_t PairKey(const std::pair<int32_t, int32_t>& key) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(key.first)) << 32) |
         static_cast<uint32_t>(key.second);
}

ColumnRef DecodeRef(uint64_t encoded) {
  ColumnRef ref;
  ref.table_id = static_cast<int32_t>(encoded >> 32);
  ref.column_index = static_cast<int32_t>(encoded & 0xffffffffULL);
  return ref;
}

}  // namespace

ptrdiff_t JoinPathIndex::FlatEdges::find(uint64_t key) const {
  const uint64_t* it = std::lower_bound(pair_keys.begin(), pair_keys.end(), key);
  if (it == pair_keys.end() || *it != key) return -1;
  return it - pair_keys.begin();
}

void JoinPathIndex::FlatEdges::SaveTo(SerdeWriter* w) const {
  w->WriteU64Array(pair_keys.data(), pair_keys.size());
  w->WriteU32Array(offsets.data(), offsets.size());
  w->WriteU64Array(left.data(), left.size());
  w->WriteU64Array(right.data(), right.size());
  w->WriteDoubleArray(containment.data(), containment.size());
  w->WriteDoubleArray(key_quality.data(), key_quality.size());
}

Status JoinPathIndex::FlatEdges::LoadFrom(SerdeReader* r,
                                          const PagerBinding* binding) {
  const char* raw = nullptr;
  uint64_t n = 0;
  VER_RETURN_IF_ERROR(r->ReadArrayExtent(sizeof(uint64_t), "pair keys", &raw, &n));
  pair_keys.Adopt(binding, raw, n);
  VER_RETURN_IF_ERROR(
      r->ReadArrayExtent(sizeof(uint32_t), "edge offsets", &raw, &n));
  offsets.Adopt(binding, raw, n);
  VER_RETURN_IF_ERROR(r->ReadArrayExtent(sizeof(uint64_t), "left refs", &raw, &n));
  left.Adopt(binding, raw, n);
  VER_RETURN_IF_ERROR(
      r->ReadArrayExtent(sizeof(uint64_t), "right refs", &raw, &n));
  right.Adopt(binding, raw, n);
  VER_RETURN_IF_ERROR(
      r->ReadArrayExtent(sizeof(double), "edge containment", &raw, &n));
  containment.Adopt(binding, raw, n);
  VER_RETURN_IF_ERROR(
      r->ReadArrayExtent(sizeof(double), "edge key quality", &raw, &n));
  key_quality.Adopt(binding, raw, n);

  // O(1) structural consistency — cheap enough to keep even under paging
  // (touches only the first/last offset pages).
  if (offsets.size() != pair_keys.size() + 1 || offsets[0] != 0 ||
      offsets[offsets.size() - 1] != left.size() ||
      right.size() != left.size() || containment.size() != left.size() ||
      key_quality.size() != left.size()) {
    return Status::IOError("corrupt join path index: array sizes disagree");
  }
  if (binding != nullptr && binding->pool != nullptr) return Status::OK();
  // Resident loads vet the whole layout up front; paged loads defer to
  // edge_range() / EdgesBetween()'s per-record guards.
  for (size_t i = 0; i < num_pairs(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::IOError("corrupt join path index: offsets not monotonic");
    }
    if (i + 1 < num_pairs() && pair_keys[i] >= pair_keys[i + 1]) {
      return Status::IOError("corrupt join path index: pair keys not sorted");
    }
  }
  return Status::OK();
}

bool JoinPathIndex::ScoreEdge(const ColumnProfile& a, const ColumnProfile& b,
                              JoinEdge* edge) const {
  if (a.ref.table_id == b.ref.table_id) return false;  // self-joins out of scope
  if (a.stats.num_distinct < options_.min_distinct ||
      b.stats.num_distinct < options_.min_distinct) {
    return false;
  }
  // Join keys must be type-compatible: strings join strings, numbers join
  // numbers (int/double interchangeable).
  bool a_str = a.stats.dominant_type == ValueType::kString;
  bool b_str = b.stats.dominant_type == ValueType::kString;
  if (a_str != b_str) return false;

  double c_ab = ProfileContainment(a, b);
  double c_ba = ProfileContainment(b, a);
  double containment = std::max(c_ab, c_ba);
  if (containment < options_.containment_threshold) return false;

  edge->left = a.ref;
  edge->right = b.ref;
  edge->containment = containment;
  edge->key_quality = std::max(a.stats.uniqueness(), b.stats.uniqueness());
  return true;
}

void JoinPathIndex::MaybeAddEdge(const ColumnProfile& a,
                                 const ColumnProfile& b) {
  JoinEdge edge;
  if (!ScoreEdge(a, b, &edge)) return;
  pair_edges_[TableKey(a.ref.table_id, b.ref.table_id)].push_back(edge);
  ++num_joinable_column_pairs_;
}

void JoinPathIndex::RebuildAdjacency() {
  adjacency_.clear();
  auto add = [this](int32_t a, int32_t b) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  };
  // The flat key array is tiny relative to the edge arrays, so walking it
  // here faults in only the key pages under a paged load.
  for (size_t i = 0; i < flat_edges_.num_pairs(); ++i) {
    uint64_t k = flat_edges_.pair_keys[i];
    add(static_cast<int32_t>(k >> 32),
        static_cast<int32_t>(k & 0xffffffffULL));
  }
  for (const auto& [key, edges] : pair_edges_) {
    (void)edges;
    add(key.first, key.second);
  }
  for (auto& [table, neighbors] : adjacency_) {
    (void)table;
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
}

void JoinPathIndex::Build(const std::vector<ColumnProfile>* profiles,
                          const SimilarityIndex& similarity,
                          const JoinPathOptions& options, ThreadPool* pool) {
  Build(profiles, similarity.AllCandidatePairs(), options, pool);
}

void JoinPathIndex::Build(const std::vector<ColumnProfile>* profiles,
                          const std::vector<std::pair<int, int>>& pairs,
                          const JoinPathOptions& options, ThreadPool* pool) {
  options_ = options;
  pair_edges_.clear();
  flat_edges_ = FlatEdges{};
  table_num_columns_.clear();
  adjacency_.clear();
  num_joinable_column_pairs_ = 0;

  const auto& ps = *profiles;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (auto [i, j] : pairs) MaybeAddEdge(ps[i], ps[j]);
    RebuildAdjacency();
    return;
  }
  // Candidate scoring (the containment computations) dominates Build; shard
  // the sorted pair list into contiguous chunks scored on workers. Each
  // chunk emits edges in pair order, and chunks merge in chunk order, so
  // pair_edges_ content and per-key edge order match the serial pass.
  size_t num_chunks =
      std::max<size_t>(1, std::min(RecommendedChunks(pool), pairs.size()));
  std::vector<std::vector<JoinEdge>> local(num_chunks);
  ParallelFor(pool, pairs.size(), num_chunks,
              [&](size_t c, size_t lo, size_t hi) {
                for (size_t k = lo; k < hi; ++k) {
                  JoinEdge edge;
                  if (ScoreEdge(ps[pairs[k].first], ps[pairs[k].second],
                                &edge)) {
                    local[c].push_back(edge);
                  }
                }
              });
  for (const std::vector<JoinEdge>& chunk : local) {
    for (const JoinEdge& edge : chunk) {
      pair_edges_[TableKey(edge.left.table_id, edge.right.table_id)].push_back(
          edge);
      ++num_joinable_column_pairs_;
    }
  }
  RebuildAdjacency();
}

void JoinPathIndex::AddColumns(const std::vector<ColumnProfile>* profiles,
                               const SimilarityIndex& similarity,
                               size_t first_new) {
  const auto& ps = *profiles;
  for (size_t i = first_new; i < ps.size(); ++i) {
    for (int j : similarity.Candidates(static_cast<int>(i))) {
      // Pairs among the new columns appear from both endpoints; keep the
      // j < i orientation so each pair is evaluated exactly once.
      if (static_cast<size_t>(j) >= first_new &&
          static_cast<size_t>(j) >= i) {
        continue;
      }
      MaybeAddEdge(ps[i], ps[static_cast<size_t>(j)]);
    }
  }
  RebuildAdjacency();
}

void JoinPathIndex::AddColumnPairs(
    const std::vector<ColumnProfile>* profiles,
    const std::vector<std::pair<int, int>>& pairs) {
  const auto& ps = *profiles;
  for (auto [i, j] : pairs) {
    MaybeAddEdge(ps[static_cast<size_t>(i)], ps[static_cast<size_t>(j)]);
  }
  RebuildAdjacency();
}

void JoinPathIndex::SaveTo(SerdeWriter* w) const {
  // Options are NOT written here: they live once in the engine's options
  // section (the single source of truth) and are passed back to LoadFrom.
  w->WriteI64(num_joinable_column_pairs_);
  // Merge the two stores into one sorted flat layout. Table ids are
  // nonnegative, so the map's pair ordering agrees with the packed u64
  // key ordering and a single linear merge suffices. Flat edges (older
  // profiles) precede overlay edges within a shared pair.
  FlatEdges out;
  out.offsets.mut().push_back(0);
  auto append_flat = [this, &out](size_t i) {
    auto [b, e] = flat_edges_.edge_range(i);
    for (uint32_t o = b; o < e; ++o) {
      out.left.mut().push_back(flat_edges_.left[o]);
      out.right.mut().push_back(flat_edges_.right[o]);
      out.containment.mut().push_back(flat_edges_.containment[o]);
      out.key_quality.mut().push_back(flat_edges_.key_quality[o]);
    }
  };
  auto append_map = [&out](const std::vector<JoinEdge>& edges) {
    for (const JoinEdge& e : edges) {
      out.left.mut().push_back(e.left.Encode());
      out.right.mut().push_back(e.right.Encode());
      out.containment.mut().push_back(e.containment);
      out.key_quality.mut().push_back(e.key_quality);
    }
  };
  size_t fi = 0;
  auto mit = pair_edges_.begin();
  while (fi < flat_edges_.num_pairs() || mit != pair_edges_.end()) {
    uint64_t fkey = fi < flat_edges_.num_pairs() ? flat_edges_.pair_keys[fi]
                                                 : UINT64_MAX;
    uint64_t mkey = mit != pair_edges_.end() ? PairKey(mit->first) : UINT64_MAX;
    if (fkey < mkey) {
      out.pair_keys.mut().push_back(fkey);
      append_flat(fi++);
    } else if (mkey < fkey) {
      out.pair_keys.mut().push_back(mkey);
      append_map((mit++)->second);
    } else {  // both stores hold edges for this table pair
      out.pair_keys.mut().push_back(fkey);
      append_flat(fi++);
      append_map((mit++)->second);
    }
    VER_CHECK(out.left.size() <= UINT32_MAX);
    out.offsets.mut().push_back(static_cast<uint32_t>(out.left.size()));
  }
  out.SaveTo(w);
}

Status JoinPathIndex::LoadFrom(SerdeReader* r, const TableRepository& repo,
                               const JoinPathOptions& options,
                               const PagerBinding* binding) {
  int64_t num_pairs;
  VER_RETURN_IF_ERROR(r->ReadI64(&num_pairs));
  FlatEdges flat;
  VER_RETURN_IF_ERROR(flat.LoadFrom(r, binding));
  auto valid_ref = [&repo](const ColumnRef& ref) {
    return ref.table_id >= 0 && ref.table_id < repo.num_tables() &&
           ref.column_index >= 0 &&
           ref.column_index < repo.table(ref.table_id).num_columns();
  };
  // Edges feed the materializer, which dereferences both endpoints against
  // the repository. Resident loads reject out-of-range addresses up front;
  // paged loads skip this O(edges) scan (it would fault in every edge
  // page) and EdgesBetween drops bad records at query time instead.
  if (binding == nullptr || binding->pool == nullptr) {
    for (size_t o = 0; o < static_cast<size_t>(flat.left.size()); ++o) {
      ColumnRef l = DecodeRef(flat.left[o]), rr = DecodeRef(flat.right[o]);
      if (!valid_ref(l) || !valid_ref(rr)) {
        return Status::IOError(
            "corrupt join path index: edge addresses nonexistent column " +
            l.ToString() + " / " + rr.ToString());
      }
    }
  }
  options_ = options;
  num_joinable_column_pairs_ = num_pairs;
  flat_edges_ = std::move(flat);
  pair_edges_.clear();
  table_num_columns_.clear();
  table_num_columns_.reserve(static_cast<size_t>(repo.num_tables()));
  for (int32_t t = 0; t < repo.num_tables(); ++t) {
    table_num_columns_.push_back(repo.table(t).num_columns());
  }
  RebuildAdjacency();
  return Status::OK();
}

void JoinPathIndex::AppendFlatEdge(uint32_t o,
                                   std::vector<JoinEdge>* out) const {
  JoinEdge e;
  e.left = DecodeRef(flat_edges_.left[o]);
  e.right = DecodeRef(flat_edges_.right[o]);
  auto ok = [this](const ColumnRef& ref) {
    return ref.table_id >= 0 &&
           static_cast<size_t>(ref.table_id) < table_num_columns_.size() &&
           ref.column_index >= 0 &&
           ref.column_index < table_num_columns_[ref.table_id];
  };
  // Query-time guard replacing the skipped paged validation scan: a
  // corrupt record is dropped, never handed to the materializer.
  if (!ok(e.left) || !ok(e.right)) return;
  e.containment = flat_edges_.containment[o];
  e.key_quality = flat_edges_.key_quality[o];
  out->push_back(e);
}

std::vector<JoinEdge> JoinPathIndex::EdgesBetween(int32_t table_a,
                                                  int32_t table_b) const {
  std::vector<JoinEdge> out;
  std::pair<int32_t, int32_t> key = TableKey(table_a, table_b);
  if (!flat_edges_.pair_keys.empty()) {
    ptrdiff_t i = flat_edges_.find(PairKey(key));
    if (i >= 0) {
      auto [b, e] = flat_edges_.edge_range(static_cast<size_t>(i));
      for (uint32_t o = b; o < e; ++o) AppendFlatEdge(o, &out);
    }
  }
  auto it = pair_edges_.find(key);
  if (it != pair_edges_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<int32_t> JoinPathIndex::AdjacentTables(int32_t table) const {
  auto it = adjacency_.find(table);
  return it == adjacency_.end() ? std::vector<int32_t>{} : it->second;
}

std::vector<std::vector<int32_t>> JoinPathIndex::TablePaths(
    int32_t from, int32_t to, int max_hops) const {
  std::vector<std::vector<int32_t>> paths;
  std::vector<int32_t> current{from};
  std::unordered_set<int32_t> on_path{from};

  // Depth-first enumeration of simple paths with at most max_hops edges.
  std::function<void(int32_t, int)> dfs = [&](int32_t node, int hops_left) {
    if (node == to) {
      paths.push_back(current);
      return;
    }
    if (hops_left == 0) return;
    auto it = adjacency_.find(node);
    if (it == adjacency_.end()) return;
    for (int32_t next : it->second) {
      if (on_path.count(next)) continue;
      current.push_back(next);
      on_path.insert(next);
      dfs(next, hops_left - 1);
      on_path.erase(next);
      current.pop_back();
    }
  };
  if (from == to) {
    paths.push_back(current);
    return paths;
  }
  dfs(from, max_hops);
  return paths;
}

void JoinPathIndex::ExpandPath(const std::vector<int32_t>& path,
                               std::vector<JoinGraph>* out) const {
  if (path.size() < 2) return;
  // Cartesian product of column-pair choices along the path, capped.
  std::vector<JoinGraph> partial{JoinGraph{}};
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const std::vector<JoinEdge> choices = EdgesBetween(path[i], path[i + 1]);
    if (choices.empty()) return;  // path not realizable
    std::vector<JoinGraph> next;
    for (const JoinGraph& g : partial) {
      for (const JoinEdge& e : choices) {
        if (static_cast<int>(next.size()) >= options_.max_graphs_per_path) {
          break;
        }
        JoinGraph g2 = g;
        g2.edges.push_back(e);
        next.push_back(std::move(g2));
      }
    }
    partial = std::move(next);
  }
  for (JoinGraph& g : partial) out->push_back(std::move(g));
}

std::vector<JoinGraph> JoinPathIndex::GenerateJoinGraphs(
    const std::vector<int32_t>& tables, int max_hops) const {
  std::vector<int32_t> unique_tables = tables;
  std::sort(unique_tables.begin(), unique_tables.end());
  unique_tables.erase(
      std::unique(unique_tables.begin(), unique_tables.end()),
      unique_tables.end());

  std::vector<JoinGraph> graphs;
  if (unique_tables.empty()) return graphs;
  if (unique_tables.size() == 1) {
    JoinGraph g;
    NormalizeJoinGraph(&g, unique_tables);
    graphs.push_back(std::move(g));
    return graphs;
  }

  // Pairwise paths composed along a spanning chain t0-t1, t1-t2, ...
  // For tau = 2 (the common QBE case) this is exact path enumeration; for
  // tau > 2 it is a spanning-tree approximation of Steiner enumeration.
  std::vector<JoinGraph> partial{JoinGraph{}};
  for (size_t i = 0; i + 1 < unique_tables.size(); ++i) {
    std::vector<std::vector<int32_t>> paths =
        TablePaths(unique_tables[i], unique_tables[i + 1], max_hops);
    if (paths.empty()) return {};  // pair not connectable within rho
    std::vector<JoinGraph> segment_graphs;
    for (const auto& path : paths) {
      ExpandPath(path, &segment_graphs);
      if (static_cast<int>(segment_graphs.size()) >=
          options_.max_total_graphs) {
        break;
      }
    }
    std::vector<JoinGraph> next;
    for (const JoinGraph& g : partial) {
      for (const JoinGraph& seg : segment_graphs) {
        if (static_cast<int>(next.size()) >= options_.max_total_graphs) break;
        JoinGraph g2 = g;
        g2.edges.insert(g2.edges.end(), seg.edges.begin(), seg.edges.end());
        next.push_back(std::move(g2));
      }
    }
    partial = std::move(next);
  }

  // Normalize, dedupe by signature, sort by score.
  std::unordered_set<std::string> seen;
  for (JoinGraph& g : partial) {
    // Drop duplicate edges introduced by composing overlapping segments.
    std::sort(g.edges.begin(), g.edges.end(),
              [](const JoinEdge& a, const JoinEdge& b) {
                return a.CanonicalEncoding() < b.CanonicalEncoding();
              });
    g.edges.erase(std::unique(g.edges.begin(), g.edges.end(),
                              [](const JoinEdge& a, const JoinEdge& b) {
                                return a.CanonicalEncoding() ==
                                       b.CanonicalEncoding();
                              }),
                  g.edges.end());
    NormalizeJoinGraph(&g, unique_tables);
    if (seen.insert(g.Signature()).second) {
      graphs.push_back(std::move(g));
    }
  }
  std::sort(graphs.begin(), graphs.end(),
            [](const JoinGraph& a, const JoinGraph& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.Signature() < b.Signature();
            });
  return graphs;
}

}  // namespace ver
