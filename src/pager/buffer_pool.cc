#include "pager/buffer_pool.h"

#include <algorithm>

#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define VER_PAGER_POSIX 1
#endif

namespace ver {

namespace {

// Returns the pages of [addr, addr+len) to the OS. Only called on private
// read-only file-backed mappings, where a discarded page refaults from the
// file with identical bytes. Returns false when unsupported or refused, in
// which case the caller keeps the frame charged.
bool DiscardPages(const void* addr, size_t len) {
#if defined(VER_PAGER_POSIX)
  return madvise(const_cast<void*>(static_cast<const void*>(addr)), len,
                 MADV_DONTNEED) == 0;
#else
  (void)addr;
  (void)len;
  return false;
#endif
}

// Touches one byte per OS page so the kernel faults the range in now,
// under our miss accounting, instead of lazily mid-scan. The volatile read
// cannot be elided and the bytes are discarded.
void PrefaultPages(const char* addr, size_t len) {
  constexpr size_t kOsPage = 4096;
  const volatile char* p = addr;
  for (size_t i = 0; i < len; i += kOsPage) {
    (void)p[i];
  }
  if (len > 0) (void)p[len - 1];
}

}  // namespace

BufferPool::BufferPool(const BufferPoolOptions& options) : options_(options) {
  VER_CHECK(options_.frame_bytes > 0 &&
            options_.frame_bytes % 4096 == 0)
      << "frame_bytes " << options_.frame_bytes
      << " must be a positive multiple of the 4 KiB OS page";
}

uint32_t BufferPool::RegisterSpace(const void* base, uint64_t bytes,
                                   bool evictable) {
  VER_CHECK(reinterpret_cast<uintptr_t>(base) % 4096 == 0)
      << "space base must be page-aligned (an mmap base)";
  MutexLock lock(&mu_);
  uint32_t id = next_space_++;
  Space s;
  s.base = static_cast<const char*>(base);
  s.bytes = bytes;
#if defined(VER_PAGER_POSIX)
  s.evictable = evictable;
#else
  (void)evictable;
  s.evictable = false;  // no madvise: budget becomes accounting-only
#endif
  spaces_.emplace(id, s);
  ++stats_.spaces;
  return id;
}

uint64_t BufferPool::FrameLen(const Space& s, uint64_t frame_index) const {
  uint64_t start = frame_index * options_.frame_bytes;
  VER_DCHECK(start < s.bytes) << "frame " << frame_index << " outside space";
  return std::min(options_.frame_bytes, s.bytes - start);
}

void BufferPool::DiscardFrame(const Space& s, uint64_t frame_index) {
  if (!s.evictable) return;
  DiscardPages(s.base + frame_index * options_.frame_bytes,
               static_cast<size_t>(FrameLen(s, frame_index)));
}

void BufferPool::DropFrameEntry(uint64_t key, Frame* f) {
  if (f->in_lru) {
    lru_.erase(f->lru_it);
    f->in_lru = false;
  }
  frames_.erase(key);
}

void BufferPool::EvictToBudget() {
  while (stats_.resident_bytes >
             static_cast<int64_t>(options_.memory_budget_bytes) &&
         !lru_.empty()) {
    // lru_ holds only resident unpinned frames, coldest at the front.
    uint64_t key = lru_.front();
    auto it = frames_.find(key);
    VER_DCHECK(it != frames_.end()) << "LRU entry without frame";
    Frame& f = it->second;
    VER_DCHECK(f.resident && f.pins == 0 && f.in_lru)
        << "non-evictable frame on the LRU list";
    uint32_t space = static_cast<uint32_t>(key >> 32);
    uint64_t frame_index = key & 0xffffffffu;
    auto sit = spaces_.find(space);
    VER_DCHECK(sit != spaces_.end()) << "frame for unknown space";
    stats_.resident_bytes -=
        static_cast<int64_t>(FrameLen(sit->second, frame_index));
    ++stats_.evictions;
    DiscardFrame(sit->second, frame_index);
    --sit->second.frame_count;
    DropFrameEntry(key, &f);
  }
  if (stats_.resident_bytes >
      static_cast<int64_t>(options_.memory_budget_bytes)) {
    // Everything resident is pinned: the budget is overcommitted by live
    // working sets. Count it; eviction resumes as pins release.
    ++stats_.pinned_overcommit;
  }
}

void BufferPool::Pin(uint32_t space, uint64_t offset, uint64_t len) {
  if (len == 0) return;
  MutexLock lock(&mu_);
  auto sit = spaces_.find(space);
  VER_CHECK(sit != spaces_.end() && !sit->second.retired)
      << "Pin against unknown or retired space " << space;
  VER_CHECK(offset <= sit->second.bytes && len <= sit->second.bytes - offset)
      << "Pin range [" << offset << ", +" << len << ") outside space of "
      << sit->second.bytes << " bytes";
  uint64_t first = offset / options_.frame_bytes;
  uint64_t last = (offset + len - 1) / options_.frame_bytes;
  for (uint64_t fi = first; fi <= last; ++fi) {
    uint64_t key = FrameKey(space, fi);
    for (;;) {
      // unordered_map references are stable across rehash; only erase
      // invalidates. Nothing erases a loading or pinned frame, so the
      // loader below may hold `f` across its unlock — but a condvar
      // waiter may not: between the loader finishing and this thread
      // re-acquiring the mutex, the frame can be unpinned *and* evicted
      // (erased). Re-look the frame up after every wake.
      Frame& f = frames_[key];
      if (f.loading) {
        ++stats_.load_waits;
        load_cv_.Wait(mu_);
        continue;
      }
      if (f.resident) {
        ++stats_.hits;
        ++f.pins;
        if (f.in_lru) {
          lru_.erase(f.lru_it);
          f.in_lru = false;
        }
        break;
      }
      // Miss: this thread is the single loader. The pin is taken before
      // the lock drops so eviction can never reclaim the frame mid-load.
      ++stats_.misses;
      f.loading = true;
      f.pins = 1;
      ++sit->second.frame_count;
      const char* addr = sit->second.base + fi * options_.frame_bytes;
      uint64_t flen = FrameLen(sit->second, fi);
      mu_.Unlock();
      PrefaultPages(addr, static_cast<size_t>(flen));
      mu_.Lock();
      f.loading = false;
      f.resident = true;
      stats_.resident_bytes += static_cast<int64_t>(flen);
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
      load_cv_.NotifyAll();
      EvictToBudget();
      break;
    }
  }
}

void BufferPool::Unpin(uint32_t space, uint64_t offset, uint64_t len) {
  if (len == 0) return;
  MutexLock lock(&mu_);
  auto sit = spaces_.find(space);
  VER_CHECK(sit != spaces_.end()) << "Unpin against unknown space " << space;
  uint64_t first = offset / options_.frame_bytes;
  uint64_t last = (offset + len - 1) / options_.frame_bytes;
  bool freed = false;
  for (uint64_t fi = first; fi <= last; ++fi) {
    uint64_t key = FrameKey(space, fi);
    auto it = frames_.find(key);
    VER_CHECK(it != frames_.end() && it->second.pins > 0)
        << "Unpin without a matching Pin on frame " << fi;
    Frame& f = it->second;
    if (--f.pins > 0) continue;
    if (sit->second.retired) {
      // Last pin of a frame whose snapshot was swapped out: discard now.
      stats_.resident_bytes -=
          static_cast<int64_t>(FrameLen(sit->second, fi));
      DiscardFrame(sit->second, fi);
      --sit->second.frame_count;
      DropFrameEntry(key, &f);
      freed = true;
      continue;
    }
    VER_DCHECK(!f.in_lru) << "pinned frame was on the LRU list";
    f.lru_it = lru_.insert(lru_.end(), key);
    f.in_lru = true;
    freed = true;
  }
  if (sit->second.retired && sit->second.frame_count == 0) {
    spaces_.erase(sit);
    --stats_.spaces;
  }
  if (freed) EvictToBudget();
}

void BufferPool::RetireSpace(uint32_t space) {
  MutexLock lock(&mu_);
  auto sit = spaces_.find(space);
  if (sit == spaces_.end()) return;
  sit->second.retired = true;
  // Drop everything unpinned now; pinned frames drain via Unpin.
  for (auto it = frames_.begin(); it != frames_.end();) {
    uint64_t key = it->first;
    if (static_cast<uint32_t>(key >> 32) != space || it->second.pins > 0) {
      ++it;
      continue;
    }
    Frame& f = it->second;
    VER_DCHECK(!f.loading) << "loading frame with zero pins";
    uint64_t fi = key & 0xffffffffu;
    if (f.resident) {
      stats_.resident_bytes -=
          static_cast<int64_t>(FrameLen(sit->second, fi));
      DiscardFrame(sit->second, fi);
    }
    if (f.in_lru) lru_.erase(f.lru_it);
    --sit->second.frame_count;
    it = frames_.erase(it);
  }
  if (sit->second.frame_count == 0) {
    spaces_.erase(sit);
    --stats_.spaces;
  }
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace ver
