// BufferPool: bounded-residency accounting and eviction over mmapped
// snapshot extents.
//
// The pool does not own or copy any bytes. A "space" is a contiguous
// read-only mapping (one mmapped snapshot file) registered by its base
// pointer; frames are fixed-size, page-aligned extents of a space. Pinning
// a byte range faults its frames in (so first access never stalls inside a
// kernel page fault mid-scan), bumps their refcounts and charges them to
// the pool's resident budget; when residency exceeds the budget the pool
// discards cold unpinned frames back to the OS (madvise(MADV_DONTNEED) on
// the private file-backed mapping — a later touch transparently refaults
// from the file).
//
// Correctness never depends on a pin: an evicted page refaults with
// identical bytes, so a missed pin is an accounting gap, not a read of
// recycled memory. Pins exist to (a) keep the working set of an in-flight
// query charged and unevictable, and (b) make the budget honest. A pinned
// set larger than the budget is allowed (queries must not deadlock on an
// undersized budget); the overflow is counted in `pinned_overcommit`.
//
// Thread safety: every method is safe to call concurrently. Frame loads
// are single-flight — concurrent first-pins of one frame elect one loader,
// the rest wait on a condvar (counted in `load_waits`).

#ifndef VER_PAGER_BUFFER_POOL_H_
#define VER_PAGER_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ver {

struct BufferPoolOptions {
  /// Target ceiling for resident (faulted-in, charged) bytes. Eviction of
  /// unpinned frames keeps residency at or under this; pinned frames may
  /// overcommit it.
  uint64_t memory_budget_bytes = 256ull << 20;
  /// Frame size; must be a multiple of the OS page size. 64 KiB keeps the
  /// frame table ~16k entries per GiB while staying fine-grained enough
  /// that a point lookup charges kilobytes, not megabytes.
  uint64_t frame_bytes = 64 * 1024;
};

/// Monotonic counters plus current residency. `resident_bytes` counts
/// charged frame bytes; `peak_resident_bytes` its high-water mark;
/// `pinned_overcommit` the number of times eviction could not reach the
/// budget because every remaining frame was pinned.
struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t load_waits = 0;
  int64_t pinned_overcommit = 0;
  int64_t resident_bytes = 0;
  int64_t peak_resident_bytes = 0;
  int64_t spaces = 0;
};

class BufferPool {
 public:
  explicit BufferPool(const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a read-only mapping starting at `base` (must be
  /// page-aligned: an mmap base) covering `bytes`. `evictable` is true for
  /// private file-backed maps, where discarding a page is safe because a
  /// refault re-reads the file; pass false for memory the pool must never
  /// madvise away (then the budget is accounting-only for this space).
  /// Returns the space id used by Pin/Unpin.
  uint32_t RegisterSpace(const void* base, uint64_t bytes,
                         bool evictable = true);

  /// Drops every frame of `space` and forgets it. Unpinned frames are
  /// discarded immediately; pinned frames (a query still draining against
  /// a retired snapshot) linger until their last Unpin, charged as usual,
  /// and are discarded then. New Pins against a retired space are invalid.
  void RetireSpace(uint32_t space);

  /// Makes the frames covering bytes [offset, offset+len) of `space`
  /// resident and pins them. Zero-length pins are no-ops.
  void Pin(uint32_t space, uint64_t offset, uint64_t len);

  /// Releases one Pin of the same range. Ranges must match a prior Pin.
  void Unpin(uint32_t space, uint64_t offset, uint64_t len);

  BufferPoolStats stats() const;
  uint64_t frame_bytes() const { return options_.frame_bytes; }
  uint64_t memory_budget_bytes() const {
    return options_.memory_budget_bytes;
  }

 private:
  struct Space {
    const char* base = nullptr;
    uint64_t bytes = 0;
    bool evictable = true;
    bool retired = false;
    // Live frame entries for this space; RetireSpace must not leave
    // stragglers behind in frames_.
    int64_t frame_count = 0;
  };
  struct Frame {
    int32_t pins = 0;
    bool resident = false;
    bool loading = false;
    // Position in lru_ when resident and unpinned.
    std::list<uint64_t>::iterator lru_it;
    bool in_lru = false;
  };

  static uint64_t FrameKey(uint32_t space, uint64_t frame_index) {
    return (uint64_t{space} << 32) | frame_index;
  }

  uint64_t FrameLen(const Space& s, uint64_t frame_index) const
      VER_REQUIRES(mu_);
  void DiscardFrame(const Space& s, uint64_t frame_index) VER_REQUIRES(mu_);
  void DropFrameEntry(uint64_t key, Frame* f) VER_REQUIRES(mu_);
  void EvictToBudget() VER_REQUIRES(mu_);

  const BufferPoolOptions options_;

  mutable Mutex mu_;
  CondVar load_cv_;
  uint32_t next_space_ VER_GUARDED_BY(mu_) = 1;
  std::unordered_map<uint32_t, Space> spaces_ VER_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Frame> frames_ VER_GUARDED_BY(mu_);
  /// Resident unpinned frames, coldest first.
  std::list<uint64_t> lru_ VER_GUARDED_BY(mu_);
  BufferPoolStats stats_ VER_GUARDED_BY(mu_);
};

/// RAII bundle of pinned ranges: accumulate with PinRange(), everything
/// unpins on destruction (or Release()). Movable so query code can hand a
/// working set down the pipeline; a default-constructed or moved-from pin
/// is inert, and PinRange on a pool-less pin is a no-op — resident-mode
/// code paths pass pins around without ever checking a flag.
class PagePin {
 public:
  PagePin() = default;
  explicit PagePin(BufferPool* pool) : pool_(pool) {}
  PagePin(PagePin&& o) noexcept
      : pool_(o.pool_), ranges_(std::move(o.ranges_)) {
    o.pool_ = nullptr;
    o.ranges_.clear();
  }
  PagePin& operator=(PagePin&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      ranges_ = std::move(o.ranges_);
      o.pool_ = nullptr;
      o.ranges_.clear();
    }
    return *this;
  }
  PagePin(const PagePin&) = delete;
  PagePin& operator=(const PagePin&) = delete;
  ~PagePin() { Release(); }

  void PinRange(uint32_t space, uint64_t offset, uint64_t len) {
    if (pool_ == nullptr || len == 0) return;
    pool_->Pin(space, offset, len);
    ranges_.push_back(Range{space, offset, len});
  }

  void Release() {
    if (pool_ != nullptr) {
      for (const Range& r : ranges_) pool_->Unpin(r.space, r.offset, r.len);
    }
    ranges_.clear();
  }

  BufferPool* pool() const { return pool_; }

 private:
  struct Range {
    uint32_t space;
    uint64_t offset;
    uint64_t len;
  };
  BufferPool* pool_ = nullptr;
  std::vector<Range> ranges_;
};

}  // namespace ver

#endif  // VER_PAGER_BUFFER_POOL_H_
