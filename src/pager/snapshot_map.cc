#include "pager/snapshot_map.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define VER_PAGER_POSIX 1
#endif

namespace ver {

Result<std::unique_ptr<SnapshotMap>> SnapshotMap::Open(
    const std::string& path) {
#if defined(VER_PAGER_POSIX)
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open snapshot " + path + " for mapping");
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size < 0) {
    close(fd);
    return Status::IOError("cannot stat snapshot " + path);
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    close(fd);
    return Status::InvalidArgument(path + " is empty, not a Ver snapshot");
  }
  void* map = mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                   MAP_PRIVATE, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed.
  close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap snapshot " + path);
  }
  // Paged serving touches scattered frames, not a sequential scan; without
  // this the kernel's readahead would fault in pages nobody asked for and
  // distort the residency the pool accounts.
  (void)madvise(map, static_cast<size_t>(size), MADV_RANDOM);

  auto out = std::unique_ptr<SnapshotMap>(new SnapshotMap());
  out->path_ = path;
  out->data_ = static_cast<const char*>(map);
  out->size_ = size;
  Status parsed = ParseSnapshotLayout(
      std::string_view(out->data_, static_cast<size_t>(size)), path,
      &out->sections_, &out->format_version_);
  if (!parsed.ok()) return parsed;  // dtor unmaps
  return out;
#else
  return Status::NotImplemented("snapshot mmap is not supported on this "
                                "platform; serve resident instead");
#endif
}

SnapshotMap::~SnapshotMap() {
#if defined(VER_PAGER_POSIX)
  if (data_ != nullptr) {
    munmap(const_cast<char*>(data_), static_cast<size_t>(size_));
  }
#endif
}

const SnapshotSectionEntry* SnapshotMap::FindSection(uint32_t id) const {
  for (const SnapshotSectionEntry& e : sections_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

Status SnapshotMap::VerifyChecksums() const {
  for (const SnapshotSectionEntry& e : sections_) {
    if (SnapshotSectionChecksum(section_payload(e)) != e.checksum) {
      return Status::IOError("snapshot " + path_ + " is corrupt: section " +
                             std::to_string(e.id) + " checksum mismatch");
    }
  }
  return Status::OK();
}

}  // namespace ver
