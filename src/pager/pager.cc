#include "pager/pager.h"

#include <utility>

#include "util/serde.h"

namespace ver {

Result<std::shared_ptr<PagerRuntime>> PagerRuntime::Open(
    const std::string& path, const PagingOptions& options) {
  if (!kSerdeHostLittleEndian) {
    return Status::NotImplemented(
        "paged serving needs a little-endian host (snapshot wire layout is "
        "little-endian); load resident instead");
  }
  auto mapped = SnapshotMap::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::unique_ptr<SnapshotMap> map = std::move(mapped).value();
  if (map->format_version() < 3) {
    return Status::NotImplemented(
        "snapshot " + path + " is format v" +
        std::to_string(map->format_version()) +
        "; only v3+ aligned snapshots can be paged — load resident or "
        "re-save to upgrade");
  }
  std::shared_ptr<BufferPool> pool = options.pool;
  if (pool == nullptr) {
    BufferPoolOptions po;
    po.memory_budget_bytes = options.memory_budget_bytes;
    po.frame_bytes = options.frame_bytes;
    pool = std::make_shared<BufferPool>(po);
  }
  uint32_t space = pool->RegisterSpace(map->data(), map->size(),
                                       /*evictable=*/true);
  return std::shared_ptr<PagerRuntime>(
      new PagerRuntime(std::move(pool), std::move(map), space));
}

const PagerBinding* PagerRuntime::ShardBinding(size_t shard) {
  while (shard_bindings_.size() <= shard) {
    // Overlapping registrations over one mapping are safe: correctness
    // never depends on residency (an evicted page refaults identically),
    // so the worst case of two spaces covering the same bytes is a frame
    // of double-charged budget, not a wrong answer.
    uint32_t space = pool_->RegisterSpace(map_->data(), map_->size(),
                                          /*evictable=*/true);
    auto b = std::make_unique<PagerBinding>();
    b->pool = pool_.get();
    b->space = space;
    b->space_base = map_->data();
    shard_spaces_.push_back(space);
    shard_bindings_.push_back(std::move(b));
  }
  return shard_bindings_[shard].get();
}

PagerRuntime::~PagerRuntime() {
  // Every borrower is gone (they hold shared_ptrs to this runtime), so no
  // pins against the spaces remain and retirement drops all their frames.
  for (uint32_t space : shard_spaces_) pool_->RetireSpace(space);
  pool_->RetireSpace(space_);
}

}  // namespace ver
