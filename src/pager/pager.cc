#include "pager/pager.h"

#include <utility>

#include "util/serde.h"

namespace ver {

Result<std::shared_ptr<PagerRuntime>> PagerRuntime::Open(
    const std::string& path, const PagingOptions& options) {
  if (!kSerdeHostLittleEndian) {
    return Status::NotImplemented(
        "paged serving needs a little-endian host (snapshot wire layout is "
        "little-endian); load resident instead");
  }
  auto mapped = SnapshotMap::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::unique_ptr<SnapshotMap> map = std::move(mapped).value();
  if (map->format_version() < 3) {
    return Status::NotImplemented(
        "snapshot " + path + " is format v" +
        std::to_string(map->format_version()) +
        "; only v3+ aligned snapshots can be paged — load resident or "
        "re-save to upgrade");
  }
  std::shared_ptr<BufferPool> pool = options.pool;
  if (pool == nullptr) {
    BufferPoolOptions po;
    po.memory_budget_bytes = options.memory_budget_bytes;
    po.frame_bytes = options.frame_bytes;
    pool = std::make_shared<BufferPool>(po);
  }
  uint32_t space = pool->RegisterSpace(map->data(), map->size(),
                                       /*evictable=*/true);
  return std::shared_ptr<PagerRuntime>(
      new PagerRuntime(std::move(pool), std::move(map), space));
}

PagerRuntime::~PagerRuntime() {
  // Every borrower is gone (they hold shared_ptrs to this runtime), so no
  // pins against the space remain and retirement drops all its frames.
  pool_->RetireSpace(space_);
}

}  // namespace ver
