// PagerRuntime: the per-snapshot bundle that makes paged serving work —
// one SnapshotMap (the mmapped file), one BufferPool space registered over
// it, and the PagerBinding loaders use to adopt mapped extents.
//
// Lifetime is the whole story here. A paged engine borrows every large
// array straight out of the map, so the runtime must outlive every query
// that might still be scanning those arrays. The engine owns its runtime
// through a shared_ptr; hot-swap (VerServer::SwapSnapshot) retires the old
// engine by dropping the server's reference while in-flight queries keep
// theirs — the old map stays intact until the last query drains, then the
// runtime's destructor retires the space (releasing its frames' budget
// charge) and unmaps the file. A pool can be shared across runtimes
// (ServingOptions hands one budget to old and new snapshots during a swap)
// or private per runtime.

#ifndef VER_PAGER_PAGER_H_
#define VER_PAGER_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pager/buffer_pool.h"
#include "pager/paged_view.h"
#include "pager/snapshot_map.h"
#include "util/result.h"

namespace ver {

/// Switches snapshot loading from "copy everything into owned vectors" to
/// "mmap the file and borrow". Off by default: resident loads validate
/// more and never fault mid-query, so paging is an explicit opt-in for
/// repositories that outgrow RAM.
struct PagingOptions {
  bool enabled = false;
  /// Ceiling for pool-charged resident bytes across all spaces.
  uint64_t memory_budget_bytes = 256ull << 20;
  /// BufferPool frame granularity; multiple of the 4 KiB OS page.
  uint64_t frame_bytes = 64 * 1024;
  /// When set, the runtime charges this pool instead of creating its own —
  /// how a server keeps one budget across a hot swap's snapshot pair.
  std::shared_ptr<BufferPool> pool;
};

class PagerRuntime {
 public:
  /// Maps `path` and registers it with the pool. Fails with NotImplemented
  /// when the snapshot cannot be paged for structural reasons the caller
  /// should fall back to a resident load on: a pre-v3 (unaligned) file, a
  /// big-endian host, or a platform without mmap. Real I/O and parse
  /// errors come back as their own codes and should propagate.
  static Result<std::shared_ptr<PagerRuntime>> Open(
      const std::string& path, const PagingOptions& options);

  ~PagerRuntime();
  PagerRuntime(const PagerRuntime&) = delete;
  PagerRuntime& operator=(const PagerRuntime&) = delete;

  const SnapshotMap& map() const { return *map_; }
  const std::shared_ptr<BufferPool>& pool() const { return pool_; }
  uint32_t space() const { return space_; }
  const std::string& path() const { return map_->path(); }

  /// The binding loaders thread through LoadFrom calls.
  PagerBinding binding() const {
    PagerBinding b;
    b.pool = pool_.get();
    b.space = space_;
    b.space_base = map_->data();
    return b;
  }

  /// Binding whose pins charge a dedicated per-shard buffer-pool space:
  /// lazily registers one more space over the same mapped file (shared
  /// budget, separate residency accounting) per shard index, so a sharded
  /// engine's paged extents are attributable shard by shard. The returned
  /// pointer stays valid for the runtime's lifetime; all shard spaces are
  /// retired with the runtime. Not thread-safe — call only from
  /// (single-threaded) snapshot loading.
  const PagerBinding* ShardBinding(size_t shard);

  /// Buffer-pool space ids registered via ShardBinding, in shard order
  /// (empty when the engine never asked for per-shard accounting).
  const std::vector<uint32_t>& shard_spaces() const { return shard_spaces_; }

  BufferPoolStats pool_stats() const { return pool_->stats(); }

 private:
  PagerRuntime(std::shared_ptr<BufferPool> pool,
               std::unique_ptr<SnapshotMap> map, uint32_t space)
      : pool_(std::move(pool)), map_(std::move(map)), space_(space) {}

  std::shared_ptr<BufferPool> pool_;
  std::unique_ptr<SnapshotMap> map_;
  uint32_t space_ = 0;
  std::vector<std::unique_ptr<PagerBinding>> shard_bindings_;
  std::vector<uint32_t> shard_spaces_;
};

}  // namespace ver

#endif  // VER_PAGER_PAGER_H_
