// PagedView<T> / PagedBytes: dual-mode array storage for snapshot-backed
// structures.
//
// Resident mode (the default) owns a std::vector<T> (or std::string) and
// behaves exactly like one — this is the build path and the legacy load
// path. Paged mode borrows a typed extent of an mmapped snapshot instead:
// the view holds a pointer into the map plus the (space, offset) needed to
// pin its frames in the BufferPool. Readers use the same data()/size()/
// operator[] surface in both modes, so query code is mode-blind; only
// mutation (mut()) insists on resident mode.
//
// A paged view is a borrow: it is valid only while the SnapshotMap that
// backs it lives (the engine's PagerRuntime guarantees that). Pinning is
// an accounting contract, not a lifetime one — an unpinned read of a paged
// view still returns correct bytes (the page refaults from the file); it
// just escapes the pool's residency budget.

#ifndef VER_PAGER_PAGED_VIEW_H_
#define VER_PAGER_PAGED_VIEW_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "pager/buffer_pool.h"
#include "util/check.h"

namespace ver {

/// How a loader reaches the pool while deserializing: the pool, the space
/// id of the snapshot being loaded, and the mapping base from which extent
/// offsets are computed. A null binding (or null pool) means "load
/// resident".
struct PagerBinding {
  BufferPool* pool = nullptr;
  uint32_t space = 0;
  const char* space_base = nullptr;
};

template <typename T>
class PagedView {
  static_assert(std::is_trivially_copyable_v<T>,
                "PagedView elements are reinterpreted from mapped bytes");

 public:
  PagedView() = default;

  // Copying materializes a resident owned copy — paged borrows are tied to
  // one snapshot map and must not silently multiply across objects.
  PagedView(const PagedView& o) { *this = o; }
  PagedView& operator=(const PagedView& o) {
    if (this != &o) {
      vec_.assign(o.data(), o.data() + o.size());
      DropBinding();
    }
    return *this;
  }
  PagedView(PagedView&& o) noexcept { *this = std::move(o); }
  PagedView& operator=(PagedView&& o) noexcept {
    if (this != &o) {
      vec_ = std::move(o.vec_);
      mapped_ = o.mapped_;
      count_ = o.count_;
      space_ = o.space_;
      offset_ = o.offset_;
      o.Reset();
    }
    return *this;
  }
  PagedView& operator=(std::vector<T>&& v) {
    vec_ = std::move(v);
    DropBinding();
    return *this;
  }

  bool paged() const { return mapped_ != nullptr; }

  const T* data() const { return paged() ? mapped_ : vec_.data(); }
  uint64_t size() const { return paged() ? count_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](uint64_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& front() const {
    VER_DCHECK(!empty());
    return data()[0];
  }
  const T& back() const {
    VER_DCHECK(!empty());
    return data()[size() - 1];
  }

  /// Mutable access to the owned vector; only valid in resident mode —
  /// builders never see paged storage.
  std::vector<T>& mut() {
    VER_DCHECK(!paged()) << "mutating a paged view";
    return vec_;
  }

  /// Heap bytes owned by this view (0 when paged — the bytes belong to the
  /// snapshot map and are accounted by the BufferPool, not the heap).
  uint64_t capacity_bytes() const {
    return paged() ? 0 : vec_.capacity() * sizeof(T);
  }

  /// Takes `count` elements starting at mapped byte `raw`. Binds a paged
  /// borrow when `b` carries a pool and `raw` is aligned for T; otherwise
  /// copies the bytes into an owned resident vector (legacy snapshots,
  /// non-paged loads, or pathological misalignment).
  void Adopt(const PagerBinding* b, const char* raw, uint64_t count) {
    if (b != nullptr && b->pool != nullptr &&
        reinterpret_cast<uintptr_t>(raw) % alignof(T) == 0) {
      vec_.clear();
      vec_.shrink_to_fit();
      mapped_ = reinterpret_cast<const T*>(raw);
      count_ = count;
      space_ = b->space;
      offset_ = static_cast<uint64_t>(raw - b->space_base);
      return;
    }
    vec_.resize(count);
    if (count > 0) std::memcpy(vec_.data(), raw, count * sizeof(T));
    DropBinding();
  }

  /// Adds this view's extent to `pin`. No-op for resident views and for
  /// pool-less pins, so call sites need no mode checks.
  void PinInto(PagePin* pin) const {
    if (paged()) pin->PinRange(space_, offset_, count_ * sizeof(T));
  }

  /// Converts a paged borrow into an owned resident copy (no-op when
  /// already resident). The escape hatch for mutating a loaded-paged
  /// structure: copy first, then mut().
  void MaterializeOwned() {
    if (!paged()) return;
    vec_.assign(mapped_, mapped_ + count_);
    DropBinding();
  }

 private:
  void DropBinding() {
    mapped_ = nullptr;
    count_ = 0;
    space_ = 0;
    offset_ = 0;
  }
  void Reset() {
    vec_.clear();
    vec_.shrink_to_fit();
    DropBinding();
  }

  std::vector<T> vec_;
  const T* mapped_ = nullptr;
  uint64_t count_ = 0;
  uint32_t space_ = 0;
  uint64_t offset_ = 0;
};

/// PagedView's byte-blob sibling: a std::string when resident (dictionary
/// arenas, interned key blobs), a borrowed mapped extent when paged.
class PagedBytes {
 public:
  PagedBytes() = default;

  PagedBytes(const PagedBytes& o) { *this = o; }
  PagedBytes& operator=(const PagedBytes& o) {
    if (this != &o) {
      str_.assign(o.data(), o.size());
      DropBinding();
    }
    return *this;
  }
  PagedBytes(PagedBytes&& o) noexcept { *this = std::move(o); }
  PagedBytes& operator=(PagedBytes&& o) noexcept {
    if (this != &o) {
      str_ = std::move(o.str_);
      mapped_ = o.mapped_;
      count_ = o.count_;
      space_ = o.space_;
      offset_ = o.offset_;
      o.Reset();
    }
    return *this;
  }
  PagedBytes& operator=(std::string&& s) {
    str_ = std::move(s);
    DropBinding();
    return *this;
  }

  bool paged() const { return mapped_ != nullptr; }
  const char* data() const { return paged() ? mapped_ : str_.data(); }
  uint64_t size() const { return paged() ? count_ : str_.size(); }
  bool empty() const { return size() == 0; }
  char operator[](uint64_t i) const { return data()[i]; }
  std::string_view view() const {
    return std::string_view(data(), static_cast<size_t>(size()));
  }

  std::string& mut() {
    VER_DCHECK(!paged()) << "mutating paged bytes";
    return str_;
  }

  uint64_t capacity_bytes() const { return paged() ? 0 : str_.capacity(); }

  void Adopt(const PagerBinding* b, const char* raw, uint64_t count) {
    if (b != nullptr && b->pool != nullptr) {
      str_.clear();
      str_.shrink_to_fit();
      mapped_ = raw;
      count_ = count;
      space_ = b->space;
      offset_ = static_cast<uint64_t>(raw - b->space_base);
      return;
    }
    str_.assign(raw, static_cast<size_t>(count));
    DropBinding();
  }

  void PinInto(PagePin* pin) const {
    if (paged()) pin->PinRange(space_, offset_, count_);
  }

  void MaterializeOwned() {
    if (!paged()) return;
    str_.assign(mapped_, static_cast<size_t>(count_));
    DropBinding();
  }

 private:
  void DropBinding() {
    mapped_ = nullptr;
    count_ = 0;
    space_ = 0;
    offset_ = 0;
  }
  void Reset() {
    str_.clear();
    str_.shrink_to_fit();
    DropBinding();
  }

  std::string str_;
  const char* mapped_ = nullptr;
  uint64_t count_ = 0;
  uint32_t space_ = 0;
  uint64_t offset_ = 0;
};

}  // namespace ver

#endif  // VER_PAGER_PAGED_VIEW_H_
