// SnapshotMap: RAII read-only mmap of a snapshot file plus its parsed
// section layout.
//
// Opening a map reads only the snapshot header (magic, version, v3 section
// table) — payload bytes stay untouched on disk until something faults
// them in, which is what makes a paged cold start O(touched pages) instead
// of O(snapshot bytes). Section checksums are deliberately NOT verified on
// open (that would read the whole file); the paged trust model is
// "framing-validated, content-trusted", with VerifyChecksums() available
// for tests and offline fsck-style checks. The resident loader
// (ReadSnapshotFile) remains the fully-validating path.

#ifndef VER_PAGER_SNAPSHOT_MAP_H_
#define VER_PAGER_SNAPSHOT_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/serde.h"

namespace ver {

class SnapshotMap {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE, advised for random
  /// access) and parses its section layout. Fails on non-POSIX builds, on
  /// I/O errors and on malformed headers; succeeds for any readable format
  /// version — callers gate paged serving on format_version() >= 3.
  static Result<std::unique_ptr<SnapshotMap>> Open(const std::string& path);

  ~SnapshotMap();
  SnapshotMap(const SnapshotMap&) = delete;
  SnapshotMap& operator=(const SnapshotMap&) = delete;

  const std::string& path() const { return path_; }
  const char* data() const { return data_; }
  uint64_t size() const { return size_; }
  uint32_t format_version() const { return format_version_; }

  const std::vector<SnapshotSectionEntry>& sections() const {
    return sections_;
  }
  /// First section with `id`, or nullptr.
  const SnapshotSectionEntry* FindSection(uint32_t id) const;
  /// The mapped payload bytes of a section; valid while the map lives.
  std::string_view section_payload(const SnapshotSectionEntry& e) const {
    return std::string_view(data_ + e.offset, static_cast<size_t>(e.size));
  }

  /// Full checksum pass over every section — O(file bytes), touches every
  /// page. Test/fsck use only; never on the serving path.
  Status VerifyChecksums() const;

 private:
  SnapshotMap() = default;

  std::string path_;
  const char* data_ = nullptr;
  uint64_t size_ = 0;
  uint32_t format_version_ = 0;
  std::vector<SnapshotSectionEntry> sections_;
};

}  // namespace ver

#endif  // VER_PAGER_SNAPSHOT_MAP_H_
