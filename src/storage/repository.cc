#include "storage/repository.h"

#include <algorithm>
#include <filesystem>

#include "table/csv.h"

namespace ver {

std::string ColumnRef::ToString() const {
  return "col(" + std::to_string(table_id) + "," +
         std::to_string(column_index) + ")";
}

Result<int32_t> TableRepository::AddTable(Table table) {
  if (table.name().empty()) {
    return Status::InvalidArgument("table must have a name");
  }
  auto [it, inserted] =
      name_to_id_.emplace(table.name(), static_cast<int32_t>(tables_.size()));
  if (!inserted) {
    return Status::AlreadyExists("table '" + table.name() +
                                 "' already in repository");
  }
  table.Seal();
  tables_.push_back(std::move(table));
  return it->second;
}

std::vector<Value> TableRepository::column_values(const ColumnRef& ref) const {
  const Table& t = tables_[ref.table_id];
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(t.num_rows()));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    out.push_back(t.at(r, ref.column_index));
  }
  return out;
}

Result<int32_t> TableRepository::FindTable(const std::string& name) const {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::string TableRepository::ColumnDisplayName(const ColumnRef& ref) const {
  const Table& t = tables_[ref.table_id];
  const Attribute& a = t.schema().attribute(ref.column_index);
  std::string col =
      a.has_name() ? a.name : "#" + std::to_string(ref.column_index);
  return t.name() + "." + col;
}

std::vector<ColumnRef> TableRepository::AllColumns() const {
  std::vector<ColumnRef> out;
  for (int32_t t = 0; t < num_tables(); ++t) {
    for (int c = 0; c < tables_[t].num_columns(); ++c) {
      out.push_back(ColumnRef{t, c});
    }
  }
  return out;
}

int64_t TableRepository::TotalRows() const {
  int64_t total = 0;
  for (const Table& t : tables_) total += t.num_rows();
  return total;
}

int64_t TableRepository::TotalColumns() const {
  int64_t total = 0;
  for (const Table& t : tables_) total += t.num_columns();
  return total;
}

Status TableRepository::LoadDirectory(const std::string& dir_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir_path, ec)) {
    return Status::IOError("'" + dir_path + "' is not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_path, ec)) {
    if (entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic table ids
  for (const std::string& path : paths) {
    VER_ASSIGN_OR_RETURN(Table t, ReadCsvFile(path));
    VER_ASSIGN_OR_RETURN(int32_t id, AddTable(std::move(t)));
    (void)id;
  }
  return Status::OK();
}

Status TableRepository::SaveDirectory(const std::string& dir_path) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_path, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir_path + "'");
  }
  for (const Table& t : tables_) {
    std::string path = (fs::path(dir_path) / (t.name() + ".csv")).string();
    VER_RETURN_IF_ERROR(WriteCsvFile(t, path));
  }
  return Status::OK();
}

}  // namespace ver
