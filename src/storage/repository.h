// TableRepository: the catalog over a pathless table collection.
//
// Tables get stable integer ids; columns are addressed repository-wide by
// ColumnRef {table_id, column_index}. Every downstream component (discovery
// index, column selection, join graph search) speaks ColumnRef.

#ifndef VER_STORAGE_REPOSITORY_H_
#define VER_STORAGE_REPOSITORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pager/pager.h"
#include "table/table.h"
#include "util/result.h"

namespace ver {

/// Repository-wide column address.
struct ColumnRef {
  int32_t table_id = -1;
  int32_t column_index = -1;

  bool valid() const { return table_id >= 0 && column_index >= 0; }
  bool operator==(const ColumnRef& o) const {
    return table_id == o.table_id && column_index == o.column_index;
  }
  bool operator<(const ColumnRef& o) const {
    if (table_id != o.table_id) return table_id < o.table_id;
    return column_index < o.column_index;
  }
  /// Dense encoding for hashing / ordered maps.
  uint64_t Encode() const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(table_id)) << 32) |
           static_cast<uint32_t>(column_index);
  }
  std::string ToString() const;
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return static_cast<size_t>(c.Encode() * 0x9e3779b97f4a7c15ULL);
  }
};

/// Owning catalog of tables in a pathless collection.
class TableRepository {
 public:
  /// Adds a table; fails on duplicate table name. Returns the new table id.
  /// The table is sealed on the way in (sorted column dictionaries, ingest
  /// maps dropped) — every repository table is in serving layout.
  Result<int32_t> AddTable(Table table);

  int32_t num_tables() const { return static_cast<int32_t>(tables_.size()); }
  const Table& table(int32_t id) const { return tables_[id]; }
  Table& mutable_table(int32_t id) { return tables_[id]; }

  /// Id by exact table name, or error.
  Result<int32_t> FindTable(const std::string& name) const;

  /// Column display name: "table.attr" (or "table.#i" for unnamed columns).
  std::string ColumnDisplayName(const ColumnRef& ref) const;

  /// Attribute of a column ref.
  const Attribute& attribute(const ColumnRef& ref) const {
    return tables_[ref.table_id].schema().attribute(ref.column_index);
  }
  /// Typed storage of a column (the zero-copy read path).
  const ColumnData& column_data(const ColumnRef& ref) const {
    return tables_[ref.table_id].column_data(ref.column_index);
  }
  /// Legacy boundary accessor: materializes every cell as an owning Value.
  /// O(rows) copies — scan paths must use column_data() instead. Allowed
  /// (cold) call sites: one-shot assertions in tests and debug/CSV-boundary
  /// rendering; nothing under src/ may call it on a per-query path.
  std::vector<Value> column_values(const ColumnRef& ref) const;

  /// All column refs across all tables.
  std::vector<ColumnRef> AllColumns() const;

  int64_t TotalRows() const;
  int64_t TotalColumns() const;

  /// Loads every *.csv file of a directory as one table each.
  Status LoadDirectory(const std::string& dir_path);

  /// Writes every table as <dir>/<name>.csv.
  Status SaveDirectory(const std::string& dir_path) const;

  /// The pager runtime whose snapshot map this repository's tables borrow
  /// from, when loaded paged (null for resident repositories). Held by
  /// shared_ptr so the map outlives every borrower: queries and hot-swap
  /// drains extend its life by sharing the engine's reference.
  const std::shared_ptr<PagerRuntime>& pager() const { return pager_; }
  void set_pager(std::shared_ptr<PagerRuntime> pager) {
    pager_ = std::move(pager);
  }

  /// True when any table borrows mapped snapshot storage.
  bool paged() const {
    for (const Table& t : tables_) {
      if (t.paged()) return true;
    }
    return false;
  }

 private:
  std::vector<Table> tables_;
  std::unordered_map<std::string, int32_t> name_to_id_;
  std::shared_ptr<PagerRuntime> pager_;
};

}  // namespace ver

#endif  // VER_STORAGE_REPOSITORY_H_
