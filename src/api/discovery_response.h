// DiscoveryResponse: everything Ver::Execute hands back for one
// DiscoveryRequest — an overall status, the pipeline artifacts (funnel
// statistics, per-stage timings, materialized views, distillation verdicts,
// ranked views), and the streaming/early-termination accounting.

#ifndef VER_API_DISCOVERY_RESPONSE_H_
#define VER_API_DISCOVERY_RESPONSE_H_

#include "core/ver.h"
#include "util/status.h"

namespace ver {

/// Outcome of one executed DiscoveryRequest.
struct DiscoveryResponse {
  /// OK, or InvalidArgument (request rejected before any stage ran),
  /// DeadlineExceeded / Cancelled (stopped at a stage or candidate
  /// boundary). `result` holds no partial data when the status is not OK.
  Status status;

  /// The pipeline artifacts: selection, search funnel stats
  /// (`result.search`), materialized views, distillation, per-stage
  /// timings (`result.timing`), and the automatic overlap ranking
  /// (`result.automatic_ranking`) — identical in shape to what the legacy
  /// RunQuery overloads return, because they are wrappers over Execute.
  QueryResult result;

  /// True when StopAfter(k) fired: the pipeline stopped with ranked
  /// candidates still unprocessed. The views present are a prefix of the
  /// full run's ranked view sequence.
  bool early_terminated = false;

  /// Number of OnViewDelivered events fired (== views streamed to the
  /// observer; for a full run this equals the surviving-view count).
  int views_delivered = 0;

  /// Wall-clock seconds spent inside Execute (stage timings in
  /// `result.timing` cover the stages only; this includes everything).
  double total_s = 0;
};

}  // namespace ver

#endif  // VER_API_DISCOVERY_RESPONSE_H_
