// QueryObserver: typed streaming events for one pipeline execution.
//
// Ver::Execute (and VerServer workers on its behalf) report progress through
// this interface: each pipeline stage as it starts and finishes (with its
// wall-clock cost, the Fig. 4b components), and every candidate view as soon
// as it survives 4C classification — so a client sees its first view at
// CS+JGS+first-materialization latency instead of waiting for the whole
// funnel to drain. Pair with DiscoveryRequest::StopAfter(k) to stop the
// pipeline once k views have been delivered.
//
// Threading: events fire synchronously on the thread running Execute. When a
// request is submitted through VerServer, that is a worker thread, so an
// observer shared across tickets must be thread-safe. Events stop before
// QueryTicket::Wait returns (OnFinished is the last event).
//
// Delivery semantics: a streamed view is the pipeline's belief *at delivery
// time*. In a StopAfter run, distillation is re-evaluated as views
// materialize, so a view delivered early can in rare cases be pruned by a
// later, larger view; the DiscoveryResponse is the final truth. In a full
// (non-StopAfter) run, delivered views are exactly the surviving set.

#ifndef VER_API_QUERY_OBSERVER_H_
#define VER_API_QUERY_OBSERVER_H_

#include "engine/view.h"
#include "util/status.h"

namespace ver {

/// The stages of Algorithm 1, in execution order. kColumnSelection is
/// skipped for requests built from precomputed candidates; kVdIo only runs
/// when the configuration spills views; kDistillation only when distillation
/// is enabled for the request.
enum class PipelineStage {
  kColumnSelection,
  kJoinGraphSearch,
  kMaterialization,
  kVdIo,
  kDistillation,
  kRanking,
};

/// "COLUMN-SELECTION", "JOIN-GRAPH-SEARCH", ... (paper stage names).
const char* PipelineStageToString(PipelineStage stage);

/// Receiver of pipeline events. All callbacks default to no-ops, so an
/// observer overrides only what it cares about. Callbacks must not block for
/// long: they run inline on the pipeline thread and delay the query.
class QueryObserver {
 public:
  virtual ~QueryObserver() = default;

  /// The stage is about to run.
  virtual void OnStageStarted(PipelineStage /*stage*/) {}

  /// The stage finished; `elapsed_s` is its wall-clock cost in seconds
  /// (what PipelineTiming records for the same stage).
  virtual void OnStageFinished(PipelineStage /*stage*/, double /*elapsed_s*/) {}

  /// `view` survived distillation (or materialization, when distillation is
  /// off for this request). `delivery_index` counts from 0 in delivery
  /// order; `elapsed_s` is seconds since Execute was entered — the
  /// time-to-this-view latency that bench_streaming_latency measures.
  virtual void OnViewDelivered(const View& /*view*/, int /*delivery_index*/,
                               double /*elapsed_s*/) {}

  /// Always the last event: the request finished with `status` (OK,
  /// InvalidArgument, DeadlineExceeded or Cancelled). The full
  /// DiscoveryResponse is the return value of Execute / QueryTicket::Wait.
  virtual void OnFinished(const Status& /*status*/) {}
};

}  // namespace ver

#endif  // VER_API_QUERY_OBSERVER_H_
