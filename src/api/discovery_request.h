// DiscoveryRequest / RequestOverrides: the unified per-request protocol of
// the online pipeline.
//
// The server's VerConfig freezes every knob at construction; a
// DiscoveryRequest carries one query (QBE examples, or precomputed candidate
// columns from the keyword/attribute specification variants) together with
// the knobs that should differ *for this request only*: RequestOverrides is
// a sparse overlay of the online-pipeline options (theta, rho, top-k,
// distillation on/off, ...) that is validated and merged over the base
// VerConfig, plus a deadline and an optional StopAfter(k) early-termination
// signal. Ver::Execute is the single driver consuming requests; the legacy
// RunQuery/RunWithCandidates overloads are thin wrappers over it.

#ifndef VER_API_DISCOVERY_REQUEST_H_
#define VER_API_DISCOVERY_REQUEST_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ver.h"
#include "util/status.h"

namespace ver {

/// Unambiguous canonical key of one query: attribute order and hints
/// preserved, example values sorted within each attribute, every string
/// length-prefixed. That is exactly the set of transformations the
/// pipeline is invariant under: per-attribute hit counts (Algorithm 4) and
/// overlap ranking both aggregate over examples order-independently, while
/// duplicate examples and attribute order do change results
/// (tests/serving_test.cc guards the invariance). DiscoveryRequest
/// ::CanonicalKey builds on it; the serving cache keys with it.
std::string CanonicalQueryKey(const ExampleQuery& query);

/// Sparse per-request overlay of the online-pipeline knobs. An unset field
/// keeps the server's VerConfig value; a set field replaces it for this
/// request only. Offline/index knobs (DiscoveryOptions) are deliberately
/// absent — they are baked into the snapshot and cannot vary per request.
struct RequestOverrides {
  // --- COLUMN-SELECTION (Algorithm 4) ---
  std::optional<SelectionStrategy> selection_strategy;
  /// Keep clusters within the top-theta distinct score levels (>= 1).
  std::optional<int> theta;
  /// Jaccard threshold for clustering similarity edges, in [0, 1].
  std::optional<double> cluster_similarity_threshold;
  /// Edit-distance fallback for examples that match nothing.
  std::optional<bool> fuzzy_fallback;

  // --- JOIN-GRAPH-SEARCH (Algorithm 5) ---
  /// Maximum hops per inter-table route (the paper's rho, >= 1).
  std::optional<int> max_hops;
  /// Materialize this many top-ranked candidates; <= 0 means all.
  std::optional<int> expected_views;
  /// Guard on the candidate column-combination product (>= 1).
  std::optional<int64_t> max_combinations;

  // --- VIEW-DISTILLATION (Algorithm 3 / 4C) ---
  /// Run 4C at all (Algorithm 1 line 9); false = every view survives.
  std::optional<bool> run_distillation;
  /// Uniqueness ratio above which a column is a candidate key, in (0, 1].
  std::optional<double> key_uniqueness_threshold;
  /// Also try 2-column composite keys.
  std::optional<bool> composite_keys;

  /// Number of knobs (for per-knob usage counters, see ServerStats).
  static constexpr int kNumKnobs = 10;
  /// Stable human-readable knob name for counter i in [0, kNumKnobs).
  static const char* KnobName(int knob);
  /// Whether knob i is set on this request.
  bool knob_set(int knob) const;

  /// True when at least one knob is set.
  bool any() const;
  /// Number of set knobs.
  int count_set() const;

  /// OK, or InvalidArgument naming the out-of-range knob. Unset knobs are
  /// always valid.
  Status Validate() const;

  /// The base config with every set knob replaced — what the pipeline
  /// actually runs with.
  VerConfig MergedOver(const VerConfig& base) const;

  /// Appends an unambiguous canonical encoding of the *set* knobs (sorted
  /// fixed order, name=value), so two requests differing in any knob can
  /// never share a cache key.
  void AppendCanonicalKey(std::string* out) const;
};

/// One discovery request: the input (a QBE query, or precomputed candidate
/// columns plus the query used for overlap ranking), the per-request knobs,
/// and the execution controls (deadline, cancellation, early termination).
struct DiscoveryRequest {
  /// The QBE input — also the ranking query for candidate-based requests.
  ExampleQuery query;
  /// When `from_candidates` is true, COLUMN-SELECTION is skipped and these
  /// per-attribute candidates feed JOIN-GRAPH-SEARCH directly (the keyword /
  /// attribute specification variants).
  std::vector<ColumnSelectionResult> candidates;
  bool from_candidates = false;

  /// Per-request pipeline knobs, merged over the executing Ver's config.
  RequestOverrides overrides;

  /// Relative deadline in seconds from Execute/Submit entry. 0 (the
  /// default) = unset: no deadline under Execute, the server's
  /// default_deadline_s under VerServer::Submit. Negative = explicitly
  /// none: overrides the server default (the legacy Submit(query,
  /// deadline_s <= 0) contract).
  double deadline_s = 0;
  /// Absolute deadline; max() = none. When both deadlines are set the
  /// earlier one wins. Used by wrappers carrying a QueryControl.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation flag, owned by the caller; checked between
  /// stages (and between candidates in a StopAfter run).
  const std::atomic<bool>* cancel = nullptr;

  /// Early termination: stop the pipeline once this many views survive
  /// distillation, skipping materialization/distillation of the remaining
  /// ranked candidates. <= 0 = run to completion. With StopAfter set,
  /// candidates are processed strictly in rank order one at a time, so the
  /// response's views are a prefix of the full run's ranked view sequence.
  int stop_after = 0;

  static DiscoveryRequest ForQuery(ExampleQuery query);
  static DiscoveryRequest ForCandidates(
      std::vector<ColumnSelectionResult> per_attribute,
      ExampleQuery query_for_ranking);

  /// Fluent setters for the common controls.
  DiscoveryRequest& StopAfter(int k) {
    stop_after = k;
    return *this;
  }
  DiscoveryRequest& WithDeadline(double seconds) {
    deadline_s = seconds;
    return *this;
  }
  DiscoveryRequest& WithOverrides(RequestOverrides o) {
    overrides = std::move(o);
    return *this;
  }

  /// OK, or InvalidArgument describing the defect: empty query, an
  /// attribute with zero examples, attribute_hints/columns size mismatch
  /// (all via ExampleQuery::Validate), an out-of-range override, or a
  /// candidate-based request with no candidates.
  Status Validate() const;

  /// Canonical cache key of everything that determines the *result*: the
  /// canonicalized query, the set overrides, and stop_after. Deadlines and
  /// cancellation are execution controls and excluded (only successful
  /// results are cached). Candidate-based requests get a distinct marker
  /// and are never cached by VerServer (their candidates are not encoded).
  std::string CanonicalKey() const;
};

}  // namespace ver

#endif  // VER_API_DISCOVERY_REQUEST_H_
