// Ver::Execute — the one real online-pipeline driver (Algorithm 1).
//
// Every public entry point (the legacy RunQuery / RunWithCandidates
// overloads, VerServer workers) funnels into this function. It validates
// the request, merges its overrides over the base VerConfig, then runs
// COLUMN-SELECTION -> JOIN-GRAPH-SEARCH -> MATERIALIZER -> VD-IO ->
// VIEW-DISTILLATION -> ranking with deadline/cancellation checks at stage
// boundaries, streaming typed events to the observer.
//
// Two materialization modes share the same CandidateMaterializer (so their
// view sequences are bit-identical prefixes of each other):
//
//  * batch (stop_after <= 0): materialize all top-k ranked candidates, then
//    distill once — exactly the legacy pipeline.
//  * streaming (stop_after > 0): materialize ranked candidates one at a
//    time, re-evaluating distillation after each kept view and delivering
//    every newly-surviving view to the observer immediately; stop as soon
//    as stop_after views survive. Deadline/cancellation are additionally
//    checked between candidates, so long tails react faster than the
//    stage-boundary granularity of the batch mode.

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "api/discovery_request.h"
#include "api/discovery_response.h"
#include "api/query_observer.h"
#include "table/csv.h"
#include "util/timer.h"

namespace ver {

namespace {

// Reads one spilled view back from disk (the VD-IO / "Get Views Time" cost).
void ReloadSpilledView(View* view) {
  if (view == nullptr || view->spill_path.empty()) return;
  Result<Table> reloaded = ReadCsvFile(view->spill_path);
  if (reloaded.ok()) {
    std::string name = view->table.name();
    view->table = std::move(reloaded).value();
    view->table.set_name(std::move(name));
  }
}

}  // namespace

const char* PipelineStageToString(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kColumnSelection:
      return "COLUMN-SELECTION";
    case PipelineStage::kJoinGraphSearch:
      return "JOIN-GRAPH-SEARCH";
    case PipelineStage::kMaterialization:
      return "MATERIALIZER";
    case PipelineStage::kVdIo:
      return "VD-IO";
    case PipelineStage::kDistillation:
      return "VIEW-DISTILLATION";
    case PipelineStage::kRanking:
      return "ranking";
  }
  return "?";
}

DiscoveryResponse Ver::Execute(const DiscoveryRequest& request,
                               QueryObserver* observer) const {
  return ExecuteInternal(request, observer, nullptr);
}

DiscoveryResponse Ver::Execute(DiscoveryRequest&& request,
                               QueryObserver* observer) const {
  return ExecuteInternal(request, observer, &request.candidates);
}

DiscoveryResponse Ver::ExecuteInternal(
    const DiscoveryRequest& request, QueryObserver* observer,
    std::vector<ColumnSelectionResult>* stolen_candidates) const {
  WallTimer total_timer;
  DiscoveryResponse response;
  QueryResult& result = response.result;

  // Last event + total accounting on every exit path.
  auto done = [&]() -> DiscoveryResponse&& {
    response.total_s = total_timer.ElapsedSeconds();
    if (observer != nullptr) observer->OnFinished(response.status);
    return std::move(response);
  };
  // Non-OK responses carry no partial pipeline data.
  auto fail = [&](Status status) -> DiscoveryResponse&& {
    response.status = std::move(status);
    result = QueryResult();
    return done();
  };
  // Stage bracket: events + wall-clock accounting into a timing field.
  auto run_stage = [&](PipelineStage stage, double* sink, auto&& body) {
    if (observer != nullptr) observer->OnStageStarted(stage);
    WallTimer timer;
    body();
    double elapsed = timer.ElapsedSeconds();
    *sink += elapsed;
    if (observer != nullptr) observer->OnStageFinished(stage, elapsed);
  };

  Status valid = request.Validate();
  if (!valid.ok()) return fail(std::move(valid));

  VerConfig merged = request.overrides.MergedOver(config_);

  QueryControl control;
  control.deadline = request.deadline;
  control.cancel = request.cancel;
  if (request.deadline_s > 0) {
    auto relative =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(request.deadline_s));
    if (relative < control.deadline) control.deadline = relative;
  }

  // ---------------------------------------------------------- COLUMN-SELECTION
  if (request.from_candidates) {
    result.selection = stolen_candidates != nullptr
                           ? std::move(*stolen_candidates)
                           : request.candidates;
  } else {
    Status st = control.Check("COLUMN-SELECTION");
    if (!st.ok()) return fail(std::move(st));
    run_stage(PipelineStage::kColumnSelection,
              &result.timing.column_selection_s, [&] {
                // Candidate discovery scatters this query across every
                // engine shard; count it before the fan-out so the
                // per-shard counters include queries that fail later.
                engine_->NoteCandidateDiscovery();
                result.selection = SelectColumnsForQuery(
                    *engine_, request.query, merged.selection);
              });
  }

  // ---------------------------------------------------------- JOIN-GRAPH-SEARCH
  JoinGraphSearchOptions search_options = merged.search;
  search_options.materialize_views = false;  // timed separately below
  const bool spilling = !merged.spill_dir.empty();
  if (spilling) {
    // Each query spills into its own subdirectory, so concurrent queries
    // never read or overwrite each other's spill files.
    search_options.materialize.spill_dir = NextSpillDir();
  }

  {
    Status st = control.Check("JOIN-GRAPH-SEARCH");
    if (!st.ok()) return fail(std::move(st));
  }
  run_stage(PipelineStage::kJoinGraphSearch,
            &result.timing.join_graph_search_s, [&] {
              result.search =
                  SearchJoinGraphs(*engine_, result.selection, search_options);
            });

  // ---------------------------------------------- MATERIALIZER .. DISTILLATION
  // Tracks which view indices already produced an OnViewDelivered event.
  std::vector<char> delivered;
  auto deliver_surviving = [&](const std::vector<View>& views,
                               const std::vector<int>& surviving) {
    delivered.resize(views.size(), 0);
    for (int idx : surviving) {
      if (delivered[static_cast<size_t>(idx)]) continue;
      delivered[static_cast<size_t>(idx)] = 1;
      if (observer != nullptr) {
        observer->OnViewDelivered(views[static_cast<size_t>(idx)],
                                  response.views_delivered,
                                  total_timer.ElapsedSeconds());
      }
      ++response.views_delivered;
    }
  };
  auto synthesize_no_distillation = [&](size_t num_views) {
    // Without distillation every view survives.
    result.distillation = DistillationResult();
    for (size_t i = 0; i < num_views; ++i) {
      result.distillation.surviving.push_back(static_cast<int>(i));
    }
    result.distillation.count_after_compatible =
        static_cast<int64_t>(num_views);
    result.distillation.count_after_contained =
        static_cast<int64_t>(num_views);
  };
  auto cleanup_spill = [&]() {
    if (!spilling || !merged.cleanup_spilled_views) return;
    // Serving mode: drop this query's spill subdirectory now that the views
    // are back in memory, so disk use stays bounded under sustained traffic
    // (untimed — cleanup is not a paper cost).
    std::error_code ec;
    std::filesystem::remove_all(search_options.materialize.spill_dir, ec);
    for (View& v : result.views) v.spill_path.clear();
  };

  if (request.stop_after <= 0) {
    // ----- Batch mode: the legacy pipeline, one stage after the other.
    {
      Status st = control.Check("MATERIALIZER");
      if (!st.ok()) return fail(std::move(st));
    }
    run_stage(PipelineStage::kMaterialization, &result.timing.materialize_s,
              [&] {
                result.views = MaterializeCandidates(
                    *repo_, result.search.candidates, search_options,
                    &result.search.num_materialization_failures);
              });

    if (spilling) {
      // Read the spilled views back from disk — distillation's input IO
      // cost ("Get Views Time" in Fig. 3 / VD-IO in Fig. 4b).
      Status st = control.Check("VD-IO");
      if (!st.ok()) return fail(std::move(st));
      run_stage(PipelineStage::kVdIo, &result.timing.vd_io_s, [&] {
        for (View& v : result.views) ReloadSpilledView(&v);
      });
      cleanup_spill();
    }

    {
      Status st = control.Check("VIEW-DISTILLATION");
      if (!st.ok()) return fail(std::move(st));
    }
    if (merged.run_distillation) {
      run_stage(PipelineStage::kDistillation, &result.timing.four_c_s, [&] {
        result.distillation = DistillViews(result.views, merged.distillation);
      });
    } else {
      synthesize_no_distillation(result.views.size());
    }
    deliver_surviving(result.views, result.distillation.surviving);
  } else {
    // ----- Streaming mode: one candidate at a time, stop at stop_after
    // surviving views. Candidates are processed strictly in rank order and
    // CandidateMaterializer is the same machinery batch mode uses, so the
    // views produced here are a prefix of the batch run's view sequence.
    // Stage events: one kMaterialization bracket spans the interleaved
    // loop; VD-IO and distillation costs still land in their timing fields.
    int64_t limit =
        search_options.expected_views <= 0
            ? static_cast<int64_t>(result.search.candidates.size())
            : std::min<int64_t>(search_options.expected_views,
                                result.search.candidates.size());
    if (observer != nullptr) {
      observer->OnStageStarted(PipelineStage::kMaterialization);
    }
    WallTimer loop_timer;
    // Every started stage finishes, even when a deadline/cancellation
    // aborts the loop — observers may pair the events.
    auto close_stage = [&] {
      if (observer != nullptr) {
        observer->OnStageFinished(PipelineStage::kMaterialization,
                                  loop_timer.ElapsedSeconds());
      }
    };
    CandidateMaterializer incremental(repo_, search_options.materialize);
    for (int64_t i = 0; i < limit; ++i) {
      Status st = control.Check("MATERIALIZER");
      if (!st.ok()) {
        close_stage();
        return fail(std::move(st));
      }
      bool kept;
      {
        ScopedTimer timer(&result.timing.materialize_s);
        kept = incremental.Materialize(result.search.candidates[i]);
      }
      if (!kept) continue;
      if (spilling) {
        // VD-IO per view: distillation below must read the reloaded data,
        // exactly as the batch mode's bulk reload stage guarantees.
        ScopedTimer timer(&result.timing.vd_io_s);
        ReloadSpilledView(incremental.mutable_last_view());
      }
      std::vector<int> surviving_now;
      if (merged.run_distillation) {
        ScopedTimer timer(&result.timing.four_c_s);
        result.distillation =
            DistillViews(incremental.views(), merged.distillation);
        surviving_now = result.distillation.surviving;
      } else {
        synthesize_no_distillation(incremental.views().size());
        surviving_now = result.distillation.surviving;
      }
      deliver_surviving(incremental.views(), surviving_now);
      if (static_cast<int>(surviving_now.size()) >= request.stop_after) {
        response.early_terminated = i + 1 < limit;
        break;
      }
    }
    // With distillation off the loop synthesized the result after every
    // kept view (and the zero-view case equals a default DistillationResult),
    // so the distillation field is already consistent here either way.
    result.search.num_materialization_failures += incremental.num_failures();
    result.views = incremental.TakeViews();
    cleanup_spill();
    close_stage();
  }

  // ------------------------------------------------------------------ ranking
  // Automatic mode (Algorithm 1 line 13): overlap-based ranking of the
  // surviving views.
  {
    Status st = control.Check("ranking");
    if (!st.ok()) return fail(std::move(st));
  }
  // Ranking is not a Fig. 4b component, so its cost is reported through the
  // stage event only, never added to PipelineTiming.
  double ranking_s = 0;
  run_stage(PipelineStage::kRanking, &ranking_s, [&] {
    std::vector<View> survivors;
    survivors.reserve(result.distillation.surviving.size());
    for (int idx : result.distillation.surviving) {
      // Rank on a lightweight copy; indices refer back to result.views.
      survivors.push_back(result.views[idx]);
    }
    std::vector<OverlapRankedView> ranked =
        RankViewsByOverlap(survivors, request.query);
    for (OverlapRankedView& r : ranked) {
      r.view_index = result.distillation.surviving[r.view_index];
    }
    result.automatic_ranking = std::move(ranked);
  });

  return done();
}

}  // namespace ver
