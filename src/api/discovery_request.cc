#include "api/discovery_request.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace ver {

namespace {

// Length-prefixed append keeps keys unambiguous regardless of the bytes in
// the value (a value may contain any delimiter).
void AppendString(const std::string& s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

// Canonical knob order. Keep in sync with KnobName/knob_set/
// AppendCanonicalKey: the index is the public counter id in ServerStats.
constexpr const char* kKnobNames[RequestOverrides::kNumKnobs] = {
    "selection_strategy",
    "theta",
    "cluster_similarity_threshold",
    "fuzzy_fallback",
    "max_hops",
    "expected_views",
    "max_combinations",
    "run_distillation",
    "key_uniqueness_threshold",
    "composite_keys",
};

// Doubles canonicalize through their exact bit pattern: two requests whose
// thresholds differ in any bit must never share a cache key, and "%g"-style
// text would collapse nearby values.
std::string DoubleKey(double v) {
  static_assert(sizeof(double) == sizeof(uint64_t), "unexpected double size");
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return std::to_string(bits);
}

}  // namespace

std::string CanonicalQueryKey(const ExampleQuery& query) {
  std::string key;
  for (size_t a = 0; a < query.columns.size(); ++a) {
    key.push_back('A');
    AppendString(a < query.attribute_hints.size() ? query.attribute_hints[a]
                                                  : std::string(),
                 &key);
    std::vector<std::string> values = query.columns[a];
    std::sort(values.begin(), values.end());
    for (const std::string& v : values) {
      key.push_back('v');
      AppendString(v, &key);
    }
  }
  return key;
}

const char* RequestOverrides::KnobName(int knob) {
  if (knob < 0 || knob >= kNumKnobs) return "?";
  return kKnobNames[knob];
}

bool RequestOverrides::knob_set(int knob) const {
  switch (knob) {
    case 0:
      return selection_strategy.has_value();
    case 1:
      return theta.has_value();
    case 2:
      return cluster_similarity_threshold.has_value();
    case 3:
      return fuzzy_fallback.has_value();
    case 4:
      return max_hops.has_value();
    case 5:
      return expected_views.has_value();
    case 6:
      return max_combinations.has_value();
    case 7:
      return run_distillation.has_value();
    case 8:
      return key_uniqueness_threshold.has_value();
    case 9:
      return composite_keys.has_value();
    default:
      return false;
  }
}

bool RequestOverrides::any() const { return count_set() > 0; }

int RequestOverrides::count_set() const {
  int n = 0;
  for (int i = 0; i < kNumKnobs; ++i) {
    if (knob_set(i)) ++n;
  }
  return n;
}

Status RequestOverrides::Validate() const {
  if (theta.has_value() && *theta < 1) {
    return Status::InvalidArgument(
        "override theta must be >= 1 (got " + std::to_string(*theta) + ")");
  }
  if (cluster_similarity_threshold.has_value() &&
      (*cluster_similarity_threshold < 0.0 ||
       *cluster_similarity_threshold > 1.0)) {
    return Status::InvalidArgument(
        "override cluster_similarity_threshold must be in [0, 1] (got " +
        std::to_string(*cluster_similarity_threshold) + ")");
  }
  if (max_hops.has_value() && *max_hops < 1) {
    return Status::InvalidArgument(
        "override max_hops (rho) must be >= 1 (got " +
        std::to_string(*max_hops) + ")");
  }
  if (max_combinations.has_value() && *max_combinations < 1) {
    return Status::InvalidArgument(
        "override max_combinations must be >= 1 (got " +
        std::to_string(*max_combinations) + ")");
  }
  if (key_uniqueness_threshold.has_value() &&
      (*key_uniqueness_threshold <= 0.0 || *key_uniqueness_threshold > 1.0)) {
    return Status::InvalidArgument(
        "override key_uniqueness_threshold must be in (0, 1] (got " +
        std::to_string(*key_uniqueness_threshold) + ")");
  }
  // selection_strategy, fuzzy_fallback, expected_views (<=0 means "all"),
  // run_distillation and composite_keys accept their whole domain.
  return Status::OK();
}

VerConfig RequestOverrides::MergedOver(const VerConfig& base) const {
  VerConfig merged = base;
  if (selection_strategy.has_value()) {
    merged.selection.strategy = *selection_strategy;
  }
  if (theta.has_value()) merged.selection.theta = *theta;
  if (cluster_similarity_threshold.has_value()) {
    merged.selection.cluster_similarity_threshold =
        *cluster_similarity_threshold;
  }
  if (fuzzy_fallback.has_value()) {
    merged.selection.fuzzy_fallback = *fuzzy_fallback;
  }
  if (max_hops.has_value()) merged.search.max_hops = *max_hops;
  if (expected_views.has_value()) merged.search.expected_views = *expected_views;
  if (max_combinations.has_value()) {
    merged.search.max_combinations = *max_combinations;
  }
  if (run_distillation.has_value()) {
    merged.run_distillation = *run_distillation;
  }
  if (key_uniqueness_threshold.has_value()) {
    merged.distillation.key_uniqueness_threshold = *key_uniqueness_threshold;
  }
  if (composite_keys.has_value()) {
    merged.distillation.composite_keys = *composite_keys;
  }
  return merged;
}

void RequestOverrides::AppendCanonicalKey(std::string* out) const {
  // Only set knobs are encoded (name=value, fixed order), so an unset knob
  // and an explicitly-set default value get different keys — a harmless
  // extra cache miss, never an alias.
  if (selection_strategy.has_value()) {
    out->append(";selection_strategy=");
    out->append(std::to_string(static_cast<int>(*selection_strategy)));
  }
  if (theta.has_value()) {
    out->append(";theta=");
    out->append(std::to_string(*theta));
  }
  if (cluster_similarity_threshold.has_value()) {
    out->append(";cluster_similarity_threshold=");
    out->append(DoubleKey(*cluster_similarity_threshold));
  }
  if (fuzzy_fallback.has_value()) {
    out->append(";fuzzy_fallback=");
    out->append(*fuzzy_fallback ? "1" : "0");
  }
  if (max_hops.has_value()) {
    out->append(";max_hops=");
    out->append(std::to_string(*max_hops));
  }
  if (expected_views.has_value()) {
    out->append(";expected_views=");
    out->append(std::to_string(*expected_views));
  }
  if (max_combinations.has_value()) {
    out->append(";max_combinations=");
    out->append(std::to_string(*max_combinations));
  }
  if (run_distillation.has_value()) {
    out->append(";run_distillation=");
    out->append(*run_distillation ? "1" : "0");
  }
  if (key_uniqueness_threshold.has_value()) {
    out->append(";key_uniqueness_threshold=");
    out->append(DoubleKey(*key_uniqueness_threshold));
  }
  if (composite_keys.has_value()) {
    out->append(";composite_keys=");
    out->append(*composite_keys ? "1" : "0");
  }
}

DiscoveryRequest DiscoveryRequest::ForQuery(ExampleQuery query) {
  DiscoveryRequest request;
  request.query = std::move(query);
  return request;
}

DiscoveryRequest DiscoveryRequest::ForCandidates(
    std::vector<ColumnSelectionResult> per_attribute,
    ExampleQuery query_for_ranking) {
  DiscoveryRequest request;
  request.candidates = std::move(per_attribute);
  request.query = std::move(query_for_ranking);
  request.from_candidates = true;
  return request;
}

Status DiscoveryRequest::Validate() const {
  if (from_candidates) {
    if (candidates.empty()) {
      return Status::InvalidArgument(
          "candidate-based request carries no candidate columns");
    }
  } else {
    VER_RETURN_IF_ERROR(query.Validate());
  }
  return overrides.Validate();
}

std::string DiscoveryRequest::CanonicalKey() const {
  std::string key = from_candidates ? "c|" : "q|";
  key += CanonicalQueryKey(query);
  key += "|o:";
  overrides.AppendCanonicalKey(&key);
  if (stop_after > 0) {
    key += "|stop:";
    key += std::to_string(stop_after);
  }
  return key;
}

}  // namespace ver
