#include "core/view_union.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"

namespace ver {

namespace {

std::string KeyLabel(const std::vector<std::string>& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += "+";
    out += key[i];
  }
  return out;
}

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

// Merges a group of same-schema views into one table (set semantics).
// Columns are reordered to the first view's schema by attribute name.
Table MergeGroup(const std::vector<View>& views,
                 const std::vector<int>& group, const std::string& name) {
  const Table& first = views[group.front()].table;
  Table out(name, first.schema());
  std::unordered_set<uint64_t> seen;
  for (int v : group) {
    const Table& t = views[v].table;
    // Map each of the first view's columns to this view's column index.
    std::vector<int> mapping(first.num_columns(), -1);
    for (int c = 0; c < first.num_columns(); ++c) {
      mapping[c] = t.schema().IndexOf(first.schema().attribute(c).name);
    }
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      // Hash first through the typed columns (cached dictionary hashes);
      // only rows that survive dedup materialize cell views.
      uint64_t h = 0x756e696f6eULL;
      for (int c : mapping) {
        h = HashCombine(h, c >= 0 ? t.cell_hash(r, c) : kNullValueHash);
      }
      if (seen.insert(h).second) {
        std::vector<CellView> row;
        row.reserve(mapping.size());
        for (int c : mapping) {
          row.push_back(c >= 0 ? t.cell(r, c) : CellView::Null());
        }
        (void)out.AppendCells(row);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<UnionedView> UnionComplementaryViews(
    const std::vector<View>& views, const DistillationResult& distillation,
    KeyChoice choice) {
  // Block structure over surviving views.
  std::map<std::string, std::vector<int>> blocks;
  for (int v : distillation.surviving) {
    blocks[views[v].table.schema().CanonicalSignature()].push_back(v);
  }

  // Complementary pairs per key label.
  std::map<std::string, std::vector<std::pair<int, int>>> comp_by_key;
  std::map<std::string, std::vector<std::string>> key_by_label;
  for (const ViewEdge& e : distillation.edges) {
    if (e.relation != ViewRelation::kComplementary) continue;
    std::string label = KeyLabel(e.key);
    comp_by_key[label].push_back({e.view_a, e.view_b});
    key_by_label.emplace(label, e.key);
  }

  std::vector<UnionedView> out;
  for (const auto& [sig, members] : blocks) {
    (void)sig;
    // Candidate key labels available in this block.
    std::set<std::string> labels;
    for (int v : members) {
      for (const auto& key : distillation.view_keys[v]) {
        labels.insert(KeyLabel(key));
      }
    }

    std::unordered_map<int, int> local;
    for (size_t i = 0; i < members.size(); ++i) {
      local[members[i]] = static_cast<int>(i);
    }

    // Evaluate every key; remember the best/worst by component count.
    std::string chosen_label;
    std::vector<int> chosen_roots;
    int64_t chosen_count = -1;
    for (const std::string& label : labels) {
      UnionFind uf(static_cast<int>(members.size()));
      auto it = comp_by_key.find(label);
      if (it != comp_by_key.end()) {
        for (const auto& [a, b] : it->second) {
          auto la = local.find(a);
          auto lb = local.find(b);
          if (la != local.end() && lb != local.end()) {
            uf.Union(la->second, lb->second);
          }
        }
      }
      std::set<int> roots;
      std::vector<int> root_of(members.size());
      for (size_t i = 0; i < members.size(); ++i) {
        root_of[i] = uf.Find(static_cast<int>(i));
        roots.insert(root_of[i]);
      }
      auto count = static_cast<int64_t>(roots.size());
      bool better = chosen_count < 0 ||
                    (choice == KeyChoice::kBestCase ? count < chosen_count
                                                    : count > chosen_count);
      if (better) {
        chosen_count = count;
        chosen_label = label;
        chosen_roots = root_of;
      }
    }

    if (chosen_count < 0) {
      // No candidate keys: pass members through untouched.
      for (int v : members) {
        UnionedView uv;
        uv.table = views[v].table;
        uv.sources = {v};
        out.push_back(std::move(uv));
      }
      continue;
    }

    // Materialize the components under the chosen key.
    std::map<int, std::vector<int>> groups;
    for (size_t i = 0; i < members.size(); ++i) {
      groups[chosen_roots[i]].push_back(members[i]);
    }
    for (auto& [_, group] : groups) {
      std::sort(group.begin(), group.end());
      UnionedView uv;
      uv.sources = group;
      if (group.size() == 1) {
        uv.table = views[group.front()].table;
      } else {
        uv.key = key_by_label[chosen_label];
        std::string name = "union";
        for (int v : group) name += "_" + std::to_string(views[v].id);
        uv.table = MergeGroup(views, group, name);
      }
      out.push_back(std::move(uv));
    }
  }
  return out;
}

}  // namespace ver
