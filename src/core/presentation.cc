#include "core/presentation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace ver {

const char* QuestionInterfaceToString(QuestionInterface i) {
  switch (i) {
    case QuestionInterface::kDataset:
      return "dataset";
    case QuestionInterface::kAttribute:
      return "attribute";
    case QuestionInterface::kDatasetPair:
      return "dataset-pair";
    case QuestionInterface::kSummary:
      return "summary";
  }
  return "unknown";
}

namespace {

std::unordered_set<std::string> TokensOfQuery(const ExampleQuery& query) {
  std::unordered_set<std::string> tokens;
  for (const auto& col : query.columns) {
    for (const std::string& v : col) {
      for (std::string& t : Tokenize(v)) tokens.insert(std::move(t));
    }
  }
  for (const std::string& hint : query.attribute_hints) {
    for (std::string& t : Tokenize(hint)) tokens.insert(std::move(t));
  }
  return tokens;
}

double TokenJaccardDistance(const std::unordered_set<std::string>& a,
                            const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (const std::string& t : small) inter += large.count(t);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0
                  : 1.0 - static_cast<double>(inter) /
                              static_cast<double>(uni);
}

}  // namespace

PresentationSession::PresentationSession(
    const std::vector<View>* views, const DistillationResult* distillation,
    const ExampleQuery* query, const PresentationOptions& options)
    : views_(views),
      distillation_(distillation),
      query_(query),
      options_(options),
      rng_(options.seed) {
  remaining_.insert(distillation_->surviving.begin(),
                    distillation_->surviving.end());
}

bool PresentationSession::Done() const { return remaining_.size() <= 1; }

double PresentationSession::AnswerLikelihood(
    QuestionInterface interface_kind) const {
  const ArmStats& s = arms_[static_cast<int>(interface_kind)];
  // Laplace-smoothed answer rate.
  return (s.answered + 1.0) / (s.pulls + 2.0);
}

int PresentationSession::InfoGain(QuestionInterface interface_kind) {
  Question q;
  Question* out = &q;
  return BestQuestion(interface_kind, out) ? q.info_gain : 0;
}

double PresentationSession::QuestionDistance(const Question& q) const {
  std::unordered_set<std::string> question_tokens;
  if (options_.prioritization == PrioritizationStrategy::kSchemaDistance &&
      q.view_index >= 0) {
    for (const Attribute& a :
         (*views_)[q.view_index].table.schema().attributes()) {
      for (std::string& t : Tokenize(a.name)) {
        question_tokens.insert(std::move(t));
      }
    }
  } else {
    for (std::string& t : Tokenize(q.attribute)) {
      question_tokens.insert(std::move(t));
    }
    for (const std::string& s : q.summary_tokens) {
      question_tokens.insert(s);
    }
    if (question_tokens.empty() && q.view_index >= 0) {
      for (const Attribute& a :
           (*views_)[q.view_index].table.schema().attributes()) {
        for (std::string& t : Tokenize(a.name)) {
          question_tokens.insert(std::move(t));
        }
      }
    }
  }
  return TokenJaccardDistance(question_tokens, TokensOfQuery(*query_));
}

bool PresentationSession::BestQuestion(QuestionInterface interface_kind,
                                       Question* out) {
  const int64_t remaining_count = static_cast<int64_t>(remaining_.size());
  if (remaining_count <= 1) return false;

  switch (interface_kind) {
    case QuestionInterface::kDataset: {
      // Show the best-scored not-yet-shown candidate.
      int best = -1;
      double best_score = -1e300;
      for (int v : remaining_) {
        if (shown_datasets_.count(v)) continue;
        double s = (*views_)[v].score;
        if (s > best_score || (s == best_score && v < best)) {
          best_score = s;
          best = v;
        }
      }
      if (best < 0) return false;
      out->interface_kind = interface_kind;
      out->view_index = best;
      out->info_gain = static_cast<int>(remaining_count - 1);
      out->prompt = "Does this view satisfy your requirements? [" +
                    (*views_)[best].table.name() + ": " +
                    (*views_)[best].table.schema().ToString() + "]";
      return true;
    }

    case QuestionInterface::kAttribute: {
      // Count attribute presence across remaining views.
      std::map<std::string, int> attr_count;
      for (int v : remaining_) {
        std::unordered_set<std::string> seen;
        for (const Attribute& a : (*views_)[v].table.schema().attributes()) {
          if (!a.has_name()) continue;
          std::string name = ToLower(a.name);
          if (seen.insert(name).second) attr_count[name] += 1;
        }
      }
      std::string best_attr;
      int best_gain = 0;
      double best_distance = 2.0;
      for (const auto& [name, count] : attr_count) {
        if (count == 0 || count == remaining_count) continue;  // not useful
        if (asked_attributes_.count(name)) continue;
        int gain =
            static_cast<int>(std::max<int64_t>(count, remaining_count - count));
        Question probe;
        probe.attribute = name;
        double distance = QuestionDistance(probe);
        if (gain > best_gain ||
            (gain == best_gain && distance < best_distance)) {
          best_gain = gain;
          best_attr = name;
          best_distance = distance;
        }
      }
      if (best_attr.empty()) return false;
      out->interface_kind = interface_kind;
      out->attribute = best_attr;
      out->info_gain = best_gain;
      out->prompt =
          "Should the output contain attribute '" + best_attr + "'?";
      return true;
    }

    case QuestionInterface::kDatasetPair: {
      // Use the most discriminative live contradiction from 4C.
      int best_idx = -1;
      int best_gain = 0;
      std::vector<std::vector<int>> best_groups;
      for (size_t ci = 0; ci < distillation_->contradictions.size(); ++ci) {
        if (used_contradictions_.count(static_cast<int>(ci))) continue;
        std::vector<std::vector<int>> groups;
        for (const auto& g : distillation_->contradictions[ci].groups) {
          std::vector<int> alive;
          for (int v : g) {
            if (remaining_.count(v)) alive.push_back(v);
          }
          if (!alive.empty()) groups.push_back(std::move(alive));
        }
        if (groups.size() < 2) continue;
        int total = 0, smallest = 1 << 30;
        for (const auto& g : groups) {
          total += static_cast<int>(g.size());
          smallest = std::min(smallest, static_cast<int>(g.size()));
        }
        int gain = total - smallest;  // best achievable prune
        if (gain > best_gain) {
          best_gain = gain;
          best_idx = static_cast<int>(ci);
          best_groups = std::move(groups);
        }
      }
      if (best_idx < 0) return false;
      // Representatives from the two largest sides.
      std::sort(best_groups.begin(), best_groups.end(),
                [](const std::vector<int>& a, const std::vector<int>& b) {
                  return a.size() > b.size();
                });
      const Contradiction& contra = distillation_->contradictions[best_idx];
      out->interface_kind = interface_kind;
      out->view_a = best_groups[0].front();
      out->view_b = best_groups[1].front();
      out->contradiction_index = best_idx;
      out->info_gain = best_gain;
      std::string key_label;
      for (size_t i = 0; i < contra.key.size(); ++i) {
        if (i) key_label += "+";
        key_label += contra.key[i];
      }
      out->prompt = "These views disagree on key '" + key_label + "' = '" +
                    contra.key_value_text +
                    "'. Which one matches your expectation?";
      return true;
    }

    case QuestionInterface::kSummary: {
      // Clusters = schema blocks over the remaining views.
      std::map<std::string, std::vector<int>> clusters;
      for (int v : remaining_) {
        clusters[(*views_)[v].table.schema().CanonicalSignature()].push_back(
            v);
      }
      std::string best_sig;
      int best_gain = 0;
      for (const auto& [sig, members] : clusters) {
        int64_t size = static_cast<int64_t>(members.size());
        if (size == 0 || size == remaining_count) continue;
        if (asked_summaries_.count(sig)) continue;
        int gain = static_cast<int>(
            std::max<int64_t>(size, remaining_count - size));
        if (gain > best_gain) {
          best_gain = gain;
          best_sig = sig;
        }
      }
      if (best_sig.empty()) return false;
      out->interface_kind = interface_kind;
      out->summary_views = clusters[best_sig];
      out->info_gain = best_gain;
      // Wordcloud: attribute tokens plus a few sample value tokens.
      std::map<std::string, int> token_freq;
      for (int v : out->summary_views) {
        const Table& t = (*views_)[v].table;
        for (const Attribute& a : t.schema().attributes()) {
          for (std::string& tok : Tokenize(a.name)) token_freq[tok] += 3;
        }
        int64_t sample = std::min<int64_t>(t.num_rows(), 5);
        for (int64_t r = 0; r < sample; ++r) {
          for (int c = 0; c < t.num_columns(); ++c) {
            for (std::string& tok : Tokenize(t.cell(r, c).ToText())) {
              token_freq[tok] += 1;
            }
          }
        }
      }
      std::vector<std::pair<int, std::string>> ranked;
      for (auto& [tok, freq] : token_freq) ranked.push_back({freq, tok});
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      for (size_t i = 0; i < ranked.size() && i < 12; ++i) {
        out->summary_tokens.push_back(ranked[i].second);
      }
      out->prompt =
          "Is this group of " + std::to_string(out->summary_views.size()) +
          " views relevant to your task? (wordcloud: " +
          Join(out->summary_tokens, " ") + ")";
      return true;
    }
  }
  return false;
}

std::vector<double> PresentationSession::ArmProbabilities() {
  std::vector<double> p(kNumQuestionInterfaces, 0.0);
  // Bootstrap: pure exploration until every arm has enough pulls
  // (O(log |I|) pulls give an accurate r estimate, per the paper).
  bool bootstrap = false;
  for (const ArmStats& s : arms_) {
    if (s.pulls < options_.bootstrap_pulls_per_arm) bootstrap = true;
  }
  std::vector<double> w(kNumQuestionInterfaces, 0.0);
  double total = 0.0;
  for (int i = 0; i < kNumQuestionInterfaces; ++i) {
    double chi = static_cast<double>(
        InfoGain(static_cast<QuestionInterface>(i)));
    double r = AnswerLikelihood(static_cast<QuestionInterface>(i));
    w[i] = r * chi;
    total += w[i];
  }
  for (int i = 0; i < kNumQuestionInterfaces; ++i) {
    if (bootstrap || total <= 0.0) {
      p[i] = 1.0 / kNumQuestionInterfaces;
    } else {
      p[i] = (1.0 - options_.gamma) * (w[i] / total) +
             options_.gamma / kNumQuestionInterfaces;
    }
  }
  return p;
}

double PresentationSession::ArmProbability(QuestionInterface interface_kind) {
  return ArmProbabilities()[static_cast<int>(interface_kind)];
}

Question PresentationSession::NextQuestion() {
  std::vector<double> p = ArmProbabilities();
  // Sample an arm, then fall back across arms by descending probability if
  // the sampled one has no question to ask.
  std::vector<int> order(kNumQuestionInterfaces);
  for (int i = 0; i < kNumQuestionInterfaces; ++i) order[i] = i;
  double draw = rng_.UniformDouble();
  int sampled = kNumQuestionInterfaces - 1;
  double acc = 0.0;
  for (int i = 0; i < kNumQuestionInterfaces; ++i) {
    acc += p[i];
    if (draw <= acc) {
      sampled = i;
      break;
    }
  }
  std::sort(order.begin(), order.end(), [&p](int a, int b) {
    if (p[a] != p[b]) return p[a] > p[b];
    return a < b;
  });
  // Try the sampled arm first, then the rest.
  std::vector<int> attempt{sampled};
  for (int i : order) {
    if (i != sampled) attempt.push_back(i);
  }
  Question q;
  for (int arm : attempt) {
    if (BestQuestion(static_cast<QuestionInterface>(arm), &q)) {
      ++num_asked_;
      return q;
    }
  }
  // Nothing to ask anywhere; return an empty dataset question.
  q.interface_kind = QuestionInterface::kDataset;
  q.info_gain = 0;
  ++num_asked_;
  return q;
}

void PresentationSession::ApplyAnswer(const LoggedAnswer& entry) {
  const Question& q = entry.question;
  const Answer& a = entry.answer;
  if (a.type == AnswerType::kSkip) return;
  switch (q.interface_kind) {
    case QuestionInterface::kDataset: {
      if (q.view_index < 0) return;
      if (a.type == AnswerType::kYes) {
        if (remaining_.count(q.view_index)) {
          remaining_.clear();
          remaining_.insert(q.view_index);
        }
      } else if (a.type == AnswerType::kNo) {
        remaining_.erase(q.view_index);
      }
      return;
    }
    case QuestionInterface::kAttribute: {
      std::vector<int> to_erase;
      for (int v : remaining_) {
        bool has = (*views_)[v].table.schema().IndexOf(q.attribute) >= 0;
        bool want = a.type == AnswerType::kYes;
        if (has != want) to_erase.push_back(v);
      }
      // Never erase everything: an answer inconsistent with every candidate
      // keeps the set intact (the ranking still records the signal).
      if (to_erase.size() < remaining_.size()) {
        for (int v : to_erase) remaining_.erase(v);
      }
      return;
    }
    case QuestionInterface::kDatasetPair: {
      if (q.contradiction_index < 0 ||
          q.contradiction_index >=
              static_cast<int>(distillation_->contradictions.size())) {
        return;
      }
      const Contradiction& contra =
          distillation_->contradictions[q.contradiction_index];
      int chosen = a.type == AnswerType::kPickA ? q.view_a : q.view_b;
      // Keep the side containing the chosen view; prune other sides.
      const std::vector<int>* keep_group = nullptr;
      for (const auto& g : contra.groups) {
        if (std::find(g.begin(), g.end(), chosen) != g.end()) {
          keep_group = &g;
          break;
        }
      }
      if (keep_group == nullptr) return;
      for (const auto& g : contra.groups) {
        if (&g == keep_group) continue;
        for (int v : g) {
          if (std::find(keep_group->begin(), keep_group->end(), v) ==
              keep_group->end()) {
            remaining_.erase(v);
          }
        }
      }
      return;
    }
    case QuestionInterface::kSummary: {
      std::unordered_set<int> cluster(q.summary_views.begin(),
                                      q.summary_views.end());
      std::vector<int> to_erase;
      for (int v : remaining_) {
        bool in_cluster = cluster.count(v) > 0;
        bool keep = (a.type == AnswerType::kYes) == in_cluster;
        if (!keep) to_erase.push_back(v);
      }
      if (to_erase.size() < remaining_.size()) {
        for (int v : to_erase) remaining_.erase(v);
      }
      return;
    }
  }
}

void PresentationSession::SubmitAnswer(const Question& question,
                                       const Answer& answer) {
  ArmStats& stats = arms_[static_cast<int>(question.interface_kind)];
  stats.pulls += 1;
  if (answer.type == AnswerType::kSkip) return;
  stats.answered += 1;

  // Mark the question consumed so it is not asked again.
  switch (question.interface_kind) {
    case QuestionInterface::kDataset:
      if (question.view_index >= 0) shown_datasets_.insert(question.view_index);
      break;
    case QuestionInterface::kAttribute:
      asked_attributes_.insert(question.attribute);
      break;
    case QuestionInterface::kDatasetPair:
      if (question.contradiction_index >= 0) {
        used_contradictions_.insert(question.contradiction_index);
      }
      break;
    case QuestionInterface::kSummary: {
      if (!question.summary_views.empty()) {
        asked_summaries_.insert((*views_)[question.summary_views.front()]
                                    .table.schema()
                                    .CanonicalSignature());
      }
      break;
    }
  }

  answer_log_.push_back(LoggedAnswer{question, answer});
  ApplyAnswer(answer_log_.back());
}

void PresentationSession::ReplayLog() {
  remaining_.clear();
  remaining_.insert(distillation_->surviving.begin(),
                    distillation_->surviving.end());
  for (const LoggedAnswer& entry : answer_log_) ApplyAnswer(entry);
}

void PresentationSession::RetractAnswer(int answer_index) {
  if (answer_index < 0 ||
      answer_index >= static_cast<int>(answer_log_.size())) {
    return;
  }
  answer_log_.erase(answer_log_.begin() + answer_index);
  ReplayLog();
}

std::vector<RankedView> PresentationSession::RankedViews() const {
  std::vector<RankedView> ranked;
  ranked.reserve(remaining_.size());
  for (int v : remaining_) {
    double utility = 0.0;
    for (const LoggedAnswer& entry : answer_log_) {
      const Question& q = entry.question;
      const Answer& a = entry.answer;
      if (a.type == AnswerType::kSkip) continue;
      // s in {-1, 0, 1}: does the answer endorse or reject this view?
      int s = 0;
      // Views "captured" by the question (for P(D satisfies | Q)).
      int captured = 1;
      switch (q.interface_kind) {
        case QuestionInterface::kDataset: {
          captured = 1;
          if (v == q.view_index) s = (a.type == AnswerType::kYes) ? 1 : -1;
          break;
        }
        case QuestionInterface::kAttribute: {
          bool has = (*views_)[v].table.schema().IndexOf(q.attribute) >= 0;
          bool want = a.type == AnswerType::kYes;
          s = (has == want) ? 1 : -1;
          int count = 0;
          for (int u : remaining_) {
            if (((*views_)[u].table.schema().IndexOf(q.attribute) >= 0) ==
                want) {
              ++count;
            }
          }
          captured = std::max(count, 1);
          break;
        }
        case QuestionInterface::kDatasetPair: {
          if (q.contradiction_index < 0) break;
          const Contradiction& contra =
              distillation_->contradictions[q.contradiction_index];
          int chosen = a.type == AnswerType::kPickA ? q.view_a : q.view_b;
          const std::vector<int>* keep_group = nullptr;
          for (const auto& g : contra.groups) {
            if (std::find(g.begin(), g.end(), chosen) != g.end()) {
              keep_group = &g;
              break;
            }
          }
          if (keep_group == nullptr) break;
          bool in_keep = std::find(keep_group->begin(), keep_group->end(),
                                   v) != keep_group->end();
          bool involved = false;
          for (const auto& g : contra.groups) {
            if (std::find(g.begin(), g.end(), v) != g.end()) involved = true;
          }
          if (in_keep) {
            s = 1;
          } else if (involved) {
            s = -1;
          }
          captured = std::max<int>(1, static_cast<int>(keep_group->size()));
          break;
        }
        case QuestionInterface::kSummary: {
          bool in_cluster =
              std::find(q.summary_views.begin(), q.summary_views.end(), v) !=
              q.summary_views.end();
          bool want = a.type == AnswerType::kYes;
          s = (in_cluster == want) ? 1 : -1;
          captured = std::max<int>(
              1, want ? static_cast<int>(q.summary_views.size())
                      : static_cast<int>(remaining_.size()));
          break;
        }
      }
      double p_sat = 1.0 / static_cast<double>(captured);
      double p_answer = AnswerLikelihood(q.interface_kind);
      utility += static_cast<double>(s) * p_sat * p_answer;
    }
    ranked.push_back(RankedView{v, utility});
  }
  std::sort(ranked.begin(), ranked.end(),
            [this](const RankedView& a, const RankedView& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              double sa = (*views_)[a.view_index].score;
              double sb = (*views_)[b.view_index].score;
              if (sa != sb) return sa > sb;
              return a.view_index < b.view_index;
            });
  return ranked;
}

}  // namespace ver
