// ExampleQuery: the noisy QBE input (Definition 3) — a small table of
// example values, tau attributes wide and l rows deep, possibly wrong.

#ifndef VER_CORE_QUERY_H_
#define VER_CORE_QUERY_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace ver {

/// A query-by-example input. `columns[i]` holds the example values the user
/// typed for attribute i; `attribute_hints[i]` is an optional header guess
/// (empty when the user provided none).
struct ExampleQuery {
  std::vector<std::string> attribute_hints;
  std::vector<std::vector<std::string>> columns;

  int num_attributes() const { return static_cast<int>(columns.size()); }

  int num_examples(int attribute) const {
    return static_cast<int>(columns[attribute].size());
  }

  /// Convenience builder from per-attribute example lists.
  static ExampleQuery FromColumns(
      std::vector<std::vector<std::string>> cols) {
    ExampleQuery q;
    q.columns = std::move(cols);
    q.attribute_hints.assign(q.columns.size(), "");
    return q;
  }

  /// Structural well-formedness: at least one attribute, at least one
  /// example per attribute, and attribute_hints aligned with columns
  /// (FromColumns guarantees the alignment). Ver::Execute and
  /// VerServer::Submit reject a failing query with this InvalidArgument
  /// instead of running the pipeline on undefined input.
  Status Validate() const {
    if (columns.empty()) {
      return Status::InvalidArgument("query has no attributes");
    }
    for (size_t a = 0; a < columns.size(); ++a) {
      if (columns[a].empty()) {
        return Status::InvalidArgument("query attribute " + std::to_string(a) +
                                       " has zero example values");
      }
    }
    if (attribute_hints.size() != columns.size()) {
      return Status::InvalidArgument(
          "attribute_hints has " + std::to_string(attribute_hints.size()) +
          " entries for " + std::to_string(columns.size()) +
          " attributes; use ExampleQuery::FromColumns or align them");
    }
    return Status::OK();
  }
};

}  // namespace ver

#endif  // VER_CORE_QUERY_H_
