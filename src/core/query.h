// ExampleQuery: the noisy QBE input (Definition 3) — a small table of
// example values, tau attributes wide and l rows deep, possibly wrong.

#ifndef VER_CORE_QUERY_H_
#define VER_CORE_QUERY_H_

#include <string>
#include <vector>

namespace ver {

/// A query-by-example input. `columns[i]` holds the example values the user
/// typed for attribute i; `attribute_hints[i]` is an optional header guess
/// (empty when the user provided none).
struct ExampleQuery {
  std::vector<std::string> attribute_hints;
  std::vector<std::vector<std::string>> columns;

  int num_attributes() const { return static_cast<int>(columns.size()); }

  int num_examples(int attribute) const {
    return static_cast<int>(columns[attribute].size());
  }

  /// Convenience builder from per-attribute example lists.
  static ExampleQuery FromColumns(
      std::vector<std::vector<std::string>> cols) {
    ExampleQuery q;
    q.columns = std::move(cols);
    q.attribute_hints.assign(q.columns.size(), "");
    return q;
  }
};

}  // namespace ver

#endif  // VER_CORE_QUERY_H_
