#include "core/distillation.h"

#include <algorithm>
#include <map>
#include <set>

#include "table/column_stats.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ver {

const char* ViewRelationToString(ViewRelation r) {
  switch (r) {
    case ViewRelation::kCompatible:
      return "compatible";
    case ViewRelation::kContained:
      return "contained";
    case ViewRelation::kComplementary:
      return "complementary";
    case ViewRelation::kContradictory:
      return "contradictory";
  }
  return "unknown";
}

int Contradiction::degree_of_discrimination() const {
  int best = 0;
  for (const auto& g : groups) best = std::max(best, static_cast<int>(g.size()));
  return best;
}

int Contradiction::num_views() const {
  int n = 0;
  for (const auto& g : groups) n += static_cast<int>(g.size());
  return n;
}

namespace {

// Per-view derived data used across the phases.
struct ViewData {
  std::vector<int> canonical_cols;           // columns sorted by attr name
  std::unordered_set<uint64_t> row_hashes;   // H(V): row-content hash set
  uint64_t set_signature = 0;                // order-insensitive set hash
  std::vector<std::vector<std::string>> keys;  // candidate keys (attr names)
};

// Row hash in canonical column order, so views with permuted schemas
// compare correctly inside a block.
uint64_t CanonicalRowHash(const Table& t, int64_t row,
                          const std::vector<int>& canonical_cols) {
  uint64_t h = 0x726f7768617368ULL;
  for (int c : canonical_cols) h = HashCombine(h, t.cell_hash(row, c));
  return h;
}

std::vector<int> CanonicalColumnOrder(const Table& t) {
  std::vector<int> cols(t.num_columns());
  for (int i = 0; i < t.num_columns(); ++i) cols[i] = i;
  std::sort(cols.begin(), cols.end(), [&t](int a, int b) {
    const std::string& na = t.schema().attribute(a).name;
    const std::string& nb = t.schema().attribute(b).name;
    std::string la = ToLower(na), lb = ToLower(nb);
    if (la != lb) return la < lb;
    return a < b;
  });
  return cols;
}

// Order-insensitive signature of a hash set (sum+xor of mixed elements).
uint64_t SetSignature(const std::unordered_set<uint64_t>& s) {
  uint64_t add = 0, mix = 0;
  for (uint64_t h : s) {
    add += Mix64(h);
    mix ^= Mix64(h ^ 0x5555555555555555ULL);
  }
  return HashCombine(HashCombine(add, mix), s.size());
}

bool IsSubset(const std::unordered_set<uint64_t>& small,
              const std::unordered_set<uint64_t>& large) {
  if (small.size() > large.size()) return false;
  for (uint64_t h : small) {
    if (!large.count(h)) return false;
  }
  return true;
}

bool Overlaps(const std::unordered_set<uint64_t>& a,
              const std::unordered_set<uint64_t>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (uint64_t h : small) {
    if (large.count(h)) return true;
  }
  return false;
}

std::vector<std::vector<std::string>> FindCandidateKeys(
    const Table& t, const DistillationOptions& options) {
  std::vector<std::vector<std::string>> keys;
  std::vector<int> singles;
  for (int c = 0; c < t.num_columns(); ++c) {
    if (!t.schema().attribute(c).has_name()) continue;
    ColumnStats stats = ComputeColumnStats(t, c);
    if (stats.num_rows == 0) continue;
    if (stats.null_fraction() > options.key_max_null_fraction) continue;
    if (stats.uniqueness() >= options.key_uniqueness_threshold) {
      singles.push_back(c);
      keys.push_back({ToLower(t.schema().attribute(c).name)});
    }
  }
  if (!options.composite_keys || !keys.empty()) return keys;
  // Composite fallback: pairs of named columns that jointly identify rows.
  for (int a = 0; a < t.num_columns(); ++a) {
    if (!t.schema().attribute(a).has_name()) continue;
    for (int b = a + 1; b < t.num_columns(); ++b) {
      if (!t.schema().attribute(b).has_name()) continue;
      std::unordered_set<uint64_t> combos;
      bool has_null = false;
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        if (t.cell(r, a).is_null() || t.cell(r, b).is_null()) {
          has_null = true;
          break;
        }
        combos.insert(HashCombine(t.cell_hash(r, a), t.cell_hash(r, b)));
      }
      if (has_null || t.num_rows() == 0) continue;
      double uniq = static_cast<double>(combos.size()) /
                    static_cast<double>(t.num_rows());
      if (uniq >= options.key_uniqueness_threshold) {
        std::vector<std::string> key = {
            ToLower(t.schema().attribute(a).name),
            ToLower(t.schema().attribute(b).name)};
        std::sort(key.begin(), key.end());
        keys.push_back(std::move(key));
      }
    }
  }
  return keys;
}

// Column indices of the key attributes in a given view, or empty if absent.
std::vector<int> KeyColumnIndices(const Table& t,
                                  const std::vector<std::string>& key) {
  std::vector<int> out;
  for (const std::string& name : key) {
    int idx = t.schema().IndexOf(name);
    if (idx < 0) return {};
    out.push_back(idx);
  }
  return out;
}

std::string KeyLabel(const std::vector<std::string>& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += "+";
    out += key[i];
  }
  return out;
}

}  // namespace

DistillationResult DistillViews(const std::vector<View>& views,
                                const DistillationOptions& options) {
  DistillationResult result;
  const int n = static_cast<int>(views.size());
  std::vector<ViewData> data(n);

  // --- Schema partition (Alg. 3 line 2) -------------------------------
  std::map<std::string, std::vector<int>> blocks;
  {
    ScopedTimer timer(&result.timing.schema_partition_s);
    for (int i = 0; i < n; ++i) {
      blocks[views[i].table.schema().CanonicalSignature()].push_back(i);
    }
  }

  // --- Row hashing + compatible detection (lines 5-8) -----------------
  std::vector<bool> pruned(n, false);
  {
    ScopedTimer timer(&result.timing.hash_and_c1_s);
    for (int i = 0; i < n; ++i) {
      const Table& t = views[i].table;
      data[i].canonical_cols = CanonicalColumnOrder(t);
      data[i].row_hashes.reserve(static_cast<size_t>(t.num_rows()));
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        data[i].row_hashes.insert(
            CanonicalRowHash(t, r, data[i].canonical_cols));
      }
      data[i].set_signature = SetSignature(data[i].row_hashes);
    }
    // Group by set signature inside each block; equal sets are compatible.
    for (auto& [sig, members] : blocks) {
      (void)sig;
      std::unordered_map<uint64_t, std::vector<int>> by_set;
      for (int v : members) by_set[data[v].set_signature].push_back(v);
      for (auto& [_, group] : by_set) {
        if (group.size() < 2) continue;
        // Verify signature-equal sets really match (collision safety), then
        // keep the first view as the representative of the group.
        std::sort(group.begin(), group.end());
        int rep = group[0];
        for (size_t gi = 1; gi < group.size(); ++gi) {
          int v = group[gi];
          if (data[v].row_hashes != data[rep].row_hashes) continue;
          for (size_t gj = 0; gj < gi; ++gj) {
            result.edges.push_back(ViewEdge{group[gj], v,
                                            ViewRelation::kCompatible, -1,
                                            {}});
          }
          ++result.num_compatible_pairs;
          pruned[v] = true;
          result.representative[v] = rep;
        }
      }
    }
  }
  result.count_after_compatible =
      std::count(pruned.begin(), pruned.end(), false);

  // --- Containment (lines 9-11) ---------------------------------------
  {
    ScopedTimer timer(&result.timing.c2_s);
    for (auto& [sig, members] : blocks) {
      (void)sig;
      std::vector<int> alive;
      for (int v : members) {
        if (!pruned[v]) alive.push_back(v);
      }
      // Largest first; every view is tested against surviving maximal views
      // only (the paper's transitivity shortcut: keep the largest view as
      // the representative of everything it contains).
      std::sort(alive.begin(), alive.end(), [&data](int a, int b) {
        if (data[a].row_hashes.size() != data[b].row_hashes.size()) {
          return data[a].row_hashes.size() > data[b].row_hashes.size();
        }
        return a < b;
      });
      std::vector<int> maximal;
      for (int v : alive) {
        bool contained = false;
        for (int m : maximal) {
          if (IsSubset(data[v].row_hashes, data[m].row_hashes)) {
            result.edges.push_back(
                ViewEdge{std::min(v, m), std::max(v, m),
                         ViewRelation::kContained, m, {}});
            ++result.num_contained_pairs;
            pruned[v] = true;
            result.representative[v] = m;
            contained = true;
            break;
          }
        }
        if (!contained) maximal.push_back(v);
      }
    }
  }
  result.count_after_contained =
      std::count(pruned.begin(), pruned.end(), false);

  // --- Keys, complementary and contradictory (lines 12-18) -------------
  {
    ScopedTimer timer(&result.timing.c3_c4_s);
    result.view_keys.resize(n);
    for (int i = 0; i < n; ++i) {
      if (pruned[i]) continue;
      data[i].keys = FindCandidateKeys(views[i].table, options);
      result.view_keys[i] = data[i].keys;
    }

    std::set<std::pair<int, int>> complementary_pairs;
    std::set<std::pair<int, int>> contradictory_pairs;

    for (auto& [sig, members] : blocks) {
      (void)sig;
      std::vector<int> alive;
      for (int v : members) {
        if (!pruned[v]) alive.push_back(v);
      }
      if (alive.size() < 2) continue;

      // Shared candidate keys across this block.
      std::map<std::string, std::vector<std::string>> key_by_label;
      std::map<std::string, std::vector<int>> views_with_key;
      for (int v : alive) {
        for (const auto& key : data[v].keys) {
          std::string label = KeyLabel(key);
          key_by_label.emplace(label, key);
          views_with_key[label].push_back(v);
        }
      }

      for (const auto& [label, key] : key_by_label) {
        const std::vector<int>& kviews = views_with_key[label];
        if (kviews.size() < 2) continue;

        // Inverted index: key value -> (view, row-content hash) pairs.
        struct Entry {
          int view;
          uint64_t row_hash;
        };
        std::unordered_map<uint64_t, std::vector<Entry>> index;
        std::unordered_map<uint64_t, std::string> key_text;
        for (int v : kviews) {
          const Table& t = views[v].table;
          std::vector<int> key_cols = KeyColumnIndices(t, key);
          if (key_cols.empty()) continue;
          for (int64_t r = 0; r < t.num_rows(); ++r) {
            uint64_t kh = 0x6b657968ULL;
            std::string text;
            for (int c : key_cols) {
              kh = HashCombine(kh, t.cell_hash(r, c));
              if (!text.empty()) text += "|";
              text += t.cell(r, c).ToText();
            }
            index[kh].push_back(
                Entry{v, CanonicalRowHash(t, r, data[v].canonical_cols)});
            key_text.emplace(kh, std::move(text));
          }
        }

        // Group rows per key value by content; >1 group = contradiction.
        std::set<std::pair<int, int>> contradictory_here;
        for (auto& [kh, entries] : index) {
          std::unordered_map<uint64_t, std::vector<int>> groups_by_content;
          for (const Entry& e : entries) {
            auto& g = groups_by_content[e.row_hash];
            if (g.empty() || g.back() != e.view) g.push_back(e.view);
          }
          if (groups_by_content.size() < 2) continue;
          Contradiction contra;
          contra.key = key;
          contra.key_value_text = key_text[kh];
          for (auto& [_, g] : groups_by_content) {
            std::sort(g.begin(), g.end());
            g.erase(std::unique(g.begin(), g.end()), g.end());
            contra.groups.push_back(g);
          }
          std::sort(contra.groups.begin(), contra.groups.end());
          for (size_t gi = 0; gi < contra.groups.size(); ++gi) {
            for (size_t gj = gi + 1; gj < contra.groups.size(); ++gj) {
              for (int va : contra.groups[gi]) {
                for (int vb : contra.groups[gj]) {
                  if (va == vb) continue;
                  contradictory_here.insert(
                      {std::min(va, vb), std::max(va, vb)});
                }
              }
            }
          }
          result.contradictions.push_back(std::move(contra));
        }

        // Pairwise complementary/contradictory labeling under this key.
        for (size_t i = 0; i < kviews.size(); ++i) {
          for (size_t j = i + 1; j < kviews.size(); ++j) {
            int va = std::min(kviews[i], kviews[j]);
            int vb = std::max(kviews[i], kviews[j]);
            if (contradictory_here.count({va, vb})) {
              result.edges.push_back(ViewEdge{
                  va, vb, ViewRelation::kContradictory, -1, key});
              contradictory_pairs.insert({va, vb});
            } else if (Overlaps(data[va].row_hashes, data[vb].row_hashes)) {
              result.edges.push_back(ViewEdge{
                  va, vb, ViewRelation::kComplementary, -1, key});
              complementary_pairs.insert({va, vb});
            }
          }
        }
      }
    }
    result.num_complementary_pairs =
        static_cast<int64_t>(complementary_pairs.size());
    result.num_contradictory_pairs =
        static_cast<int64_t>(contradictory_pairs.size());
  }

  for (int i = 0; i < n; ++i) {
    if (!pruned[i]) result.surviving.push_back(i);
  }
  return result;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

ComplementaryReduction ComputeComplementaryReduction(
    const std::vector<View>& views, const DistillationResult& result) {
  ComplementaryReduction out;

  // Rebuild the block structure over surviving views.
  std::map<std::string, std::vector<int>> blocks;
  for (int v : result.surviving) {
    blocks[views[v].table.schema().CanonicalSignature()].push_back(v);
  }

  // Complementary edges indexed by key label.
  // pair -> set of key labels complementary under.
  std::map<std::string, std::vector<std::pair<int, int>>> comp_by_key;
  for (const ViewEdge& e : result.edges) {
    if (e.relation != ViewRelation::kComplementary) continue;
    std::string label;
    for (size_t i = 0; i < e.key.size(); ++i) {
      if (i) label += "+";
      label += e.key[i];
    }
    comp_by_key[label].push_back({e.view_a, e.view_b});
  }

  for (const auto& [sig, members] : blocks) {
    (void)sig;
    int64_t base = static_cast<int64_t>(members.size());
    int64_t block_best = base;   // minimal surviving count
    int64_t block_worst = base;  // maximal surviving count among key choices

    // Candidate key labels available in this block.
    std::set<std::string> labels;
    for (int v : members) {
      for (const auto& key : result.view_keys[v]) {
        std::string label;
        for (size_t i = 0; i < key.size(); ++i) {
          if (i) label += "+";
          label += key[i];
        }
        labels.insert(label);
      }
    }
    if (labels.empty()) {
      out.best_case += base;
      out.worst_case += base;
      continue;
    }

    std::unordered_map<int, int> local;  // view -> dense index
    for (size_t i = 0; i < members.size(); ++i) {
      local[members[i]] = static_cast<int>(i);
    }
    // Surviving count for each candidate-key choice: union-find components
    // over the complementary pairs valid under that key.
    int64_t min_count = base;
    int64_t max_count = 0;
    for (const std::string& label : labels) {
      auto it = comp_by_key.find(label);
      UnionFind uf(static_cast<int>(members.size()));
      if (it != comp_by_key.end()) {
        for (const auto& [a, b] : it->second) {
          auto la = local.find(a);
          auto lb = local.find(b);
          if (la != local.end() && lb != local.end()) {
            uf.Union(la->second, lb->second);
          }
        }
      }
      std::set<int> roots;
      for (size_t i = 0; i < members.size(); ++i) {
        roots.insert(uf.Find(static_cast<int>(i)));
      }
      int64_t count = static_cast<int64_t>(roots.size());
      min_count = std::min(min_count, count);
      max_count = std::max(max_count, count);
    }
    block_best = min_count;   // key with the largest reduction
    block_worst = max_count;  // key with the least reduction
    out.best_case += block_best;
    out.worst_case += block_worst;
  }
  return out;
}

std::vector<int64_t> ContradictionPruningCurve(
    const DistillationResult& result, bool best_case, int max_steps) {
  std::unordered_set<int> remaining(result.surviving.begin(),
                                    result.surviving.end());
  std::vector<int64_t> curve;
  curve.push_back(static_cast<int64_t>(remaining.size()));

  std::vector<bool> used(result.contradictions.size(), false);
  for (int step = 0; step < max_steps; ++step) {
    // Re-evaluate each unused contradiction against the remaining set.
    int best_idx = -1;
    int best_discrimination = -1;
    std::vector<std::vector<int>> best_groups;
    for (size_t ci = 0; ci < result.contradictions.size(); ++ci) {
      if (used[ci]) continue;
      std::vector<std::vector<int>> groups;
      for (const auto& g : result.contradictions[ci].groups) {
        std::vector<int> alive;
        for (int v : g) {
          if (remaining.count(v)) alive.push_back(v);
        }
        if (!alive.empty()) groups.push_back(std::move(alive));
      }
      if (groups.size() < 2) continue;  // no longer discriminative
      int discrimination = 0;
      for (const auto& g : groups) {
        discrimination = std::max(discrimination, static_cast<int>(g.size()));
      }
      if (discrimination > best_discrimination) {
        best_discrimination = discrimination;
        best_idx = static_cast<int>(ci);
        best_groups = std::move(groups);
      }
    }
    if (best_idx < 0) break;  // nothing discriminative left
    used[best_idx] = true;

    // The user keeps one side; every view agreeing with another side is
    // pruned. Best case keeps the smallest side (largest reduction), worst
    // case keeps the largest side.
    size_t keep = 0;
    for (size_t g = 1; g < best_groups.size(); ++g) {
      bool smaller = best_groups[g].size() < best_groups[keep].size();
      if (best_case ? smaller : !smaller) keep = g;
    }
    for (size_t g = 0; g < best_groups.size(); ++g) {
      if (g == keep) continue;
      for (int v : best_groups[g]) remaining.erase(v);
    }
    curve.push_back(static_cast<int64_t>(remaining.size()));
  }
  return curve;
}

}  // namespace ver
