// Export of the 4C distillation graph: Graphviz DOT and a text report.
//
// The paper's VIEW-DISTILLATION "exposes all candidate relationships for
// further downstream processing"; this module renders that graph for
// humans and external tools.

#ifndef VER_CORE_VIEW_GRAPH_EXPORT_H_
#define VER_CORE_VIEW_GRAPH_EXPORT_H_

#include <string>
#include <vector>

#include "core/distillation.h"
#include "engine/view.h"

namespace ver {

/// Graphviz DOT rendering: one node per view (surviving views solid,
/// pruned views dashed), one edge per 4C relationship, colored by
/// category, keyed edges labeled with their candidate key.
std::string ViewGraphToDot(const std::vector<View>& views,
                           const DistillationResult& distillation);

/// Compact human-readable distillation report (counts per category,
/// survivors, contradiction digest).
std::string DistillationReport(const std::vector<View>& views,
                               const DistillationResult& distillation);

}  // namespace ver

#endif  // VER_CORE_VIEW_GRAPH_EXPORT_H_
