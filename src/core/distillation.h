// VIEW-DISTILLATION (Section V, Algorithm 3): classify candidate-view pairs
// into the 4C categories — Compatible, Contained, Complementary,
// Contradictory — and distill the view set.
//
// Pipeline per Algorithm 3:
//   1. add views as graph nodes; identify approximate candidate keys
//   2. partition views into schema-based blocks
//   3. per block: row-wise hashing; compatible (equal hash sets) and
//      contained (subset) detection with transitivity shortcuts; overlapping
//      non-contained pairs start as complementary
//   4. second phase: inverted index over key-column values; rows grouped by
//      content; views in different groups for the same key value are
//      contradictory
//
// The default distillation strategy deduplicates compatible views and keeps
// the largest contained view. Complementary union and contradiction-driven
// pruning are exposed as separate operations because they depend on a key
// choice / a user decision (Table IV C3, Fig. 2).

#ifndef VER_CORE_DISTILLATION_H_
#define VER_CORE_DISTILLATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/view.h"

namespace ver {

enum class ViewRelation {
  kCompatible,
  kContained,
  kComplementary,
  kContradictory,
};

const char* ViewRelationToString(ViewRelation r);

/// A labeled edge of the distillation graph G. Complementary/contradictory
/// edges carry the candidate key (attribute names) they were judged under;
/// the same pair may appear once per key with different labels.
struct ViewEdge {
  int view_a = -1;  // index into the input view vector, view_a < view_b
  int view_b = -1;
  ViewRelation relation = ViewRelation::kCompatible;
  /// For kContained: which side is the container.
  int container = -1;
  /// For kComplementary / kContradictory: key attribute names.
  std::vector<std::string> key;
};

/// One contradiction: a key value that maps to different row contents in
/// different views. `groups` partitions the affected views by which row
/// content they agree with.
struct Contradiction {
  std::vector<std::string> key;
  /// Display text of the offending key value.
  std::string key_value_text;
  /// groups[g] = views agreeing with row-content g.
  std::vector<std::vector<int>> groups;

  /// Number of views that agree with the most popular side — the paper's
  /// "degree of discrimination" used to order contradictions (Fig. 2).
  int degree_of_discrimination() const;
  int num_views() const;
};

struct DistillationOptions {
  /// Uniqueness ratio above which a column is an approximate candidate key.
  double key_uniqueness_threshold = 0.9;
  /// Maximum nulls tolerated in a key column.
  double key_max_null_fraction = 0.05;
  /// Also try 2-column composite keys when no single column qualifies.
  bool composite_keys = false;
};

/// Wall-clock breakdown matching the paper's Fig. 4a bars.
struct DistillationTiming {
  double schema_partition_s = 0;
  double hash_and_c1_s = 0;
  double c2_s = 0;
  double c3_c4_s = 0;

  double total_s() const {
    return schema_partition_s + hash_and_c1_s + c2_s + c3_c4_s;
  }
};

struct DistillationResult {
  /// All 4C-labeled edges over the *input* view indices.
  std::vector<ViewEdge> edges;
  /// Views surviving the default strategy (compatible dedup + keep-largest).
  std::vector<int> surviving;
  /// For each pruned view, the surviving view that represents it.
  std::unordered_map<int, int> representative;
  /// All detected contradictions (across blocks and keys).
  std::vector<Contradiction> contradictions;
  /// Candidate keys found per view (attribute names, single or composite).
  std::vector<std::vector<std::vector<std::string>>> view_keys;

  int64_t num_compatible_pairs = 0;
  int64_t num_contained_pairs = 0;
  int64_t num_complementary_pairs = 0;
  int64_t num_contradictory_pairs = 0;

  DistillationTiming timing;

  /// Views remaining after pruning compatible duplicates only (Table IV C1).
  int64_t count_after_compatible = 0;
  /// ... after additionally keeping only the largest contained (Table IV C2).
  int64_t count_after_contained = 0;
};

/// Runs Algorithm 3 on a set of candidate views.
DistillationResult DistillViews(const std::vector<View>& views,
                                const DistillationOptions& options);

/// Table IV C3: number of views left after unioning complementary views
/// under one candidate-key choice per schema block. Returns {worst, best}:
/// the key choices minimizing / maximizing the union opportunities.
struct ComplementaryReduction {
  int64_t worst_case = 0;  // key choice with the least reduction
  int64_t best_case = 0;   // key choice with the largest reduction
};
ComplementaryReduction ComputeComplementaryReduction(
    const std::vector<View>& views, const DistillationResult& result);

/// Fig. 2: remaining view count after each contradiction-pruning step.
/// Contradictions are visited in descending degree of discrimination; at
/// each step the kept side is the one minimizing (best_case=true) or
/// maximizing (best_case=false) the surviving count. Index 0 of the returned
/// vector is the starting count.
std::vector<int64_t> ContradictionPruningCurve(
    const DistillationResult& result, bool best_case, int max_steps);

}  // namespace ver

#endif  // VER_CORE_DISTILLATION_H_
