// Complementary-view union: the C3 distillation strategy materialized.
//
// ComputeComplementaryReduction (distillation.h) only *counts* how many
// views would remain under a candidate-key choice; this module actually
// merges them: views that are pairwise complementary under the chosen key
// (and never contradictory under it) are unioned into a single view whose
// row set is the union of the group's rows. Provenance lists the source
// views.

#ifndef VER_CORE_VIEW_UNION_H_
#define VER_CORE_VIEW_UNION_H_

#include <string>
#include <vector>

#include "core/distillation.h"
#include "engine/view.h"

namespace ver {

/// One merged group produced by the union strategy.
struct UnionedView {
  /// The merged data (canonical column order of the first source view).
  Table table;
  /// Indices (into the original view vector) merged into this view;
  /// singleton when nothing could be unioned.
  std::vector<int> sources;
  /// The candidate key (attribute names) the union was performed under;
  /// empty for singleton pass-throughs.
  std::vector<std::string> key;
};

enum class KeyChoice {
  kBestCase,   // key that maximizes the union opportunities per block
  kWorstCase,  // key that minimizes them
};

/// Applies the C3 union strategy to the surviving views of a distillation
/// result. Per schema block, picks the candidate key according to `choice`
/// (the best/worst cases of Table IV), unions complementary groups, and
/// passes everything else through. Views in no block keep their identity.
std::vector<UnionedView> UnionComplementaryViews(
    const std::vector<View>& views, const DistillationResult& distillation,
    KeyChoice choice);

}  // namespace ver

#endif  // VER_CORE_VIEW_UNION_H_
