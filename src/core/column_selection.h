// COLUMN-SELECTION (Algorithm 4) and the two baselines it is evaluated
// against (Table V): SELECT-ALL (FastTopK-style) and SELECT-BEST
// (SQuID-style).
//
// Given the example values of one query attribute, find candidate columns
// even when the examples are noisy: search every example, cluster the hit
// columns by content similarity over the discovery hypergraph, score each
// cluster by its best member's overlap with the examples, keep top-theta
// clusters.

#ifndef VER_CORE_COLUMN_SELECTION_H_
#define VER_CORE_COLUMN_SELECTION_H_

#include <vector>

#include "core/query.h"
#include "discovery/engine.h"

namespace ver {

enum class SelectionStrategy {
  kColumnSelection,  // Ver's Algorithm 4
  kSelectAll,        // any column containing >= 1 example (FastTopK)
  kSelectBest,       // the column(s) containing the most examples (SQuID)
};

const char* SelectionStrategyToString(SelectionStrategy s);

struct ScoredColumn {
  ColumnRef ref;
  /// How many of the attribute's examples this column contains.
  int example_hits = 0;
};

/// A connected component of candidate columns under content similarity.
struct ColumnCluster {
  std::vector<ScoredColumn> columns;
  /// max over members of example_hits (Alg. 4 line 7).
  int score = 0;
};

struct ColumnSelectionOptions {
  SelectionStrategy strategy = SelectionStrategy::kColumnSelection;
  /// Keep clusters within the top-theta distinct score levels; theta = 1
  /// keeps the best-scoring clusters (with ties), matching the paper's
  /// default configuration.
  int theta = 1;
  /// Jaccard threshold for the similarity edges used in clustering
  /// (Algorithm 4 line 5). Unitless, in [0, 1]; default 0.5.
  double cluster_similarity_threshold = 0.5;
  /// Allow fuzzy (edit-distance) matches when an example finds nothing —
  /// the noise tolerance of Definition 3. Default true; edit budget is
  /// DiscoveryOptions::fuzzy_max_edits.
  bool fuzzy_fallback = true;
};

struct ColumnSelectionResult {
  /// All clusters built from the raw hits (before top-theta selection).
  std::vector<ColumnCluster> clusters;
  /// Clusters surviving top-theta.
  std::vector<ColumnCluster> selected_clusters;
  /// Flattened candidate columns from the selected clusters.
  std::vector<ScoredColumn> candidates;
  /// Columns hit by any example before clustering (diagnostics, Fig. 8c).
  int total_columns_before_clustering = 0;
};

/// Runs one selection strategy for one query attribute.
ColumnSelectionResult SelectColumns(const DiscoveryEngine& engine,
                                    const std::vector<std::string>& examples,
                                    const ColumnSelectionOptions& options);

/// Per-attribute selection over a whole query: result[i] corresponds to
/// query attribute i.
std::vector<ColumnSelectionResult> SelectColumnsForQuery(
    const DiscoveryEngine& engine, const ExampleQuery& query,
    const ColumnSelectionOptions& options);

}  // namespace ver

#endif  // VER_CORE_COLUMN_SELECTION_H_
