#include "core/column_selection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ver {

const char* SelectionStrategyToString(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kColumnSelection:
      return "Column-Selection";
    case SelectionStrategy::kSelectAll:
      return "Select-All";
    case SelectionStrategy::kSelectBest:
      return "Select-Best";
  }
  return "unknown";
}

namespace {

// Runs SEARCH-KEYWORD for every example and counts, per column, how many
// distinct examples it contains (the overlap |col ∩ χ.Ai|).
std::unordered_map<uint64_t, ScoredColumn> CollectHits(
    const DiscoveryEngine& engine, const std::vector<std::string>& examples,
    bool fuzzy_fallback) {
  std::unordered_map<uint64_t, ScoredColumn> hits;
  for (const std::string& example : examples) {
    std::vector<KeywordHit> found =
        engine.SearchKeyword(example, KeywordTarget::kValues, /*fuzzy=*/false);
    if (found.empty() && fuzzy_fallback) {
      found =
          engine.SearchKeyword(example, KeywordTarget::kValues, /*fuzzy=*/true);
    }
    // One example counts at most once per column.
    std::unordered_set<uint64_t> seen_this_example;
    for (const KeywordHit& h : found) {
      uint64_t key = h.column.Encode();
      if (!seen_this_example.insert(key).second) continue;
      auto it = hits.find(key);
      if (it == hits.end()) {
        hits.emplace(key, ScoredColumn{h.column, 1});
      } else {
        it->second.example_hits += 1;
      }
    }
  }
  return hits;
}

// Union-find over candidate columns; edges from the engine's Jaccard
// neighbors restricted to the candidate set (CONNECTED-COMPONENT, line 5).
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

std::vector<ColumnCluster> ClusterCandidates(
    const DiscoveryEngine& engine, std::vector<ScoredColumn> columns,
    double similarity_threshold) {
  std::sort(columns.begin(), columns.end(),
            [](const ScoredColumn& a, const ScoredColumn& b) {
              return a.ref < b.ref;
            });
  std::unordered_map<uint64_t, int> index_of;
  for (size_t i = 0; i < columns.size(); ++i) {
    index_of.emplace(columns[i].ref.Encode(), static_cast<int>(i));
  }
  UnionFind uf(static_cast<int>(columns.size()));
  for (size_t i = 0; i < columns.size(); ++i) {
    for (const ColumnRef& n :
         engine.SimilarColumns(columns[i].ref, similarity_threshold)) {
      auto it = index_of.find(n.Encode());
      if (it != index_of.end()) uf.Union(static_cast<int>(i), it->second);
    }
  }
  std::unordered_map<int, ColumnCluster> by_root;
  for (size_t i = 0; i < columns.size(); ++i) {
    ColumnCluster& c = by_root[uf.Find(static_cast<int>(i))];
    c.score = std::max(c.score, columns[i].example_hits);
    c.columns.push_back(columns[i]);
  }
  std::vector<ColumnCluster> clusters;
  clusters.reserve(by_root.size());
  for (auto& [_, c] : by_root) clusters.push_back(std::move(c));
  std::sort(clusters.begin(), clusters.end(),
            [](const ColumnCluster& a, const ColumnCluster& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.columns.front().ref < b.columns.front().ref;
            });
  return clusters;
}

}  // namespace

ColumnSelectionResult SelectColumns(const DiscoveryEngine& engine,
                                    const std::vector<std::string>& examples,
                                    const ColumnSelectionOptions& options) {
  ColumnSelectionResult result;
  std::unordered_map<uint64_t, ScoredColumn> hits =
      CollectHits(engine, examples, options.fuzzy_fallback);
  result.total_columns_before_clustering = static_cast<int>(hits.size());

  std::vector<ScoredColumn> columns;
  columns.reserve(hits.size());
  for (auto& [_, sc] : hits) columns.push_back(sc);

  switch (options.strategy) {
    case SelectionStrategy::kSelectAll: {
      std::sort(columns.begin(), columns.end(),
                [](const ScoredColumn& a, const ScoredColumn& b) {
                  return a.ref < b.ref;
                });
      ColumnCluster all;
      all.columns = columns;
      for (const ScoredColumn& c : columns) {
        all.score = std::max(all.score, c.example_hits);
      }
      result.clusters = {all};
      result.selected_clusters = result.clusters;
      result.candidates = std::move(columns);
      return result;
    }
    case SelectionStrategy::kSelectBest: {
      int best = 0;
      for (const ScoredColumn& c : columns) {
        best = std::max(best, c.example_hits);
      }
      ColumnCluster top;
      top.score = best;
      for (const ScoredColumn& c : columns) {
        if (c.example_hits == best) top.columns.push_back(c);
      }
      std::sort(top.columns.begin(), top.columns.end(),
                [](const ScoredColumn& a, const ScoredColumn& b) {
                  return a.ref < b.ref;
                });
      result.clusters = {top};
      result.selected_clusters = result.clusters;
      result.candidates = top.columns;
      return result;
    }
    case SelectionStrategy::kColumnSelection:
      break;
  }

  // Ver's Algorithm 4: cluster, keep top-theta score levels.
  result.clusters = ClusterCandidates(engine, std::move(columns),
                                      options.cluster_similarity_threshold);
  std::vector<int> levels;
  for (const ColumnCluster& c : result.clusters) {
    if (levels.empty() || levels.back() != c.score) levels.push_back(c.score);
  }
  int cutoff_index =
      std::min<int>(options.theta, static_cast<int>(levels.size())) - 1;
  int min_score = cutoff_index < 0 ? 0 : levels[cutoff_index];
  for (const ColumnCluster& c : result.clusters) {
    if (c.score >= min_score && c.score > 0) {
      result.selected_clusters.push_back(c);
      result.candidates.insert(result.candidates.end(), c.columns.begin(),
                               c.columns.end());
    }
  }
  return result;
}

std::vector<ColumnSelectionResult> SelectColumnsForQuery(
    const DiscoveryEngine& engine, const ExampleQuery& query,
    const ColumnSelectionOptions& options) {
  std::vector<ColumnSelectionResult> out;
  out.reserve(query.columns.size());
  for (const auto& examples : query.columns) {
    out.push_back(SelectColumns(engine, examples, options));
  }
  return out;
}

}  // namespace ver
