// VIEW-PRESENTATION (Section IV, Algorithm 2): a multi-arm bandit over
// question interfaces that elicits user context to navigate result views.
//
// Arms are question interfaces (dataset / attribute / dataset-pair /
// summary). Each iteration estimates, per arm, the likelihood the user can
// answer that interface (r) and the information gain of the best question
// available on it (chi = max views pruned if answered), sets w = r * chi and
// samples the arm from p(I) = (1-gamma) * w/sum(w) + gamma/|I|. The
// dataset-pair interface leverages the 4C contradictions computed by
// VIEW-DISTILLATION. Answers prune views and feed an expected-utility
// ranking; skips only update r. Users may retract earlier answers (the
// session replays the remaining answer log), supporting the paper's
// "adapt to evolving user knowledge" principle.

#ifndef VER_CORE_PRESENTATION_H_
#define VER_CORE_PRESENTATION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/distillation.h"
#include "core/query.h"
#include "engine/view.h"
#include "util/rng.h"

namespace ver {

enum class QuestionInterface : int {
  kDataset = 0,
  kAttribute = 1,
  kDatasetPair = 2,
  kSummary = 3,
};
inline constexpr int kNumQuestionInterfaces = 4;

const char* QuestionInterfaceToString(QuestionInterface i);

/// How candidate questions on an interface are ordered before the top one
/// (by information gain, ties by distance) is asked.
enum class PrioritizationStrategy {
  /// Distance of the question text to the input query examples.
  kQueryDistance,
  /// Distance of the question's dataset schema to the input query.
  kSchemaDistance,
};

/// One question shown to the user.
struct Question {
  QuestionInterface interface_kind = QuestionInterface::kDataset;
  std::string prompt;

  // Payload (fields used depend on the interface).
  int view_index = -1;                    // kDataset
  std::string attribute;                  // kAttribute
  int view_a = -1;                        // kDatasetPair
  int view_b = -1;                        // kDatasetPair
  int contradiction_index = -1;           // kDatasetPair provenance
  std::vector<int> summary_views;         // kSummary cluster
  std::vector<std::string> summary_tokens;  // kSummary wordcloud

  /// Estimated maximum number of views pruned if answered.
  int info_gain = 0;
};

enum class AnswerType { kYes, kNo, kPickA, kPickB, kSkip };

struct Answer {
  AnswerType type = AnswerType::kSkip;
};

struct PresentationOptions {
  /// Exploration factor gamma of Algorithm 2.
  double gamma = 0.1;
  /// Bootstrap pulls per arm before trusting the r estimates
  /// (O(log |I|) per the paper's Chernoff argument).
  int bootstrap_pulls_per_arm = 2;
  PrioritizationStrategy prioritization =
      PrioritizationStrategy::kQueryDistance;
  uint64_t seed = 0xba4d17;
};

/// A ranked view with its expected-utility score.
struct RankedView {
  int view_index = -1;
  double utility = 0.0;
};

/// Interactive session state over one candidate view set.
class PresentationSession {
 public:
  /// `views`, `distillation` and `query` must outlive the session.
  PresentationSession(const std::vector<View>* views,
                      const DistillationResult* distillation,
                      const ExampleQuery* query,
                      const PresentationOptions& options);

  /// True when nothing is left to ask (<= 1 candidate or no questions).
  bool Done() const;

  /// Chooses an arm per Algorithm 2 and generates its best question.
  Question NextQuestion();

  /// Records the user's answer: updates r(I), prunes views, re-ranks.
  void SubmitAnswer(const Question& question, const Answer& answer);

  /// Retracts the i-th non-skip answer and replays the rest (the user
  /// changed their mind; no session restart needed).
  void RetractAnswer(int answer_index);

  /// Views still candidate, ranked by expected utility (best first).
  std::vector<RankedView> RankedViews() const;

  const std::unordered_set<int>& remaining() const { return remaining_; }
  int num_questions_asked() const { return num_asked_; }
  int num_answers() const { return static_cast<int>(answer_log_.size()); }

  /// Current selection probability of an arm (diagnostics / tests).
  double ArmProbability(QuestionInterface interface_kind);

  /// r(I): smoothed estimate that the user answers this interface.
  double AnswerLikelihood(QuestionInterface interface_kind) const;

 private:
  struct ArmStats {
    int pulls = 0;
    int answered = 0;
  };
  struct LoggedAnswer {
    Question question;
    Answer answer;
  };

  const std::vector<View>* views_;
  const DistillationResult* distillation_;
  const ExampleQuery* query_;
  PresentationOptions options_;
  Rng rng_;

  std::unordered_set<int> remaining_;
  ArmStats arms_[kNumQuestionInterfaces];
  std::vector<LoggedAnswer> answer_log_;
  int num_asked_ = 0;
  // Dataset views already shown (avoid repeating the same question).
  std::unordered_set<int> shown_datasets_;
  std::unordered_set<std::string> asked_attributes_;
  std::unordered_set<int> used_contradictions_;
  std::unordered_set<std::string> asked_summaries_;

  // Question generation per interface over the remaining set; returns
  // whether a question exists and fills it.
  bool BestQuestion(QuestionInterface interface_kind, Question* out);
  int InfoGain(QuestionInterface interface_kind);

  // Applies one answer's pruning effect to `remaining_`.
  void ApplyAnswer(const LoggedAnswer& entry);
  void ReplayLog();

  std::vector<double> ArmProbabilities();
  double QuestionDistance(const Question& q) const;
};

}  // namespace ver

#endif  // VER_CORE_PRESENTATION_H_
