// VIEW-SPECIFICATION implementations (Section VI-C.1): QBE (Ver's default),
// keyword search, and attribute-name search. Each produces per-attribute
// candidate column sets that feed JOIN-GRAPH-SEARCH.

#ifndef VER_CORE_VIEW_SPECIFICATION_H_
#define VER_CORE_VIEW_SPECIFICATION_H_

#include <string>
#include <vector>

#include "core/column_selection.h"
#include "discovery/engine.h"

namespace ver {

enum class SpecificationKind { kQbe, kKeyword, kAttribute };

const char* SpecificationKindToString(SpecificationKind k);

/// QBE: runs COLUMN-SELECTION over the example columns (Algorithm 4).
std::vector<ColumnSelectionResult> SpecifyByExample(
    const DiscoveryEngine& engine, const ExampleQuery& query,
    const ColumnSelectionOptions& options);

/// Keyword search: each keyword acts as one pseudo-attribute whose
/// candidates are every column containing the keyword as a value (fuzzy
/// fallback included). Broader than QBE — more candidate columns per
/// attribute, hence more views (the behaviour reported in Section VI-C.1).
std::vector<ColumnSelectionResult> SpecifyByKeywords(
    const DiscoveryEngine& engine, const std::vector<std::string>& keywords);

/// Attribute search: each requested attribute name matches columns by
/// header (exact first, fuzzy fallback).
std::vector<ColumnSelectionResult> SpecifyByAttributes(
    const DiscoveryEngine& engine, const std::vector<std::string>& attributes);

}  // namespace ver

#endif  // VER_CORE_VIEW_SPECIFICATION_H_
