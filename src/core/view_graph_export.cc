#include "core/view_graph_export.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ver {

namespace {

const char* EdgeColor(ViewRelation r) {
  switch (r) {
    case ViewRelation::kCompatible:
      return "gray";
    case ViewRelation::kContained:
      return "blue";
    case ViewRelation::kComplementary:
      return "darkgreen";
    case ViewRelation::kContradictory:
      return "red";
  }
  return "black";
}

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string KeyLabel(const std::vector<std::string>& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i) out += "+";
    out += key[i];
  }
  return out;
}

}  // namespace

std::string ViewGraphToDot(const std::vector<View>& views,
                           const DistillationResult& distillation) {
  std::unordered_set<int> surviving(distillation.surviving.begin(),
                                    distillation.surviving.end());
  std::string dot = "graph view_distillation {\n";
  dot += "  node [shape=box, fontsize=10];\n";
  for (size_t i = 0; i < views.size(); ++i) {
    dot += "  v" + std::to_string(i) + " [label=\"" +
           EscapeDot(views[i].table.name()) + "\\n" +
           EscapeDot(views[i].table.schema().ToString()) + "\\n" +
           std::to_string(views[i].table.num_rows()) + " rows\"";
    if (!surviving.count(static_cast<int>(i))) {
      dot += ", style=dashed, color=gray";
    }
    dot += "];\n";
  }
  // Deduplicate parallel edges of the same category (multiple keys).
  std::set<std::string> emitted;
  for (const ViewEdge& e : distillation.edges) {
    std::string label = ViewRelationToString(e.relation);
    if (!e.key.empty()) label += " (" + KeyLabel(e.key) + ")";
    std::string dedup_key = std::to_string(e.view_a) + "-" +
                            std::to_string(e.view_b) + "-" + label;
    if (!emitted.insert(dedup_key).second) continue;
    dot += "  v" + std::to_string(e.view_a) + " -- v" +
           std::to_string(e.view_b) + " [color=" + EdgeColor(e.relation) +
           ", label=\"" + EscapeDot(label) + "\", fontsize=8];\n";
  }
  dot += "}\n";
  return dot;
}

std::string DistillationReport(const std::vector<View>& views,
                               const DistillationResult& distillation) {
  std::string out;
  out += "view distillation report\n";
  out += "  input views        : " + std::to_string(views.size()) + "\n";
  out += "  after compatible   : " +
         std::to_string(distillation.count_after_compatible) + "\n";
  out += "  after contained    : " +
         std::to_string(distillation.count_after_contained) + "\n";
  out += "  compatible pairs   : " +
         std::to_string(distillation.num_compatible_pairs) + "\n";
  out += "  contained pairs    : " +
         std::to_string(distillation.num_contained_pairs) + "\n";
  out += "  complementary pairs: " +
         std::to_string(distillation.num_complementary_pairs) + "\n";
  out += "  contradictory pairs: " +
         std::to_string(distillation.num_contradictory_pairs) + "\n";
  out += "  contradictions     : " +
         std::to_string(distillation.contradictions.size()) + "\n";

  // Contradiction digest, most discriminative first.
  std::vector<const Contradiction*> ordered;
  for (const Contradiction& c : distillation.contradictions) {
    ordered.push_back(&c);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Contradiction* a, const Contradiction* b) {
              return a->degree_of_discrimination() >
                     b->degree_of_discrimination();
            });
  int shown = 0;
  for (const Contradiction* c : ordered) {
    if (++shown > 5) break;
    out += "    key " + KeyLabel(c->key) + " = '" + c->key_value_text +
           "': " + std::to_string(c->groups.size()) + " sides, " +
           std::to_string(c->num_views()) + " views, discrimination " +
           std::to_string(c->degree_of_discrimination()) + "\n";
  }

  out += "  surviving views    :";
  for (int v : distillation.surviving) {
    out += " " + views[v].table.name();
  }
  out += "\n";
  return out;
}

}  // namespace ver
