// Ver facade: construction, spill-directory management, and the legacy
// RunQuery / RunWithCandidates wrappers. The actual pipeline driver is
// Ver::Execute in src/api/execute.cc — every overload below is a thin shim
// that builds a DiscoveryRequest and unwraps the DiscoveryResponse, so all
// five entry points share one implementation.

#include "core/ver.h"

#include <filesystem>

#include "api/discovery_request.h"
#include "api/discovery_response.h"

namespace ver {

namespace {

// Process-wide Ver instance counter feeding the spill-directory tag.
std::atomic<uint64_t> g_ver_instances{0};

}  // namespace

Status QueryControl::Check(const char* next_stage) const {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(std::string("query cancelled before ") +
                             next_stage);
  }
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded(std::string("deadline passed before ") +
                                    next_stage);
  }
  return Status::OK();
}

Ver::Ver(const TableRepository* repo, VerConfig config)
    : repo_(repo),
      config_(std::move(config)),
      spill_instance_(g_ver_instances.fetch_add(1, std::memory_order_relaxed)) {
  engine_ = DiscoveryEngine::Build(*repo_, config_.discovery);
}

Ver::Ver(const TableRepository* repo, VerConfig config,
         std::unique_ptr<DiscoveryEngine> engine)
    : repo_(repo),
      config_(std::move(config)),
      engine_(std::move(engine)),
      spill_instance_(g_ver_instances.fetch_add(1, std::memory_order_relaxed)) {
  // The engine dictates the discovery knobs: a snapshot built with one
  // sketch seed must not be queried as if built with another.
  config_.discovery = engine_->options();
}

std::string Ver::NextSpillDir() const {
  uint64_t seq = spill_seq_.fetch_add(1, std::memory_order_relaxed);
  return (std::filesystem::path(config_.spill_dir) /
          ("v" + std::to_string(spill_instance_) + "_q" +
           std::to_string(seq)))
      .string();
}

QueryResult Ver::RunQuery(const ExampleQuery& query) const {
  return std::move(Execute(DiscoveryRequest::ForQuery(query)).result);
}

Result<QueryResult> Ver::RunQuery(const ExampleQuery& query,
                                  const QueryControl& control) const {
  DiscoveryRequest request = DiscoveryRequest::ForQuery(query);
  request.deadline = control.deadline;
  request.cancel = control.cancel;
  DiscoveryResponse response = Execute(request);
  if (!response.status.ok()) return response.status;
  return std::move(response.result);
}

QueryResult Ver::RunWithCandidates(
    const std::vector<ColumnSelectionResult>& per_attribute,
    const ExampleQuery& query_for_ranking) const {
  // Rvalue Execute: the request's candidate copy moves into the result, so
  // the wrapper costs one candidate copy total, same as before the API.
  return std::move(
      Execute(DiscoveryRequest::ForCandidates(per_attribute, query_for_ranking))
          .result);
}

Result<QueryResult> Ver::RunWithCandidates(
    const std::vector<ColumnSelectionResult>& per_attribute,
    const ExampleQuery& query_for_ranking, const QueryControl& control) const {
  DiscoveryRequest request =
      DiscoveryRequest::ForCandidates(per_attribute, query_for_ranking);
  request.deadline = control.deadline;
  request.cancel = control.cancel;
  DiscoveryResponse response = Execute(std::move(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.result);
}

std::unique_ptr<PresentationSession> Ver::StartSession(
    const QueryResult& result, const ExampleQuery& query) const {
  // The session borrows the result's views/distillation and the caller's
  // query; all must outlive the session.
  return std::make_unique<PresentationSession>(
      &result.views, &result.distillation, &query, config_.presentation);
}

}  // namespace ver
