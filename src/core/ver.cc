#include "core/ver.h"

#include <filesystem>

#include "table/csv.h"
#include "util/timer.h"

namespace ver {

namespace {

// Process-wide Ver instance counter feeding the spill-directory tag.
std::atomic<uint64_t> g_ver_instances{0};

}  // namespace

Status QueryControl::Check(const char* next_stage) const {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled(std::string("query cancelled before ") +
                             next_stage);
  }
  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded(std::string("deadline passed before ") +
                                    next_stage);
  }
  return Status::OK();
}

Ver::Ver(const TableRepository* repo, VerConfig config)
    : repo_(repo),
      config_(std::move(config)),
      spill_instance_(g_ver_instances.fetch_add(1, std::memory_order_relaxed)) {
  engine_ = DiscoveryEngine::Build(*repo_, config_.discovery);
}

Ver::Ver(const TableRepository* repo, VerConfig config,
         std::unique_ptr<DiscoveryEngine> engine)
    : repo_(repo),
      config_(std::move(config)),
      engine_(std::move(engine)),
      spill_instance_(g_ver_instances.fetch_add(1, std::memory_order_relaxed)) {
  // The engine dictates the discovery knobs: a snapshot built with one
  // sketch seed must not be queried as if built with another.
  config_.discovery = engine_->options();
}

std::string Ver::NextSpillDir() const {
  uint64_t seq = spill_seq_.fetch_add(1, std::memory_order_relaxed);
  return (std::filesystem::path(config_.spill_dir) /
          ("v" + std::to_string(spill_instance_) + "_q" +
           std::to_string(seq)))
      .string();
}

QueryResult Ver::RunQuery(const ExampleQuery& query) const {
  // A default control never fires, so the controlled path cannot fail.
  return std::move(RunQuery(query, QueryControl())).value();
}

Result<QueryResult> Ver::RunQuery(const ExampleQuery& query,
                                  const QueryControl& control) const {
  VER_RETURN_IF_ERROR(control.Check("COLUMN-SELECTION"));
  double column_selection_s = 0;
  std::vector<ColumnSelectionResult> selection;
  {
    ScopedTimer timer(&column_selection_s);
    selection = SelectColumnsForQuery(*engine_, query, config_.selection);
  }
  // RunWithCandidates copies `selection` into its result, so nothing needs
  // to be patched back besides the timing.
  Result<QueryResult> rest = RunWithCandidates(selection, query, control);
  if (!rest.ok()) return rest.status();
  rest->timing.column_selection_s = column_selection_s;
  return rest;
}

QueryResult Ver::RunWithCandidates(
    const std::vector<ColumnSelectionResult>& per_attribute,
    const ExampleQuery& query_for_ranking) const {
  return std::move(
             RunWithCandidates(per_attribute, query_for_ranking,
                               QueryControl()))
      .value();
}

Result<QueryResult> Ver::RunWithCandidates(
    const std::vector<ColumnSelectionResult>& per_attribute,
    const ExampleQuery& query_for_ranking, const QueryControl& control) const {
  QueryResult result;
  result.selection = per_attribute;

  JoinGraphSearchOptions search_options = config_.search;
  search_options.materialize_views = false;  // timed separately below
  if (!config_.spill_dir.empty()) {
    // Each query spills into its own subdirectory, so concurrent queries
    // never read or overwrite each other's spill files.
    search_options.materialize.spill_dir = NextSpillDir();
  }

  VER_RETURN_IF_ERROR(control.Check("JOIN-GRAPH-SEARCH"));
  {
    ScopedTimer timer(&result.timing.join_graph_search_s);
    result.search = SearchJoinGraphs(*engine_, per_attribute, search_options);
  }
  VER_RETURN_IF_ERROR(control.Check("MATERIALIZER"));
  {
    ScopedTimer timer(&result.timing.materialize_s);
    result.views = MaterializeCandidates(
        *repo_, result.search.candidates, search_options,
        &result.search.num_materialization_failures);
  }

  if (!config_.spill_dir.empty()) {
    // Read the spilled views back from disk — distillation's input IO cost
    // ("Get Views Time" in Fig. 3 / VD-IO in Fig. 4b).
    VER_RETURN_IF_ERROR(control.Check("VD-IO"));
    {
      ScopedTimer timer(&result.timing.vd_io_s);
      for (View& v : result.views) {
        if (v.spill_path.empty()) continue;
        Result<Table> reloaded = ReadCsvFile(v.spill_path);
        if (reloaded.ok()) {
          std::string name = v.table.name();
          v.table = std::move(reloaded).value();
          v.table.set_name(std::move(name));
        }
      }
    }
    if (config_.cleanup_spilled_views) {
      // Serving mode: drop this query's spill subdirectory now that the
      // views are back in memory, so disk use stays bounded under
      // sustained traffic (untimed — cleanup is not a paper cost).
      std::error_code ec;
      std::filesystem::remove_all(search_options.materialize.spill_dir, ec);
      for (View& v : result.views) v.spill_path.clear();
    }
  }

  VER_RETURN_IF_ERROR(control.Check("VIEW-DISTILLATION"));
  if (config_.run_distillation) {
    ScopedTimer timer(&result.timing.four_c_s);
    result.distillation = DistillViews(result.views, config_.distillation);
  } else {
    // Without distillation every view survives.
    for (size_t i = 0; i < result.views.size(); ++i) {
      result.distillation.surviving.push_back(static_cast<int>(i));
    }
    result.distillation.count_after_compatible =
        static_cast<int64_t>(result.views.size());
    result.distillation.count_after_contained =
        static_cast<int64_t>(result.views.size());
  }

  // Automatic mode (Algorithm 1 line 13): overlap-based ranking of the
  // surviving views.
  VER_RETURN_IF_ERROR(control.Check("ranking"));
  std::vector<View> survivors;
  survivors.reserve(result.distillation.surviving.size());
  for (int idx : result.distillation.surviving) {
    // Rank on a lightweight copy; indices refer back to result.views.
    survivors.push_back(result.views[idx]);
  }
  std::vector<OverlapRankedView> ranked =
      RankViewsByOverlap(survivors, query_for_ranking);
  for (OverlapRankedView& r : ranked) {
    r.view_index = result.distillation.surviving[r.view_index];
  }
  result.automatic_ranking = std::move(ranked);
  return result;
}

std::unique_ptr<PresentationSession> Ver::StartSession(
    const QueryResult& result, const ExampleQuery& query) const {
  // The session borrows the result's views/distillation and the caller's
  // query; all must outlive the session.
  return std::make_unique<PresentationSession>(
      &result.views, &result.distillation, &query, config_.presentation);
}

}  // namespace ver
