// JOIN-GRAPH-SEARCH (Algorithm 5): from per-attribute candidate columns to
// materialized candidate PJ-views.
//
// Step 1 (Join Graph Enumeration) walks the cartesian product of candidate
// columns, asks the discovery engine for join graphs over each combination's
// tables (<= rho hops) and caches non-joinable table pairs to prune the
// remaining product. Step 2 ranks (graph, projection) candidates by the
// engine score and materializes the top-k.

#ifndef VER_CORE_JOIN_GRAPH_SEARCH_H_
#define VER_CORE_JOIN_GRAPH_SEARCH_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/column_selection.h"
#include "core/query.h"
#include "discovery/engine.h"
#include "engine/materializer.h"

namespace ver {

struct JoinGraphSearchOptions {
  /// Maximum hops per inter-table route (the paper's rho; default 2).
  /// Units: join edges per route.
  int max_hops = 2;
  /// Materialize this many top-ranked candidates (Algorithm 5's top-k);
  /// <= 0 means all. Units: views; default -1.
  int expected_views = -1;
  /// Guard on the candidate column-combination product (Algorithm 5
  /// line 2's cartesian walk). Units: combinations; default 100000.
  /// No paper counterpart (implementation guard).
  int64_t max_combinations = 100000;
  /// When false, only enumerate and rank; the caller materializes later
  /// (lets the Ver pipeline time enumeration and materialization apart).
  bool materialize_views = true;
  MaterializeOptions materialize;
};

/// One rankable candidate: a join graph plus the projection columns chosen
/// from each attribute's candidates.
struct ViewCandidate {
  JoinGraph graph;
  std::vector<ColumnRef> projection;
  double score = 0.0;
};

struct JoinGraphSearchResult {
  /// Materialized candidate PJ-views, ranked by score.
  std::vector<View> views;
  /// Ranked candidates before materialization (includes unmaterialized).
  std::vector<ViewCandidate> candidates;

  // --- funnel statistics (Figs. 5/6) ---
  /// Column combinations whose tables are joinable within rho hops.
  int64_t num_joinable_groups = 0;
  /// Join graphs enumerated across all joinable groups.
  int64_t num_join_graphs = 0;
  /// Combinations enumerated before pruning.
  int64_t num_combinations = 0;
  /// Views whose materialization failed (blowup/timeouts), for diagnostics.
  int64_t num_materialization_failures = 0;
};

/// Runs Algorithm 5 over the per-attribute candidate columns.
JoinGraphSearchResult SearchJoinGraphs(
    const DiscoveryEngine& engine,
    const std::vector<ColumnSelectionResult>& per_attribute,
    const JoinGraphSearchOptions& options);

/// Step 2's materialization, callable separately: materializes the top
/// `expected_views` ranked candidates (all when <= 0), dropping empty views
/// and exact duplicates. `num_failures` (optional) counts blowups.
std::vector<View> MaterializeCandidates(
    const TableRepository& repo, const std::vector<ViewCandidate>& candidates,
    const JoinGraphSearchOptions& options, int64_t* num_failures);

/// One-candidate-at-a-time materialization with the exact semantics of
/// MaterializeCandidates (id assignment, empty-view and duplicate dropping,
/// failure counting) — MaterializeCandidates is implemented as a loop over
/// this class, so feeding the same ranked candidates incrementally yields
/// bit-identical views. The streaming StopAfter path of Ver::Execute uses it
/// to stop materializing as soon as enough views survive distillation.
class CandidateMaterializer {
 public:
  CandidateMaterializer(const TableRepository* repo,
                        const MaterializeOptions& options);

  /// Materializes one candidate. Returns true when the view was kept and
  /// appended to views(); false when it failed (counted in num_failures),
  /// joined empty, or duplicated an earlier graph+projection.
  bool Materialize(const ViewCandidate& candidate);

  const std::vector<View>& views() const { return views_; }
  std::vector<View> TakeViews() { return std::move(views_); }
  int64_t num_failures() const { return num_failures_; }

  /// The most recently kept view (for in-place spill reload between
  /// materialization and distillation). Null when no view was kept yet.
  View* mutable_last_view() {
    return views_.empty() ? nullptr : &views_.back();
  }

 private:
  Materializer materializer_;
  MaterializeOptions options_;
  std::vector<View> views_;
  std::unordered_set<std::string> seen_views_;
  int64_t next_id_ = 0;
  int64_t num_failures_ = 0;
};

}  // namespace ver

#endif  // VER_CORE_JOIN_GRAPH_SEARCH_H_
