#include "core/view_specification.h"

#include <algorithm>

namespace ver {

const char* SpecificationKindToString(SpecificationKind k) {
  switch (k) {
    case SpecificationKind::kQbe:
      return "QBE";
    case SpecificationKind::kKeyword:
      return "keyword";
    case SpecificationKind::kAttribute:
      return "attribute";
  }
  return "unknown";
}

std::vector<ColumnSelectionResult> SpecifyByExample(
    const DiscoveryEngine& engine, const ExampleQuery& query,
    const ColumnSelectionOptions& options) {
  return SelectColumnsForQuery(engine, query, options);
}

namespace {

ColumnSelectionResult FromHits(const std::vector<KeywordHit>& hits) {
  ColumnSelectionResult result;
  ColumnCluster cluster;
  for (const KeywordHit& h : hits) {
    cluster.columns.push_back(ScoredColumn{h.column, h.match_count});
    cluster.score = std::max(cluster.score, h.match_count);
  }
  std::sort(cluster.columns.begin(), cluster.columns.end(),
            [](const ScoredColumn& a, const ScoredColumn& b) {
              return a.ref < b.ref;
            });
  cluster.columns.erase(
      std::unique(cluster.columns.begin(), cluster.columns.end(),
                  [](const ScoredColumn& a, const ScoredColumn& b) {
                    return a.ref == b.ref;
                  }),
      cluster.columns.end());
  result.total_columns_before_clustering =
      static_cast<int>(cluster.columns.size());
  result.clusters = {cluster};
  result.selected_clusters = result.clusters;
  result.candidates = cluster.columns;
  return result;
}

}  // namespace

std::vector<ColumnSelectionResult> SpecifyByKeywords(
    const DiscoveryEngine& engine, const std::vector<std::string>& keywords) {
  std::vector<ColumnSelectionResult> out;
  out.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    std::vector<KeywordHit> hits =
        engine.SearchKeyword(kw, KeywordTarget::kValues, /*fuzzy=*/false);
    if (hits.empty()) {
      hits = engine.SearchKeyword(kw, KeywordTarget::kValues, /*fuzzy=*/true);
    }
    out.push_back(FromHits(hits));
  }
  return out;
}

std::vector<ColumnSelectionResult> SpecifyByAttributes(
    const DiscoveryEngine& engine,
    const std::vector<std::string>& attributes) {
  std::vector<ColumnSelectionResult> out;
  out.reserve(attributes.size());
  for (const std::string& attr : attributes) {
    std::vector<KeywordHit> hits =
        engine.SearchKeyword(attr, KeywordTarget::kAttributes,
                             /*fuzzy=*/false);
    if (hits.empty()) {
      hits = engine.SearchKeyword(attr, KeywordTarget::kAttributes,
                                  /*fuzzy=*/true);
    }
    out.push_back(FromHits(hits));
  }
  return out;
}

}  // namespace ver
