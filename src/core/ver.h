// Ver: the end-to-end system facade (Algorithm 1).
//
// Owns the offline discovery index over a repository and runs the online
// pipeline per query: VIEW-SPECIFICATION -> COLUMN-SELECTION ->
// JOIN-GRAPH-SEARCH -> MATERIALIZER -> VIEW-DISTILLATION, with per-stage
// wall-clock timing (the component breakdown of Fig. 4b / Fig. 7). The
// human-facing VIEW-PRESENTATION stage is exposed as a session factory.

#ifndef VER_CORE_VER_H_
#define VER_CORE_VER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fast_topk.h"
#include "core/column_selection.h"
#include "core/distillation.h"
#include "core/join_graph_search.h"
#include "core/presentation.h"
#include "core/query.h"
#include "core/view_specification.h"
#include "discovery/engine.h"
#include "util/result.h"

namespace ver {

/// Everything the online pipeline is configured by. Each nested options
/// struct documents its own knobs (default, units, paper parameter).
struct VerConfig {
  /// Offline index construction + Appendix A discovery functions.
  DiscoveryOptions discovery;
  /// COLUMN-SELECTION (Algorithm 4): strategy, theta, clustering threshold.
  ColumnSelectionOptions selection;
  /// JOIN-GRAPH-SEARCH (Algorithm 5): rho, top-k, combination guard.
  JoinGraphSearchOptions search;
  /// VIEW-DISTILLATION (Algorithm 3 / 4C): key detection thresholds.
  DistillationOptions distillation;
  /// VIEW-PRESENTATION (Algorithm 2): bandit gamma, bootstrap pulls, seed.
  PresentationOptions presentation;
  /// Run VIEW-DISTILLATION after materialization (Algorithm 1 line 9).
  /// Default true; false reproduces the "no-4C" ablations (Table IV).
  bool run_distillation = true;
  /// When non-empty, views spill to disk after materialization and are read
  /// back before distillation, reproducing the paper's VD-IO cost ("Get
  /// Views Time", Fig. 3 / Fig. 4b). Default empty = keep views in memory.
  /// Each query spills into its own unique subdirectory of `spill_dir`, so
  /// concurrent queries (serving mode) never race on spill files.
  std::string spill_dir;
  /// Remove each query's spill subdirectory once its views have been read
  /// back (after the VD-IO stage). Default false keeps the files on disk
  /// for inspection (`View::spill_path` stays valid); a long-lived server
  /// must set it true or disk use grows by one directory per query —
  /// VerServer's index-building constructor does so automatically.
  bool cleanup_spilled_views = false;
};

/// Cooperative per-query control for the online pipeline: an optional
/// wall-clock deadline and an optional cancellation flag. `Ver` checks the
/// control between pipeline stages (never mid-stage), so a query stops at
/// the next stage boundary after the deadline passes or `cancel` becomes
/// true. Default-constructed control never fires.
struct QueryControl {
  /// Absolute deadline; `steady_clock::time_point::max()` means none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// When non-null and set to true, the query stops at the next stage
  /// boundary with a Cancelled status. The flag is owned by the caller.
  const std::atomic<bool>* cancel = nullptr;

  /// OK, or DeadlineExceeded / Cancelled naming the stage not started.
  Status Check(const char* next_stage) const;
};

/// Per-stage wall-clock seconds (Fig. 4b components).
struct PipelineTiming {
  double column_selection_s = 0;   // CS
  double join_graph_search_s = 0;  // JGS (enumeration + ranking)
  double materialize_s = 0;        // M
  double vd_io_s = 0;              // Get Views Time
  double four_c_s = 0;             // 4C runtime

  double total_s() const {
    return column_selection_s + join_graph_search_s + materialize_s +
           vd_io_s + four_c_s;
  }
};

/// Everything one query produces.
struct QueryResult {
  std::vector<ColumnSelectionResult> selection;
  JoinGraphSearchResult search;  // funnel stats + ranked candidates
  std::vector<View> views;       // materialized candidate PJ-views
  DistillationResult distillation;
  PipelineTiming timing;
  /// Automatic-mode ranking (Algorithm 1 line 13): overlap-scored order of
  /// the distilled surviving views.
  std::vector<OverlapRankedView> automatic_ranking;
};

// The request/response API layer (src/api/): Execute is declared against
// these; include "api/discovery_request.h" etc. to construct them.
struct DiscoveryRequest;
struct DiscoveryResponse;
class QueryObserver;

/// End-to-end system bound to one repository.
///
/// `Execute(DiscoveryRequest, QueryObserver*)` is the one real pipeline
/// driver (src/api/execute.cc): per-request knob overrides, deadlines,
/// streaming view delivery and StopAfter early termination all live there.
/// The RunQuery / RunWithCandidates overloads below are thin
/// source-compatibility wrappers over Execute and produce bit-identical
/// results (tests/api_test.cc guards the identity).
///
/// Thread-safety: after construction the object is immutable (the only
/// mutable member is the atomic spill-directory counter), and every const
/// method is safe to call from many threads concurrently — the online
/// pipeline keeps all its state on the stack, the discovery engine's read
/// path mutates nothing (see the contract in discovery/engine.h), and
/// spilling queries each write into a unique per-query subdirectory of
/// `VerConfig::spill_dir`. Concurrent RunQuery calls return results
/// identical to serial execution; tests/serving_test.cc guards that
/// contract.
class Ver {
 public:
  /// Builds the discovery index offline. `repo` must outlive this object.
  Ver(const TableRepository* repo, VerConfig config);

  /// Adopts an already-built engine — typically one restored with
  /// DiscoveryEngine::Load — so startup never forces a rebuild. The engine
  /// must have been built (or loaded) over `repo`; `config.discovery` is
  /// overwritten with the engine's own build options so the online
  /// pipeline sees the knobs the index was actually constructed with.
  Ver(const TableRepository* repo, VerConfig config,
      std::unique_ptr<DiscoveryEngine> engine);

  /// THE pipeline driver: runs one DiscoveryRequest (QBE or precomputed
  /// candidates, per-request knob overrides merged over config(), deadline,
  /// cancellation, StopAfter early termination) and streams typed events —
  /// stage started/finished, each view as soon as it survives 4C — to the
  /// optional observer. Validates the request first; an invalid request
  /// returns InvalidArgument without running any stage. Defined in
  /// src/api/execute.cc.
  DiscoveryResponse Execute(const DiscoveryRequest& request,
                            QueryObserver* observer = nullptr) const;

  /// Rvalue overload: identical behavior, but moves the request's
  /// candidate columns into the response instead of copying them (the
  /// legacy RunWithCandidates wrappers use it to stay copy-for-copy with
  /// the pre-API implementation).
  DiscoveryResponse Execute(DiscoveryRequest&& request,
                            QueryObserver* observer = nullptr) const;

  /// Runs the full automatic pipeline on a QBE query. Wrapper over Execute;
  /// an invalid query yields an empty result (use Execute or the controlled
  /// overload to see the InvalidArgument).
  QueryResult RunQuery(const ExampleQuery& query) const;

  /// RunQuery with deadline/cancellation checks between pipeline stages.
  /// Fails with InvalidArgument, DeadlineExceeded or Cancelled; never
  /// returns a partial result. Wrapper over Execute.
  Result<QueryResult> RunQuery(const ExampleQuery& query,
                               const QueryControl& control) const;

  /// Runs the pipeline starting from pre-computed candidate columns (used
  /// by the keyword / attribute specification variants). Wrapper over
  /// Execute.
  QueryResult RunWithCandidates(
      const std::vector<ColumnSelectionResult>& per_attribute,
      const ExampleQuery& query_for_ranking) const;

  /// RunWithCandidates with deadline/cancellation checks between stages.
  /// Wrapper over Execute.
  Result<QueryResult> RunWithCandidates(
      const std::vector<ColumnSelectionResult>& per_attribute,
      const ExampleQuery& query_for_ranking,
      const QueryControl& control) const;

  /// Starts an interactive VIEW-PRESENTATION session over a query result.
  /// The result must outlive the session.
  std::unique_ptr<PresentationSession> StartSession(
      const QueryResult& result, const ExampleQuery& query) const;

  const DiscoveryEngine& engine() const { return *engine_; }
  const VerConfig& config() const { return config_; }

 private:
  /// The one pipeline driver behind both Execute overloads.
  /// `stolen_candidates` (nullable) lets the rvalue overload donate the
  /// request's candidate vector instead of copying it.
  DiscoveryResponse ExecuteInternal(
      const DiscoveryRequest& request, QueryObserver* observer,
      std::vector<ColumnSelectionResult>* stolen_candidates) const;

  /// Unique spill subdirectory for the next query ("<spill_dir>/v<i>_q<n>",
  /// unique per Ver instance and per query within this process).
  std::string NextSpillDir() const;

  const TableRepository* repo_;
  VerConfig config_;
  std::unique_ptr<DiscoveryEngine> engine_;
  /// Process-unique tag of this instance, so two systems sharing one
  /// spill_dir cannot collide on subdirectory names.
  uint64_t spill_instance_ = 0;
  mutable std::atomic<uint64_t> spill_seq_{0};
};

}  // namespace ver

#endif  // VER_CORE_VER_H_
