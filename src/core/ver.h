// Ver: the end-to-end system facade (Algorithm 1).
//
// Owns the offline discovery index over a repository and runs the online
// pipeline per query: VIEW-SPECIFICATION -> COLUMN-SELECTION ->
// JOIN-GRAPH-SEARCH -> MATERIALIZER -> VIEW-DISTILLATION, with per-stage
// wall-clock timing (the component breakdown of Fig. 4b / Fig. 7). The
// human-facing VIEW-PRESENTATION stage is exposed as a session factory.

#ifndef VER_CORE_VER_H_
#define VER_CORE_VER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/fast_topk.h"
#include "core/column_selection.h"
#include "core/distillation.h"
#include "core/join_graph_search.h"
#include "core/presentation.h"
#include "core/query.h"
#include "core/view_specification.h"
#include "discovery/engine.h"

namespace ver {

struct VerConfig {
  DiscoveryOptions discovery;
  ColumnSelectionOptions selection;
  JoinGraphSearchOptions search;
  DistillationOptions distillation;
  PresentationOptions presentation;
  /// Run VIEW-DISTILLATION after materialization (Algorithm 1 line 9).
  bool run_distillation = true;
  /// When non-empty, views spill to disk after materialization and are read
  /// back before distillation, reproducing the paper's VD-IO cost.
  std::string spill_dir;
};

/// Per-stage wall-clock seconds (Fig. 4b components).
struct PipelineTiming {
  double column_selection_s = 0;   // CS
  double join_graph_search_s = 0;  // JGS (enumeration + ranking)
  double materialize_s = 0;        // M
  double vd_io_s = 0;              // Get Views Time
  double four_c_s = 0;             // 4C runtime

  double total_s() const {
    return column_selection_s + join_graph_search_s + materialize_s +
           vd_io_s + four_c_s;
  }
};

/// Everything one query produces.
struct QueryResult {
  std::vector<ColumnSelectionResult> selection;
  JoinGraphSearchResult search;  // funnel stats + ranked candidates
  std::vector<View> views;       // materialized candidate PJ-views
  DistillationResult distillation;
  PipelineTiming timing;
  /// Automatic-mode ranking (Algorithm 1 line 13): overlap-scored order of
  /// the distilled surviving views.
  std::vector<OverlapRankedView> automatic_ranking;
};

/// End-to-end system bound to one repository.
class Ver {
 public:
  /// Builds the discovery index offline. `repo` must outlive this object.
  Ver(const TableRepository* repo, VerConfig config);

  /// Runs the full automatic pipeline on a QBE query.
  QueryResult RunQuery(const ExampleQuery& query) const;

  /// Runs the pipeline starting from pre-computed candidate columns (used
  /// by the keyword / attribute specification variants).
  QueryResult RunWithCandidates(
      const std::vector<ColumnSelectionResult>& per_attribute,
      const ExampleQuery& query_for_ranking) const;

  /// Starts an interactive VIEW-PRESENTATION session over a query result.
  /// The result must outlive the session.
  std::unique_ptr<PresentationSession> StartSession(
      const QueryResult& result, const ExampleQuery& query) const;

  const DiscoveryEngine& engine() const { return *engine_; }
  const VerConfig& config() const { return config_; }

 private:
  const TableRepository* repo_;
  VerConfig config_;
  std::unique_ptr<DiscoveryEngine> engine_;
};

}  // namespace ver

#endif  // VER_CORE_VER_H_
