#include "core/join_graph_search.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ver {

namespace {

// Cartesian-product iterator over per-attribute candidate lists.
class CombinationIterator {
 public:
  explicit CombinationIterator(const std::vector<size_t>& sizes)
      : sizes_(sizes), indices_(sizes.size(), 0) {
    done_ = sizes_.empty();
    for (size_t s : sizes_) {
      if (s == 0) done_ = true;
    }
  }

  bool done() const { return done_; }
  const std::vector<size_t>& indices() const { return indices_; }

  void Next() {
    for (size_t i = 0; i < indices_.size(); ++i) {
      if (++indices_[i] < sizes_[i]) return;
      indices_[i] = 0;
    }
    done_ = true;
  }

 private:
  std::vector<size_t> sizes_;
  std::vector<size_t> indices_;
  bool done_ = false;
};

}  // namespace

JoinGraphSearchResult SearchJoinGraphs(
    const DiscoveryEngine& engine,
    const std::vector<ColumnSelectionResult>& per_attribute,
    const JoinGraphSearchOptions& options) {
  JoinGraphSearchResult result;

  std::vector<size_t> sizes;
  sizes.reserve(per_attribute.size());
  for (const auto& attr : per_attribute) {
    sizes.push_back(attr.candidates.size());
  }

  // Non-joinable table pairs discovered so far (Alg. 5 lines 6-8).
  std::set<std::pair<int32_t, int32_t>> non_joinable;
  // Joinable table groups seen (funnel statistic).
  std::set<std::vector<int32_t>> joinable_groups;
  // Dedup of (graph, projection) candidates.
  std::unordered_set<std::string> seen_candidates;

  for (CombinationIterator it(sizes); !it.done(); it.Next()) {
    if (result.num_combinations >= options.max_combinations) break;
    ++result.num_combinations;

    std::vector<ColumnRef> combo;
    combo.reserve(per_attribute.size());
    for (size_t a = 0; a < per_attribute.size(); ++a) {
      combo.push_back(per_attribute[a].candidates[it.indices()[a]].ref);
    }

    std::vector<int32_t> tables;
    for (const ColumnRef& c : combo) tables.push_back(c.table_id);
    std::sort(tables.begin(), tables.end());
    tables.erase(std::unique(tables.begin(), tables.end()), tables.end());

    // Prune combinations containing a known non-joinable table pair.
    bool pruned = false;
    for (size_t i = 0; i < tables.size() && !pruned; ++i) {
      for (size_t j = i + 1; j < tables.size(); ++j) {
        if (non_joinable.count({tables[i], tables[j]})) {
          pruned = true;
          break;
        }
      }
    }
    if (pruned) continue;

    std::vector<JoinGraph> graphs =
        engine.GenerateJoinGraphs(tables, options.max_hops);
    if (graphs.empty()) {
      // Record which pair is unreachable so future combinations skip it.
      for (size_t i = 0; i < tables.size(); ++i) {
        for (size_t j = i + 1; j < tables.size(); ++j) {
          if (engine
                  .GenerateJoinGraphs({tables[i], tables[j]},
                                      options.max_hops)
                  .empty()) {
            non_joinable.insert({tables[i], tables[j]});
          }
        }
      }
      continue;
    }

    joinable_groups.insert(tables);
    for (JoinGraph& g : graphs) {
      ViewCandidate cand;
      cand.projection = combo;
      cand.score = g.score;
      cand.graph = std::move(g);
      std::string key = cand.graph.Signature() + "|";
      std::vector<uint64_t> proj;
      for (const ColumnRef& c : cand.projection) proj.push_back(c.Encode());
      std::sort(proj.begin(), proj.end());
      for (uint64_t p : proj) {
        key += std::to_string(p);
        key.push_back(',');
      }
      if (seen_candidates.insert(key).second) {
        result.candidates.push_back(std::move(cand));
      }
    }
  }

  result.num_joinable_groups = static_cast<int64_t>(joinable_groups.size());
  result.num_join_graphs = static_cast<int64_t>(result.candidates.size());

  // Step 2: rank and materialize top-k.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const ViewCandidate& a, const ViewCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.graph.Signature() < b.graph.Signature();
            });

  if (options.materialize_views) {
    result.views =
        MaterializeCandidates(engine.repo(), result.candidates, options,
                              &result.num_materialization_failures);
  }
  return result;
}

CandidateMaterializer::CandidateMaterializer(const TableRepository* repo,
                                             const MaterializeOptions& options)
    : materializer_(repo), options_(options) {}

bool CandidateMaterializer::Materialize(const ViewCandidate& candidate) {
  Result<View> view = materializer_.MaterializeView(
      candidate.graph, candidate.projection, options_, next_id_);
  if (!view.ok()) {
    ++num_failures_;
    return false;
  }
  if (view->table.num_rows() == 0) return false;  // empty joins are noise
  // Views with identical content are still distinct candidates (the 4C
  // stage is what merges compatible views); dedupe only exact
  // graph+projection duplicates produced by symmetric enumeration.
  std::string key = candidate.graph.Signature();
  for (const ColumnRef& c : candidate.projection) {
    key += "|" + std::to_string(c.Encode());
  }
  if (!seen_views_.insert(key).second) return false;
  ++next_id_;
  views_.push_back(std::move(view).value());
  return true;
}

std::vector<View> MaterializeCandidates(
    const TableRepository& repo, const std::vector<ViewCandidate>& candidates,
    const JoinGraphSearchOptions& options, int64_t* num_failures) {
  int64_t limit = options.expected_views <= 0
                      ? static_cast<int64_t>(candidates.size())
                      : std::min<int64_t>(options.expected_views,
                                          candidates.size());
  CandidateMaterializer incremental(&repo, options.materialize);
  for (int64_t i = 0; i < limit; ++i) {
    incremental.Materialize(candidates[i]);
  }
  if (num_failures != nullptr) *num_failures += incremental.num_failures();
  return incremental.TakeViews();
}

}  // namespace ver
