// Interactive discovery: the VIEW-PRESENTATION session in action.
//
// A (simulated) journalist looks for a state/newspaper view among the many
// conflicting versions of a WDC-like web-table corpus. The bandit chooses
// question interfaces, the user answers or skips, the candidate set
// shrinks, and the user even changes their mind once (answer retraction) —
// the "adapt to evolving knowledge" design principle of the paper.

#include <cstdio>

#include "api/discovery_request.h"
#include "api/discovery_response.h"
#include "api/query_observer.h"
#include "core/ver.h"
#include "workload/noisy_query.h"
#include "workload/simulated_user.h"
#include "workload/wdc_gen.h"

using namespace ver;  // NOLINT — example brevity

namespace {

// Narrates the pipeline while the journalist waits — stage progress plus
// every candidate view the moment it survives 4C.
class ProgressObserver : public QueryObserver {
 public:
  void OnStageFinished(PipelineStage stage, double elapsed_s) override {
    std::printf("  %s finished in %.1fms\n", PipelineStageToString(stage),
                elapsed_s * 1000);
  }
  void OnViewDelivered(const View&, int delivery_index, double) override {
    if (delivery_index == 0) {
      std::printf("  first surviving view available — session could start\n");
    }
  }
};

const char* AnswerToString(AnswerType t) {
  switch (t) {
    case AnswerType::kYes:
      return "yes";
    case AnswerType::kNo:
      return "no";
    case AnswerType::kPickA:
      return "pick A";
    case AnswerType::kPickB:
      return "pick B";
    case AnswerType::kSkip:
      return "skip";
  }
  return "?";
}

}  // namespace

int main() {
  WdcSpec spec;
  GeneratedDataset dataset = GenerateWdcLike(spec);
  Ver system(&dataset.repo, VerConfig());

  const GroundTruthQuery& gt = dataset.queries[2];  // newspapers topic
  Result<ExampleQuery> query =
      MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kZero, 3, /*seed=*/31);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  ProgressObserver progress;
  DiscoveryResponse response =
      system.Execute(DiscoveryRequest::ForQuery(query.value()), &progress);
  if (!response.status.ok()) {
    std::fprintf(stderr, "%s\n", response.status.ToString().c_str());
    return 1;
  }
  QueryResult result = std::move(response.result);
  std::printf("%zu candidate views, %zu after distillation, %zu known "
              "contradictions\n",
              result.views.size(), result.distillation.surviving.size(),
              result.distillation.contradictions.size());

  Result<std::vector<int>> acceptable =
      GroundTruthMatches(dataset.repo, gt, result.views);
  if (!acceptable.ok() || acceptable->empty()) {
    std::fprintf(stderr, "no acceptable views — nothing to demo\n");
    return 1;
  }

  auto session = system.StartSession(result, query.value());
  SimulatedUserProfile profile;
  // This user is great with concrete datasets, mediocre with summaries.
  profile.competence[static_cast<int>(QuestionInterface::kDataset)] = 0.95;
  profile.competence[static_cast<int>(QuestionInterface::kAttribute)] = 0.8;
  profile.competence[static_cast<int>(QuestionInterface::kDatasetPair)] = 0.9;
  profile.competence[static_cast<int>(QuestionInterface::kSummary)] = 0.4;
  SimulatedUser user(profile, acceptable.value(), &result.views,
                     &result.distillation);

  for (int round = 1; round <= 12 && !session->Done(); ++round) {
    Question q = session->NextQuestion();
    Answer a = user.Respond(q);
    std::printf("\n[%02d] (%s, info gain %d)\n     %s\n     user: %s\n",
                round, QuestionInterfaceToString(q.interface_kind),
                q.info_gain, q.prompt.c_str(), AnswerToString(a.type));
    session->SubmitAnswer(q, a);
    std::printf("     -> %zu candidate views remain\n",
                session->remaining().size());

    // Round 4: the user realizes their first real answer was wrong.
    if (round == 4 && session->num_answers() > 1) {
      std::printf("     (user retracts their first answer)\n");
      session->RetractAnswer(0);
      std::printf("     -> %zu candidate views after retraction\n",
                  session->remaining().size());
    }
  }

  std::printf("\nFinal ranking (top 5):\n");
  std::vector<RankedView> ranking = session->RankedViews();
  for (size_t i = 0; i < ranking.size() && i < 5; ++i) {
    const View& v = result.views[ranking[i].view_index];
    std::printf("%zu. view_%lld utility=%.3f (%s)%s\n", i + 1,
                static_cast<long long>(v.id), ranking[i].utility,
                v.table.name().c_str(),
                user.Accepts(ranking[i].view_index) ? "  <- the user's view"
                                                    : "");
  }
  return 0;
}
