// Open-data-portal scenario: the collection lives as CSV files on disk
// (like a crawl of data portals), gets loaded as a pathless repository, and
// views are discovered with disk spill enabled — the configuration whose
// IO costs the paper's scalability experiments measure.

#include <cstdio>
#include <filesystem>

#include "core/ver.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

using namespace ver;  // NOLINT — example brevity

int main() {
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() / "ver_open_data_example";
  fs::path data_dir = root / "portal";
  fs::path spill_dir = root / "views";
  fs::remove_all(root);

  // 1. Write a synthetic portal crawl to disk as plain CSV files...
  OpenDataSpec spec;
  spec.num_tables = 80;
  spec.num_queries = 5;
  GeneratedDataset generated = GenerateOpenDataLike(spec);
  Status save = generated.repo.SaveDirectory(data_dir.string());
  if (!save.ok()) {
    std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("Wrote %d CSV files to %s\n", generated.repo.num_tables(),
              data_dir.string().c_str());

  // 2. ...and load them back the way a user would: a directory of CSVs,
  // no schema, no keys, no join paths.
  TableRepository repo;
  Status load = repo.LoadDirectory(data_dir.string());
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("Loaded %d tables (%lld rows total)\n", repo.num_tables(),
              static_cast<long long>(repo.TotalRows()));

  // 3. Discover views with spill-to-disk enabled: materialized candidate
  // views are written as CSV and read back before distillation.
  VerConfig config;
  config.spill_dir = spill_dir.string();
  Ver system(&repo, config);

  // Reuse a generated ground-truth query; resolve it against the reloaded
  // repository (table names are stable).
  const GroundTruthQuery& gt = generated.queries.front();
  Result<ExampleQuery> query =
      MakeNoisyQuery(repo, gt, NoiseLevel::kZero, 3, /*seed=*/23);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  QueryResult result = system.RunQuery(query.value());

  std::printf("\n%zu candidate views (%zu after distillation)\n",
              result.views.size(), result.distillation.surviving.size());
  std::printf(
      "Timings: CS=%.1fms JGS=%.1fms M=%.1fms VD-IO=%.1fms 4C=%.1fms\n",
      result.timing.column_selection_s * 1000,
      result.timing.join_graph_search_s * 1000,
      result.timing.materialize_s * 1000, result.timing.vd_io_s * 1000,
      result.timing.four_c_s * 1000);

  int shown = 0;
  for (int idx : result.distillation.surviving) {
    const View& v = result.views[idx];
    std::printf("\nview_%lld (%lld rows) spilled at %s\n",
                static_cast<long long>(v.id),
                static_cast<long long>(v.table.num_rows()),
                v.spill_path.c_str());
    if (++shown >= 3) break;
  }

  fs::remove_all(root);
  return 0;
}
