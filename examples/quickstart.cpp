// Quickstart: discover project-join views over a small pathless table
// collection with a query-by-example input.
//
// Builds a toy repository of four CSV tables (no key/foreign-key
// information!), asks Ver for views containing (city, mayor) examples, and
// prints the candidate views the system discovers plus the 4C relationships
// among them.

#include <cstdio>

#include "core/ver.h"
#include "table/csv.h"

using namespace ver;  // NOLINT — example brevity

namespace {

void AddCsv(TableRepository* repo, const std::string& name,
            const std::string& csv) {
  Result<Table> table = ReadCsvString(csv, name);
  if (!table.ok()) {
    std::fprintf(stderr, "parse %s: %s\n", name.c_str(),
                 table.status().ToString().c_str());
    std::exit(1);
  }
  Result<int32_t> id = repo->AddTable(std::move(table).value());
  if (!id.ok()) {
    std::fprintf(stderr, "add %s: %s\n", name.c_str(),
                 id.status().ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. A pathless table collection: four tables, no join information.
  TableRepository repo;
  AddCsv(&repo, "cities",
         "city,state,population\n"
         "Boston,Massachusetts,650000\n"
         "Chicago,Illinois,2700000\n"
         "Austin,Texas,960000\n"
         "Denver,Colorado,715000\n");
  AddCsv(&repo, "mayors",
         "city,mayor\n"
         "Boston,Michelle Wu\n"
         "Chicago,Brandon Johnson\n"
         "Austin,Kirk Watson\n"
         "Denver,Mike Johnston\n");
  AddCsv(&repo, "mayors_2019",  // an older, conflicting version
         "city,mayor\n"
         "Boston,Marty Walsh\n"
         "Chicago,Lori Lightfoot\n"
         "Austin,Steve Adler\n");
  AddCsv(&repo, "weather",
         "station,temp\n"
         "KBOS,55\n"
         "KORD,48\n");

  // 2. Build the system: this profiles every column offline and constructs
  // the discovery index (keyword search, containment sketches, join paths).
  Ver system(&repo, VerConfig());
  std::printf("Indexed %d tables, %lld joinable column pairs\n",
              repo.num_tables(),
              static_cast<long long>(
                  system.engine().num_joinable_column_pairs()));

  // 3. Query by example: "I want a view with cities and their mayors".
  ExampleQuery query = ExampleQuery::FromColumns({
      {"Boston", "Chicago"},           // examples for the first attribute
      {"Michelle Wu", "Steve Adler"},  // noisy examples for the second
  });
  QueryResult result = system.RunQuery(query);

  std::printf("\nCandidate PJ-views (%zu):\n", result.views.size());
  for (const View& v : result.views) {
    std::printf("- %s via %s\n%s\n", v.table.name().c_str(),
                v.graph.ToString(repo).c_str(),
                v.table.ToString(4).c_str());
  }

  // 4. 4C distillation output: how the candidate views relate.
  std::printf("4C relationships:\n");
  for (const ViewEdge& e : result.distillation.edges) {
    std::printf("- view_%d %s view_%d", e.view_a,
                ViewRelationToString(e.relation), e.view_b);
    if (!e.key.empty()) {
      std::printf(" (key: %s)", e.key[0].c_str());
    }
    std::printf("\n");
  }
  for (const Contradiction& c : result.distillation.contradictions) {
    std::printf("- contradiction on %s='%s' involving %d views\n",
                c.key[0].c_str(), c.key_value_text.c_str(), c.num_views());
  }

  // 5. Automatic mode: overlap-ranked distilled views.
  std::printf("\nAutomatic ranking of distilled views:\n");
  for (const OverlapRankedView& r : result.automatic_ranking) {
    std::printf("- view_%d overlap=%d score=%.2f\n", r.view_index, r.overlap,
                r.score);
  }
  return 0;
}
