// serving_demo: the concurrent serving layer in ~100 lines.
//
// Generates an open-data-like portal, starts a VerServer with 4 workers and
// an LRU result cache, then fires the same small query mix from 4 client
// threads — showing submission tickets, cache hits, a deadline miss, and
// the server statistics. A second act demos the request/response API: a
// DiscoveryRequest with per-request knob overrides (its result never
// aliases the default-knob cache entries), and a streaming StopAfter(1)
// request whose first view arrives through a QueryObserver long before the
// full pipeline would have finished. Runs argument-free (it doubles as a
// CTest smoke test).

#include <cstdio>
#include <thread>
#include <vector>

#include "api/discovery_request.h"
#include "api/query_observer.h"
#include "serving/ver_server.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

using namespace ver;  // NOLINT — example brevity

namespace {

// Prints every view the moment a worker thread classifies it as surviving.
class PrintingObserver : public QueryObserver {
 public:
  void OnViewDelivered(const View& view, int delivery_index,
                       double elapsed_s) override {
    std::printf("  streamed view #%d after %.1fms (%lld rows)\n",
                delivery_index + 1, elapsed_s * 1000,
                static_cast<long long>(view.num_rows()));
  }
};

}  // namespace

int main() {
  OpenDataSpec spec;
  spec.num_tables = 50;
  spec.num_queries = 3;
  GeneratedDataset dataset = GenerateOpenDataLike(spec);
  std::vector<ExampleQuery> queries;
  for (size_t i = 0; i < dataset.queries.size(); ++i) {
    Result<ExampleQuery> q = MakeNoisyQuery(dataset.repo, dataset.queries[i],
                                            NoiseLevel::kZero, 3, 7 + i);
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  if (queries.empty()) {
    std::fprintf(stderr, "demo setup failed\n");
    return 1;
  }

  VerConfig config;
  config.discovery.parallelism = 0;  // index offline on every core
  ServingOptions serving;
  serving.num_workers = 4;
  serving.cache_capacity = 32;
  VerServer server(&dataset.repo, config, serving);
  std::printf("serving %d tables with %d workers, cache capacity %zu\n",
              dataset.repo.num_tables(), serving.num_workers,
              serving.cache_capacity);

  // 4 client threads, each serving the whole mix twice; the second pass is
  // all cache hits.
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&server, &queries, t] {
      for (int round = 0; round < 2; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
          ServedResult served = server.Serve(queries[(i + t) % queries.size()]);
          if (served.status.ok()) {
            std::printf(
                "client %d: %zu views, %zu after 4C%s (wait %.1fms, run "
                "%.1fms)\n",
                t, served.result->views.size(),
                served.result->distillation.surviving.size(),
                served.cache_hit ? " [cache hit]" : "",
                served.queue_wait_s * 1000, served.run_s * 1000);
          } else {
            std::printf("client %d: %s\n", t, served.status.ToString().c_str());
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  // Per-request knobs: the same query with theta=2 and distillation off is
  // a different request — it can never alias the cached default results.
  DiscoveryRequest tweaked = DiscoveryRequest::ForQuery(queries[0]);
  tweaked.overrides.theta = 2;
  tweaked.overrides.run_distillation = false;
  ServedResult custom = server.Serve(std::move(tweaked));
  if (custom.status.ok()) {
    std::printf("\ntheta=2, no-distill request: %zu views%s\n",
                custom.result->views.size(),
                custom.cache_hit ? " [cache hit — BUG]" : " [cache miss]");
  }

  // Streaming early termination: StopAfter(1) delivers the first surviving
  // view through the observer and stops materializing the rest.
  PrintingObserver observer;
  std::printf("streaming StopAfter(1) request:\n");
  auto ticket = server.Submit(
      DiscoveryRequest::ForQuery(queries[0]).StopAfter(1), &observer);
  const ServedResult& streamed = ticket->Wait();
  if (streamed.status.ok()) {
    std::printf("  -> %d views delivered, early_terminated=%s, run %.1fms\n",
                streamed.views_delivered,
                streamed.early_terminated ? "true" : "false",
                streamed.run_s * 1000);
  }

  // A 1-nanosecond deadline always expires while queued: a clean failure.
  ServedResult late = server.Submit(queries[0], /*deadline_s=*/1e-9)->Wait();
  std::printf("1ns deadline: %s\n", late.status.ToString().c_str());

  ServerStats stats = server.stats();
  std::printf(
      "\nstats: submitted=%lld ok=%lld deadline_exceeded=%lld rejected=%lld\n"
      "cache: hits=%lld misses=%lld evictions=%lld\n"
      "queue: peak depth=%lld; overrides=%lld streaming=%lld\n",
      static_cast<long long>(stats.submitted),
      static_cast<long long>(stats.served_ok),
      static_cast<long long>(stats.deadline_exceeded),
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.cache_misses),
      static_cast<long long>(stats.cache_evictions),
      static_cast<long long>(stats.peak_queue_depth),
      static_cast<long long>(stats.requests_with_overrides),
      static_cast<long long>(stats.requests_streaming));
  return stats.served_ok > 0 ? 0 : 1;
}
