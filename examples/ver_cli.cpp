// ver_cli: command-line view discovery over a directory of CSV files.
//
//   ver_cli [--parallelism=N] <csv-dir> <examples-A> <examples-B> [...]
//
// where each <examples-X> is a comma-separated list of example values for
// one output attribute, e.g.:
//
//   ver_cli ./portal "Boston,Chicago" "Wu,Johnson"
//
// --parallelism=N sets the worker count for offline index construction
// (DiscoveryOptions::parallelism): 1 = serial, 0 = all hardware threads
// (the default). Run without arguments it demos itself on a generated
// open-data corpus.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <filesystem>
#include <string>
#include <vector>

#include "core/view_graph_export.h"
#include "core/ver.h"
#include "util/string_util.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

using namespace ver;  // NOLINT — example brevity

namespace {

int RunQueryOverDirectory(const std::string& dir, const ExampleQuery& query,
                          int parallelism) {
  TableRepository repo;
  Status load = repo.LoadDirectory(dir);
  if (!load.ok()) {
    std::fprintf(stderr, "error: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("loaded %d tables (%lld rows) from %s\n", repo.num_tables(),
              static_cast<long long>(repo.TotalRows()), dir.c_str());

  VerConfig config;
  config.discovery.parallelism = parallelism;
  Ver system(&repo, config);
  std::printf("indexed: %lld joinable column pairs\n",
              static_cast<long long>(
                  system.engine().num_joinable_column_pairs()));

  QueryResult result = system.RunQuery(query);
  std::printf("\n%zu candidate views; %zu after 4C distillation "
              "(CS %.1fms, JGS %.1fms, M %.1fms, 4C %.1fms)\n",
              result.views.size(), result.distillation.surviving.size(),
              result.timing.column_selection_s * 1000,
              result.timing.join_graph_search_s * 1000,
              result.timing.materialize_s * 1000,
              result.timing.four_c_s * 1000);

  std::printf("\n%s\n", DistillationReport(result.views,
                                           result.distillation).c_str());

  int shown = 0;
  for (const OverlapRankedView& r : result.automatic_ranking) {
    const View& v = result.views[r.view_index];
    std::printf("#%d (overlap %d) %s\n%s\n", ++shown, r.overlap,
                v.graph.ToString(repo).c_str(), v.table.ToString(5).c_str());
    if (shown >= 3) break;
  }
  return 0;
}

}  // namespace

namespace {

// Strict integer parse; rejects empty/trailing garbage (atoi would map
// "one" to 0 = all cores silently).
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int parallelism = 0;  // default: offline indexing on every core
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool is_flag = false;
    if (arg.rfind("--parallelism=", 0) == 0) {
      is_flag = true;
      value = arg.substr(14);
    } else if (arg == "--parallelism") {
      is_flag = true;
      if (i + 1 < argc) value = argv[++i];
    }
    if (is_flag) {
      if (!ParseInt(value, &parallelism)) {
        std::fprintf(stderr, "error: --parallelism needs an integer "
                             "(got '%s')\n", value.c_str());
        return 2;
      }
    } else {
      args.push_back(std::move(arg));
    }
  }

  if (args.size() >= 2) {
    std::vector<std::vector<std::string>> columns;
    for (size_t i = 1; i < args.size(); ++i) {
      std::vector<std::string> values;
      for (std::string& v : Split(args[i], ',')) {
        std::string trimmed = Trim(v);
        if (!trimmed.empty()) values.push_back(std::move(trimmed));
      }
      columns.push_back(std::move(values));
    }
    return RunQueryOverDirectory(
        args[0], ExampleQuery::FromColumns(std::move(columns)), parallelism);
  }

  // Demo mode: write a generated portal to a temp dir and query it.
  std::printf("usage: %s [--parallelism=N] <csv-dir> <examples-A> "
              "<examples-B> [...]\n"
              "no arguments given — running the self-demo.\n\n",
              argc > 0 ? argv[0] : "ver_cli");
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "ver_cli_demo";
  fs::remove_all(dir);
  OpenDataSpec spec;
  spec.num_tables = 60;
  spec.num_queries = 1;
  GeneratedDataset dataset = GenerateOpenDataLike(spec);
  if (!dataset.repo.SaveDirectory(dir.string()).ok() ||
      dataset.queries.empty()) {
    std::fprintf(stderr, "demo setup failed\n");
    return 1;
  }
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset.repo, dataset.queries[0], NoiseLevel::kZero, 3, 7);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  int rc = RunQueryOverDirectory(dir.string(), query.value(), parallelism);
  fs::remove_all(dir);
  return rc;
}
