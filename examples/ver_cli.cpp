// ver_cli: command-line view discovery over a directory of CSV files.
//
// Subcommands (the production snapshot workflow):
//
//   ver_cli build-index [--parallelism=N] [--shards=N] --index-path=PATH <csv-dir>
//       Profiles and indexes the repository offline, then persists the
//       discovery snapshot to PATH (versioned binary format, atomic write).
//       --shards=N hash-partitions the tables into N discovery shards that
//       build (and later answer queries) in parallel; results are
//       bit-identical to --shards=1, and the snapshot records the layout
//       (format v4, one section group per shard).
//
//   ver_cli query --index-path=PATH [<csv-dir>] <examples-A> [<examples-B> ...]
//       Loads the snapshot (no rebuild) and runs one QBE query, where each
//       <examples-X> is a comma-separated list of example values for one
//       output attribute, e.g.  "Boston,Chicago" "Wu,Johnson". When
//       <csv-dir> is omitted the repository itself loads from the
//       snapshot's columnar table sections — zero CSV parsing.
//       Per-request knobs ride along as flags: --theta=N --rho=N --k=N
//       --no-distill --stop-after=N --deadline=SECONDS. With --stop-after
//       the pipeline streams each surviving view as it is classified and
//       stops once N views survive.
//
//   ver_cli serve --index-path=PATH [--memory-budget=SIZE] [<csv-dir>]
//       Loads the snapshot (tables from <csv-dir>, or from the snapshot
//       itself when omitted) and serves queries from stdin, one per line.
//       --memory-budget=SIZE (e.g. 64m, 2g, plain bytes) enables paged
//       serving: the snapshot is mmapped and column/posting payloads page
//       in on demand under a buffer-pool residency budget, so a snapshot
//       larger than RAM (or larger than the budget) still serves — queries
//       answer bit-identically to resident mode. One pool spans hot swaps,
//       so the budget holds while old and new snapshots are both alive.
//       REPL commands:
//         a1,a2|b1,b2          run a QBE query (| separates attributes)
//         opts k=v ...         sticky per-request knobs for later queries:
//                              theta= rho= k= stop= deadline= nodistill
//                              ('opts clear' resets, bare 'opts' prints)
//         stats                print server statistics (queue depth, cache,
//                              per-knob override usage, per-shard scatter
//                              counters and swap epochs)
//         swap <snapshot>      hot-swap to a newer snapshot (zero downtime)
//         swap-shard <s> <dir> re-profile + re-index only shard <s> against
//                              the CSVs in <dir> (same table shapes) and
//                              swap the result in; other shards are shared,
//                              in-flight queries finish on the old engine
//         quit                 exit (EOF works too)
//
//   ver_cli demo-data <output-dir>
//       Writes a generated open-data portal to <output-dir> and prints the
//       example columns of a known-answer query to stdout (one line per
//       attribute) — handy for scripting an end-to-end smoke test.
//
// Legacy one-shot mode (kept for muscle memory) builds the index in memory
// and queries immediately:
//
//   ver_cli [--parallelism=N] <csv-dir> <examples-A> <examples-B> [...]
//
// --parallelism=N sets the worker count for offline index construction
// (DiscoveryOptions::parallelism): 1 = serial, 0 = all hardware threads
// (the default). Run without arguments it demos itself on a generated
// open-data corpus, exercising the full build-index -> query round trip.

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/discovery_request.h"
#include "api/discovery_response.h"
#include "api/query_observer.h"
#include "core/view_graph_export.h"
#include "core/ver.h"
#include "serving/ver_server.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

using namespace ver;  // NOLINT — example brevity

namespace {

// Strict integer parse; rejects empty/trailing garbage (atoi would map
// "one" to 0 = all cores silently).
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

// Byte size with an optional k/m/g suffix (binary units): "64m", "2g",
// "1048576".
bool ParseByteSize(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  std::string digits = text;
  uint64_t multiplier = 1;
  char suffix = static_cast<char>(std::tolower(digits.back()));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? (1ull << 10)
                               : suffix == 'm' ? (1ull << 20) : (1ull << 30);
    digits.pop_back();
    if (digits.empty()) return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  if (v > std::numeric_limits<uint64_t>::max() / multiplier) return false;
  *out = static_cast<uint64_t>(v) * multiplier;
  return true;
}

// Per-request knobs accepted by `query` flags and the serve REPL's `opts`
// command; Resolve() folds them into a DiscoveryRequest.
struct RequestFlags {
  RequestOverrides overrides;
  int stop_after = 0;
  double deadline_s = 0;

  bool any() const {
    return overrides.any() || stop_after > 0 || deadline_s > 0;
  }

  void ApplyTo(DiscoveryRequest* request) const {
    request->overrides = overrides;
    request->stop_after = stop_after;
    request->deadline_s = deadline_s;
  }

  std::string Describe() const {
    std::string out;
    auto add = [&out](const std::string& piece) {
      if (!out.empty()) out += " ";
      out += piece;
    };
    if (overrides.theta) add("theta=" + std::to_string(*overrides.theta));
    if (overrides.max_hops) add("rho=" + std::to_string(*overrides.max_hops));
    if (overrides.expected_views) {
      add("k=" + std::to_string(*overrides.expected_views));
    }
    if (overrides.run_distillation && !*overrides.run_distillation) {
      add("nodistill");
    }
    if (stop_after > 0) add("stop=" + std::to_string(stop_after));
    if (deadline_s > 0) add("deadline=" + std::to_string(deadline_s));
    return out.empty() ? "(defaults)" : out;
  }

  /// Parses one key=value token ("theta=2", "nodistill", ...). Returns
  /// false (with a message on stderr) on an unknown option or a value
  /// that does not parse.
  bool ParseToken(const std::string& token) {
    if (token == "nodistill" || token == "no-distill") {
      overrides.run_distillation = false;
      return true;
    }
    size_t eq = token.find('=');
    std::string key = token.substr(0, eq);  // whole token when no '='
    std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
    auto bad_value = [&](const char* kind) {
      std::fprintf(stderr, "request option '%s' needs %s value (got '%s')\n",
                   key.c_str(), kind, value.c_str());
      return false;
    };
    int v = 0;
    if (key == "theta" || key == "rho" || key == "k" || key == "stop") {
      if (!ParseInt(value, &v)) return bad_value("an integer");
      if (key == "theta") overrides.theta = v;
      if (key == "rho") overrides.max_hops = v;
      if (key == "k") overrides.expected_views = v;
      if (key == "stop") stop_after = v;
      return true;
    }
    if (key == "deadline") {
      double d = 0;
      if (!ParseDouble(value, &d)) return bad_value("a seconds");
      deadline_s = d;
      return true;
    }
    std::fprintf(stderr, "unrecognized request option '%s' (known: theta= "
                         "rho= k= stop= deadline= nodistill)\n",
                 token.c_str());
    return false;
  }
};

// Prints pipeline progress; with `print_views` (streaming StopAfter runs)
// each view is printed the moment the pipeline classifies it as surviving —
// the streaming face of the request/response API.
class StreamingPrinter : public QueryObserver {
 public:
  StreamingPrinter(const TableRepository* repo, bool print_views)
      : repo_(repo), print_views_(print_views) {}

  void OnStageFinished(PipelineStage stage, double elapsed_s) override {
    std::fprintf(stderr, "  [%s done in %.1fms]\n",
                 PipelineStageToString(stage), elapsed_s * 1000);
  }
  void OnViewDelivered(const View& view, int delivery_index,
                       double elapsed_s) override {
    if (!print_views_) return;
    std::printf("view #%d at %.1fms: %s (%lld rows)\n", delivery_index + 1,
                elapsed_s * 1000, view.graph.ToString(*repo_).c_str(),
                static_cast<long long>(view.num_rows()));
  }

 private:
  const TableRepository* repo_;
  bool print_views_;
};

bool LoadRepo(const std::string& dir, TableRepository* repo) {
  Status load = repo->LoadDirectory(dir);
  if (!load.ok()) {
    std::fprintf(stderr, "error: %s\n", load.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "loaded %d tables (%lld rows) from %s\n",
               repo->num_tables(), static_cast<long long>(repo->TotalRows()),
               dir.c_str());
  return true;
}

// With a CSV directory: parse it. Without one: reconstruct the repository
// from the snapshot's columnar table sections (format v2) — the zero-CSV
// cold-start path.
bool LoadRepoFromDirOrSnapshot(const std::string& dir,
                               const std::string& index_path,
                               TableRepository* repo,
                               const PagingOptions& paging = PagingOptions()) {
  if (!dir.empty()) return LoadRepo(dir, repo);
  WallTimer timer;
  Result<TableRepository> loaded =
      DiscoveryEngine::LoadRepository(index_path, paging);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return false;
  }
  *repo = std::move(loaded).value();
  std::fprintf(stderr,
               "loaded %d tables (%lld rows) from snapshot %s in %.3fs "
               "(no CSV parsing%s)\n",
               repo->num_tables(), static_cast<long long>(repo->TotalRows()),
               index_path.c_str(), timer.ElapsedSeconds(),
               repo->pager() != nullptr ? "; paged, columns stay in the map"
                                        : "");
  return true;
}

ExampleQuery QueryFromColumnArgs(const std::vector<std::string>& column_args) {
  std::vector<std::vector<std::string>> columns;
  for (const std::string& arg : column_args) {
    std::vector<std::string> values;
    for (std::string& v : Split(arg, ',')) {
      std::string trimmed = Trim(v);
      if (!trimmed.empty()) values.push_back(std::move(trimmed));
    }
    columns.push_back(std::move(values));
  }
  return ExampleQuery::FromColumns(std::move(columns));
}

void PrintResult(const TableRepository& repo, const QueryResult& result) {
  std::printf("\n%zu candidate views; %zu after 4C distillation "
              "(CS %.1fms, JGS %.1fms, M %.1fms, 4C %.1fms)\n",
              result.views.size(), result.distillation.surviving.size(),
              result.timing.column_selection_s * 1000,
              result.timing.join_graph_search_s * 1000,
              result.timing.materialize_s * 1000,
              result.timing.four_c_s * 1000);

  std::printf("\n%s\n", DistillationReport(result.views,
                                           result.distillation).c_str());

  int shown = 0;
  for (const OverlapRankedView& r : result.automatic_ranking) {
    const View& v = result.views[r.view_index];
    std::printf("#%d (overlap %d) %s\n%s\n", ++shown, r.overlap,
                v.graph.ToString(repo).c_str(), v.table.ToString(5).c_str());
    if (shown >= 3) break;
  }
}

int BuildIndex(const std::string& dir, const std::string& index_path,
               int parallelism, int num_shards) {
  TableRepository repo;
  if (!LoadRepo(dir, &repo)) return 1;

  DiscoveryOptions options;
  options.parallelism = parallelism;
  options.num_shards = num_shards;
  WallTimer timer;
  std::unique_ptr<DiscoveryEngine> engine = DiscoveryEngine::Build(repo, options);
  double build_s = timer.ElapsedSeconds();

  timer.Restart();
  Status saved = engine->Save(index_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  uintmax_t bytes = std::filesystem::file_size(index_path, ec);
  std::printf("indexed %lld joinable column pairs (%d shard%s) in %.2fs; "
              "wrote %s (%lld bytes) in %.3fs\n",
              static_cast<long long>(engine->num_joinable_column_pairs()),
              engine->num_shards(), engine->num_shards() == 1 ? "" : "s",
              build_s, index_path.c_str(),
              ec ? 0LL : static_cast<long long>(bytes),
              timer.ElapsedSeconds());
  return 0;
}

// Loads the snapshot when `index_path` is set, otherwise builds in memory.
std::unique_ptr<Ver> MakeSystem(const TableRepository& repo,
                                const std::string& index_path,
                                int parallelism) {
  VerConfig config;
  if (index_path.empty()) {
    config.discovery.parallelism = parallelism;
    return std::make_unique<Ver>(&repo, config);
  }
  WallTimer timer;
  Result<std::unique_ptr<DiscoveryEngine>> engine =
      DiscoveryEngine::Load(repo, index_path);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return nullptr;
  }
  std::fprintf(stderr, "loaded snapshot %s in %.3fs (no rebuild)\n",
               index_path.c_str(), timer.ElapsedSeconds());
  return std::make_unique<Ver>(&repo, config, std::move(engine).value());
}

int RunQueryOverDirectory(const std::string& dir, const ExampleQuery& query,
                          int parallelism, const std::string& index_path,
                          const RequestFlags& flags) {
  TableRepository repo;
  if (!LoadRepoFromDirOrSnapshot(dir, index_path, &repo)) return 1;

  std::unique_ptr<Ver> system = MakeSystem(repo, index_path, parallelism);
  if (system == nullptr) return 1;
  std::printf("indexed: %lld joinable column pairs\n",
              static_cast<long long>(
                  system->engine().num_joinable_column_pairs()));

  DiscoveryRequest request = DiscoveryRequest::ForQuery(query);
  flags.ApplyTo(&request);
  if (flags.any()) {
    std::fprintf(stderr, "request options: %s\n", flags.Describe().c_str());
  }
  StreamingPrinter printer(&repo, /*print_views=*/flags.stop_after > 0);
  DiscoveryResponse response = system->Execute(request, &printer);
  if (!response.status.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status.ToString().c_str());
    return 1;
  }
  if (response.early_terminated) {
    std::printf("(stopped early after %d surviving views)\n",
                response.views_delivered);
  }
  PrintResult(repo, response.result);
  return 0;
}

int ServeFromSnapshot(const std::string& dir, const std::string& index_path,
                      const RequestFlags& initial_flags,
                      uint64_t memory_budget) {
  if (index_path.empty()) {
    std::fprintf(stderr, "error: serve needs --index-path\n");
    return 2;
  }
  PagingOptions paging;
  if (memory_budget > 0) {
    paging.enabled = true;
    paging.memory_budget_bytes = memory_budget;
  }
  TableRepository repo;
  if (!LoadRepoFromDirOrSnapshot(dir, index_path, &repo, paging)) return 1;
  // Later loads (the engine now, hot swaps below) charge the same pool, so
  // the budget covers every snapshot this server ever has alive at once.
  if (repo.pager() != nullptr) paging.pool = repo.pager()->pool();

  Result<std::unique_ptr<DiscoveryEngine>> engine =
      DiscoveryEngine::Load(repo, index_path, paging);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (paging.enabled && paging.pool == nullptr &&
      engine.value()->pager() != nullptr) {
    paging.pool = engine.value()->pager()->pool();
  }
  ServingOptions serving_options;
  serving_options.memory_budget_bytes = memory_budget;
  // Repositories brought in by swap-shard; engines swapped in reference
  // them, so they must outlive the server (declared before it).
  std::vector<std::unique_ptr<TableRepository>> swapped_repos;
  VerServer server(std::make_shared<const Ver>(&repo, VerConfig(),
                                               std::move(engine).value()),
                   serving_options);
  if (memory_budget > 0) {
    std::fprintf(stderr, "paged serving under a %llu-byte budget\n",
                 static_cast<unsigned long long>(memory_budget));
  }
  std::fprintf(stderr,
               "serving %s from snapshot %s; enter queries as "
               "a1,a2|b1,b2 — 'opts k=v ...' sets per-request knobs, "
               "'stats' prints counters, 'swap <path>' hot-swaps, "
               "'swap-shard <s> <dir>' rebuilds one shard, "
               "'quit' exits\n",
               dir.empty() ? "snapshot-embedded tables" : dir.c_str(),
               index_path.c_str());

  // Command-line knobs seed the session; `opts` adjusts them live.
  RequestFlags session_flags = initial_flags;
  if (session_flags.any()) {
    std::fprintf(stderr, "request options: %s\n",
                 session_flags.Describe().c_str());
  }
  auto print_stats = [&server] {
    ServerStats stats = server.stats();
    std::printf(
        "submitted=%lld ok=%lld rejected=%lld shed=%lld invalid=%lld "
        "cancelled=%lld deadline_exceeded=%lld swaps=%lld\n"
        "queue: depth=%lld peak=%lld\n"
        "cache: hits=%lld misses=%lld evictions=%lld\n"
        "flight: pipeline_executions=%lld coalesced=%lld\n"
        "requests: with_overrides=%lld streaming=%lld\n",
        static_cast<long long>(stats.submitted),
        static_cast<long long>(stats.served_ok),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.shed_deadline),
        static_cast<long long>(stats.invalid),
        static_cast<long long>(stats.cancelled),
        static_cast<long long>(stats.deadline_exceeded),
        static_cast<long long>(stats.snapshot_swaps),
        static_cast<long long>(stats.current_queue_depth),
        static_cast<long long>(stats.peak_queue_depth),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.cache_misses),
        static_cast<long long>(stats.cache_evictions),
        static_cast<long long>(stats.pipeline_executions),
        static_cast<long long>(stats.coalesced),
        static_cast<long long>(stats.requests_with_overrides),
        static_cast<long long>(stats.requests_streaming));
    auto print_stage = [](const char* name, const LatencyStats& s) {
      if (s.count == 0) {
        std::printf("  %s: no samples\n", name);
        return;
      }
      std::printf(
          "  %s: n=%lld p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms\n",
          name, static_cast<long long>(s.count), s.p50_s * 1e3, s.p99_s * 1e3,
          s.p999_s * 1e3, s.max_s * 1e3);
    };
    std::printf("latency:\n");
    print_stage("queue_wait", stats.queue_wait);
    print_stage("pipeline", stats.pipeline);
    print_stage("total", stats.total);
    if (stats.paged) {
      std::printf(
          "pool: budget=%llu resident=%lld peak=%lld hits=%lld misses=%lld "
          "evictions=%lld\n",
          static_cast<unsigned long long>(stats.pool_budget_bytes),
          static_cast<long long>(stats.pool_resident_bytes),
          static_cast<long long>(stats.pool_peak_resident_bytes),
          static_cast<long long>(stats.pool_hits),
          static_cast<long long>(stats.pool_misses),
          static_cast<long long>(stats.pool_evictions));
    }
    for (int k = 0; k < RequestOverrides::kNumKnobs; ++k) {
      if (stats.override_uses[k] > 0) {
        std::printf("  override %s: %lld requests\n",
                    RequestOverrides::KnobName(k),
                    static_cast<long long>(stats.override_uses[k]));
      }
    }
    if (stats.shards.size() > 1) {
      std::printf("shards:\n");
      for (size_t s = 0; s < stats.shards.size(); ++s) {
        std::printf(
            "  shard %zu: scatter_queries=%llu candidates=%llu "
            "swap_epoch=%llu\n",
            s, static_cast<unsigned long long>(stats.shards[s].scatter_queries),
            static_cast<unsigned long long>(stats.shards[s].candidates),
            static_cast<unsigned long long>(stats.shards[s].swap_epoch));
      }
    }
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      print_stats();
      continue;
    }
    if (line == "opts" || line.rfind("opts ", 0) == 0) {
      std::string rest = line == "opts" ? "" : Trim(line.substr(5));
      if (rest == "clear") {
        session_flags = RequestFlags();
      } else {
        for (std::string& token : Split(rest, ' ')) {
          std::string trimmed = Trim(token);
          if (!trimmed.empty()) session_flags.ParseToken(trimmed);
        }
      }
      std::fprintf(stderr, "request options: %s\n",
                   session_flags.Describe().c_str());
      continue;
    }
    if (line.rfind("swap-shard ", 0) == 0) {
      std::vector<std::string> parts;
      for (std::string& token : Split(Trim(line.substr(11)), ' ')) {
        std::string trimmed = Trim(token);
        if (!trimmed.empty()) parts.push_back(std::move(trimmed));
      }
      int shard = -1;
      if (parts.size() != 2 || !ParseInt(parts[0], &shard)) {
        std::fprintf(stderr, "usage: swap-shard <shard> <csv-dir>\n");
        continue;
      }
      auto next_repo = std::make_unique<TableRepository>();
      if (!LoadRepo(parts[1], next_repo.get())) continue;
      // Rebuild just the named shard against the refreshed tables; every
      // other shard is shared by reference with the serving engine, so the
      // rebuild costs O(shard), not O(repository).
      std::shared_ptr<const Ver> current = server.snapshot();
      Result<std::unique_ptr<DiscoveryEngine>> next =
          current->engine().WithRebuiltShard(*next_repo, shard);
      if (!next.ok()) {
        std::fprintf(stderr, "swap-shard failed: %s\n",
                     next.status().ToString().c_str());
        continue;
      }
      server.SwapSnapshot(
          std::make_shared<const Ver>(next_repo.get(), VerConfig(),
                                      std::move(next).value()),
          shard);
      swapped_repos.push_back(std::move(next_repo));
      std::fprintf(stderr, "rebuilt shard %d from %s and swapped it in "
                           "(in-flight queries finish on the old engine)\n",
                   shard, parts[1].c_str());
      continue;
    }
    if (line.rfind("swap ", 0) == 0) {
      std::string path = Trim(line.substr(5));
      // Under paged serving the new snapshot opens its own map but charges
      // the shared pool: in-flight queries keep reading the old snapshot's
      // frames (its space retires only when the last reference drains)
      // while both stay inside one budget.
      Result<std::unique_ptr<DiscoveryEngine>> next =
          DiscoveryEngine::Load(repo, path, paging);
      if (!next.ok()) {
        std::fprintf(stderr, "swap failed: %s\n",
                     next.status().ToString().c_str());
        continue;
      }
      server.SwapSnapshot(std::make_shared<const Ver>(
          &repo, VerConfig(), std::move(next).value()));
      std::fprintf(stderr, "swapped in %s (in-flight queries finish on the "
                           "old snapshot)\n", path.c_str());
      continue;
    }
    DiscoveryRequest request =
        DiscoveryRequest::ForQuery(QueryFromColumnArgs(Split(line, '|')));
    session_flags.ApplyTo(&request);
    ServedResult served = server.Serve(std::move(request));
    if (!served.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   served.status.ToString().c_str());
      continue;
    }
    std::printf("%zu views (%zu after distillation)%s%s in %.1fms\n",
                served.result->views.size(),
                served.result->distillation.surviving.size(),
                served.cache_hit ? " [cache]" : "",
                served.early_terminated ? " [stopped early]" : "",
                served.run_s * 1000);
  }
  std::fprintf(stderr, "final stats:\n");
  print_stats();
  return 0;
}

// Writes a deterministic demo portal and prints the example columns of a
// known-answer query to stdout (one line per attribute).
int WriteDemoData(const std::string& dir, ExampleQuery* query_out) {
  OpenDataSpec spec;
  spec.num_tables = 60;
  spec.num_queries = 1;
  GeneratedDataset dataset = GenerateOpenDataLike(spec);
  Status saved = dataset.repo.SaveDirectory(dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "demo setup failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (dataset.queries.empty()) {
    std::fprintf(stderr, "demo setup failed: generator produced no "
                         "ground-truth queries\n");
    return 1;
  }
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset.repo, dataset.queries[0], NoiseLevel::kZero, 3, 7);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %d tables to %s\n", dataset.repo.num_tables(),
               dir.c_str());
  for (const std::vector<std::string>& column : query.value().columns) {
    std::printf("%s\n", Join(column, ",").c_str());
  }
  if (query_out != nullptr) *query_out = std::move(query).value();
  return 0;
}

// Argument-free self-demo: the full snapshot round trip (build-index over a
// generated portal, then query through the loaded snapshot).
int SelfDemo(int parallelism) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "ver_cli_demo";
  fs::remove_all(dir);
  ExampleQuery query;
  int rc = WriteDemoData(dir.string(), &query);
  if (rc != 0) return rc;
  std::string index_path = (dir / "index.versnap").string();
  rc = BuildIndex(dir.string(), index_path, parallelism, /*num_shards=*/1);
  if (rc == 0) {
    rc = RunQueryOverDirectory(dir.string(), query, parallelism, index_path,
                               RequestFlags());
  }
  fs::remove_all(dir);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  int parallelism = 0;  // default: offline indexing on every core
  int num_shards = 1;   // default: monolithic discovery engine
  std::string index_path;
  uint64_t memory_budget = 0;  // 0 = resident serving
  RequestFlags request_flags;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Per-request pipeline knobs (query subcommand / legacy one-shot).
    if (arg == "--no-distill") {
      request_flags.overrides.run_distillation = false;
      continue;
    }
    if (arg.rfind("--theta=", 0) == 0 || arg.rfind("--rho=", 0) == 0 ||
        arg.rfind("--k=", 0) == 0 || arg.rfind("--stop-after=", 0) == 0 ||
        arg.rfind("--deadline=", 0) == 0) {
      // Map "--stop-after=N" to the REPL token grammar ("stop=N", ...).
      std::string token = arg.substr(2);
      if (token.rfind("stop-after=", 0) == 0) {
        token = "stop=" + token.substr(11);
      }
      if (!request_flags.ParseToken(token)) return 2;
      continue;
    }
    if (arg.rfind("--parallelism", 0) == 0) {
      std::string value;
      if (arg.rfind("--parallelism=", 0) == 0) {
        value = arg.substr(14);
      } else if (arg == "--parallelism" && i + 1 < argc) {
        value = argv[++i];
      }
      if (!ParseInt(value, &parallelism)) {
        std::fprintf(stderr, "error: --parallelism needs an integer "
                             "(got '%s')\n", value.c_str());
        return 2;
      }
    } else if (arg.rfind("--shards", 0) == 0) {
      std::string value;
      if (arg.rfind("--shards=", 0) == 0) {
        value = arg.substr(9);
      } else if (arg == "--shards" && i + 1 < argc) {
        value = argv[++i];
      }
      if (!ParseInt(value, &num_shards) || num_shards < 1) {
        std::fprintf(stderr, "error: --shards needs a positive integer "
                             "(got '%s')\n", value.c_str());
        return 2;
      }
    } else if (arg.rfind("--index-path=", 0) == 0) {
      index_path = arg.substr(13);
    } else if (arg == "--index-path") {
      if (i + 1 < argc) index_path = argv[++i];
      if (index_path.empty()) {
        std::fprintf(stderr, "error: --index-path needs a path\n");
        return 2;
      }
    } else if (arg.rfind("--memory-budget", 0) == 0) {
      std::string value;
      if (arg.rfind("--memory-budget=", 0) == 0) {
        value = arg.substr(16);
      } else if (arg == "--memory-budget" && i + 1 < argc) {
        value = argv[++i];
      }
      if (!ParseByteSize(value, &memory_budget) || memory_budget == 0) {
        std::fprintf(stderr, "error: --memory-budget needs a byte size "
                             "like 64m or 2g (got '%s')\n", value.c_str());
        return 2;
      }
    } else {
      args.push_back(std::move(arg));
    }
  }

  if (!args.empty()) {
    const std::string& cmd = args[0];
    if (cmd == "build-index") {
      if (args.size() != 2 || index_path.empty()) {
        std::fprintf(stderr, "usage: ver_cli build-index [--parallelism=N] "
                             "[--shards=N] --index-path=PATH <csv-dir>\n");
        return 2;
      }
      if (request_flags.any()) {
        std::fprintf(stderr, "error: per-request options (%s) do not apply "
                             "to build-index\n",
                     request_flags.Describe().c_str());
        return 2;
      }
      return BuildIndex(args[1], index_path, parallelism, num_shards);
    }
    if (cmd == "query") {
      // The csv-dir is optional when the (v2) snapshot embeds the tables:
      // an argument that is not a directory is treated as the first
      // example column and the repository loads from the snapshot.
      bool has_dir = args.size() >= 2 &&
                     std::filesystem::is_directory(args[1]);
      // Guard against a typo'd directory silently becoming an example
      // value: example lists never contain a path separator.
      if (!has_dir && args.size() >= 2 &&
          args[1].find('/') != std::string::npos) {
        std::fprintf(stderr, "error: '%s' is not a directory\n",
                     args[1].c_str());
        return 2;
      }
      size_t first_example = has_dir ? 2 : 1;
      if (args.size() <= first_example || index_path.empty()) {
        std::fprintf(stderr, "usage: ver_cli query --index-path=PATH "
                             "[--theta=N] [--rho=N] [--k=N] [--no-distill] "
                             "[--stop-after=N] [--deadline=S] "
                             "[<csv-dir>] <examples-A> [<examples-B> ...]\n"
                             "(omit <csv-dir> to load tables from the "
                             "snapshot itself)\n");
        return 2;
      }
      return RunQueryOverDirectory(
          has_dir ? args[1] : std::string(),
          QueryFromColumnArgs(
              {args.begin() + static_cast<ptrdiff_t>(first_example),
               args.end()}),
          parallelism, index_path, request_flags);
    }
    if (cmd == "serve") {
      if (args.size() > 2) {
        std::fprintf(stderr, "usage: ver_cli serve --index-path=PATH "
                             "[--memory-budget=SIZE] [request options] "
                             "[<csv-dir>]\n"
                             "(omit <csv-dir> to load tables from the "
                             "snapshot itself)\n");
        return 2;
      }
      return ServeFromSnapshot(args.size() == 2 ? args[1] : std::string(),
                               index_path, request_flags, memory_budget);
    }
    if (cmd == "demo-data") {
      if (args.size() != 2) {
        std::fprintf(stderr, "usage: ver_cli demo-data <output-dir>\n");
        return 2;
      }
      return WriteDemoData(args[1], nullptr);
    }
    if (args.size() >= 2) {
      // Legacy one-shot mode: build in memory (or load --index-path) and
      // query immediately.
      return RunQueryOverDirectory(
          args[0], QueryFromColumnArgs({args.begin() + 1, args.end()}),
          parallelism, index_path, request_flags);
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  }

  std::printf("usage: ver_cli build-index|query|serve|demo-data ... "
              "(see source header)\nno arguments given — running the "
              "self-demo (build-index + query round trip).\n\n");
  return SelfDemo(parallelism);
}
