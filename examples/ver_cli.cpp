// ver_cli: command-line view discovery over a directory of CSV files.
//
//   ver_cli <csv-dir> <examples-A> <examples-B> [...]
//
// where each <examples-X> is a comma-separated list of example values for
// one output attribute, e.g.:
//
//   ver_cli ./portal "Boston,Chicago" "Wu,Johnson"
//
// Run without arguments it demos itself on a generated open-data corpus.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/view_graph_export.h"
#include "core/ver.h"
#include "util/string_util.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

using namespace ver;  // NOLINT — example brevity

namespace {

int RunQueryOverDirectory(const std::string& dir,
                          const ExampleQuery& query) {
  TableRepository repo;
  Status load = repo.LoadDirectory(dir);
  if (!load.ok()) {
    std::fprintf(stderr, "error: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("loaded %d tables (%lld rows) from %s\n", repo.num_tables(),
              static_cast<long long>(repo.TotalRows()), dir.c_str());

  VerConfig config;
  config.discovery.parallelism = 0;  // offline indexing on every core
  Ver system(&repo, config);
  std::printf("indexed: %lld joinable column pairs\n",
              static_cast<long long>(
                  system.engine().num_joinable_column_pairs()));

  QueryResult result = system.RunQuery(query);
  std::printf("\n%zu candidate views; %zu after 4C distillation "
              "(CS %.1fms, JGS %.1fms, M %.1fms, 4C %.1fms)\n",
              result.views.size(), result.distillation.surviving.size(),
              result.timing.column_selection_s * 1000,
              result.timing.join_graph_search_s * 1000,
              result.timing.materialize_s * 1000,
              result.timing.four_c_s * 1000);

  std::printf("\n%s\n", DistillationReport(result.views,
                                           result.distillation).c_str());

  int shown = 0;
  for (const OverlapRankedView& r : result.automatic_ranking) {
    const View& v = result.views[r.view_index];
    std::printf("#%d (overlap %d) %s\n%s\n", ++shown, r.overlap,
                v.graph.ToString(repo).c_str(), v.table.ToString(5).c_str());
    if (shown >= 3) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    std::vector<std::vector<std::string>> columns;
    for (int i = 2; i < argc; ++i) {
      std::vector<std::string> values;
      for (std::string& v : Split(argv[i], ',')) {
        std::string trimmed = Trim(v);
        if (!trimmed.empty()) values.push_back(std::move(trimmed));
      }
      columns.push_back(std::move(values));
    }
    return RunQueryOverDirectory(
        argv[1], ExampleQuery::FromColumns(std::move(columns)));
  }

  // Demo mode: write a generated portal to a temp dir and query it.
  std::printf("usage: %s <csv-dir> <examples-A> <examples-B> [...]\n"
              "no arguments given — running the self-demo.\n\n",
              argc > 0 ? argv[0] : "ver_cli");
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "ver_cli_demo";
  fs::remove_all(dir);
  OpenDataSpec spec;
  spec.num_tables = 60;
  spec.num_queries = 1;
  GeneratedDataset dataset = GenerateOpenDataLike(spec);
  if (!dataset.repo.SaveDirectory(dir.string()).ok() ||
      dataset.queries.empty()) {
    std::fprintf(stderr, "demo setup failed\n");
    return 1;
  }
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset.repo, dataset.queries[0], NoiseLevel::kZero, 3, 7);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  int rc = RunQueryOverDirectory(dir.string(), query.value());
  fs::remove_all(dir);
  return rc;
}
