// Drug-discovery scenario: an ML engineer needs a training table joining
// compound names with measured activity values, somewhere inside a
// ChEMBL-like pathless collection (the paper's motivating use case).
//
// Shows the full funnel: noisy QBE input -> column selection -> join graph
// search -> materialization -> 4C distillation, with per-stage statistics
// and timings.

#include <cstdio>

#include "core/ver.h"
#include "workload/chembl_gen.h"
#include "workload/noisy_query.h"

using namespace ver;  // NOLINT — example brevity

int main() {
  // Generate the ChEMBL-like collection (tables such as compounds, assays,
  // activities, target_dictionary... with no PK/FK metadata).
  ChemblSpec spec;
  GeneratedDataset dataset = GenerateChemblLike(spec);
  std::printf("Collection: %d tables / %lld rows\n",
              dataset.repo.num_tables(),
              static_cast<long long>(dataset.repo.TotalRows()));

  Ver system(&dataset.repo, VerConfig());

  // Q4 is the (compound pref_name, standard_value) task; use a Medium-noise
  // query — one of the three examples is misleading.
  const GroundTruthQuery& gt = dataset.queries[3];
  Result<ExampleQuery> query =
      MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kMedium, 3, /*seed=*/11);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQBE input (2 columns x 3 rows, medium noise):\n");
  for (int a = 0; a < query->num_attributes(); ++a) {
    std::printf("  attribute %d:", a);
    for (const std::string& v : query->columns[a]) {
      std::printf(" [%s]", v.c_str());
    }
    std::printf("\n");
  }

  QueryResult result = system.RunQuery(query.value());

  std::printf("\nFunnel:\n");
  std::printf("  candidate columns : ");
  for (const auto& attr : result.selection) {
    std::printf("%zu ", attr.candidates.size());
  }
  std::printf("(per query attribute)\n");
  std::printf("  joinable groups   : %lld\n",
              static_cast<long long>(result.search.num_joinable_groups));
  std::printf("  join graphs       : %lld\n",
              static_cast<long long>(result.search.num_join_graphs));
  std::printf("  materialized views: %zu\n", result.views.size());
  std::printf("  after distillation: %zu  (C1 merged %lld, C2 merged %lld)\n",
              result.distillation.surviving.size(),
              static_cast<long long>(result.distillation.num_compatible_pairs),
              static_cast<long long>(result.distillation.num_contained_pairs));

  std::printf("\nStage timings: CS=%.1fms JGS=%.1fms M=%.1fms 4C=%.1fms\n",
              result.timing.column_selection_s * 1000,
              result.timing.join_graph_search_s * 1000,
              result.timing.materialize_s * 1000,
              result.timing.four_c_s * 1000);

  // Did the funnel keep the view we wanted?
  Result<std::vector<int>> matches =
      GroundTruthMatches(dataset.repo, gt, result.views);
  if (matches.ok() && !matches->empty()) {
    const View& v = result.views[matches->front()];
    std::printf("\nGround-truth view found: %s (%lld rows), via %s\n",
                v.table.name().c_str(),
                static_cast<long long>(v.table.num_rows()),
                v.graph.ToString(dataset.repo).c_str());
    std::printf("%s\n", v.table.ToString(5).c_str());
  } else {
    std::printf("\nGround-truth view NOT among the candidates.\n");
  }
  return 0;
}
