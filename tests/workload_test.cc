// Workload substrate tests: vocabularies, generators, noisy queries,
// ground-truth plumbing, simulated users.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/chembl_gen.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"
#include "workload/simulated_user.h"
#include "workload/vocab.h"
#include "workload/wdc_gen.h"
#include "util/check.h"

namespace ver {
namespace {

// ------------------------------- vocab ----------------------------------

TEST(VocabTest, PoolsAreNonEmptyAndDistinct) {
  EXPECT_EQ(UsStates().size(), 50u);
  EXPECT_GE(UsCities().size(), 50u);
  EXPECT_GE(Countries().size(), 50u);
  EXPECT_GE(Organisms().size(), 10u);
  std::set<std::string> states(UsStates().begin(), UsStates().end());
  EXPECT_EQ(states.size(), UsStates().size());
}

TEST(VocabTest, SyntheticNamesAreUniqueAndSeeded) {
  std::vector<std::string> a = SyntheticNames("X-", 100, 42);
  std::vector<std::string> b = SyntheticNames("X-", 100, 42);
  std::vector<std::string> c = SyntheticNames("X-", 100, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const std::string& name : a) {
    EXPECT_EQ(name.rfind("X-", 0), 0u) << name;
  }
}

TEST(VocabTest, IataCodesAreThreeLetters) {
  for (const std::string& code : IataCodes(60, 7)) {
    EXPECT_EQ(code.size(), 3u);
    for (char ch : code) {
      EXPECT_GE(ch, 'A');
      EXPECT_LE(ch, 'Z');
    }
  }
}

TEST(VocabTest, DerivedNamePools) {
  EXPECT_EQ(ChurchNames(40, 1).size(), 40u);
  EXPECT_EQ(NewspaperTitles(40, 1).size(), 40u);
}

// ----------------------------- generators --------------------------------

TEST(ChemblGenTest, DeterministicAndShaped) {
  ChemblSpec spec;
  spec.num_compounds = 50;
  spec.num_targets = 30;
  spec.num_cells = 20;
  spec.num_assays = 60;
  spec.num_activities = 80;
  spec.num_filler_tables = 3;
  GeneratedDataset a = GenerateChemblLike(spec);
  GeneratedDataset b = GenerateChemblLike(spec);
  EXPECT_EQ(a.repo.num_tables(), b.repo.num_tables());
  EXPECT_EQ(a.repo.TotalRows(), b.repo.TotalRows());
  EXPECT_EQ(a.queries.size(), 5u);
  // Core tables exist.
  for (const char* name :
       {"compounds", "assays", "cell_dictionary", "target_dictionary",
        "component_sequences", "activities"}) {
    EXPECT_TRUE(a.repo.FindTable(name).ok()) << name;
  }
}

TEST(ChemblGenTest, CellNameDescriptionBijection) {
  GeneratedDataset d = GenerateChemblLike(ChemblSpec());
  int32_t cells = d.repo.FindTable("cell_dictionary").value();
  const Table& t = d.repo.table(cells);
  int name_col = t.schema().IndexOf("cell_name");
  int desc_col = t.schema().IndexOf("cell_description");
  std::unordered_set<std::string> names, descs;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    names.insert(t.at(r, name_col).AsString());
    descs.insert(t.at(r, desc_col).AsString());
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(t.num_rows()));
  EXPECT_EQ(descs.size(), static_cast<size_t>(t.num_rows()));
}

TEST(ChemblGenTest, NoiseColumnHasHighContainment) {
  GeneratedDataset d = GenerateChemblLike(ChemblSpec());
  // molecule_dictionary.pref_name must contain >= 80% of compounds.pref_name
  // values plus extras (the noise-column property of Section VI-B).
  int32_t compounds = d.repo.FindTable("compounds").value();
  int32_t md = d.repo.FindTable("molecule_dictionary").value();
  const Table& ct = d.repo.table(compounds);
  const Table& mt = d.repo.table(md);
  std::unordered_set<std::string> c_names, m_names;
  int c_col = ct.schema().IndexOf("pref_name");
  int m_col = mt.schema().IndexOf("pref_name");
  for (int64_t r = 0; r < ct.num_rows(); ++r) {
    c_names.insert(ct.at(r, c_col).AsString());
  }
  for (int64_t r = 0; r < mt.num_rows(); ++r) {
    m_names.insert(mt.at(r, m_col).AsString());
  }
  size_t shared = 0, extra = 0;
  for (const std::string& n : m_names) {
    if (c_names.count(n)) {
      ++shared;
    } else {
      ++extra;
    }
  }
  EXPECT_GT(static_cast<double>(shared) / c_names.size(), 0.8);
  EXPECT_GT(extra, 0u);  // genuinely misleading values exist
}

TEST(WdcGenTest, TopicVersionsShareSchema) {
  WdcSpec spec;
  spec.versions_per_topic = 5;
  spec.num_filler_tables = 5;
  GeneratedDataset d = GenerateWdcLike(spec);
  int32_t master = d.repo.FindTable("airports_master").value();
  int32_t v0 = d.repo.FindTable("airports_v0").value();
  EXPECT_EQ(d.repo.table(master).schema().CanonicalSignature(),
            d.repo.table(v0).schema().CanonicalSignature());
  // v0 duplicates the master exactly.
  EXPECT_EQ(d.repo.table(master).num_rows(), d.repo.table(v0).num_rows());
}

TEST(WdcGenTest, NestedVersionsAreSubsets) {
  WdcSpec spec;
  spec.versions_per_topic = 5;
  GeneratedDataset d = GenerateWdcLike(spec);
  const Table& v2 = d.repo.table(d.repo.FindTable("airports_v2").value());
  const Table& v3 = d.repo.table(d.repo.FindTable("airports_v3").value());
  EXPECT_GT(v2.num_rows(), v3.num_rows());
  std::set<uint64_t> v2_rows, v3_rows;
  for (int64_t r = 0; r < v2.num_rows(); ++r) v2_rows.insert(v2.RowHash(r));
  for (int64_t r = 0; r < v3.num_rows(); ++r) v3_rows.insert(v3.RowHash(r));
  for (uint64_t h : v3_rows) {
    EXPECT_TRUE(v2_rows.count(h)) << "v3 must be a subset of v2";
  }
}

TEST(OpenDataGenTest, RegistriesKeepJoinsAvailable) {
  OpenDataSpec spec;
  spec.num_tables = 40;
  GeneratedDataset d = GenerateOpenDataLike(spec);
  EXPECT_TRUE(d.repo.FindTable("od_registry_city").ok());
  EXPECT_TRUE(d.repo.FindTable("od_registry_state").ok());
  EXPECT_GT(d.queries.size(), 0u);
}

TEST(OpenDataGenTest, QueryCountRespected) {
  OpenDataSpec spec;
  spec.num_tables = 80;
  spec.num_queries = 12;
  GeneratedDataset d = GenerateOpenDataLike(spec);
  EXPECT_EQ(d.queries.size(), 12u);
}

// ------------------------- ground truth plumbing -------------------------

TEST(GroundTruthTest, ResolveAndMaterialize) {
  GeneratedDataset d = GenerateChemblLike(ChemblSpec());
  const GroundTruthQuery& q2 = d.queries[1];  // single-table query
  Result<std::vector<ColumnRef>> proj = ResolveProjection(d.repo, q2);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->size(), 2u);
  Result<Table> gt = MaterializeGroundTruth(d.repo, q2);
  ASSERT_TRUE(gt.ok());
  EXPECT_GT(gt->num_rows(), 0);
  EXPECT_EQ(gt->num_columns(), 2);
}

TEST(GroundTruthTest, ResolveUnknownFails) {
  GeneratedDataset d = GenerateChemblLike(ChemblSpec());
  EXPECT_FALSE(ResolveColumn(d.repo, "nope", "x").ok());
  EXPECT_FALSE(ResolveColumn(d.repo, "compounds", "nope").ok());
}

// ----------------------------- noisy queries -----------------------------

class NoisyQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new GeneratedDataset(GenerateChemblLike(ChemblSpec()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  // Distinct texts of the ground-truth column for attribute `a`.
  static std::unordered_set<std::string> GtValues(const GroundTruthQuery& gt,
                                                  int a) {
    ColumnRef ref =
        ResolveColumn(dataset_->repo, gt.gt_tables[a], gt.gt_attributes[a])
            .value();
    std::unordered_set<std::string> out;
    const ColumnData& data = dataset_->repo.column_data(ref);
    for (int64_t r = 0; r < data.size(); ++r) {
      CellView v = data.cell(r);
      if (!v.is_null()) out.insert(v.ToText());
    }
    return out;
  }
  static GeneratedDataset* dataset_;
};

GeneratedDataset* NoisyQueryTest::dataset_ = nullptr;

TEST_F(NoisyQueryTest, ZeroNoiseDrawsOnlyGroundTruth) {
  const GroundTruthQuery& gt = dataset_->queries[0];
  Result<ExampleQuery> q =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kZero, 3, 5);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->num_attributes(), 2);
  for (int a = 0; a < 2; ++a) {
    std::unordered_set<std::string> gt_values = GtValues(gt, a);
    ASSERT_EQ(q->columns[a].size(), 3u);
    for (const std::string& example : q->columns[a]) {
      EXPECT_TRUE(gt_values.count(example)) << example;
    }
  }
}

TEST_F(NoisyQueryTest, MediumNoiseInjectsOneMisleadingValue) {
  const GroundTruthQuery& gt = dataset_->queries[0];  // noise on attribute 0
  Result<ExampleQuery> q =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kMedium, 3, 5);
  ASSERT_TRUE(q.ok());
  std::unordered_set<std::string> gt_values = GtValues(gt, 0);
  int noise = 0;
  for (const std::string& example : q->columns[0]) {
    if (!gt_values.count(example)) ++noise;
  }
  EXPECT_EQ(noise, 1);
}

TEST_F(NoisyQueryTest, HighNoiseInjectsTwoMisleadingValues) {
  const GroundTruthQuery& gt = dataset_->queries[0];
  Result<ExampleQuery> q =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kHigh, 3, 5);
  ASSERT_TRUE(q.ok());
  std::unordered_set<std::string> gt_values = GtValues(gt, 0);
  int noise = 0;
  for (const std::string& example : q->columns[0]) {
    if (!gt_values.count(example)) ++noise;
  }
  EXPECT_EQ(noise, 2);
}

TEST_F(NoisyQueryTest, DeterministicPerSeed) {
  const GroundTruthQuery& gt = dataset_->queries[0];
  Result<ExampleQuery> a =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kMedium, 3, 5);
  Result<ExampleQuery> b =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kMedium, 3, 5);
  Result<ExampleQuery> c =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kMedium, 3, 6);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->columns, b->columns);
  EXPECT_NE(a->columns, c->columns);
}

TEST_F(NoisyQueryTest, MissingNoiseColumnFallsBack) {
  GroundTruthQuery gt = dataset_->queries[0];
  gt.noise_tables = {"", ""};
  gt.noise_attributes = {"", ""};
  Result<ExampleQuery> q =
      MakeNoisyQuery(dataset_->repo, gt, NoiseLevel::kHigh, 3, 5);
  ASSERT_TRUE(q.ok());
  std::unordered_set<std::string> gt_values = GtValues(gt, 0);
  for (const std::string& example : q->columns[0]) {
    EXPECT_TRUE(gt_values.count(example));
  }
}

TEST(NoiseLevelTest, Names) {
  EXPECT_STREQ(NoiseLevelToString(NoiseLevel::kZero), "Zero");
  EXPECT_STREQ(NoiseLevelToString(NoiseLevel::kMedium), "Med");
  EXPECT_STREQ(NoiseLevelToString(NoiseLevel::kHigh), "High");
}

// ---------------------------- simulated user -----------------------------

TEST(SimulatedUserTest, AnswersTruthfullyWhenCompetent) {
  std::vector<View> views;
  {
    View v;
    v.id = 0;
    Schema s;
    s.AddAttribute(Attribute{"country", ValueType::kString});
    v.table = Table("view_0", s);
    VER_CHECK_OK(v.table.AppendRow({Value::String("china")}));
    views.push_back(std::move(v));
  }
  DistillationResult d;
  d.surviving = {0};
  SimulatedUserProfile profile;
  for (double& c : profile.competence) c = 1.0;  // always answers
  SimulatedUser user(profile, {0}, &views, &d);

  Question dataset_q;
  dataset_q.interface_kind = QuestionInterface::kDataset;
  dataset_q.view_index = 0;
  EXPECT_EQ(user.Respond(dataset_q).type, AnswerType::kYes);

  Question attr_q;
  attr_q.interface_kind = QuestionInterface::kAttribute;
  attr_q.attribute = "country";
  EXPECT_EQ(user.Respond(attr_q).type, AnswerType::kYes);
  attr_q.attribute = "nope";
  EXPECT_EQ(user.Respond(attr_q).type, AnswerType::kNo);

  Question summary_q;
  summary_q.interface_kind = QuestionInterface::kSummary;
  summary_q.summary_views = {0};
  EXPECT_EQ(user.Respond(summary_q).type, AnswerType::kYes);
  summary_q.summary_views = {};
  EXPECT_EQ(user.Respond(summary_q).type, AnswerType::kNo);
}

TEST(SimulatedUserTest, IncompetentUserAlwaysSkips) {
  std::vector<View> views;
  DistillationResult d;
  SimulatedUserProfile profile;
  for (double& c : profile.competence) c = 0.0;
  SimulatedUser user(profile, {}, &views, &d);
  Question q;
  q.interface_kind = QuestionInterface::kAttribute;
  q.attribute = "x";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(user.Respond(q).type, AnswerType::kSkip);
  }
}

}  // namespace
}  // namespace ver
