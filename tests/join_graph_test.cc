// Join graph & join path index tests: edge discovery, path enumeration,
// hop limits, signatures, ranking.

#include <gtest/gtest.h>

#include "discovery/engine.h"
#include "util/check.h"

namespace ver {
namespace {

// Chain topology: a.k ⊆ b.k ⊆ c.k (identical domains), d isolated.
//   a(k, va)   b(k, vb)   c(k, vc)   d(x)
// All three k columns share the same 20 values, so every pair is joinable
// and 2-hop paths a-b-c exist.
TableRepository MakeChainRepo() {
  TableRepository repo;
  auto add = [&repo](const std::string& name, const std::string& key_attr,
                     const std::string& val_attr, int offset) {
    Schema schema;
    schema.AddAttribute(Attribute{key_attr, ValueType::kString});
    schema.AddAttribute(Attribute{val_attr, ValueType::kInt});
    Table t(name, schema);
    for (int i = 0; i < 20; ++i) {
      VER_CHECK_OK(t.AppendRow({Value::String("k" + std::to_string(i)),
                                Value::Int(offset + i)}));
    }
    t.InferColumnTypes();
    EXPECT_TRUE(repo.AddTable(std::move(t)).ok());
  };
  add("a", "k", "va", 0);
  add("b", "k", "vb", 100);
  add("c", "k", "vc", 200);
  Schema schema;
  schema.AddAttribute(Attribute{"x", ValueType::kString});
  Table d("d", schema);
  for (int i = 0; i < 5; ++i) {
    VER_CHECK_OK(d.AppendRow({Value::String("iso" + std::to_string(i))}));
  }
  EXPECT_TRUE(repo.AddTable(std::move(d)).ok());
  return repo;
}

class JoinPathTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new TableRepository(MakeChainRepo());
    engine_ = DiscoveryEngine::Build(*repo_).release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete repo_;
  }
  static int32_t Tid(const std::string& name) {
    return repo_->FindTable(name).value();
  }
  static TableRepository* repo_;
  static DiscoveryEngine* engine_;
};

TableRepository* JoinPathTest::repo_ = nullptr;
DiscoveryEngine* JoinPathTest::engine_ = nullptr;

TEST_F(JoinPathTest, SingleTableGraph) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a")}, 2);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_TRUE(graphs[0].edges.empty());
  EXPECT_EQ(graphs[0].tables, std::vector<int32_t>{Tid("a")});
  EXPECT_DOUBLE_EQ(graphs[0].score, 1.0);
}

TEST_F(JoinPathTest, DirectPairHasOneHopGraph) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("b")}, 1);
  ASSERT_GE(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].num_hops(), 1);
  EXPECT_EQ(graphs[0].tables.size(), 2u);
}

TEST_F(JoinPathTest, TwoHopsAddIndirectPaths) {
  std::vector<JoinGraph> one_hop =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("c")}, 1);
  std::vector<JoinGraph> two_hop =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("c")}, 2);
  // Direct a-c edge exists plus a-b-c path at 2 hops.
  EXPECT_GT(two_hop.size(), one_hop.size());
  bool saw_via_b = false;
  for (const JoinGraph& g : two_hop) {
    for (int32_t t : g.tables) {
      if (t == Tid("b")) saw_via_b = true;
    }
  }
  EXPECT_TRUE(saw_via_b);
}

TEST_F(JoinPathTest, IsolatedTableIsUnreachable) {
  EXPECT_TRUE(engine_->GenerateJoinGraphs({Tid("a"), Tid("d")}, 2).empty());
}

TEST_F(JoinPathTest, ThreeInputTablesAreConnected) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("b"), Tid("c")}, 2);
  ASSERT_GE(graphs.size(), 1u);
  for (const JoinGraph& g : graphs) {
    EXPECT_GE(g.tables.size(), 3u);
    EXPECT_GE(g.num_hops(), 2);
  }
}

TEST_F(JoinPathTest, GraphsAreDeduplicated) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("c")}, 2);
  std::set<std::string> signatures;
  for (const JoinGraph& g : graphs) {
    EXPECT_TRUE(signatures.insert(g.Signature()).second)
        << "duplicate graph " << g.ToString(*repo_);
  }
}

TEST_F(JoinPathTest, ScoresAreSortedDescending) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("c")}, 2);
  for (size_t i = 1; i < graphs.size(); ++i) {
    EXPECT_GE(graphs[i - 1].score, graphs[i].score);
  }
}

TEST_F(JoinPathTest, FewerHopsRankHigher) {
  std::vector<JoinGraph> graphs =
      engine_->GenerateJoinGraphs({Tid("a"), Tid("c")}, 2);
  ASSERT_GE(graphs.size(), 2u);
  // The direct 1-hop graph must outrank any 2-hop graph with equal key
  // quality (key columns here are identical domains, all unique).
  EXPECT_EQ(graphs[0].num_hops(), 1);
}

TEST_F(JoinPathTest, AdjacencyQueries) {
  const JoinPathIndex& index = engine_->join_path_index();
  std::vector<int32_t> from_a = index.AdjacentTables(Tid("a"));
  EXPECT_EQ(from_a.size(), 2u);  // b and c
  EXPECT_TRUE(index.AdjacentTables(Tid("d")).empty());
  EXPECT_FALSE(index.EdgesBetween(Tid("a"), Tid("b")).empty());
  EXPECT_TRUE(index.EdgesBetween(Tid("a"), Tid("d")).empty());
}

// ---------------------------- JoinGraph unit ----------------------------

TEST(JoinGraphTest, SignatureIsOrientationInvariant) {
  JoinEdge e1{ColumnRef{0, 0}, ColumnRef{1, 0}, 1.0, 1.0};
  JoinEdge e2{ColumnRef{1, 0}, ColumnRef{0, 0}, 1.0, 1.0};
  JoinGraph g1{{e1}, {0, 1}, 0};
  JoinGraph g2{{e2}, {0, 1}, 0};
  EXPECT_EQ(g1.Signature(), g2.Signature());
}

TEST(JoinGraphTest, SignatureIsEdgeOrderInvariant) {
  JoinEdge e1{ColumnRef{0, 0}, ColumnRef{1, 0}, 1.0, 1.0};
  JoinEdge e2{ColumnRef{1, 1}, ColumnRef{2, 0}, 1.0, 1.0};
  JoinGraph g1{{e1, e2}, {0, 1, 2}, 0};
  JoinGraph g2{{e2, e1}, {0, 1, 2}, 0};
  EXPECT_EQ(g1.Signature(), g2.Signature());
}

TEST(JoinGraphTest, SingleTableSignaturesDifferByTable) {
  JoinGraph g1{{}, {0}, 0};
  JoinGraph g2{{}, {1}, 0};
  EXPECT_NE(g1.Signature(), g2.Signature());
}

TEST(JoinGraphTest, NormalizeCollectsTables) {
  JoinGraph g;
  g.edges.push_back(JoinEdge{ColumnRef{3, 0}, ColumnRef{1, 2}, 0.9, 0.8});
  NormalizeJoinGraph(&g, {5});
  EXPECT_EQ(g.tables, (std::vector<int32_t>{1, 3, 5}));
  EXPECT_NE(g.score, 0.0);
}

TEST(JoinGraphTest, ScorePenalizesHops) {
  JoinEdge good{ColumnRef{0, 0}, ColumnRef{1, 0}, 1.0, 1.0};
  JoinGraph one{{good}, {0, 1}, 0};
  JoinGraph two{{good, JoinEdge{ColumnRef{1, 0}, ColumnRef{2, 0}, 1.0, 1.0}},
                {0, 1, 2},
                0};
  EXPECT_GT(ScoreJoinGraph(one), ScoreJoinGraph(two));
}

TEST(JoinGraphTest, ScoreRewardsKeyQuality) {
  JoinGraph strong{{JoinEdge{ColumnRef{0, 0}, ColumnRef{1, 0}, 1.0, 1.0}},
                   {0, 1},
                   0};
  JoinGraph weak{{JoinEdge{ColumnRef{0, 0}, ColumnRef{1, 0}, 1.0, 0.3}},
                 {0, 1},
                 0};
  EXPECT_GT(ScoreJoinGraph(strong), ScoreJoinGraph(weak));
}

}  // namespace
}  // namespace ver
