// LatencyRecorder guards: bucket geometry (exact low range, contiguous
// log-bucketed octaves, bounded quantization error), exact quantile
// extraction on known sample sets, zero/single-sample edge cases, and the
// merge contract — per-thread recorders merged together must be
// bit-identical to one shared recorder fed the same samples concurrently
// (this test doubles as the TSan workload for the wait-free record path).

#include "util/latency_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace ver {
namespace {

// Deterministic 64-bit mixer (splitmix64) so every thread has its own
// reproducible sample stream without sharing an RNG.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(LatencyRecorderTest, LowValuesGetExactBuckets) {
  for (uint64_t v = 0; v < LatencyRecorder::kSubBucketCount; ++v) {
    EXPECT_EQ(LatencyRecorder::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(LatencyRecorder::BucketLowerBound(v), v);
    EXPECT_EQ(LatencyRecorder::BucketUpperBound(v), v);
  }
}

TEST(LatencyRecorderTest, BucketsAreContiguousAndOrdered) {
  // Every bucket's range starts exactly one past the previous bucket's end
  // — no gaps, no overlaps — across the exact region, every octave
  // boundary, and the top of the index space.
  for (size_t i = 0; i + 1 < LatencyRecorder::kNumBuckets; ++i) {
    const uint64_t upper = LatencyRecorder::BucketUpperBound(i);
    if (upper == UINT64_MAX) break;  // last representable bucket
    EXPECT_EQ(LatencyRecorder::BucketLowerBound(i + 1), upper + 1)
        << "gap or overlap after bucket " << i;
  }
}

TEST(LatencyRecorderTest, BoundaryValuesMapIntoTheirOwnBucketRange) {
  // Octave boundaries and their neighbors: the first value of each octave,
  // the last value of the previous one, and a mid-octave value.
  std::vector<uint64_t> probes = {31, 32, 33, 63, 64, 65, 1023, 1024, 1025};
  for (int shift = 10; shift < 63; shift += 7) {
    probes.push_back((1ULL << shift) - 1);
    probes.push_back(1ULL << shift);
    probes.push_back((1ULL << shift) + 1);
  }
  probes.push_back(UINT64_MAX);
  for (uint64_t v : probes) {
    const size_t idx = LatencyRecorder::BucketIndex(v);
    ASSERT_LT(idx, LatencyRecorder::kNumBuckets) << v;
    EXPECT_LE(LatencyRecorder::BucketLowerBound(idx), v) << v;
    EXPECT_GE(LatencyRecorder::BucketUpperBound(idx), v) << v;
  }
  // Index is monotone in the value.
  size_t prev = 0;
  std::sort(probes.begin(), probes.end());
  for (uint64_t v : probes) {
    const size_t idx = LatencyRecorder::BucketIndex(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(LatencyRecorderTest, QuantizationErrorIsBoundedBySubBucketWidth) {
  // The reported value for any sample is its bucket's upper bound: never
  // below the sample, and above it by at most one sub-bucket width
  // (lower/kSubBucketCount), i.e. ~3.1% relative.
  for (uint64_t v : {100ULL, 999ULL, 12345ULL, 1000000ULL, 123456789ULL,
                     987654321012ULL}) {
    const size_t idx = LatencyRecorder::BucketIndex(v);
    const uint64_t reported = LatencyRecorder::BucketUpperBound(idx);
    EXPECT_GE(reported, v);
    EXPECT_LE(reported - v, v / LatencyRecorder::kSubBucketCount + 1)
        << "quantization beyond 1/" << LatencyRecorder::kSubBucketCount
        << " at " << v;
  }
}

TEST(LatencyRecorderTest, ExactQuantilesInTheExactRegion) {
  // Values below kSubBucketCount have exact buckets, so quantiles there
  // are exact order statistics: record 0..31 once each and probe ranks.
  LatencyRecorder recorder;
  for (uint64_t v = 0; v < 32; ++v) recorder.RecordNanos(v);
  EXPECT_EQ(recorder.count(), 32);
  // rank = ceil(q * 32); value = rank - 1 (samples are 0-based).
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.0), 0u);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.5), 15u);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.75), 23u);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(1.0), 31u);
  // p99 of 32 samples is the 32nd (ceil(31.68)) sample: the max.
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.99), 31u);
}

TEST(LatencyRecorderTest, QuantilesNeverUnderstateAndClampToObservedMax) {
  // 1000 uniform samples 1..1000: each reported quantile must be >= the
  // true order statistic (highest-equivalent-value semantics) and within
  // quantization error of it; p100 is the exact max, not a bucket bound.
  LatencyRecorder recorder;
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v <= 1000; ++v) {
    recorder.RecordNanos(v);
    values.push_back(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    int64_t rank = static_cast<int64_t>(q * 1000.0);
    if (static_cast<double>(rank) < q * 1000.0) ++rank;
    const uint64_t truth = values[static_cast<size_t>(rank - 1)];
    const uint64_t reported = recorder.ValueAtQuantileNanos(q);
    EXPECT_GE(reported, truth) << "understated p" << q * 100;
    EXPECT_LE(reported, truth + truth / LatencyRecorder::kSubBucketCount + 1)
        << "overstated p" << q * 100;
  }
  EXPECT_EQ(recorder.ValueAtQuantileNanos(1.0), 1000u);
}

TEST(LatencyRecorderTest, EmptyRecorderSummarizesToZeros) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.5), 0u);
  const LatencyStats stats = recorder.Snapshot();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.mean_s, 0);
  EXPECT_EQ(stats.p50_s, 0);
  EXPECT_EQ(stats.p99_s, 0);
  EXPECT_EQ(stats.p999_s, 0);
  EXPECT_EQ(stats.max_s, 0);
}

TEST(LatencyRecorderTest, SingleSampleIsEveryQuantileExactly) {
  // One sample: every quantile is that sample, exactly — the max clamp
  // removes even the bucket quantization.
  LatencyRecorder recorder;
  recorder.RecordNanos(123456789);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(recorder.ValueAtQuantileNanos(q), 123456789u) << q;
  }
  const LatencyStats stats = recorder.Snapshot();
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.mean_s, 123456789e-9);
  EXPECT_DOUBLE_EQ(stats.max_s, 123456789e-9);
}

TEST(LatencyRecorderTest, SecondsConversionClampsAndTruncates) {
  LatencyRecorder recorder;
  recorder.Record(-1.0);    // negative clamps to 0ns
  recorder.Record(0.0);     // zero is a real sample
  recorder.Record(1.5e-9);  // truncates to 1ns
  recorder.Record(1.0);     // 1s = 1e9 ns
  EXPECT_EQ(recorder.count(), 4);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.5), 0u);   // 2nd of {0,0,1,1e9}
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.75), 1u);  // 3rd: the 1ns sample
  const uint64_t top = recorder.ValueAtQuantileNanos(1.0);
  EXPECT_EQ(top, 1000000000u);  // exact observed max
  // An absurd duration must clamp instead of overflowing.
  recorder.Record(1e30);
  EXPECT_GE(recorder.ValueAtQuantileNanos(1.0), 1000000000u);
}

TEST(LatencyRecorderTest, RecordingOrderNeverChangesTheHistogram) {
  // Same multiset, opposite orders: bit-identical buckets and quantiles.
  std::vector<uint64_t> samples;
  uint64_t state = 42;
  for (int i = 0; i < 500; ++i) {
    state = Mix(state);
    samples.push_back(state % 10000000);
  }
  LatencyRecorder forward;
  LatencyRecorder backward;
  for (uint64_t v : samples) forward.RecordNanos(v);
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    backward.RecordNanos(*it);
  }
  for (size_t i = 0; i < LatencyRecorder::kNumBuckets; ++i) {
    ASSERT_EQ(forward.BucketCount(i), backward.BucketCount(i)) << i;
  }
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(forward.ValueAtQuantileNanos(q),
              backward.ValueAtQuantileNanos(q));
  }
}

TEST(LatencyRecorderTest, ConcurrentRecordingMergesBitIdentically) {
  // 8 threads record deterministic per-thread streams into (a) one shared
  // recorder, concurrently, and (b) a private recorder each. Merging the
  // privates must equal the shared recorder bucket for bucket — recording
  // is commutative, lossless, and unsynchronized threads lose nothing.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  LatencyRecorder shared;
  std::vector<LatencyRecorder> locals(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x1234 + static_cast<uint64_t>(t);
      for (int i = 0; i < kPerThread; ++i) {
        state = Mix(state);
        const uint64_t sample = state % 5000000000ULL;  // spans octaves
        shared.RecordNanos(sample);
        locals[static_cast<size_t>(t)].RecordNanos(sample);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LatencyRecorder merged;
  for (const LatencyRecorder& local : locals) merged.Merge(local);

  EXPECT_EQ(shared.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(merged.count(), shared.count());
  for (size_t i = 0; i < LatencyRecorder::kNumBuckets; ++i) {
    ASSERT_EQ(merged.BucketCount(i), shared.BucketCount(i)) << "bucket " << i;
  }
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.ValueAtQuantileNanos(q), shared.ValueAtQuantileNanos(q))
        << q;
  }
  const LatencyStats a = merged.Snapshot();
  const LatencyStats b = shared.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean_s, b.mean_s);
  EXPECT_DOUBLE_EQ(a.max_s, b.max_s);
}

TEST(LatencyRecorderTest, ResetDropsEverything) {
  LatencyRecorder recorder;
  for (uint64_t v = 1; v <= 100; ++v) recorder.RecordNanos(v * 1000);
  ASSERT_EQ(recorder.count(), 100);
  recorder.Reset();
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(1.0), 0u);
  EXPECT_EQ(recorder.Snapshot().count, 0);
  // Still usable after the reset.
  recorder.RecordNanos(7);
  EXPECT_EQ(recorder.ValueAtQuantileNanos(0.5), 7u);
}

}  // namespace
}  // namespace ver
