// Online index maintenance: adding a table to an already-built discovery
// engine must behave exactly like rebuilding from scratch.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "discovery/engine.h"

namespace ver {
namespace {

Table SharedDomainTable(const std::string& name, int offset, int count) {
  Schema schema;
  schema.AddAttribute(Attribute{"k", ValueType::kString});
  schema.AddAttribute(Attribute{"v_" + name, ValueType::kInt});
  Table t(name, schema);
  for (int i = 0; i < count; ++i) {
    (void)t.AppendRow({Value::String("k" + std::to_string(offset + i)),
                       Value::Int(i)});
  }
  t.InferColumnTypes();
  return t;
}

TEST(IncrementalIndexTest, MatchesFromScratchRebuild) {
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("a", 0, 20)).ok());
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("b", 0, 20)).ok());

  auto engine = DiscoveryEngine::Build(repo);
  int64_t pairs_before = engine->num_joinable_column_pairs();

  // Grow the repository online: table "c" joins a and b on "k".
  Result<int32_t> c_id = repo.AddTable(SharedDomainTable("c", 0, 20));
  ASSERT_TRUE(c_id.ok());
  ASSERT_TRUE(engine->IndexNewTable(c_id.value()).ok());

  // Reference: an engine built from scratch over the grown repo.
  auto rebuilt = DiscoveryEngine::Build(repo);

  EXPECT_GT(engine->num_joinable_column_pairs(), pairs_before);
  EXPECT_EQ(engine->num_joinable_column_pairs(),
            rebuilt->num_joinable_column_pairs());

  // Keyword search sees the new table's values.
  std::set<uint64_t> inc_hits, ref_hits;
  for (const KeywordHit& h :
       engine->SearchKeyword("k3", KeywordTarget::kValues)) {
    inc_hits.insert(h.column.Encode());
  }
  for (const KeywordHit& h :
       rebuilt->SearchKeyword("k3", KeywordTarget::kValues)) {
    ref_hits.insert(h.column.Encode());
  }
  EXPECT_EQ(inc_hits, ref_hits);
  EXPECT_EQ(inc_hits.size(), 3u);

  // Neighbors and join graphs match the rebuild.
  ColumnRef ck{c_id.value(), 0};
  std::set<uint64_t> inc_neighbors, ref_neighbors;
  for (const ColumnRef& n : engine->Neighbors(ck, 0.8)) {
    inc_neighbors.insert(n.Encode());
  }
  for (const ColumnRef& n : rebuilt->Neighbors(ck, 0.8)) {
    ref_neighbors.insert(n.Encode());
  }
  EXPECT_EQ(inc_neighbors, ref_neighbors);
  EXPECT_EQ(inc_neighbors.size(), 2u);

  std::set<std::string> inc_graphs, ref_graphs;
  for (const JoinGraph& g : engine->GenerateJoinGraphs({0, c_id.value()}, 2)) {
    inc_graphs.insert(g.Signature());
  }
  for (const JoinGraph& g :
       rebuilt->GenerateJoinGraphs({0, c_id.value()}, 2)) {
    ref_graphs.insert(g.Signature());
  }
  EXPECT_EQ(inc_graphs, ref_graphs);
  EXPECT_FALSE(inc_graphs.empty());
}

TEST(IncrementalIndexTest, FuzzySearchSeesNewVocabulary) {
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("a", 0, 5)).ok());
  auto engine = DiscoveryEngine::Build(repo);

  Schema schema;
  schema.AddAttribute(Attribute{"word", ValueType::kString});
  Table t("words", schema);
  (void)t.AppendRow({Value::String("zebra")});
  Result<int32_t> id = repo.AddTable(std::move(t));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine->IndexNewTable(id.value()).ok());

  std::vector<KeywordHit> hits =
      engine->SearchKeyword("zebrq", KeywordTarget::kValues, /*fuzzy=*/true);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_FALSE(hits[0].exact);
}

TEST(IncrementalIndexTest, DoubleIndexingRejected) {
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("a", 0, 5)).ok());
  auto engine = DiscoveryEngine::Build(repo);
  Status again = engine->IndexNewTable(0);
  EXPECT_TRUE(again.IsAlreadyExists());
}

TEST(IncrementalIndexTest, UnknownTableRejected) {
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("a", 0, 5)).ok());
  auto engine = DiscoveryEngine::Build(repo);
  EXPECT_TRUE(engine->IndexNewTable(7).IsInvalidArgument());
  EXPECT_TRUE(engine->IndexNewTable(-1).IsInvalidArgument());
}

TEST(IncrementalIndexTest, IndexNewTableAfterLoadMatchesRebuild) {
  // Incremental maintenance must work on a snapshot-loaded engine exactly
  // like on a freshly built one: Save -> Load -> IndexNewTable must equal
  // a from-scratch rebuild over the grown repository.
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("a", 0, 20)).ok());
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("b", 0, 20)).ok());

  auto built = DiscoveryEngine::Build(repo);
  std::string path =
      (std::filesystem::temp_directory_path() / "ver_incremental.versnap")
          .string();
  ASSERT_TRUE(built->Save(path).ok());
  Result<std::unique_ptr<DiscoveryEngine>> loaded =
      DiscoveryEngine::Load(repo, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  std::unique_ptr<DiscoveryEngine> engine = std::move(loaded).value();

  // Grow the repository online after the load.
  Result<int32_t> c_id = repo.AddTable(SharedDomainTable("c", 0, 20));
  ASSERT_TRUE(c_id.ok());
  ASSERT_TRUE(engine->IndexNewTable(c_id.value()).ok());
  auto rebuilt = DiscoveryEngine::Build(repo);

  EXPECT_EQ(engine->num_joinable_column_pairs(),
            rebuilt->num_joinable_column_pairs());

  std::set<uint64_t> inc_hits, ref_hits;
  for (const KeywordHit& h :
       engine->SearchKeyword("k3", KeywordTarget::kValues)) {
    inc_hits.insert(h.column.Encode());
  }
  for (const KeywordHit& h :
       rebuilt->SearchKeyword("k3", KeywordTarget::kValues)) {
    ref_hits.insert(h.column.Encode());
  }
  EXPECT_EQ(inc_hits, ref_hits);
  EXPECT_EQ(inc_hits.size(), 3u);

  ColumnRef ck{c_id.value(), 0};
  std::set<uint64_t> inc_neighbors, ref_neighbors;
  for (const ColumnRef& n : engine->Neighbors(ck, 0.8)) {
    inc_neighbors.insert(n.Encode());
  }
  for (const ColumnRef& n : rebuilt->Neighbors(ck, 0.8)) {
    ref_neighbors.insert(n.Encode());
  }
  EXPECT_EQ(inc_neighbors, ref_neighbors);
  EXPECT_EQ(inc_neighbors.size(), 2u);

  std::set<std::string> inc_graphs, ref_graphs;
  for (const JoinGraph& g : engine->GenerateJoinGraphs({0, c_id.value()}, 2)) {
    inc_graphs.insert(g.Signature());
  }
  for (const JoinGraph& g :
       rebuilt->GenerateJoinGraphs({0, c_id.value()}, 2)) {
    ref_graphs.insert(g.Signature());
  }
  EXPECT_EQ(inc_graphs, ref_graphs);
  EXPECT_FALSE(inc_graphs.empty());

  // Double-indexing stays rejected on the loaded engine, and fuzzy search
  // sees vocabulary added after the load.
  EXPECT_TRUE(engine->IndexNewTable(c_id.value()).IsAlreadyExists());
  std::vector<KeywordHit> fuzzy =
      engine->SearchKeyword("k19x", KeywordTarget::kValues, /*fuzzy=*/true);
  EXPECT_FALSE(fuzzy.empty());
}

TEST(IncrementalIndexTest, RepeatedGrowthStaysConsistent) {
  TableRepository repo;
  ASSERT_TRUE(repo.AddTable(SharedDomainTable("t0", 0, 15)).ok());
  auto engine = DiscoveryEngine::Build(repo);
  for (int i = 1; i <= 4; ++i) {
    Result<int32_t> id =
        repo.AddTable(SharedDomainTable("t" + std::to_string(i), 0, 15));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine->IndexNewTable(id.value()).ok());
  }
  auto rebuilt = DiscoveryEngine::Build(repo);
  EXPECT_EQ(engine->num_joinable_column_pairs(),
            rebuilt->num_joinable_column_pairs());
  // All five key columns are mutual neighbors.
  EXPECT_EQ(engine->Neighbors(ColumnRef{0, 0}, 0.9).size(), 4u);
}

}  // namespace
}  // namespace ver
