// End-to-end integration tests: generators -> Ver pipeline -> ground truth.

#include <gtest/gtest.h>

#include "core/ver.h"
#include "workload/chembl_gen.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"
#include "workload/simulated_user.h"
#include "workload/wdc_gen.h"

namespace ver {
namespace {

ChemblSpec SmallChembl() {
  ChemblSpec spec;
  spec.num_compounds = 120;
  spec.num_targets = 60;
  spec.num_cells = 40;
  spec.num_assays = 150;
  spec.num_activities = 200;
  spec.num_filler_tables = 4;
  return spec;
}

WdcSpec SmallWdc() {
  WdcSpec spec;
  spec.versions_per_topic = 6;
  spec.num_filler_tables = 15;
  return spec;
}

class ChemblEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new GeneratedDataset(GenerateChemblLike(SmallChembl()));
    ver_ = new Ver(&dataset_->repo, VerConfig());
  }
  static void TearDownTestSuite() {
    delete ver_;
    delete dataset_;
    ver_ = nullptr;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
  static Ver* ver_;
};

GeneratedDataset* ChemblEndToEndTest::dataset_ = nullptr;
Ver* ChemblEndToEndTest::ver_ = nullptr;

TEST_F(ChemblEndToEndTest, RepositoryShape) {
  EXPECT_GE(dataset_->repo.num_tables(), 10);
  EXPECT_GT(dataset_->repo.TotalRows(), 500);
  EXPECT_GT(ver_->engine().num_joinable_column_pairs(), 0);
}

TEST_F(ChemblEndToEndTest, ZeroNoiseQueriesHitGroundTruth) {
  for (const GroundTruthQuery& gt : dataset_->queries) {
    Result<ExampleQuery> query = MakeNoisyQuery(
        dataset_->repo, gt, NoiseLevel::kZero, 3, /*seed=*/7);
    ASSERT_TRUE(query.ok()) << gt.name;
    QueryResult result = ver_->RunQuery(query.value());
    EXPECT_GT(result.views.size(), 0u) << gt.name;
    Result<bool> hit =
        ContainsGroundTruth(dataset_->repo, gt, result.views);
    ASSERT_TRUE(hit.ok()) << gt.name << ": " << hit.status().ToString();
    EXPECT_TRUE(hit.value()) << gt.name << " ground truth missing among "
                             << result.views.size() << " views";
  }
}

TEST_F(ChemblEndToEndTest, MediumNoiseColumnSelectionStillHits) {
  int hits = 0;
  for (const GroundTruthQuery& gt : dataset_->queries) {
    Result<ExampleQuery> query = MakeNoisyQuery(
        dataset_->repo, gt, NoiseLevel::kMedium, 3, /*seed=*/17);
    ASSERT_TRUE(query.ok());
    QueryResult result = ver_->RunQuery(query.value());
    Result<bool> hit =
        ContainsGroundTruth(dataset_->repo, gt, result.views);
    ASSERT_TRUE(hit.ok());
    if (hit.value()) ++hits;
  }
  // Column-Selection is designed to be robust to noise; most queries hit.
  EXPECT_GE(hits, 4) << "of " << dataset_->queries.size();
}

TEST_F(ChemblEndToEndTest, DistillationReducesOrKeepsViewCount) {
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset_->repo, dataset_->queries[0], NoiseLevel::kZero, 3, 3);
  ASSERT_TRUE(query.ok());
  QueryResult result = ver_->RunQuery(query.value());
  EXPECT_LE(result.distillation.surviving.size(), result.views.size());
  EXPECT_LE(result.distillation.count_after_contained,
            result.distillation.count_after_compatible);
  EXPECT_LE(result.distillation.count_after_compatible,
            static_cast<int64_t>(result.views.size()));
}

TEST_F(ChemblEndToEndTest, Q1ProducesCompatibleViewsViaAlternateKeys) {
  // assays joins cell_dictionary on cell_name or cell_description (1:1):
  // at least one compatible pair must be detected.
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset_->repo, dataset_->queries[0], NoiseLevel::kZero, 3, 11);
  ASSERT_TRUE(query.ok());
  QueryResult result = ver_->RunQuery(query.value());
  EXPECT_GT(result.distillation.num_compatible_pairs, 0)
      << "expected compatible views from alternate 1:1 join keys";
}

TEST_F(ChemblEndToEndTest, Q2ProducesContradictionsFromWrongJoinPaths) {
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset_->repo, dataset_->queries[1], NoiseLevel::kZero, 3, 13);
  ASSERT_TRUE(query.ok());
  QueryResult result = ver_->RunQuery(query.value());
  EXPECT_GT(result.distillation.contradictions.size(), 0u)
      << "expected contradictions from the disagreeing organism mapping";
}

TEST_F(ChemblEndToEndTest, Q3ProducesContainedViews) {
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset_->repo, dataset_->queries[2], NoiseLevel::kZero, 3, 19);
  ASSERT_TRUE(query.ok());
  QueryResult result = ver_->RunQuery(query.value());
  EXPECT_GT(result.distillation.num_contained_pairs +
                result.distillation.num_compatible_pairs,
            0)
      << "expected contained/compatible views from molecule_dictionary";
}

TEST_F(ChemblEndToEndTest, PipelineTimingIsPopulated) {
  Result<ExampleQuery> query = MakeNoisyQuery(
      dataset_->repo, dataset_->queries[0], NoiseLevel::kZero, 3, 23);
  ASSERT_TRUE(query.ok());
  QueryResult result = ver_->RunQuery(query.value());
  EXPECT_GT(result.timing.total_s(), 0.0);
  EXPECT_GE(result.timing.column_selection_s, 0.0);
  EXPECT_GE(result.timing.materialize_s, 0.0);
}

TEST(WdcEndToEndTest, AllTopicsHitAtZeroNoise) {
  GeneratedDataset dataset = GenerateWdcLike(SmallWdc());
  Ver system(&dataset.repo, VerConfig());
  for (const GroundTruthQuery& gt : dataset.queries) {
    Result<ExampleQuery> query =
        MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kZero, 3, 31);
    ASSERT_TRUE(query.ok()) << gt.name;
    QueryResult result = system.RunQuery(query.value());
    EXPECT_GT(result.views.size(), 0u) << gt.name;
    Result<bool> hit = ContainsGroundTruth(dataset.repo, gt, result.views);
    ASSERT_TRUE(hit.ok()) << gt.name;
    EXPECT_TRUE(hit.value()) << gt.name;
  }
}

TEST(WdcEndToEndTest, TopicVersionsProduceAllFourCategories) {
  GeneratedDataset dataset = GenerateWdcLike(SmallWdc());
  Ver system(&dataset.repo, VerConfig());
  int64_t compatible = 0, contained = 0, complementary = 0, contradictory = 0;
  for (const GroundTruthQuery& gt : dataset.queries) {
    Result<ExampleQuery> query =
        MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kZero, 3, 37);
    ASSERT_TRUE(query.ok());
    QueryResult result = system.RunQuery(query.value());
    compatible += result.distillation.num_compatible_pairs;
    contained += result.distillation.num_contained_pairs;
    complementary += result.distillation.num_complementary_pairs;
    contradictory += result.distillation.num_contradictory_pairs;
  }
  EXPECT_GT(compatible, 0);
  EXPECT_GT(contained, 0);
  EXPECT_GT(complementary, 0);
  EXPECT_GT(contradictory, 0);
}

TEST(WdcEndToEndTest, SimulatedUserFindsViewWithPresentation) {
  GeneratedDataset dataset = GenerateWdcLike(SmallWdc());
  Ver system(&dataset.repo, VerConfig());
  const GroundTruthQuery& gt = dataset.queries[0];
  Result<ExampleQuery> query =
      MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kZero, 3, 41);
  ASSERT_TRUE(query.ok());
  QueryResult result = system.RunQuery(query.value());
  Result<std::vector<int>> acceptable =
      GroundTruthMatches(dataset.repo, gt, result.views);
  ASSERT_TRUE(acceptable.ok());
  ASSERT_FALSE(acceptable->empty());

  auto session = system.StartSession(result, query.value());
  SimulatedUser user(SimulatedUserProfile{}, acceptable.value(),
                     &result.views, &result.distillation);
  SessionOutcome outcome = DriveSession(session.get(), &user, 60);
  EXPECT_TRUE(outcome.found) << "simulated user did not find the view after "
                             << outcome.interactions << " interactions";
}

TEST(OpenDataEndToEndTest, PortionNestingHolds) {
  OpenDataSpec small;
  small.num_tables = 60;
  small.num_queries = 8;
  OpenDataSpec quarter = small;
  quarter.portion = 0.25;
  GeneratedDataset full = GenerateOpenDataLike(small);
  GeneratedDataset part = GenerateOpenDataLike(quarter);
  ASSERT_LT(part.repo.num_tables(), full.repo.num_tables());
  // Every table in the smaller sample exists identically in the larger.
  for (int32_t t = 0; t < part.repo.num_tables(); ++t) {
    const Table& small_table = part.repo.table(t);
    Result<int32_t> id = full.repo.FindTable(small_table.name());
    ASSERT_TRUE(id.ok()) << small_table.name();
    const Table& big_table = full.repo.table(id.value());
    EXPECT_EQ(small_table.num_rows(), big_table.num_rows());
    EXPECT_EQ(small_table.schema().CanonicalSignature(),
              big_table.schema().CanonicalSignature());
  }
  // Queries of the full dataset reference only tables within the quarter.
  for (const GroundTruthQuery& gt : full.queries) {
    for (const std::string& table : gt.gt_tables) {
      EXPECT_TRUE(part.repo.FindTable(table).ok()) << table;
    }
  }
}

TEST(OpenDataEndToEndTest, QueriesHitGroundTruth) {
  OpenDataSpec spec;
  spec.num_tables = 60;
  spec.num_queries = 6;
  GeneratedDataset dataset = GenerateOpenDataLike(spec);
  ASSERT_GT(dataset.queries.size(), 0u);
  Ver system(&dataset.repo, VerConfig());
  int hits = 0;
  for (const GroundTruthQuery& gt : dataset.queries) {
    Result<ExampleQuery> query =
        MakeNoisyQuery(dataset.repo, gt, NoiseLevel::kZero, 3, 43);
    ASSERT_TRUE(query.ok());
    QueryResult result = system.RunQuery(query.value());
    Result<bool> hit = ContainsGroundTruth(dataset.repo, gt, result.views);
    ASSERT_TRUE(hit.ok());
    if (hit.value()) ++hits;
  }
  EXPECT_GE(hits, static_cast<int>(dataset.queries.size()) - 1);
}

}  // namespace
}  // namespace ver
