// Unit tests for the typed columnar storage core: ColumnData encodings
// (null bitmaps, int/double/numeric/dict), dictionary round-trips, Seal()
// re-layout, CellView vs Value agreement, and columnar serde.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "table/column_data.h"
#include "table/table.h"
#include "util/serde.h"
#include "util/check.h"

namespace ver {
namespace {

// ------------------------------- CellView --------------------------------

std::vector<Value> InterestingValues() {
  return {
      Value::Null(),
      Value::Int(0),
      Value::Int(-1),
      Value::Int(2),
      Value::Int(std::numeric_limits<int64_t>::min()),
      Value::Int(std::numeric_limits<int64_t>::max()),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(2.0),
      Value::Double(2.5),
      Value::Double(-1e300),
      Value::Double(1e-300),
      Value::String(""),
      Value::String("a"),
      Value::String("abc"),
      Value::String("ABC"),
      Value::String(std::string(100, 'x')),
      Value::String("2"),  // text twin of Int(2), must NOT compare equal
  };
}

TEST(CellViewTest, SixteenBytes) { EXPECT_EQ(sizeof(CellView), 16u); }

TEST(CellViewTest, HashAgreesWithValueForEveryCell) {
  for (const Value& v : InterestingValues()) {
    EXPECT_EQ(CellView::Of(v).Hash(), v.Hash()) << v.ToText();
  }
}

TEST(CellViewTest, ToTextAndToValueRoundTrip) {
  for (const Value& v : InterestingValues()) {
    CellView c = CellView::Of(v);
    EXPECT_EQ(c.ToText(), v.ToText());
    EXPECT_EQ(c.ToValue().Compare(v), 0) << v.ToText();
    EXPECT_EQ(c.type(), v.type());
  }
}

TEST(CellViewTest, TotalOrderAgreesWithValueOnAllPairs) {
  std::vector<Value> values = InterestingValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      int expect = a.Compare(b);
      int got = CellView::Of(a).Compare(CellView::Of(b));
      // Same sign, including 0.
      EXPECT_EQ(expect < 0, got < 0) << a.ToText() << " vs " << b.ToText();
      EXPECT_EQ(expect == 0, got == 0) << a.ToText() << " vs " << b.ToText();
    }
  }
}

TEST(CellViewTest, IntDoubleTwinsCompareEqualButKeepTheirType) {
  CellView i = CellView::Int(2), d = CellView::Double(2.0);
  EXPECT_EQ(i.Compare(d), 0);
  EXPECT_EQ(i.Hash(), d.Hash());
  EXPECT_EQ(i.type(), ValueType::kInt);
  EXPECT_EQ(d.type(), ValueType::kDouble);
}

// ------------------------------ encodings --------------------------------

TEST(ColumnDataTest, PureIntColumnStaysFlat) {
  ColumnData col;
  for (int i = 0; i < 100; ++i) col.Append(CellView::Int(i));
  EXPECT_EQ(col.encoding(), ColumnEncoding::kInt64);
  EXPECT_EQ(col.size(), 100);
  EXPECT_EQ(col.cell(42).AsInt(), 42);
  EXPECT_EQ(col.CellHash(42), Value::Int(42).Hash());
  EXPECT_EQ(col.int_count(), 100);
  EXPECT_EQ(col.null_count(), 0);
}

TEST(ColumnDataTest, AllNullThenDoubleBecomesDoubleColumn) {
  ColumnData col;
  col.Append(CellView::Null());
  col.Append(CellView::Null());
  col.Append(CellView::Double(1.5));
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDouble);
  EXPECT_TRUE(col.cell(0).is_null());
  EXPECT_TRUE(col.cell(1).is_null());
  EXPECT_DOUBLE_EQ(col.cell(2).AsDouble(), 1.5);
  EXPECT_EQ(col.null_count(), 2);
}

TEST(ColumnDataTest, MixedIntDoublePromotesToNumericAndStaysExact) {
  ColumnData col;
  col.Append(CellView::Int(7));
  col.Append(CellView::Double(2.5));
  col.Append(CellView::Null());
  col.Append(CellView::Int(std::numeric_limits<int64_t>::max()));
  EXPECT_EQ(col.encoding(), ColumnEncoding::kNumeric);
  EXPECT_EQ(col.cell(0).type(), ValueType::kInt);
  EXPECT_EQ(col.cell(0).AsInt(), 7);
  EXPECT_EQ(col.cell(1).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(col.cell(1).AsDouble(), 2.5);
  EXPECT_TRUE(col.cell(2).is_null());
  // int64 values beyond 2^53 survive bit-exactly (no double rounding).
  EXPECT_EQ(col.cell(3).AsInt(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(col.int_count(), 2);
  EXPECT_EQ(col.double_count(), 1);
}

TEST(ColumnDataTest, StringPromotesAnyColumnToDict) {
  ColumnData col;
  col.Append(CellView::Int(1));
  col.Append(CellView::Double(2.5));
  col.Append(CellView::String("x"));
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDict);
  EXPECT_EQ(col.cell(0).ToText(), "1");
  EXPECT_EQ(col.cell(0).type(), ValueType::kInt);
  EXPECT_EQ(col.cell(1).ToText(), "2.5");
  EXPECT_EQ(col.cell(2).AsStringView(), "x");
  EXPECT_EQ(col.string_count(), 1);
}

TEST(ColumnDataTest, DictionaryDedupesAndCachesHashes) {
  ColumnData col;
  for (int i = 0; i < 1000; ++i) {
    col.Append(CellView::String(i % 2 == 0 ? "even" : "odd"));
  }
  ASSERT_TRUE(col.is_dict());
  EXPECT_EQ(col.dict_size(), 2u);
  EXPECT_EQ(col.code(0), col.code(2));
  EXPECT_NE(col.code(0), col.code(1));
  EXPECT_EQ(col.CellHash(0), Value::String("even").Hash());
  EXPECT_EQ(col.dict_entry_hash(col.code(1)), Value::String("odd").Hash());
  EXPECT_EQ(col.DistinctHashes().size(), 2u);
}

TEST(ColumnDataTest, IntAndDoubleTwinsAreDistinctDictEntries) {
  // 2 and 2.0 compare equal and hash equal, but each cell must render back
  // with its original type ("2" stays what the source data said).
  ColumnData col;
  col.Append(CellView::String("tag"));
  col.Append(CellView::Int(2));
  col.Append(CellView::Double(2.0));
  ASSERT_TRUE(col.is_dict());
  EXPECT_EQ(col.dict_size(), 3u);
  EXPECT_EQ(col.cell(1).type(), ValueType::kInt);
  EXPECT_EQ(col.cell(2).type(), ValueType::kDouble);
  EXPECT_EQ(col.CellHash(1), col.CellHash(2));
  // The distinct hash set merges the twins, exactly like per-cell hashing.
  EXPECT_EQ(col.DistinctHashes().size(), 2u);
}

// ----------------------------- null bitmap -------------------------------

TEST(ColumnDataTest, NullBitmapAtWordBoundaries) {
  // Nulls at positions straddling the 64-bit bitmap words.
  for (int64_t n : {63, 64, 65, 128, 130}) {
    ColumnData col;
    for (int64_t i = 0; i < n; ++i) {
      if (i % 63 == 0) {
        col.Append(CellView::Null());
      } else {
        col.Append(CellView::Int(i));
      }
    }
    ASSERT_EQ(col.size(), n);
    int64_t nulls = 0;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(col.is_null(i), i % 63 == 0) << "n=" << n << " i=" << i;
      if (col.is_null(i)) {
        ++nulls;
        EXPECT_EQ(col.CellHash(i), Value::Null().Hash());
      } else {
        EXPECT_EQ(col.cell(i).AsInt(), i);
      }
    }
    EXPECT_EQ(col.null_count(), nulls);
  }
}

TEST(ColumnDataTest, AllNullColumn) {
  ColumnData col;
  for (int i = 0; i < 70; ++i) col.Append(CellView::Null());
  EXPECT_EQ(col.null_count(), 70);
  EXPECT_TRUE(col.cell(69).is_null());
  EXPECT_TRUE(col.DistinctHashes().empty());
}

// -------------------------------- Seal -----------------------------------

TEST(ColumnDataTest, SealSortsDictionaryAndPreservesCells) {
  ColumnData col;
  std::vector<std::string> words = {"pear", "apple", "pear", "banana",
                                    "apple", "cherry"};
  for (const std::string& w : words) col.Append(CellView::String(w));
  col.Append(CellView::Null());
  std::vector<uint64_t> before;
  for (int64_t r = 0; r < col.size(); ++r) before.push_back(col.CellHash(r));

  col.Seal();
  EXPECT_TRUE(col.sealed());
  // Dictionary is in cell total order after sealing.
  for (uint32_t c = 0; c + 1 < col.dict_size(); ++c) {
    EXPECT_LT(col.dict_entry(c).Compare(col.dict_entry(c + 1)), 0);
  }
  // Cells and hashes are unchanged by the re-layout.
  for (size_t r = 0; r < words.size(); ++r) {
    EXPECT_EQ(col.cell(r).AsStringView(), words[r]);
    EXPECT_EQ(col.CellHash(r), before[r]);
  }
  EXPECT_TRUE(col.is_null(static_cast<int64_t>(words.size())));

  // Appending after Seal() transparently unseals and keeps deduping
  // against the existing dictionary.
  col.Append(CellView::String("apple"));
  EXPECT_FALSE(col.sealed());
  EXPECT_EQ(col.dict_size(), 4u);
  EXPECT_EQ(col.cell(col.size() - 1).AsStringView(), "apple");
}

TEST(ColumnDataTest, SealIsIdempotentAndSafeOnEveryEncoding) {
  ColumnData ints, strs, empty;
  ints.Append(CellView::Int(1));
  strs.Append(CellView::String("x"));
  for (ColumnData* c : {&ints, &strs, &empty}) {
    c->Seal();
    c->Seal();
    EXPECT_TRUE(c->sealed());
  }
  EXPECT_EQ(ints.cell(0).AsInt(), 1);
  EXPECT_EQ(strs.cell(0).AsStringView(), "x");
}

// ------------------------------- serde -----------------------------------

ColumnData RoundTrip(const ColumnData& col) {
  SerdeWriter w;
  col.SaveTo(&w);
  SerdeReader r(w.buffer(), "column under test");
  ColumnData out;
  EXPECT_TRUE(out.LoadFrom(&r).ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
  return out;
}

TEST(ColumnDataTest, SerdeRoundTripsEveryEncoding) {
  ColumnData ints, doubles, numeric, dict;
  for (int i = 0; i < 130; ++i) {
    ints.Append(i % 7 == 0 ? CellView::Null() : CellView::Int(i));
    doubles.Append(i % 5 == 0 ? CellView::Null() : CellView::Double(i / 3.0));
    numeric.Append(i % 2 == 0 ? CellView::Int(i) : CellView::Double(i + 0.5));
    dict.Append(i % 11 == 0
                    ? CellView::Null()
                    : CellView::String("w" + std::to_string(i % 13)));
  }
  dict.Seal();
  for (const ColumnData* col : {&ints, &doubles, &numeric, &dict}) {
    ColumnData loaded = RoundTrip(*col);
    ASSERT_EQ(loaded.size(), col->size());
    EXPECT_EQ(loaded.encoding(), col->encoding());
    EXPECT_EQ(loaded.sealed(), col->sealed());
    for (int64_t r = 0; r < col->size(); ++r) {
      EXPECT_EQ(loaded.cell(r).Compare(col->cell(r)), 0) << r;
      EXPECT_EQ(loaded.cell(r).type(), col->cell(r).type()) << r;
      EXPECT_EQ(loaded.CellHash(r), col->CellHash(r)) << r;
    }
  }
}

TEST(ColumnDataTest, DropInternMapKeepsDedupOnLaterAppends) {
  ColumnData col;
  col.Append(CellView::String("a"));
  col.Append(CellView::String("b"));
  col.DropInternMap();
  EXPECT_FALSE(col.sealed());  // unlike Seal(), no re-layout happened
  // The rebuilt intern map must dedupe against the existing dictionary.
  col.Append(CellView::String("a"));
  EXPECT_EQ(col.dict_size(), 2u);
  EXPECT_EQ(col.code(0), col.code(2));
}

TEST(ColumnDataTest, LoadedDictColumnAcceptsNewAppends) {
  ColumnData col;
  col.Append(CellView::String("a"));
  col.Append(CellView::String("b"));
  col.Seal();
  ColumnData loaded = RoundTrip(col);
  loaded.Append(CellView::String("a"));  // dedupes against loaded dictionary
  loaded.Append(CellView::String("c"));
  EXPECT_EQ(loaded.dict_size(), 3u);
  EXPECT_EQ(loaded.code(0), loaded.code(2));
}

TEST(ColumnDataTest, CorruptColumnPayloadsAreRejected) {
  ColumnData col;
  for (int i = 0; i < 10; ++i) {
    col.Append(i % 2 == 0 ? CellView::String("s" + std::to_string(i))
                          : CellView::Null());
  }
  SerdeWriter w;
  col.SaveTo(&w);
  std::string bytes = w.buffer();

  // Truncations at every prefix must error, never crash or over-allocate.
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    SerdeReader r(std::string_view(bytes).substr(0, cut), "truncated column");
    ColumnData out;
    EXPECT_FALSE(out.LoadFrom(&r).ok()) << "cut=" << cut;
  }

  // Inconsistent tallies: claim one fewer null than the bitmap holds.
  {
    ColumnData good;
    good.Append(CellView::Int(1));
    good.Append(CellView::Null());
    SerdeWriter w2;
    good.SaveTo(&w2);
    std::string b = w2.TakeBuffer();
    // Layout: u8 enc, u8 sealed, i64 rows, i64 nulls at offset 10.
    b[10] = 0;
    SerdeReader r(b, "tampered column");
    ColumnData out;
    Status s = out.LoadFrom(&r);
    EXPECT_FALSE(s.ok());
  }
}

// ------------------------- Table-level behavior ---------------------------

TEST(ColumnDataTest, TableReserveDoesNotChangeResults) {
  Schema schema;
  schema.AddAttribute(Attribute{"k", ValueType::kString});
  schema.AddAttribute(Attribute{"v", ValueType::kString});
  Table plain("plain", schema), reserved("reserved", schema);
  reserved.Reserve(500);
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> row = {Value::String("k" + std::to_string(i % 37)),
                              Value::Int(i)};
    ASSERT_TRUE(plain.AppendRow(row).ok());
    ASSERT_TRUE(reserved.AppendRow(row).ok());
  }
  EXPECT_EQ(plain.AllRowHashes(), reserved.AllRowHashes());
  EXPECT_EQ(plain.DistinctCount(0), reserved.DistinctCount(0));
}

TEST(ColumnDataTest, TableSerdeRoundTripsBitIdentically) {
  Schema schema;
  schema.AddAttribute(Attribute{"name", ValueType::kString});
  schema.AddAttribute(Attribute{"score", ValueType::kDouble});
  Table t("mixed", schema);
  VER_CHECK_OK(t.AppendRow({Value::String("alice"), Value::Double(1.5)}));
  VER_CHECK_OK(t.AppendRow({Value::Null(), Value::Int(2)}));
  VER_CHECK_OK(t.AppendRow({Value::String("bob"), Value::Null()}));
  t.Seal();

  SerdeWriter w;
  t.SaveTo(&w);
  SerdeReader r(w.buffer(), "table under test");
  Table loaded;
  ASSERT_TRUE(loaded.LoadFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(loaded.name(), t.name());
  EXPECT_EQ(loaded.num_rows(), t.num_rows());
  EXPECT_EQ(loaded.AllRowHashes(), t.AllRowHashes());
  EXPECT_EQ(loaded.ToString(100), t.ToString(100));
}

TEST(ColumnDataTest, ProjectDistinctSurvivesHashCollisionSemantics) {
  // Distinct projection dedups by row hash first, then confirms with exact
  // cell comparison — duplicate rows collapse, near-duplicates survive.
  Schema schema;
  schema.AddAttribute(Attribute{"a", ValueType::kString});
  Table t("t", schema);
  VER_CHECK_OK(t.AppendRow({Value::String("x")}));
  VER_CHECK_OK(t.AppendRow({Value::String("x")}));
  VER_CHECK_OK(t.AppendRow({Value::Int(2)}));
  // hash-equal, compare-equal twin
  VER_CHECK_OK(t.AppendRow({Value::Double(2.0)}));
  VER_CHECK_OK(t.AppendRow({Value::String("y")}));
  Table p = t.Project({0}, /*distinct=*/true, "p");
  // "x" dedupes; Int(2)/Double(2.0) compare equal so they dedupe too.
  EXPECT_EQ(p.num_rows(), 3);
}

TEST(ColumnDataTest, ApproxBytesShrinksForRepetitiveStrings) {
  Schema schema;
  schema.AddAttribute(Attribute{"s", ValueType::kString});
  Table t("t", schema);
  const std::string long_val(64, 'z');
  for (int i = 0; i < 1000; ++i) {
    VER_CHECK_OK(
        t.AppendRow({Value::String(long_val + std::to_string(i % 8))}));
  }
  t.Seal();
  // 1000 cells sharing 8 distinct 65+ byte strings: dictionary storage must
  // be far below one owned std::string per cell.
  size_t seed_floor = 1000 * sizeof(Value);
  EXPECT_LT(t.ApproxBytes(), seed_floor);
}

}  // namespace
}  // namespace ver
