// Unit tests for Value, Schema, Table and column statistics.

#include <gtest/gtest.h>

#include "table/column_stats.h"
#include "table/table.h"
#include "util/check.h"

namespace ver {
namespace {

// ------------------------------- Value ----------------------------------

TEST(ValueTest, ParseInfersTypes) {
  EXPECT_EQ(Value::Parse("").type(), ValueType::kNull);
  EXPECT_EQ(Value::Parse("  ").type(), ValueType::kNull);
  EXPECT_EQ(Value::Parse("42").type(), ValueType::kInt);
  EXPECT_EQ(Value::Parse("-17").AsInt(), -17);
  EXPECT_EQ(Value::Parse("3.5").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("hello world").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse(" padded ").AsString(), "padded");
}

TEST(ValueTest, HugeDigitStringsStayStrings) {
  EXPECT_EQ(Value::Parse("123456789012345678901234").type(),
            ValueType::kString);
}

TEST(ValueTest, ToTextRoundTrips) {
  for (const char* text : {"42", "-7", "3.5", "hello", ""}) {
    Value v = Value::Parse(text);
    Value round = Value::Parse(v.ToText());
    EXPECT_EQ(v, round) << text;
  }
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(2), Value::String("a"));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Double(1.5), Value::Int(2));
}

TEST(ValueTest, IntDoubleEqualityHashesEqual) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_NE(Value::Double(2.5).Hash(), Value::Int(2).Hash());
}

TEST(ValueTest, NullsCompareEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

// ------------------------------- Schema ---------------------------------

Schema MakeSchema(std::vector<std::string> names) {
  Schema s;
  for (std::string& n : names) {
    s.AddAttribute(Attribute{std::move(n), ValueType::kString});
  }
  return s;
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s = MakeSchema({"State", "IATA_Code"});
  EXPECT_EQ(s.IndexOf("state"), 0);
  EXPECT_EQ(s.IndexOf("iata_code"), 1);
  EXPECT_EQ(s.IndexOf("nope"), -1);
}

TEST(SchemaTest, CanonicalSignatureIsOrderInsensitive) {
  EXPECT_EQ(MakeSchema({"a", "b"}).CanonicalSignature(),
            MakeSchema({"B", "A"}).CanonicalSignature());
  EXPECT_NE(MakeSchema({"a", "b"}).CanonicalSignature(),
            MakeSchema({"a", "c"}).CanonicalSignature());
}

TEST(SchemaTest, UnnamedAttributes) {
  Schema s = MakeSchema({"", "x"});
  EXPECT_FALSE(s.attribute(0).has_name());
  EXPECT_NE(s.ToString().find("<unnamed>"), std::string::npos);
}

// -------------------------------- Table ---------------------------------

Table MakeCityTable() {
  Table t("cities", MakeSchema({"city", "population"}));
  VER_CHECK_OK(t.AppendRow({Value::String("Chicago"), Value::Int(2700000)}));
  VER_CHECK_OK(t.AppendRow({Value::String("Boston"), Value::Int(650000)}));
  VER_CHECK_OK(t.AppendRow({Value::String("Boston"), Value::Int(650000)}));
  return t;
}

TEST(TableTest, AppendAndAccess) {
  Table t = MakeCityTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.at(0, 0).AsString(), "Chicago");
  EXPECT_EQ(t.at(1, 1).AsInt(), 650000);
}

TEST(TableTest, ShortRowsPadWithNulls) {
  Table t("t", MakeSchema({"a", "b", "c"}));
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_TRUE(t.at(0, 1).is_null());
  EXPECT_TRUE(t.at(0, 2).is_null());
}

TEST(TableTest, OverlongRowsRejected) {
  Table t("t", MakeSchema({"a"}));
  Status s = t.AppendRow({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(TableTest, RowHashDetectsDuplicates) {
  Table t = MakeCityTable();
  EXPECT_EQ(t.RowHash(1), t.RowHash(2));
  EXPECT_NE(t.RowHash(0), t.RowHash(1));
  EXPECT_EQ(t.AllRowHashes().size(), 3u);
}

TEST(TableTest, DistinctCount) {
  Table t = MakeCityTable();
  EXPECT_EQ(t.DistinctCount(0), 2);
}

TEST(TableTest, ProjectDistinct) {
  Table t = MakeCityTable();
  Table p = t.Project({0}, /*distinct=*/true, "p");
  EXPECT_EQ(p.num_rows(), 2);
  EXPECT_EQ(p.num_columns(), 1);
  Table all = t.Project({0}, /*distinct=*/false, "all");
  EXPECT_EQ(all.num_rows(), 3);
}

TEST(TableTest, ProjectReordersColumns) {
  Table t = MakeCityTable();
  Table p = t.Project({1, 0}, false, "swapped");
  EXPECT_EQ(p.schema().attribute(0).name, "population");
  EXPECT_EQ(p.at(0, 1).AsString(), "Chicago");
}

TEST(TableTest, InferColumnTypes) {
  Table t("t", MakeSchema({"i", "d", "s", "n"}));
  VER_CHECK_OK(t.AppendRow({Value::Int(1), Value::Double(1.5),
                            Value::String("x"), Value::Null()}));
  VER_CHECK_OK(t.AppendRow({Value::Int(2), Value::Int(2), Value::String("y"),
                            Value::Null()}));
  t.InferColumnTypes();
  EXPECT_EQ(t.schema().attribute(0).type, ValueType::kInt);
  EXPECT_EQ(t.schema().attribute(1).type, ValueType::kDouble);
  EXPECT_EQ(t.schema().attribute(2).type, ValueType::kString);
  EXPECT_EQ(t.schema().attribute(3).type, ValueType::kNull);
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeCityTable();
  std::string s = t.ToString(1);
  EXPECT_NE(s.find("Chicago"), std::string::npos);
  EXPECT_EQ(s.find("Boston"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ----------------------------- column stats ------------------------------

TEST(ColumnStatsTest, UniquenessAndNulls) {
  Table t("t", MakeSchema({"k", "v"}));
  VER_CHECK_OK(t.AppendRow({Value::Int(1), Value::String("a")}));
  VER_CHECK_OK(t.AppendRow({Value::Int(2), Value::String("a")}));
  VER_CHECK_OK(t.AppendRow({Value::Int(3), Value::Null()}));
  ColumnStats k = ComputeColumnStats(t, 0);
  EXPECT_EQ(k.num_distinct, 3);
  EXPECT_DOUBLE_EQ(k.uniqueness(), 1.0);
  ColumnStats v = ComputeColumnStats(t, 1);
  EXPECT_EQ(v.num_nulls, 1);
  EXPECT_EQ(v.num_distinct, 1);
  EXPECT_DOUBLE_EQ(v.uniqueness(), 0.5);
  EXPECT_NEAR(v.null_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(ColumnStatsTest, DominantType) {
  Table t("t", MakeSchema({"mixed"}));
  VER_CHECK_OK(t.AppendRow({Value::Int(1)}));
  VER_CHECK_OK(t.AppendRow({Value::String("x")}));
  VER_CHECK_OK(t.AppendRow({Value::String("y")}));
  EXPECT_EQ(ComputeColumnStats(t, 0).dominant_type, ValueType::kString);
}

TEST(ColumnStatsTest, ApproximateKeyColumns) {
  Table t("t", MakeSchema({"id", "dup", "mostly"}));
  for (int i = 0; i < 20; ++i) {
    VER_CHECK_OK(t.AppendRow({Value::Int(i), Value::Int(i % 3),
                              Value::Int(i < 19 ? i : 0)}));  // 19/20 unique
  }
  std::vector<int> keys95 = ApproximateKeyColumns(t, 0.95);
  ASSERT_EQ(keys95.size(), 2u);  // id exact, "mostly" at 0.95
  EXPECT_EQ(keys95[0], 0);
  EXPECT_EQ(keys95[1], 2);
  std::vector<int> keys100 = ApproximateKeyColumns(t, 1.0);
  ASSERT_EQ(keys100.size(), 1u);
  EXPECT_EQ(keys100[0], 0);
}

TEST(ColumnStatsTest, DistinctValueHashesSkipNulls) {
  Table t("t", MakeSchema({"x"}));
  VER_CHECK_OK(t.AppendRow({Value::Null()}));
  VER_CHECK_OK(t.AppendRow({Value::Int(5)}));
  VER_CHECK_OK(t.AppendRow({Value::Int(5)}));
  EXPECT_EQ(DistinctValueHashes(t, 0).size(), 1u);
}

}  // namespace
}  // namespace ver
