// COLUMN-SELECTION (Algorithm 4) tests and baseline comparisons:
// Select-All / Select-Best / Column-Selection behaviour under noise.

#include <gtest/gtest.h>

#include "core/column_selection.h"

namespace ver {
namespace {

// Repository engineered for noise experiments:
//   gt(city, metric)          — ground-truth column "city" (8 cities)
//   noisy(place, junk)        — 7 of the 8 cities + 2 extras (the noise
//                               column; containment 7/9 toward gt, J ~ 0.7)
//   unrelated(color)          — disjoint values
TableRepository MakeRepo() {
  TableRepository repo;
  std::vector<std::string> cities = {"boston",  "chicago", "denver",
                                     "austin",  "seattle", "miami",
                                     "detroit", "phoenix"};
  auto add = [&repo](const std::string& name,
                     const std::vector<std::string>& attrs,
                     const std::vector<std::vector<std::string>>& rows) {
    Schema schema;
    for (const auto& a : attrs) {
      schema.AddAttribute(Attribute{a, ValueType::kString});
    }
    Table t(name, schema);
    for (const auto& row : rows) {
      std::vector<Value> values;
      for (const auto& cell : row) values.push_back(Value::Parse(cell));
      EXPECT_TRUE(t.AppendRow(std::move(values)).ok());
    }
    t.InferColumnTypes();
    EXPECT_TRUE(repo.AddTable(std::move(t)).ok());
  };

  std::vector<std::vector<std::string>> gt_rows;
  for (size_t i = 0; i < cities.size(); ++i) {
    gt_rows.push_back({cities[i], std::to_string(100 + i)});
  }
  add("gt", {"city", "metric"}, gt_rows);

  std::vector<std::vector<std::string>> noisy_rows;
  for (size_t i = 0; i < 7; ++i) noisy_rows.push_back({cities[i], "x"});
  noisy_rows.push_back({"springfield", "x"});
  noisy_rows.push_back({"gotham", "x"});
  add("noisy", {"place", "junk"}, noisy_rows);

  add("unrelated", {"color"},
      {{"red"}, {"green"}, {"blue"}, {"cyan"}, {"mauve"}});
  return repo;
}

class ColumnSelectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    repo_ = new TableRepository(MakeRepo());
    engine_ = DiscoveryEngine::Build(*repo_).release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete repo_;
  }
  static ColumnRef Col(const std::string& table, const std::string& attr) {
    int32_t t = repo_->FindTable(table).value();
    return ColumnRef{t, repo_->table(t).schema().IndexOf(attr)};
  }
  static bool HasColumn(const ColumnSelectionResult& result,
                        const ColumnRef& ref) {
    for (const ScoredColumn& c : result.candidates) {
      if (c.ref == ref) return true;
    }
    return false;
  }
  static TableRepository* repo_;
  static DiscoveryEngine* engine_;
};

TableRepository* ColumnSelectionTest::repo_ = nullptr;
DiscoveryEngine* ColumnSelectionTest::engine_ = nullptr;

TEST_F(ColumnSelectionTest, CleanExamplesSelectGroundTruthCluster) {
  ColumnSelectionOptions options;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"boston", "chicago", "denver"}, options);
  EXPECT_TRUE(HasColumn(result, Col("gt", "city")));
  // The noisy column clusters together with gt.city (high similarity), so
  // the top cluster may contain both — but "unrelated.color" never appears.
  EXPECT_FALSE(HasColumn(result, Col("unrelated", "color")));
  EXPECT_EQ(result.selected_clusters[0].score, 3);
}

TEST_F(ColumnSelectionTest, NoisyExamplesStillCoverGroundTruth) {
  // 2 ground-truth values + 1 noise-only value ("springfield").
  ColumnSelectionOptions options;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"boston", "chicago", "springfield"}, options);
  EXPECT_TRUE(HasColumn(result, Col("gt", "city")))
      << "clustering must keep the ground-truth column despite noise";
}

TEST_F(ColumnSelectionTest, SelectBestCrumblesUnderNoise) {
  // noisy.place contains all three examples, gt.city only two: SELECT-BEST
  // picks the wrong column (the Table V mechanism).
  ColumnSelectionOptions options;
  options.strategy = SelectionStrategy::kSelectBest;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"boston", "chicago", "springfield"}, options);
  EXPECT_TRUE(HasColumn(result, Col("noisy", "place")));
  EXPECT_FALSE(HasColumn(result, Col("gt", "city")));
}

TEST_F(ColumnSelectionTest, SelectBestFineWithoutNoise) {
  ColumnSelectionOptions options;
  options.strategy = SelectionStrategy::kSelectBest;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"boston", "chicago", "phoenix"}, options);
  // phoenix is NOT in noisy.place, so gt.city uniquely holds all three.
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_TRUE(HasColumn(result, Col("gt", "city")));
}

TEST_F(ColumnSelectionTest, SelectAllReturnsEverythingWithAHit) {
  ColumnSelectionOptions options;
  options.strategy = SelectionStrategy::kSelectAll;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"boston", "red"}, options);
  EXPECT_TRUE(HasColumn(result, Col("gt", "city")));
  EXPECT_TRUE(HasColumn(result, Col("noisy", "place")));
  EXPECT_TRUE(HasColumn(result, Col("unrelated", "color")));
}

TEST_F(ColumnSelectionTest, SelectAllIsSuperSetOfColumnSelection) {
  ColumnSelectionOptions cs;
  ColumnSelectionOptions sa;
  sa.strategy = SelectionStrategy::kSelectAll;
  std::vector<std::string> examples = {"boston", "chicago", "springfield"};
  ColumnSelectionResult cs_result = SelectColumns(*engine_, examples, cs);
  ColumnSelectionResult sa_result = SelectColumns(*engine_, examples, sa);
  EXPECT_GE(sa_result.candidates.size(), cs_result.candidates.size());
}

TEST_F(ColumnSelectionTest, ThetaInfinityKeepsAllClusters) {
  ColumnSelectionOptions narrow;
  narrow.theta = 1;
  ColumnSelectionOptions wide;
  wide.theta = 1000000;
  // "red" hits only unrelated.color (score 1); city examples score higher.
  std::vector<std::string> examples = {"boston", "chicago", "red"};
  ColumnSelectionResult top = SelectColumns(*engine_, examples, narrow);
  ColumnSelectionResult all = SelectColumns(*engine_, examples, wide);
  EXPECT_FALSE(HasColumn(top, Col("unrelated", "color")));
  EXPECT_TRUE(HasColumn(all, Col("unrelated", "color")));
}

TEST_F(ColumnSelectionTest, FuzzyFallbackRecoversTypos) {
  ColumnSelectionOptions options;
  options.fuzzy_fallback = true;
  ColumnSelectionResult with_fuzzy =
      SelectColumns(*engine_, {"bostan", "chicago"}, options);
  EXPECT_TRUE(HasColumn(with_fuzzy, Col("gt", "city")));
  EXPECT_EQ(with_fuzzy.selected_clusters[0].score, 2);

  options.fuzzy_fallback = false;
  ColumnSelectionResult without =
      SelectColumns(*engine_, {"bostan", "chicago"}, options);
  EXPECT_EQ(without.selected_clusters.empty() ? 0
                                              : without.selected_clusters[0]
                                                    .score,
            1);
}

TEST_F(ColumnSelectionTest, EmptyExamplesGiveNoCandidates) {
  ColumnSelectionOptions options;
  ColumnSelectionResult result = SelectColumns(*engine_, {}, options);
  EXPECT_TRUE(result.candidates.empty());
}

TEST_F(ColumnSelectionTest, UnknownValuesGiveNoCandidates) {
  ColumnSelectionOptions options;
  options.fuzzy_fallback = false;
  ColumnSelectionResult result =
      SelectColumns(*engine_, {"zzzzqqqq"}, options);
  EXPECT_TRUE(result.candidates.empty());
}

TEST_F(ColumnSelectionTest, PerQuerySelection) {
  ExampleQuery query = ExampleQuery::FromColumns(
      {{"boston", "chicago"}, {"101", "102"}});
  std::vector<ColumnSelectionResult> results =
      SelectColumnsForQuery(*engine_, query, ColumnSelectionOptions());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(HasColumn(results[0], Col("gt", "city")));
  EXPECT_TRUE(HasColumn(results[1], Col("gt", "metric")));
}

TEST(SelectionStrategyTest, Names) {
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kColumnSelection),
               "Column-Selection");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kSelectAll),
               "Select-All");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kSelectBest),
               "Select-Best");
}

}  // namespace
}  // namespace ver
