// Larger-than-RAM serving: a snapshot loaded paged (mmap + buffer-pool
// budget) must answer every query bit-identically to the resident load it
// replaces, keep the pool's charged residency at or under the budget when
// idle, and survive a hot swap under traffic with one budget shared across
// both snapshots — with the old snapshot's space retired once it drains.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/ver.h"
#include "discovery/engine.h"
#include "query_fingerprint.h"
#include "serving/ver_server.h"
#include "util/serde.h"
#include "workload/noisy_query.h"
#include "workload/open_data_gen.h"

namespace ver {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// Budget deliberately far below any fixture snapshot: 4 frames.
constexpr uint64_t kFrameBytes = 64 * 1024;
constexpr uint64_t kBudgetBytes = 4 * kFrameBytes;

PagingOptions TightPaging() {
  PagingOptions p;
  p.enabled = true;
  p.memory_budget_bytes = kBudgetBytes;
  p.frame_bytes = kFrameBytes;
  return p;
}

struct PagedFixture {
  GeneratedDataset dataset;
  std::vector<ExampleQuery> queries;
  std::string snapshot_path;
  uint64_t snapshot_bytes = 0;
  // Resident ground truth: fingerprints from the freshly built engine.
  std::vector<std::string> expected;
  int64_t expected_pairs = 0;
  int64_t expected_vocabulary = 0;
  size_t expected_profiles = 0;

  PagedFixture() {
    OpenDataSpec spec;
    spec.num_tables = 30;
    spec.num_queries = 3;
    dataset = GenerateOpenDataLike(spec);
    for (size_t i = 0; i < dataset.queries.size(); ++i) {
      Result<ExampleQuery> q = MakeNoisyQuery(
          dataset.repo, dataset.queries[i], NoiseLevel::kZero, 3, 11 + i);
      if (q.ok()) queries.push_back(std::move(q).value());
    }
    auto built = DiscoveryEngine::Build(dataset.repo);
    expected_pairs = built->num_joinable_column_pairs();
    expected_vocabulary = built->keyword_index().vocabulary_size();
    expected_profiles = built->profiles().size();
    snapshot_path = TempPath("ver_paged_serving.versnap");
    Status saved = built->Save(snapshot_path);
    if (!saved.ok()) return;
    std::error_code ec;
    snapshot_bytes = static_cast<uint64_t>(
        fs::file_size(snapshot_path, ec));
    VerConfig config;
    Ver resident(&dataset.repo, config);
    for (const ExampleQuery& q : queries) {
      expected.push_back(Fingerprint(resident.RunQuery(q)));
    }
  }
};

PagedFixture& Fixture() {
  static PagedFixture* fixture = new PagedFixture();
  return *fixture;
}

TEST(PagedServingTest, BudgetIsGenuinelySmallerThanSnapshot) {
  PagedFixture& f = Fixture();
  ASSERT_FALSE(f.queries.empty());
  ASSERT_GT(f.snapshot_bytes, 0u);
  // The whole suite is vacuous if the snapshot fits in the budget.
  ASSERT_GT(f.snapshot_bytes, kBudgetBytes);
}

TEST(PagedServingTest, PagedRepositoryAndEngineShareOneRuntime) {
  PagedFixture& f = Fixture();
  Result<TableRepository> repo =
      DiscoveryEngine::LoadRepository(f.snapshot_path, TightPaging());
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "no mmap: paged load falls back resident";
#endif
  ASSERT_NE(repo.value().pager(), nullptr);
  EXPECT_TRUE(repo.value().paged());
  EXPECT_EQ(repo.value().pager()->path(), f.snapshot_path);

  Result<std::unique_ptr<DiscoveryEngine>> engine =
      DiscoveryEngine::Load(repo.value(), f.snapshot_path, TightPaging());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value()->paged());
  // Same path, same process: the engine borrows the repository's runtime
  // (one map, one space, one budget) instead of mapping the file twice.
  EXPECT_EQ(engine.value()->pager(), repo.value().pager());
  EXPECT_EQ(engine.value()->pager()->pool_stats().spaces, 1);
}

TEST(PagedServingTest, TightBudgetAnswersBitIdenticallyAndHoldsBudget) {
  PagedFixture& f = Fixture();
  ASSERT_EQ(f.expected.size(), f.queries.size());

  Result<TableRepository> repo =
      DiscoveryEngine::LoadRepository(f.snapshot_path, TightPaging());
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  Result<std::unique_ptr<DiscoveryEngine>> loaded =
      DiscoveryEngine::Load(repo.value(), f.snapshot_path, TightPaging());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->num_joinable_column_pairs(), f.expected_pairs);
  EXPECT_EQ(loaded.value()->keyword_index().vocabulary_size(),
            f.expected_vocabulary);
  EXPECT_EQ(loaded.value()->profiles().size(), f.expected_profiles);

  const bool paged = loaded.value()->paged();
  std::shared_ptr<PagerRuntime> pager = loaded.value()->pager();

  VerConfig config;
  Ver served(&repo.value(), config, std::move(loaded).value());
  for (size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_EQ(Fingerprint(served.RunQuery(f.queries[i])), f.expected[i])
        << "query " << i << " diverged under paging";
  }

  if (paged) {
    BufferPoolStats s = pager->pool_stats();
    // Queries pinned their join working sets through the pool.
    EXPECT_GT(s.misses, 0);
    // Queries finished, every pin released: residency is back under the
    // budget (pinned working sets may overcommit only *during* a query).
    EXPECT_LE(s.resident_bytes, static_cast<int64_t>(kBudgetBytes));
    EXPECT_LE(s.resident_bytes, s.peak_resident_bytes);

    // Pin the engine's entire paged working set at once — far over the
    // budget, so the pool must overcommit while the pin lives...
    {
      PagePin everything(pager->pool().get());
      served.engine().PinInto(&everything);
      BufferPoolStats pinned = pager->pool_stats();
      EXPECT_GT(pinned.resident_bytes, static_cast<int64_t>(kBudgetBytes));
      EXPECT_GT(pinned.pinned_overcommit, 0);
    }
    // ...and evict back under it the moment the pin releases.
    s = pager->pool_stats();
    EXPECT_GT(s.evictions, 0);
    EXPECT_LE(s.resident_bytes, static_cast<int64_t>(kBudgetBytes));
  }
}

TEST(PagedServingTest, LegacySnapshotFallsBackToResidentLoad) {
  PagedFixture& f = Fixture();
  // A v2 file has unaligned payloads, so the pager refuses it
  // (NotImplemented) and the loader silently serves it resident — old
  // snapshots keep working when paging is requested.
  std::string legacy = TempPath("ver_paged_serving_legacy.versnap");
  auto built = DiscoveryEngine::Build(f.dataset.repo);
  ASSERT_TRUE(built->Save(legacy, /*format_version=*/2).ok());

  Result<TableRepository> repo =
      DiscoveryEngine::LoadRepository(legacy, TightPaging());
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_EQ(repo.value().pager(), nullptr);
  EXPECT_FALSE(repo.value().paged());

  Result<std::unique_ptr<DiscoveryEngine>> loaded =
      DiscoveryEngine::Load(repo.value(), legacy, TightPaging());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value()->paged());

  VerConfig config;
  Ver served(&repo.value(), config, std::move(loaded).value());
  for (size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_EQ(Fingerprint(served.RunQuery(f.queries[i])), f.expected[i]);
  }
  std::remove(legacy.c_str());
}

TEST(PagedServingTest, HotSwapUnderPagedTrafficSharesOneBudget) {
  PagedFixture& f = Fixture();
  ASSERT_FALSE(f.queries.empty());
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "no mmap: paged load falls back resident";
#endif

  // Two byte-identical snapshot files so the swap is between two distinct
  // maps (distinct pool spaces) with identical answers.
  std::string path_b = TempPath("ver_paged_serving_swap.versnap");
  {
    std::ifstream in(f.snapshot_path, std::ios::binary);
    std::ofstream out(path_b, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
  }

  // Snapshot A: paged under the tight budget; its runtime owns the pool.
  auto repo_a = std::make_unique<TableRepository>();
  {
    Result<TableRepository> r =
        DiscoveryEngine::LoadRepository(f.snapshot_path, TightPaging());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *repo_a = std::move(r).value();
  }
  ASSERT_NE(repo_a->pager(), nullptr);
  std::shared_ptr<BufferPool> pool = repo_a->pager()->pool();

  Result<std::unique_ptr<DiscoveryEngine>> engine_a =
      DiscoveryEngine::Load(*repo_a, f.snapshot_path, TightPaging());
  ASSERT_TRUE(engine_a.ok()) << engine_a.status().ToString();

  VerConfig config;
  auto ver_a = std::make_shared<const Ver>(repo_a.get(), config,
                                           std::move(engine_a).value());

  ServingOptions opts;
  opts.num_workers = 4;
  opts.cache_capacity = 0;   // force real pipeline runs through the pool
  opts.single_flight = false;
  opts.memory_budget_bytes = kBudgetBytes;
  VerServer server(ver_a, opts);

  ServerStats before = server.stats();
  EXPECT_TRUE(before.paged);
  EXPECT_EQ(before.pool_budget_bytes, kBudgetBytes);

  // Snapshot B: its own map and space, charged to the *same* pool, so one
  // budget covers the pair for the whole swap window.
  PagingOptions paging_b = TightPaging();
  paging_b.pool = pool;
  auto repo_b = std::make_unique<TableRepository>();
  {
    Result<TableRepository> r =
        DiscoveryEngine::LoadRepository(path_b, paging_b);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *repo_b = std::move(r).value();
  }
  ASSERT_NE(repo_b->pager(), nullptr);
  EXPECT_EQ(repo_b->pager()->pool(), pool);
  Result<std::unique_ptr<DiscoveryEngine>> engine_b =
      DiscoveryEngine::Load(*repo_b, path_b, paging_b);
  ASSERT_TRUE(engine_b.ok()) << engine_b.status().ToString();
  auto ver_b = std::make_shared<const Ver>(repo_b.get(), config,
                                           std::move(engine_b).value());

  // Both snapshots alive: two spaces, one pool.
  EXPECT_EQ(pool->stats().spaces, 2);

  // Hammer the server from 3 threads while the swap happens mid-traffic.
  constexpr int kThreads = 3;
  constexpr int kRounds = 4;
  std::vector<std::vector<std::string>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (const ExampleQuery& q : f.queries) {
          ServedResult r = server.Serve(q);
          got[t].push_back(r.status.ok() && r.result != nullptr
                               ? Fingerprint(*r.result)
                               : "error:" + r.status.ToString());
        }
      }
    });
  }
  // Let some traffic land on A, then swap to B under load.
  server.Serve(f.queries[0]);
  ASSERT_TRUE(server.SwapSnapshot(ver_b));
  for (std::thread& th : workers) th.join();

  // Every serve — before, during and after the swap — is bit-identical to
  // the resident ground truth.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), f.queries.size() * kRounds);
    for (size_t i = 0; i < got[t].size(); ++i) {
      EXPECT_EQ(got[t][i], f.expected[i % f.queries.size()])
          << "thread " << t << " serve " << i;
    }
  }

  ServerStats after = server.stats();
  EXPECT_TRUE(after.paged);
  EXPECT_EQ(after.snapshot_swaps, 1);
  EXPECT_GT(after.pool_misses, 0);

  // Drain and drop snapshot A: its runtime retires its space, releasing
  // the charge; the shared pool is left serving B alone, under budget.
  server.Shutdown();
  ver_a.reset();
  repo_a.reset();
  BufferPoolStats s = pool->stats();
  EXPECT_EQ(s.spaces, 1);
  EXPECT_LE(s.resident_bytes, static_cast<int64_t>(kBudgetBytes));

  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace ver
