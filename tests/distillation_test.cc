// VIEW-DISTILLATION (Algorithm 3) tests: 4C classification on constructed
// view sets, distillation strategy, complementary reduction, contradiction
// pruning curves, and invariant property sweeps.

#include <gtest/gtest.h>

#include "core/distillation.h"
#include "util/rng.h"

namespace ver {
namespace {

Schema MakeSchema(std::vector<std::string> names) {
  Schema s;
  for (std::string& n : names) {
    s.AddAttribute(Attribute{std::move(n), ValueType::kString});
  }
  return s;
}

View MakeView(int64_t id, std::vector<std::string> attrs,
              std::vector<std::vector<std::string>> rows) {
  View v;
  v.id = id;
  v.table = Table("view_" + std::to_string(id), MakeSchema(std::move(attrs)));
  for (auto& row : rows) {
    std::vector<Value> values;
    for (auto& cell : row) values.push_back(Value::Parse(cell));
    EXPECT_TRUE(v.table.AppendRow(std::move(values)).ok());
  }
  return v;
}

// ------------------------------ compatible ------------------------------

TEST(DistillationTest, IdenticalViewsAreCompatible) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}, {"b", "2"}}));
  views.push_back(MakeView(1, {"k", "v"}, {{"b", "2"}, {"a", "1"}}));  // perm
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_compatible_pairs, 1);
  EXPECT_EQ(r.surviving.size(), 1u);
  EXPECT_EQ(r.count_after_compatible, 1);
  EXPECT_EQ(r.representative.at(1), 0);
}

TEST(DistillationTest, ColumnPermutationIsStillCompatible) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}}));
  views.push_back(MakeView(1, {"v", "k"}, {{"1", "a"}}));  // columns swapped
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_compatible_pairs, 1);
  EXPECT_EQ(r.surviving.size(), 1u);
}

TEST(DistillationTest, CompatibleTransitivityGroupsAll) {
  std::vector<View> views;
  for (int i = 0; i < 4; ++i) {
    views.push_back(MakeView(i, {"k"}, {{"x"}, {"y"}}));
  }
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.surviving.size(), 1u);
  EXPECT_EQ(r.num_compatible_pairs, 3);  // each duplicate counted once
}

// ------------------------------ contained -------------------------------

TEST(DistillationTest, SubsetIsContainedAndLargestKept) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}}));
  views.push_back(
      MakeView(1, {"k", "v"}, {{"a", "1"}, {"b", "2"}, {"c", "3"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_contained_pairs, 1);
  ASSERT_EQ(r.surviving.size(), 1u);
  EXPECT_EQ(r.surviving[0], 1);  // the larger view survives
  EXPECT_EQ(r.representative.at(0), 1);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0].relation, ViewRelation::kContained);
  EXPECT_EQ(r.edges[0].container, 1);
}

TEST(DistillationTest, ContainmentChainKeepsOnlyMaximal) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k"}, {{"a"}}));
  views.push_back(MakeView(0, {"k"}, {{"a"}, {"b"}}));
  views.push_back(MakeView(2, {"k"}, {{"a"}, {"b"}, {"c"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  ASSERT_EQ(r.surviving.size(), 1u);
  EXPECT_EQ(r.surviving[0], 2);
  EXPECT_EQ(r.count_after_contained, 1);
}

TEST(DistillationTest, DifferentSchemasNeverCompared) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}}));
  views.push_back(MakeView(1, {"k", "w"}, {{"a", "1"}}));  // other block
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_compatible_pairs, 0);
  EXPECT_EQ(r.num_contained_pairs, 0);
  EXPECT_EQ(r.surviving.size(), 2u);
}

// ---------------------------- complementary -----------------------------

TEST(DistillationTest, OverlappingViewsWithSharedKeyAreComplementary) {
  std::vector<View> views;
  views.push_back(
      MakeView(0, {"k", "v"}, {{"a", "1"}, {"b", "2"}, {"c", "3"}}));
  views.push_back(
      MakeView(1, {"k", "v"}, {{"b", "2"}, {"c", "3"}, {"d", "4"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_complementary_pairs, 1);
  EXPECT_EQ(r.num_contradictory_pairs, 0);
  EXPECT_EQ(r.surviving.size(), 2u);

  ComplementaryReduction red = ComputeComplementaryReduction(views, r);
  EXPECT_EQ(red.best_case, 1);  // union them under key k (or v)
  EXPECT_EQ(red.worst_case, 1);
}

TEST(DistillationTest, DisjointViewsAreNotComplementary) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}, {"b", "2"}}));
  views.push_back(MakeView(1, {"k", "v"}, {{"c", "3"}, {"d", "4"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_complementary_pairs, 0);
}

TEST(DistillationTest, NoCandidateKeyNoUnion) {
  // Non-unique columns: no approximate keys, so no complementary edges
  // (the ChEMBL Q5 insight: no valid candidate keys, no unionable views).
  std::vector<View> views;
  views.push_back(MakeView(
      0, {"k", "v"}, {{"a", "1"}, {"a", "2"}, {"b", "1"}, {"b", "3"}}));
  views.push_back(MakeView(
      1, {"k", "v"}, {{"a", "1"}, {"b", "1"}, {"c", "2"}, {"c", "9"}}));
  DistillationOptions options;
  options.key_uniqueness_threshold = 0.9;
  DistillationResult r = DistillViews(views, options);
  EXPECT_EQ(r.num_complementary_pairs, 0);
  ComplementaryReduction red = ComputeComplementaryReduction(views, r);
  EXPECT_EQ(red.best_case, 2);
  EXPECT_EQ(red.worst_case, 2);
}

// ---------------------------- contradictory -----------------------------

TEST(DistillationTest, SameKeyDifferentRowsContradict) {
  std::vector<View> views;
  views.push_back(
      MakeView(0, {"country", "population"}, {{"china", "1400"},
                                              {"japan", "125"}}));
  views.push_back(
      MakeView(1, {"country", "population"}, {{"china", "1398"},
                                              {"japan", "125"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.num_contradictory_pairs, 1);
  ASSERT_EQ(r.contradictions.size(), 1u);
  const Contradiction& c = r.contradictions[0];
  EXPECT_EQ(c.key, std::vector<std::string>{"country"});
  EXPECT_EQ(c.key_value_text, "china");
  EXPECT_EQ(c.groups.size(), 2u);
  EXPECT_EQ(c.degree_of_discrimination(), 1);
}

TEST(DistillationTest, ContradictoryOnOneKeyComplementaryOnAnother) {
  // Views agree under key 'code' (codes differ per row) but contradict on
  // key 'name' — the paper's note: categories are relative to a key.
  std::vector<View> views;
  views.push_back(MakeView(0, {"name", "code"},
                           {{"alpha", "1"}, {"beta", "2"}}));
  views.push_back(MakeView(1, {"name", "code"},
                           {{"alpha", "9"}, {"beta", "2"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  bool complementary_on_code = false;
  bool contradictory_on_name = false;
  for (const ViewEdge& e : r.edges) {
    if (e.relation == ViewRelation::kComplementary &&
        e.key == std::vector<std::string>{"code"}) {
      complementary_on_code = true;
    }
    if (e.relation == ViewRelation::kContradictory &&
        e.key == std::vector<std::string>{"name"}) {
      contradictory_on_name = true;
    }
  }
  EXPECT_TRUE(contradictory_on_name);
  EXPECT_TRUE(complementary_on_code);
}

TEST(DistillationTest, DiscriminativeContradictionGroups) {
  // Three views agree ("1400"), one disagrees ("9999"): degree = 3.
  std::vector<View> views;
  for (int i = 0; i < 3; ++i) {
    views.push_back(MakeView(i, {"country", "population"},
                             {{"china", "1400"}, {"cuba", std::to_string(i)}}));
  }
  views.push_back(MakeView(3, {"country", "population"},
                           {{"china", "9999"}, {"peru", "33"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  ASSERT_GE(r.contradictions.size(), 1u);
  int max_degree = 0;
  for (const Contradiction& c : r.contradictions) {
    max_degree = std::max(max_degree, c.degree_of_discrimination());
  }
  EXPECT_EQ(max_degree, 3);
}

// ------------------------- pruning curve (Fig. 2) ------------------------

TEST(DistillationTest, PruningCurveBestVsWorst) {
  // Group A: 3 views say china=1400; group B: 1 view says 9999.
  std::vector<View> views;
  for (int i = 0; i < 3; ++i) {
    views.push_back(MakeView(i, {"country", "population"},
                             {{"china", "1400"}, {"cuba", std::to_string(i)}}));
  }
  views.push_back(MakeView(3, {"country", "population"},
                           {{"china", "9999"}, {"peru", "33"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  ASSERT_EQ(r.surviving.size(), 4u);

  std::vector<int64_t> best = ContradictionPruningCurve(r, true, 10);
  std::vector<int64_t> worst = ContradictionPruningCurve(r, false, 10);
  ASSERT_GE(best.size(), 2u);
  ASSERT_GE(worst.size(), 2u);
  EXPECT_EQ(best[0], 4);
  EXPECT_EQ(worst[0], 4);
  // Best case: keep the single dissenting view, prune 3. Worst: prune 1.
  EXPECT_LE(best[1], worst[1]);
  EXPECT_EQ(best[1], 1);
  EXPECT_EQ(worst[1], 3);
}

TEST(DistillationTest, PruningCurveMonotonicallyDecreases) {
  Rng rng(99);
  std::vector<View> views;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::vector<std::string>> rows;
    for (int k = 0; k < 6; ++k) {
      rows.push_back({"key" + std::to_string(k),
                      std::to_string(rng.UniformInt(0, 2))});
    }
    views.push_back(MakeView(i, {"k", "v"}, rows));
  }
  DistillationResult r = DistillViews(views, DistillationOptions());
  for (bool best : {true, false}) {
    std::vector<int64_t> curve = ContradictionPruningCurve(r, best, 10);
    for (size_t i = 1; i < curve.size(); ++i) {
      EXPECT_LE(curve[i], curve[i - 1]);
      EXPECT_GE(curve[i], 0);
    }
  }
}

TEST(DistillationTest, NoContradictionsFlatCurve) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k", "v"}, {{"a", "1"}}));
  views.push_back(MakeView(1, {"k", "v"}, {{"b", "2"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  std::vector<int64_t> curve = ContradictionPruningCurve(r, true, 10);
  EXPECT_EQ(curve.size(), 1u);  // just the starting count
  EXPECT_EQ(curve[0], 2);
}

// ------------------------------ composite keys ---------------------------

TEST(DistillationTest, CompositeKeysFoundWhenEnabled) {
  // No column alone is unique; the pair (a, b) is.
  std::vector<View> views;
  views.push_back(MakeView(0, {"a", "b", "v"},
                           {{"x", "1", "p"}, {"x", "2", "q"},
                            {"y", "1", "p"}, {"y", "2", "q"}}));
  views.push_back(MakeView(1, {"a", "b", "v"},
                           {{"x", "1", "p"}, {"x", "2", "DIFFERENT"},
                            {"y", "1", "p"}, {"y", "2", "DIFFERENT"}}));
  DistillationOptions options;
  options.composite_keys = true;
  DistillationResult r = DistillViews(views, options);
  EXPECT_GT(r.num_contradictory_pairs, 0)
      << "composite key (a,b) should expose the x/2 disagreement";

  DistillationOptions no_composite;
  DistillationResult r2 = DistillViews(views, no_composite);
  EXPECT_EQ(r2.num_contradictory_pairs, 0);
}

// ------------------------------ bookkeeping ------------------------------

TEST(DistillationTest, TimingPopulated) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k"}, {{"a"}, {"b"}}));
  views.push_back(MakeView(1, {"k"}, {{"a"}, {"b"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_GE(r.timing.total_s(), 0.0);
  EXPECT_GE(r.timing.hash_and_c1_s, 0.0);
}

TEST(DistillationTest, EmptyInput) {
  DistillationResult r = DistillViews({}, DistillationOptions());
  EXPECT_TRUE(r.surviving.empty());
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.count_after_compatible, 0);
}

TEST(DistillationTest, SingleView) {
  std::vector<View> views;
  views.push_back(MakeView(0, {"k"}, {{"a"}}));
  DistillationResult r = DistillViews(views, DistillationOptions());
  EXPECT_EQ(r.surviving.size(), 1u);
  EXPECT_TRUE(r.edges.empty());
}

TEST(ViewRelationTest, Names) {
  EXPECT_STREQ(ViewRelationToString(ViewRelation::kCompatible), "compatible");
  EXPECT_STREQ(ViewRelationToString(ViewRelation::kContained), "contained");
  EXPECT_STREQ(ViewRelationToString(ViewRelation::kComplementary),
               "complementary");
  EXPECT_STREQ(ViewRelationToString(ViewRelation::kContradictory),
               "contradictory");
}

// --------------------- property sweep: 4C invariants ---------------------

class DistillationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DistillationPropertyTest, InvariantsHoldOnRandomViewSets) {
  Rng rng(GetParam());
  std::vector<View> views;
  int n = static_cast<int>(rng.UniformInt(3, 14));
  for (int i = 0; i < n; ++i) {
    // Random small views over a tiny domain: every category can occur.
    std::vector<std::vector<std::string>> rows;
    int num_rows = static_cast<int>(rng.UniformInt(1, 8));
    for (int k = 0; k < num_rows; ++k) {
      rows.push_back({"key" + std::to_string(rng.UniformInt(0, 5)),
                      std::to_string(rng.UniformInt(0, 3))});
    }
    views.push_back(MakeView(i, {"k", "v"}, rows));
  }
  DistillationResult r = DistillViews(views, DistillationOptions());

  // Invariant 1: funnel counts are monotone.
  EXPECT_LE(r.count_after_contained, r.count_after_compatible);
  EXPECT_LE(r.count_after_compatible, static_cast<int64_t>(views.size()));
  EXPECT_EQ(static_cast<int64_t>(r.surviving.size()),
            r.count_after_contained);

  // Invariant 2: every pruned view has a surviving representative chain.
  for (const auto& [pruned, rep] : r.representative) {
    EXPECT_NE(pruned, rep);
    int cursor = rep;
    int steps = 0;
    while (r.representative.count(cursor) && steps < n) {
      cursor = r.representative.at(cursor);
      ++steps;
    }
    EXPECT_TRUE(std::find(r.surviving.begin(), r.surviving.end(), cursor) !=
                r.surviving.end());
  }

  // Invariant 3: edges reference valid views and are canonically ordered.
  for (const ViewEdge& e : r.edges) {
    EXPECT_GE(e.view_a, 0);
    EXPECT_LT(e.view_b, n);
    EXPECT_LT(e.view_a, e.view_b);
  }

  // Invariant 4: complementary reduction is bounded by the surviving count
  // and best <= worst.
  ComplementaryReduction red = ComputeComplementaryReduction(views, r);
  EXPECT_LE(red.best_case, red.worst_case);
  EXPECT_LE(red.worst_case, static_cast<int64_t>(r.surviving.size()));
  EXPECT_GE(red.best_case, r.surviving.empty() ? 0 : 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistillationPropertyTest,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace ver
