// Property tests validating the discovery index against brute-force
// references on randomized repositories: containment neighbors vs exact
// pairwise computation, keyword search vs linear scan, join-graph
// connectivity vs reachability.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "discovery/engine.h"
#include "table/column_stats.h"
#include "util/minhash.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ver {
namespace {

// Random repository over a small shared vocabulary so containment
// relationships actually occur.
TableRepository RandomRepo(uint64_t seed, int num_tables) {
  Rng rng(seed);
  TableRepository repo;
  for (int t = 0; t < num_tables; ++t) {
    Schema schema;
    int cols = static_cast<int>(rng.UniformInt(1, 3));
    for (int c = 0; c < cols; ++c) {
      schema.AddAttribute(Attribute{
          "col" + std::to_string(c) + "_" + std::to_string(t),
          ValueType::kString});
    }
    Table table("t" + std::to_string(t), schema);
    int rows = static_cast<int>(rng.UniformInt(3, 25));
    for (int r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (int c = 0; c < cols; ++c) {
        row.push_back(
            Value::String("w" + std::to_string(rng.UniformInt(0, 30))));
      }
      (void)table.AppendRow(std::move(row));
    }
    table.InferColumnTypes();
    (void)repo.AddTable(std::move(table));
  }
  return repo;
}

class DiscoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscoveryPropertyTest, NeighborsMatchBruteForceContainment) {
  TableRepository repo = RandomRepo(GetParam(), 8);
  auto engine = DiscoveryEngine::Build(repo);
  const double threshold = 0.8;

  // Brute force: exact containment between all column pairs.
  std::vector<ColumnRef> columns = repo.AllColumns();
  std::unordered_map<uint64_t, std::vector<uint64_t>> distinct;
  for (const ColumnRef& c : columns) {
    distinct[c.Encode()] = DistinctValueHashes(
        repo.table(c.table_id), c.column_index);
  }
  for (const ColumnRef& query : columns) {
    if (distinct[query.Encode()].size() < 2) continue;  // below min_distinct
    std::set<uint64_t> expected;
    for (const ColumnRef& other : columns) {
      if (other == query) continue;
      if (distinct[other.Encode()].size() < 2) continue;
      if (ExactContainment(distinct[query.Encode()],
                           distinct[other.Encode()]) >= threshold) {
        expected.insert(other.Encode());
      }
    }
    std::set<uint64_t> actual;
    for (const ColumnRef& n : engine->Neighbors(query, threshold)) {
      actual.insert(n.Encode());
    }
    EXPECT_EQ(actual, expected)
        << "neighbors mismatch for " << repo.ColumnDisplayName(query);
  }
}

TEST_P(DiscoveryPropertyTest, KeywordSearchMatchesLinearScan) {
  TableRepository repo = RandomRepo(GetParam() + 100, 6);
  auto engine = DiscoveryEngine::Build(repo);
  for (int w = 0; w < 31; w += 5) {
    std::string needle = "w" + std::to_string(w);
    std::set<uint64_t> expected;
    for (const ColumnRef& c : repo.AllColumns()) {
      const ColumnData& data = repo.column_data(c);
      for (int64_t r = 0; r < data.size(); ++r) {
        CellView v = data.cell(r);
        if (!v.is_null() && ToLower(v.ToText()) == needle) {
          expected.insert(c.Encode());
          break;
        }
      }
    }
    std::set<uint64_t> actual;
    for (const KeywordHit& h :
         engine->SearchKeyword(needle, KeywordTarget::kValues)) {
      actual.insert(h.column.Encode());
    }
    EXPECT_EQ(actual, expected) << needle;
  }
}

TEST_P(DiscoveryPropertyTest, JoinGraphsConnectAllRequestedTables) {
  TableRepository repo = RandomRepo(GetParam() + 200, 8);
  auto engine = DiscoveryEngine::Build(repo);
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    int32_t a = static_cast<int32_t>(rng.UniformInt(0, repo.num_tables() - 1));
    int32_t b = static_cast<int32_t>(rng.UniformInt(0, repo.num_tables() - 1));
    std::vector<JoinGraph> graphs = engine->GenerateJoinGraphs({a, b}, 2);
    for (const JoinGraph& g : graphs) {
      // Both requested tables appear.
      EXPECT_TRUE(std::find(g.tables.begin(), g.tables.end(), a) !=
                  g.tables.end());
      EXPECT_TRUE(std::find(g.tables.begin(), g.tables.end(), b) !=
                  g.tables.end());
      if (a == b) continue;
      // Edge set forms a connected graph over g.tables.
      std::unordered_map<int32_t, std::vector<int32_t>> adj;
      for (const JoinEdge& e : g.edges) {
        adj[e.left.table_id].push_back(e.right.table_id);
        adj[e.right.table_id].push_back(e.left.table_id);
      }
      std::unordered_set<int32_t> seen{g.tables.front()};
      std::vector<int32_t> stack{g.tables.front()};
      while (!stack.empty()) {
        int32_t cur = stack.back();
        stack.pop_back();
        for (int32_t next : adj[cur]) {
          if (seen.insert(next).second) stack.push_back(next);
        }
      }
      for (int32_t t : g.tables) {
        EXPECT_TRUE(seen.count(t))
            << "table " << t << " disconnected in " << g.ToString(repo);
      }
      // Hop limit respected per requested pair (spanning-chain bound).
      EXPECT_LE(g.num_hops(), 2 * 2);
    }
  }
}

TEST_P(DiscoveryPropertyTest, SketchEstimatesTrackExactScores) {
  TableRepository repo = RandomRepo(GetParam() + 300, 6);
  DiscoveryOptions sketch_only;
  sketch_only.profiler.exact_set_max = 0;
  sketch_only.profiler.minhash_permutations = 256;
  auto engine = DiscoveryEngine::Build(repo, sketch_only);
  std::vector<ColumnRef> columns = repo.AllColumns();
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      const ColumnProfile& a = engine->profile(columns[i]);
      const ColumnProfile& b = engine->profile(columns[j]);
      double est = ProfileJaccard(a, b);
      double exact = ExactJaccard(
          DistinctValueHashes(repo.table(columns[i].table_id),
                              columns[i].column_index),
          DistinctValueHashes(repo.table(columns[j].table_id),
                              columns[j].column_index));
      EXPECT_NEAR(est, exact, 0.25);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace ver
